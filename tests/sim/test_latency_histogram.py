"""Tests for the log-scale latency histogram and percentile metrics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hierarchy.base import AccessResult
from repro.netmodel.model import AccessPoint
from repro.sim.metrics import LatencyHistogram, SimMetrics


class TestLatencyHistogram:
    def test_empty_percentile_is_zero(self):
        assert LatencyHistogram().percentile(0.5) == 0.0

    def test_single_sample(self):
        histogram = LatencyHistogram()
        histogram.record(100.0)
        assert histogram.percentile(0.5) == pytest.approx(100.0, rel=0.1)

    def test_median_of_two_groups(self):
        histogram = LatencyHistogram()
        for _ in range(50):
            histogram.record(10.0)
        for _ in range(50):
            histogram.record(1000.0)
        assert histogram.percentile(0.25) == pytest.approx(10.0, rel=0.1)
        assert histogram.percentile(0.99) == pytest.approx(1000.0, rel=0.1)

    def test_percentiles_are_monotone(self):
        histogram = LatencyHistogram()
        for value in (1.0, 5.0, 50.0, 500.0, 5000.0):
            histogram.record(value)
        quantiles = [histogram.percentile(q) for q in (0.2, 0.4, 0.6, 0.8, 1.0)]
        assert quantiles == sorted(quantiles)

    def test_rejects_bad_inputs(self):
        histogram = LatencyHistogram()
        with pytest.raises(ValueError):
            histogram.record(-1.0)
        with pytest.raises(ValueError):
            histogram.percentile(0.0)
        with pytest.raises(ValueError):
            histogram.percentile(1.5)

    def test_len_counts_samples(self):
        histogram = LatencyHistogram()
        histogram.record(1.0)
        histogram.record(2.0)
        assert len(histogram) == 2

    @settings(deadline=None, max_examples=40)
    @given(st.lists(st.floats(0.2, 1e5), min_size=1, max_size=200))
    def test_percentile_brackets_true_quantile(self, samples):
        """The histogram estimate is within one bin (~7.5%) of the exact
        empirical quantile and never under-reports it by more than a bin."""
        histogram = LatencyHistogram()
        for value in samples:
            histogram.record(value)
        import math

        ordered = sorted(samples)
        for q in (0.5, 0.9, 1.0):
            # Same convention as the histogram: smallest x with at least
            # ceil(q * n) samples <= x.
            exact = ordered[max(0, math.ceil(q * len(ordered)) - 1)]
            estimate = histogram.percentile(q)
            assert estimate >= exact * 0.92
            assert estimate <= max(ordered) * 1.08


class TestSimMetricsPercentiles:
    def test_percentiles_in_summary(self):
        metrics = SimMetrics()
        for time_ms in (10.0, 20.0, 30.0, 4000.0):
            metrics.record(
                AccessResult(point=AccessPoint.L1, time_ms=time_ms, hit=True),
                size=100,
            )
        summary = metrics.summary()
        assert summary["p50_ms"] <= summary["p99_ms"]
        assert summary["p99_ms"] == pytest.approx(4000.0, rel=0.1)

    def test_percentile_method(self):
        metrics = SimMetrics()
        metrics.record(
            AccessResult(point=AccessPoint.SERVER, time_ms=800.0, hit=False),
            size=100,
        )
        assert metrics.percentile_ms(0.5) == pytest.approx(800.0, rel=0.1)
