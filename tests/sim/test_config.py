"""Tests for experiment configuration."""

from __future__ import annotations

import pytest

from repro.common.units import GB, MB
from repro.sim.config import ExperimentConfig, default_config


class TestDefaults:
    def test_default_keeps_64_l1_shape(self):
        config = default_config()
        assert config.topology.n_l1 == 64
        assert config.topology.l1_per_l2 == 8

    def test_profile_covers_topology(self):
        config = default_config()
        profile = config.profile("dec")
        assert profile.n_clients >= config.topology.n_clients_covered

    def test_profile_scales_requests(self):
        config = default_config()
        from repro.traces.profiles import DEC

        profile = config.profile("dec")
        assert profile.n_requests == pytest.approx(
            DEC.n_requests * config.trace_scale, rel=0.05
        )


class TestScaling:
    def test_with_scale_scales_capacities(self):
        config = default_config()
        doubled = config.with_scale(config.trace_scale * 2)
        assert doubled.l1_cache_bytes == pytest.approx(
            config.l1_cache_bytes * 2, rel=0.01
        )
        assert doubled.hint_store_bytes == pytest.approx(
            config.hint_store_bytes * 2, rel=0.01
        )

    def test_with_scale_has_floors(self):
        tiny = default_config().with_scale(1e-9)
        assert tiny.l1_cache_bytes >= 1 * MB

    def test_paper_scale_parameters(self):
        paper = ExperimentConfig.paper_scale()
        assert paper.topology.clients_per_l1 == 256
        assert paper.trace_scale == 1.0
        assert paper.l1_cache_bytes == 5 * GB
        assert paper.hint_data_cache_bytes == int(4.5 * GB)
        assert paper.hint_store_bytes == 500 * MB

    def test_hint_split_is_ten_percent(self):
        # The paper carves the 5 GB into 4.5 GB data + 0.5 GB hints.
        config = default_config()
        total = config.hint_data_cache_bytes + config.hint_store_bytes
        assert total == pytest.approx(config.l1_cache_bytes, rel=0.01)
        assert config.hint_store_bytes == pytest.approx(
            0.1 * config.l1_cache_bytes, rel=0.01
        )
