"""Differential parity: the columnar fast engine vs the reference engine.

Every configuration here runs both engines over the same trace and asserts
**byte-identical** ``SimMetrics`` -- equality of every counter, float
accumulator, and latency histogram bin.  The matrix covers both kernelized
architectures, bounded and unbounded caches, hint pathologies (false
positives/negatives, suboptimal hits), fault plans (which dispatch to the
reference loop and must stay exact), telemetry rows, journey streams, and
batch-boundary invariance under Hypothesis.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan, LinkDegrade, NodeCrash
from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.hierarchy.icp import IcpHierarchy
from repro.netmodel.testbed import TestbedCostModel
from repro.obs.sink import SamplingJourneySink
from repro.obs.telemetry import MetricsRegistry, RunTelemetry
from repro.sim.engine import run_simulation
from repro.sim.fastpath import (
    _sequential_sum,
    fast_unsupported_reason,
    run_fast_simulation,
)
from repro.sim.metrics import LatencyHistogram

MB = 1024 * 1024


def build_architecture(kind, topology):
    """Fresh architecture for one parity cell (never reused across runs)."""
    cost = TestbedCostModel()
    if kind == "hierarchy":
        return DataHierarchy(topology, cost)
    if kind == "hierarchy-bounded":
        return DataHierarchy(
            topology, cost, l1_bytes=2 * MB, l2_bytes=8 * MB, l3_bytes=32 * MB
        )
    if kind == "hints":
        return HintHierarchy(topology, cost)
    if kind == "hints-pathological":
        # Bounded data caches force evictions (stale hints -> false
        # positives), the bounded hint store forces hint drops (false
        # negatives), and the propagation delay leaves nearer copies
        # invisible (suboptimal hits).
        return HintHierarchy(
            topology,
            cost,
            l1_bytes=int(1.8 * MB),
            hint_capacity_bytes=16 * 1024,
            hint_delay_s=7200.0,
        )
    raise AssertionError(kind)


FAULT_PLANS = {
    "no-fault": None,
    "crash-heavy": (
        NodeCrash(time=0.0, kind="l1", node=0),
        NodeCrash(time=0.0, kind="l2", node=0),
        NodeCrash(time=3600.0, kind="l1", node=1),
        NodeCrash(time=3600.0, kind="meta", node=0),
    ),
    "link-degrade": (LinkDegrade(time=0.0, latency_mult=1.5),),
}


def run_pair(trace, kind, topology, **kwargs):
    reference = run_simulation(
        trace, build_architecture(kind, topology), engine="reference", **kwargs
    )
    fast = run_simulation(
        trace, build_architecture(kind, topology), engine="fast", **kwargs
    )
    return reference, fast


@pytest.mark.parametrize("fault_name", sorted(FAULT_PLANS))
@pytest.mark.parametrize(
    "kind", ["hierarchy", "hierarchy-bounded", "hints", "hints-pathological"]
)
def test_parity_matrix(kind, fault_name, tiny_config, dec_trace):
    """Architecture x fault-plan matrix: byte-identical SimMetrics."""
    events = FAULT_PLANS[fault_name]
    plan = (
        FaultPlan(events=events, seed=tiny_config.seed)
        if events is not None
        else None
    )
    reference, fast = run_pair(
        dec_trace, kind, tiny_config.topology, fault_plan=plan
    )
    assert reference == fast


def test_pathological_config_exercises_hint_errors(tiny_config, dec_trace):
    """The pathology cell is not vacuous: FP/FN/suboptimal all fire."""
    _, fast = run_pair(dec_trace, "hints-pathological", tiny_config.topology)
    assert fast.false_positives > 0
    assert fast.false_negatives > 0
    assert fast.suboptimal_positives > 0
    assert fast.remote_hits > 0


def test_parity_include_uncachable_and_warmup(tiny_config, dec_trace):
    for kind in ("hierarchy", "hints"):
        reference, fast = run_pair(
            dec_trace,
            kind,
            tiny_config.topology,
            include_uncachable=True,
            warmup_s=0.0,
        )
        assert reference == fast
        assert fast.included_uncachable + fast.included_error > 0
        assert fast.warmup_requests == 0


def test_parity_prodigy_trace(tiny_config, prodigy_trace):
    for kind in ("hierarchy", "hints"):
        reference, fast = run_pair(prodigy_trace, kind, tiny_config.topology)
        assert reference == fast


@pytest.mark.parametrize("batch_size", [1, 7, 1024])
def test_batch_size_invariance_pinned(batch_size, tiny_config, dec_trace):
    """Fixed batch-boundary sweep: 1 (degenerate), 7 (ragged), 1024."""
    reference = run_simulation(
        dec_trace, build_architecture("hints", tiny_config.topology)
    )
    fast = run_fast_simulation(
        dec_trace,
        build_architecture("hints", tiny_config.topology),
        batch_size=batch_size,
    )
    assert reference == fast


_hypothesis_cache: dict = {}


@settings(max_examples=8, deadline=None)
@given(batch_size=st.integers(min_value=1, max_value=4096))
def test_batch_size_invariance_hypothesis(batch_size):
    """Any batch size yields the same metrics: boundaries never leak."""
    # Build the shared trace/reference once (hypothesis re-calls the body).
    if "trace" not in _hypothesis_cache:
        from tests.conftest import make_tiny_config
        from repro.traces.synthetic import SyntheticTraceGenerator

        config = make_tiny_config()
        profile = config.profile("dec")
        trace = SyntheticTraceGenerator(profile, seed=config.seed).generate()
        _hypothesis_cache["trace"] = trace
        _hypothesis_cache["topology"] = config.topology
        _hypothesis_cache["reference"] = run_simulation(
            trace, build_architecture("hierarchy", config.topology)
        )
    fast = run_fast_simulation(
        _hypothesis_cache["trace"],
        build_architecture("hierarchy", _hypothesis_cache["topology"]),
        batch_size=batch_size,
    )
    assert fast == _hypothesis_cache["reference"]


def test_journey_stream_parity(tiny_config, dec_trace):
    """Decoded journeys match the reference ledger sample-for-sample."""
    for kind in ("hierarchy", "hints-pathological"):
        sinks = {}
        for engine in ("reference", "fast"):
            sink = SamplingJourneySink(capacity=None)
            run_simulation(
                dec_trace,
                build_architecture(kind, tiny_config.topology),
                journey_sink=sink,
                engine=engine,
            )
            sinks[engine] = sink
        assert sinks["reference"].seen == sinks["fast"].seen
        for (seq_r, req_r, res_r), (seq_f, req_f, res_f) in zip(
            sinks["reference"].samples, sinks["fast"].samples
        ):
            assert seq_r == seq_f
            assert req_r == req_f
            assert res_r.time_ms == res_f.time_ms
            assert res_r.point is res_f.point
            assert res_r.hit == res_f.hit
            assert res_r.remote_hit == res_f.remote_hit
            assert res_r.false_positive == res_f.false_positive
            assert res_r.false_negative == res_f.false_negative
            assert res_r.suboptimal_positive == res_f.suboptimal_positive
            steps_r = [
                (s.kind, s.cost_ms, s.target, s.fault_ms, s.wasted)
                for s in res_r.journey.steps
            ]
            steps_f = [
                (s.kind, s.cost_ms, s.target, s.fault_ms, s.wasted)
                for s in res_f.journey.steps
            ]
            assert steps_r == steps_f


def test_telemetry_rows_parity(tiny_config, dec_trace):
    """Per-bin telemetry rows are identical, including gauge snapshots."""
    for kind in ("hierarchy", "hints-pathological"):
        rows = {}
        for engine in ("reference", "fast"):
            telemetry = RunTelemetry(MetricsRegistry(), bin_s=3600.0)
            run_simulation(
                dec_trace,
                build_architecture(kind, tiny_config.topology),
                telemetry=telemetry,
                engine=engine,
            )
            rows[engine] = telemetry.rows
        assert rows["reference"] == rows["fast"]


def test_fast_raises_for_unsupported_architecture(tiny_config, dec_trace):
    icp = IcpHierarchy(tiny_config.topology, TestbedCostModel())
    assert fast_unsupported_reason(icp) is not None
    with pytest.raises(ValueError, match="no vectorized kernel"):
        run_simulation(dec_trace, icp, engine="fast")


def test_auto_falls_back_for_unsupported_architecture(tiny_config, dec_trace):
    icp = IcpHierarchy(tiny_config.topology, TestbedCostModel())
    reference = run_simulation(
        dec_trace, IcpHierarchy(tiny_config.topology, TestbedCostModel())
    )
    assert run_simulation(dec_trace, icp, engine="auto") == reference


def test_fast_rejects_push_and_ideal_variants(tiny_config):
    ideal = HintHierarchy(
        tiny_config.topology, TestbedCostModel(), charge_remote_as_l1=True
    )
    assert fast_unsupported_reason(ideal) is not None


def test_engine_name_validated(tiny_config, dec_trace):
    with pytest.raises(ValueError, match="unknown engine"):
        run_simulation(
            dec_trace,
            build_architecture("hierarchy", tiny_config.topology),
            engine="warp",
        )


def test_sequential_sum_is_bitwise_left_to_right():
    """np.cumsum replays the reference's ``total += v`` chain exactly."""
    rng = np.random.default_rng(7)
    values = rng.uniform(0.01, 5000.0, size=4097)
    total = 3.25
    for v in values.tolist():
        total += v
    assert _sequential_sum(3.25, values) == total
    assert _sequential_sum(0.0, values[:1]) == values[0]
    assert _sequential_sum(1.5, values[:0]) == 1.5


def test_bulk_record_matches_scalar_loop_including_boundaries():
    """Vectorized binning equals a record() loop, bin for bin."""
    rng = np.random.default_rng(11)
    values = np.concatenate(
        [
            rng.uniform(0.0, 2.0, size=500),
            rng.lognormal(3.0, 2.0, size=500),
            # Exact bin edges and their float neighbours: the scalar
            # recheck band must route these through math.log10.
            np.array(
                [
                    10 ** (k / 32 - 1.0)
                    for k in range(0, 224, 7)
                ]
            ),
            np.nextafter(
                np.array([10 ** (k / 32 - 1.0) for k in range(0, 224, 7)]),
                np.inf,
            ),
            np.array([0.0, 0.1, np.nextafter(0.1, np.inf), 1e9]),
        ]
    )
    scalar = LatencyHistogram()
    for v in values.tolist():
        scalar.record(v)
    bulk = LatencyHistogram()
    bulk.bulk_record(values)
    assert bulk == scalar


def test_fast_rejects_attached_fault_or_audit_state(tiny_config, dec_trace):
    arch = build_architecture("hierarchy", tiny_config.topology)
    arch.faults = object()
    with pytest.raises(ValueError, match="healthy"):
        run_fast_simulation(dec_trace, arch)


def test_bad_batch_size_rejected(tiny_config, dec_trace):
    with pytest.raises(ValueError, match="batch size"):
        run_fast_simulation(
            dec_trace,
            build_architecture("hierarchy", tiny_config.topology),
            batch_size=0,
        )
