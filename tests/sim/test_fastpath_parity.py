"""Differential parity: the columnar fast engine vs the reference engine.

Every configuration here runs both engines over the same trace and asserts
**byte-identical** ``SimMetrics`` -- equality of every counter, float
accumulator, and latency histogram bin.  The matrix covers all six
kernelized architectures (hierarchy, ICP, hints incl. push/ideal variants,
directory, client-hints, message-level hints), bounded and unbounded
caches, hint pathologies (false positives/negatives, suboptimal hits),
fault plans with active *and* quiescent windows (the vectorized residual's
span splitting), journey streams, telemetry rows, and batch-boundary /
fault-edge invariance under Hypothesis.

A second matrix crosses every architecture kind with every replacement
policy (LRU / LFU / seeded Random) on *bounded* caches -- the kernels'
policy-agnostic contract (:mod:`repro.sim.fastpath` module docstring)
means non-LRU bookkeeping must advance identically on both engines.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.policy import POLICY_NAMES, PolicySpec
from repro.faults import FaultPlan, LinkDegrade, NodeCrash, NodeRecover
from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.client_hints import ClientHintHierarchy
from repro.hierarchy.directory_arch import CentralizedDirectoryArchitecture
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.hierarchy.icp import IcpHierarchy
from repro.hierarchy.message_hints import MessageLevelHintHierarchy
from repro.netmodel.testbed import TestbedCostModel
from repro.obs.sink import SamplingJourneySink
from repro.obs.telemetry import MetricsRegistry, RunTelemetry
from repro.push.hierarchical import HierarchicalPushOnMiss
from repro.push.update_push import UpdatePush
from repro.sim.engine import run_simulation
from repro.sim.fastpath import (
    PushHintKernel,
    _sequential_sum,
    fast_unsupported_reason,
    kernel_class_for,
    run_fast_simulation,
)
from repro.sim.metrics import LatencyHistogram

MB = 1024 * 1024

#: Every architecture kind in the parity matrix.  Six architecture types;
#: the extra cells pin bounded-cache eviction churn, hint pathologies, and
#: all three push-accounting variants of the hint hierarchy.
ALL_KINDS = [
    "hierarchy",
    "hierarchy-bounded",
    "icp",
    "directory",
    "hints",
    "hints-pathological",
    "hints-push",
    "hints-update-push",
    "hints-ideal",
    "client-hints",
    "message-hints",
]


def build_architecture(kind, topology, policy=None):
    """Fresh architecture for one parity cell (never reused across runs).

    ``policy`` (a name or :class:`PolicySpec`) threads a replacement
    policy into every level the kind has.  Kinds that default to
    unbounded caches get bounded ones when a policy is requested --
    policies only differ under capacity pressure, so an unbounded policy
    cell would be vacuous.
    """
    cost = TestbedCostModel()
    spec = PolicySpec(policy, seed=13) if isinstance(policy, str) else policy
    data_policies = (
        {}
        if spec is None
        else {"l1_policy": spec, "l2_policy": spec, "l3_policy": spec}
    )
    l1_policy = {} if spec is None else {"l1_policy": spec}
    if kind == "hierarchy":
        bounds = (
            {}
            if spec is None
            else {"l1_bytes": 2 * MB, "l2_bytes": 8 * MB, "l3_bytes": 32 * MB}
        )
        return DataHierarchy(topology, cost, **bounds, **data_policies)
    if kind == "hierarchy-bounded":
        return DataHierarchy(
            topology,
            cost,
            l1_bytes=2 * MB,
            l2_bytes=8 * MB,
            l3_bytes=32 * MB,
            **data_policies,
        )
    if kind == "icp":
        return IcpHierarchy(
            topology, cost, l1_bytes=2 * MB, l2_bytes=8 * MB, **data_policies
        )
    if kind == "directory":
        return CentralizedDirectoryArchitecture(
            topology, cost, l1_bytes=2 * MB, **l1_policy
        )
    if kind == "hints":
        bounds = {} if spec is None else {"l1_bytes": 2 * MB}
        return HintHierarchy(topology, cost, **bounds, **l1_policy)
    if kind == "hints-pathological":
        # Bounded data caches force evictions (stale hints -> false
        # positives), the bounded hint store forces hint drops (false
        # negatives), and the propagation delay leaves nearer copies
        # invisible (suboptimal hits).
        return HintHierarchy(
            topology,
            cost,
            l1_bytes=int(1.8 * MB),
            hint_capacity_bytes=16 * 1024,
            hint_delay_s=7200.0,
            **l1_policy,
        )
    if kind == "hints-push":
        return HintHierarchy(
            topology,
            cost,
            l1_bytes=2 * MB,
            push_policy=HierarchicalPushOnMiss(topology, "push-1", seed=7),
            **l1_policy,
        )
    if kind == "hints-update-push":
        return HintHierarchy(
            topology,
            cost,
            l1_bytes=2 * MB,
            push_policy=UpdatePush(
                max_bandwidth_bytes_per_s=50_000.0, age_pushed_entries=True
            ),
            **l1_policy,
        )
    if kind == "hints-ideal":
        bounds = {} if spec is None else {"l1_bytes": 2 * MB}
        return HintHierarchy(
            topology, cost, charge_remote_as_l1=True, **bounds, **l1_policy
        )
    if kind == "client-hints":
        return ClientHintHierarchy(
            topology,
            cost,
            l1_bytes=2 * MB,
            client_false_negative_rate=0.35,
            seed=7,
            **l1_policy,
        )
    if kind == "message-hints":
        return MessageLevelHintHierarchy(
            topology,
            cost,
            l1_bytes=2 * MB,
            hint_capacity_bytes=8 * 1024,
            seed=7,
            **l1_policy,
        )
    raise AssertionError(kind)


#: Fault plans mix active windows (per-request residual) with quiescent
#: windows (vectorized kernels in faulted mode): crash-heavy alternates
#: crash/recover pairs through warmup *and* the measured region, and
#: link-degrade returns to multiplier 1.0 mid-measurement so the kernels
#: take over a run that started degraded.
FAULT_PLANS = {
    "no-fault": None,
    "crash-heavy": (
        NodeCrash(time=0.0, kind="l1", node=0),
        NodeCrash(time=0.0, kind="l2", node=0),
        NodeRecover(time=1800.0, kind="l1", node=0),
        NodeCrash(time=3600.0, kind="meta", node=0),
        NodeRecover(time=5400.0, kind="l2", node=0),
        NodeRecover(time=7200.0, kind="meta", node=0),
        NodeCrash(time=200_000.0, kind="l1", node=1),
        NodeRecover(time=260_000.0, kind="l1", node=1),
    ),
    "link-degrade": (
        LinkDegrade(time=0.0, latency_mult=1.5),
        LinkDegrade(time=240_000.0, latency_mult=1.0),
    ),
}


def make_plan(fault_name, seed):
    events = FAULT_PLANS[fault_name]
    return FaultPlan(events=events, seed=seed) if events is not None else None


def run_pair(trace, kind, topology, **kwargs):
    reference = run_simulation(
        trace, build_architecture(kind, topology), engine="reference", **kwargs
    )
    fast = run_simulation(
        trace, build_architecture(kind, topology), engine="fast", **kwargs
    )
    return reference, fast


def assert_same_journeys(reference_sink, fast_sink):
    assert reference_sink.seen == fast_sink.seen
    assert len(reference_sink.samples) == len(fast_sink.samples)
    for (seq_r, req_r, res_r), (seq_f, req_f, res_f) in zip(
        reference_sink.samples, fast_sink.samples
    ):
        assert seq_r == seq_f
        assert req_r == req_f
        assert res_r.time_ms == res_f.time_ms
        assert res_r.point is res_f.point
        assert res_r.hit == res_f.hit
        assert res_r.remote_hit == res_f.remote_hit
        assert res_r.false_positive == res_f.false_positive
        assert res_r.false_negative == res_f.false_negative
        assert res_r.suboptimal_positive == res_f.suboptimal_positive
        assert res_r.push_hit == res_f.push_hit
        assert res_r.stale_hint_forward == res_f.stale_hint_forward
        assert res_r.timeout_fallback == res_f.timeout_fallback
        steps_r = [
            (s.kind, s.cost_ms, s.target, s.fault_ms, s.wasted)
            for s in res_r.journey.steps
        ]
        steps_f = [
            (s.kind, s.cost_ms, s.target, s.fault_ms, s.wasted)
            for s in res_f.journey.steps
        ]
        assert steps_r == steps_f


@pytest.mark.parametrize("fault_name", sorted(FAULT_PLANS))
@pytest.mark.parametrize("kind", ALL_KINDS)
def test_parity_matrix(kind, fault_name, tiny_config, dec_trace):
    """Architecture x fault-plan matrix: byte-identical SimMetrics."""
    plan = make_plan(fault_name, tiny_config.seed)
    reference, fast = run_pair(
        dec_trace, kind, tiny_config.topology, fault_plan=plan
    )
    assert reference == fast


@pytest.mark.parametrize("policy", sorted(POLICY_NAMES))
@pytest.mark.parametrize("kind", ALL_KINDS)
def test_policy_parity_matrix(kind, policy, tiny_config, dec_trace):
    """Architecture x replacement-policy matrix on bounded caches.

    The kernels never touch policy bookkeeping directly (raw probes are
    unbounded-only), so LFU frequency counters and Random victim streams
    must advance identically on both engines -- byte-identical metrics
    for every (kind, policy) cell."""
    reference = run_simulation(
        dec_trace,
        build_architecture(kind, tiny_config.topology, policy=policy),
        engine="reference",
    )
    fast = run_simulation(
        dec_trace,
        build_architecture(kind, tiny_config.topology, policy=policy),
        engine="fast",
    )
    assert reference == fast


def test_policy_cells_actually_evict(tiny_config, dec_trace):
    """The policy matrix is not vacuous: every kind's L1 caches evict, and
    distinct policies produce distinct metrics on at least one kind."""
    by_policy = {}
    for policy in sorted(POLICY_NAMES):
        arch = build_architecture("hierarchy", tiny_config.topology, policy=policy)
        by_policy[policy] = run_simulation(dec_trace, arch, engine="fast")
        assert sum(c.evictions for c in arch.l1_caches) > 0
    signatures = {
        (tuple(sorted(m.requests_by_point.items())), m.total_ms)
        for m in by_policy.values()
    }
    assert len(signatures) == 3


@pytest.mark.parametrize("fault_name", sorted(FAULT_PLANS))
@pytest.mark.parametrize("kind", ALL_KINDS)
def test_instrumented_parity_matrix(kind, fault_name, tiny_config, dec_trace):
    """Same matrix with journeys + telemetry attached: every journey step
    and every timeline row byte-identical, not just the final metrics."""
    plan = make_plan(fault_name, tiny_config.seed)
    sinks = {}
    rows = {}
    metrics = {}
    for engine in ("reference", "fast"):
        sink = SamplingJourneySink(capacity=None)
        telemetry = RunTelemetry(MetricsRegistry(), bin_s=3600.0)
        metrics[engine] = run_simulation(
            dec_trace,
            build_architecture(kind, tiny_config.topology),
            fault_plan=plan,
            journey_sink=sink,
            telemetry=telemetry,
            engine=engine,
        )
        sinks[engine] = sink
        rows[engine] = telemetry.rows
    assert metrics["reference"] == metrics["fast"]
    assert_same_journeys(sinks["reference"], sinks["fast"])
    assert rows["reference"] == rows["fast"]


def test_matrix_cells_are_not_vacuous(tiny_config, dec_trace):
    """The interesting counters actually fire in their matrix cells."""
    _, hints = run_pair(dec_trace, "hints-pathological", tiny_config.topology)
    assert hints.false_positives > 0
    assert hints.false_negatives > 0
    assert hints.suboptimal_positives > 0
    assert hints.remote_hits > 0

    icp_arch = build_architecture("icp", tiny_config.topology)
    run_simulation(dec_trace, icp_arch, engine="fast")
    assert icp_arch.sibling_queries > 0
    assert icp_arch.sibling_hits > 0

    _, push = run_pair(dec_trace, "hints-push", tiny_config.topology)
    assert push.push_hits > 0

    _, client = run_pair(dec_trace, "client-hints", tiny_config.topology)
    assert client.false_negatives > 0

    msg_arch = build_architecture("message-hints", tiny_config.topology)
    msg = run_simulation(dec_trace, msg_arch, engine="fast")
    assert msg.remote_hits > 0
    assert msg_arch.false_positive_probes + msg_arch.false_negative_misses > 0

    plan = make_plan("crash-heavy", tiny_config.seed)
    _, directory = run_pair(
        dec_trace, "directory", tiny_config.topology, fault_plan=plan
    )
    assert directory.degraded.faulted_requests > 0
    assert directory.degraded.stale_hint_forwards > 0


def test_parity_include_uncachable_and_warmup(tiny_config, dec_trace):
    for kind in ("hierarchy", "icp", "directory", "hints"):
        reference, fast = run_pair(
            dec_trace,
            kind,
            tiny_config.topology,
            include_uncachable=True,
            warmup_s=0.0,
        )
        assert reference == fast
        assert fast.included_uncachable + fast.included_error > 0
        assert fast.warmup_requests == 0


def test_parity_prodigy_trace(tiny_config, prodigy_trace):
    for kind in ("hierarchy", "icp", "directory", "hints", "message-hints"):
        reference, fast = run_pair(prodigy_trace, kind, tiny_config.topology)
        assert reference == fast


@pytest.mark.parametrize("batch_size", [1, 7, 1024])
def test_batch_size_invariance_pinned(batch_size, tiny_config, dec_trace):
    """Fixed batch-boundary sweep: 1 (degenerate), 7 (ragged), 1024."""
    reference = run_simulation(
        dec_trace, build_architecture("hints", tiny_config.topology)
    )
    fast = run_fast_simulation(
        dec_trace,
        build_architecture("hints", tiny_config.topology),
        batch_size=batch_size,
    )
    assert reference == fast


@pytest.mark.parametrize("batch_size", [1, 7, 1024])
def test_fault_edges_on_batch_boundaries_pinned(batch_size, tiny_config, dec_trace):
    """Crash/recover edges landing exactly on request timestamps that are
    also batch boundaries: the span splitter's worst case."""
    time_col = dec_trace.columns().time
    n = len(time_col)
    crash_i = min(batch_size, n - 1)
    recover_i = min(4 * batch_size, n - 1)
    plan = FaultPlan(
        events=(
            NodeCrash(time=float(time_col[crash_i]), kind="l1", node=0),
            NodeRecover(time=float(time_col[recover_i]), kind="l1", node=0),
        ),
        seed=tiny_config.seed,
    )
    reference = run_simulation(
        dec_trace,
        build_architecture("directory", tiny_config.topology),
        fault_plan=plan,
    )
    fast = run_fast_simulation(
        dec_trace,
        build_architecture("directory", tiny_config.topology),
        fault_plan=plan,
        batch_size=batch_size,
    )
    assert reference == fast


_hypothesis_cache: dict = {}


def _hypothesis_trace():
    if "trace" not in _hypothesis_cache:
        from tests.conftest import make_tiny_config
        from repro.traces.synthetic import SyntheticTraceGenerator

        config = make_tiny_config()
        profile = config.profile("dec")
        trace = SyntheticTraceGenerator(profile, seed=config.seed).generate()
        _hypothesis_cache["trace"] = trace
        _hypothesis_cache["topology"] = config.topology
        _hypothesis_cache["seed"] = config.seed
    return _hypothesis_cache


@settings(max_examples=8, deadline=None)
@given(batch_size=st.integers(min_value=1, max_value=4096))
def test_batch_size_invariance_hypothesis(batch_size):
    """Any batch size yields the same metrics: boundaries never leak."""
    cache = _hypothesis_trace()
    if "reference" not in cache:
        cache["reference"] = run_simulation(
            cache["trace"], build_architecture("hierarchy", cache["topology"])
        )
    fast = run_fast_simulation(
        cache["trace"],
        build_architecture("hierarchy", cache["topology"]),
        batch_size=batch_size,
    )
    assert fast == cache["reference"]


@settings(max_examples=8, deadline=None)
@given(
    batch_size=st.integers(min_value=1, max_value=4096),
    crash_pos=st.integers(min_value=0, max_value=4095),
    window=st.integers(min_value=1, max_value=3000),
    align=st.booleans(),
    offset=st.floats(min_value=0.0, max_value=500.0),
)
def test_fault_boundary_invariance_hypothesis(
    batch_size, crash_pos, window, align, offset
):
    """Crash/recover edges on and off batch boundaries, at and between
    request timestamps: fast-vs-reference identity must survive every
    alignment -- the class of bug the vectorized residual is most likely
    to have."""
    cache = _hypothesis_trace()
    trace = cache["trace"]
    time_col = trace.columns().time
    n = len(time_col)
    if align:
        crash_pos = (crash_pos // batch_size) * batch_size
    crash_i = min(crash_pos, n - 1)
    recover_i = min(crash_i + window, n - 1)
    crash_t = float(time_col[crash_i])
    # ``offset`` shifts the recovery off any request timestamp, so events
    # also land strictly *between* rows.
    recover_t = float(time_col[recover_i]) + offset
    plan = FaultPlan(
        events=(
            NodeCrash(time=crash_t, kind="l1", node=0),
            NodeCrash(time=crash_t, kind="meta", node=0),
            NodeRecover(time=recover_t, kind="l1", node=0),
            NodeRecover(time=recover_t, kind="meta", node=0),
        ),
        seed=cache["seed"],
    )
    key = ("hints-ref", crash_t, recover_t)
    if key not in cache:
        cache[key] = run_simulation(
            trace,
            build_architecture("hints", cache["topology"]),
            fault_plan=plan,
        )
    fast = run_fast_simulation(
        trace,
        build_architecture("hints", cache["topology"]),
        fault_plan=plan,
        batch_size=batch_size,
    )
    assert fast == cache[key]


def test_push_variants_are_kernelized(tiny_config):
    """Push and ideal-push hint variants route to the push-aware kernel."""
    for kind in ("hints-push", "hints-update-push", "hints-ideal"):
        arch = build_architecture(kind, tiny_config.topology)
        assert fast_unsupported_reason(arch) is None
        assert kernel_class_for(arch) is PushHintKernel


class _UnkernelizedHierarchy(DataHierarchy):
    """Subclass with (hypothetically) different behavior: must not
    silently inherit the parent's kernel."""

    name = "custom-hierarchy"


def test_fast_raises_for_unsupported_architecture(tiny_config, dec_trace):
    arch = _UnkernelizedHierarchy(tiny_config.topology, TestbedCostModel())
    assert fast_unsupported_reason(arch) is not None
    with pytest.raises(ValueError, match="no vectorized kernel"):
        run_simulation(dec_trace, arch, engine="fast")


def test_auto_falls_back_for_unsupported_architecture(tiny_config, dec_trace):
    reference = run_simulation(
        dec_trace, _UnkernelizedHierarchy(tiny_config.topology, TestbedCostModel())
    )
    auto = run_simulation(
        dec_trace,
        _UnkernelizedHierarchy(tiny_config.topology, TestbedCostModel()),
        engine="auto",
    )
    assert auto == reference


def test_engine_name_validated(tiny_config, dec_trace):
    with pytest.raises(ValueError, match="unknown engine"):
        run_simulation(
            dec_trace,
            build_architecture("hierarchy", tiny_config.topology),
            engine="warp",
        )


def test_sequential_sum_is_bitwise_left_to_right():
    """np.cumsum replays the reference's ``total += v`` chain exactly."""
    rng = np.random.default_rng(7)
    values = rng.uniform(0.01, 5000.0, size=4097)
    total = 3.25
    for v in values.tolist():
        total += v
    assert _sequential_sum(3.25, values) == total
    assert _sequential_sum(0.0, values[:1]) == values[0]
    assert _sequential_sum(1.5, values[:0]) == 1.5


def test_bulk_record_matches_scalar_loop_including_boundaries():
    """Vectorized binning equals a record() loop, bin for bin."""
    rng = np.random.default_rng(11)
    values = np.concatenate(
        [
            rng.uniform(0.0, 2.0, size=500),
            rng.lognormal(3.0, 2.0, size=500),
            # Exact bin edges and their float neighbours: the scalar
            # recheck band must route these through math.log10.
            np.array(
                [
                    10 ** (k / 32 - 1.0)
                    for k in range(0, 224, 7)
                ]
            ),
            np.nextafter(
                np.array([10 ** (k / 32 - 1.0) for k in range(0, 224, 7)]),
                np.inf,
            ),
            np.array([0.0, 0.1, np.nextafter(0.1, np.inf), 1e9]),
        ]
    )
    scalar = LatencyHistogram()
    for v in values.tolist():
        scalar.record(v)
    bulk = LatencyHistogram()
    bulk.bulk_record(values)
    assert bulk == scalar


def test_fast_rejects_attached_fault_or_audit_state(tiny_config, dec_trace):
    arch = build_architecture("hierarchy", tiny_config.topology)
    arch.faults = object()
    with pytest.raises(ValueError, match="healthy"):
        run_fast_simulation(dec_trace, arch)


def test_bad_batch_size_rejected(tiny_config, dec_trace):
    with pytest.raises(ValueError, match="batch size"):
        run_fast_simulation(
            dec_trace,
            build_architecture("hierarchy", tiny_config.topology),
            batch_size=0,
        )
