"""Merge folds are an exact commutative monoid (property-based).

The sharded runner's correctness rests on one algebraic fact: folding
per-partition metrics in *any* order telescopes to the unsharded totals.
Counters are integers and every float here is a binary fraction small
enough that IEEE-754 addition is exact, so the properties hold with
``==`` -- no tolerance, mirroring the shard-count-invariance pins.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netmodel.model import AccessPoint
from repro.runner.trace_cache import TraceCacheStats
from repro.sim.metrics import (
    DegradedMetrics,
    LatencyHistogram,
    SimMetrics,
    StepAggregate,
)

#: Exact binary fractions (multiples of 1/1024, modest magnitude): sums
#: of a few hundred of these never round, so float folds stay exact.
exact_ms = st.integers(min_value=0, max_value=2**20).map(lambda n: n / 1024)
counts = st.integers(min_value=0, max_value=10_000)
#: Samples above 0.1 ms so histogram binning is unambiguous.
latency_samples = st.lists(
    st.integers(min_value=1, max_value=2**20).map(lambda n: n / 256),
    max_size=20,
)
STEP_KINDS = ("local_lookup", "peer_probe", "origin_fetch")


@st.composite
def histograms(draw):
    histogram = LatencyHistogram()
    for sample in draw(latency_samples):
        histogram.record(sample)
    return histogram


@st.composite
def step_aggregates(draw, kind="local_lookup"):
    return StepAggregate(
        kind=kind,
        count=draw(counts),
        total_ms=draw(exact_ms),
        fault_ms=draw(exact_ms),
        wasted=draw(counts),
        latency=draw(histograms()),
    )


@st.composite
def degraded_metrics(draw):
    return DegradedMetrics(
        faulted_requests=draw(counts),
        stale_hint_forwards=draw(counts),
        timeout_fallbacks=draw(counts),
        fault_added_ms=draw(exact_ms),
    )


@st.composite
def sim_metrics(draw):
    metrics = SimMetrics(architecture="arch", cost_model="testbed")
    metrics.measured_requests = draw(counts)
    metrics.warmup_requests = draw(counts)
    metrics.skipped_uncachable = draw(counts)
    metrics.skipped_error = draw(counts)
    metrics.total_ms = draw(exact_ms)
    metrics.remote_hits = draw(counts)
    metrics.push_hits = draw(counts)
    metrics.false_positives = draw(counts)
    metrics.false_negatives = draw(counts)
    metrics.suboptimal_positives = draw(counts)
    metrics.journeyed_requests = draw(counts)
    for point in AccessPoint:
        metrics.requests_by_point[point] = draw(counts)
        metrics.bytes_by_point[point] = draw(counts)
    metrics.latency = draw(histograms())
    metrics.degraded = draw(degraded_metrics())
    for kind in draw(st.sets(st.sampled_from(STEP_KINDS))):
        metrics.steps[kind] = draw(step_aggregates(kind=kind))
    return metrics


@st.composite
def cache_stats(draw):
    return TraceCacheStats(
        generations=draw(counts),
        generation_seconds=draw(exact_ms),
        memory_hits=draw(counts),
        disk_hits=draw(counts),
        disk_writes=draw(counts),
    )


def fold(parts, empty):
    """Merge ``parts`` left-to-right into a fresh ``empty`` accumulator."""
    for part in parts:
        empty.merge(part)
    return empty


class TestOrderInsensitivity:
    @settings(max_examples=50)
    @given(st.lists(sim_metrics(), max_size=5), st.randoms())
    def test_sim_metrics(self, parts, rng):
        shuffled = list(parts)
        rng.shuffle(shuffled)
        forward = fold(parts, SimMetrics(architecture="arch", cost_model="testbed"))
        permuted = fold(
            shuffled, SimMetrics(architecture="arch", cost_model="testbed")
        )
        assert forward == permuted

    @settings(max_examples=50)
    @given(st.lists(step_aggregates(), max_size=5), st.randoms())
    def test_step_aggregates(self, parts, rng):
        shuffled = list(parts)
        rng.shuffle(shuffled)
        assert fold(parts, StepAggregate(kind="local_lookup")) == fold(
            shuffled, StepAggregate(kind="local_lookup")
        )

    @settings(max_examples=50)
    @given(st.lists(cache_stats(), max_size=5), st.randoms())
    def test_cache_stats(self, parts, rng):
        shuffled = list(parts)
        rng.shuffle(shuffled)
        assert fold(parts, TraceCacheStats()) == fold(shuffled, TraceCacheStats())


class TestTelescoping:
    @settings(max_examples=50)
    @given(st.lists(sim_metrics(), min_size=2, max_size=6))
    def test_partial_folds_compose(self, parts):
        # Fold halves separately, then fold the halves: must equal the
        # flat fold (this is exactly shards=2 vs shards=1).
        def empty():
            return SimMetrics(architecture="arch", cost_model="testbed")

        middle = len(parts) // 2
        left = fold(parts[:middle], empty())
        right = fold(parts[middle:], empty())
        assert fold([left, right], empty()) == fold(parts, empty())

    @settings(max_examples=50)
    @given(latency_samples, st.integers(min_value=1, max_value=4))
    def test_histogram_merge_equals_recording_everything(self, samples, pieces):
        whole = LatencyHistogram()
        for sample in samples:
            whole.record(sample)
        shards = [LatencyHistogram() for _ in range(pieces)]
        for index, sample in enumerate(samples):
            shards[index % pieces].record(sample)
        merged = LatencyHistogram()
        for shard in shards:
            merged.merge(shard)
        assert merged == whole
        assert len(merged) == len(samples)

    @settings(max_examples=50)
    @given(st.lists(cache_stats(), max_size=6))
    def test_cache_stats_telescope_to_component_sums(self, parts):
        total = fold(parts, TraceCacheStats())
        assert total.generations == sum(p.generations for p in parts)
        assert total.disk_hits == sum(p.disk_hits for p in parts)
        assert total.generation_seconds == sum(
            p.generation_seconds for p in parts
        )


class TestMergeRefusesMismatches:
    def test_step_aggregate_kind_mismatch(self):
        with pytest.raises(ValueError, match="kind"):
            StepAggregate(kind="peer_probe").merge(StepAggregate(kind="timeout"))

    def test_sim_metrics_architecture_mismatch(self):
        ours = SimMetrics(architecture="icp", cost_model="testbed")
        theirs = SimMetrics(architecture="hints", cost_model="testbed")
        with pytest.raises(ValueError, match="cannot merge metrics for"):
            ours.merge(theirs)

    def test_sim_metrics_cost_model_mismatch(self):
        ours = SimMetrics(architecture="icp", cost_model="testbed")
        theirs = SimMetrics(architecture="icp", cost_model="uniform")
        with pytest.raises(ValueError, match="cost"):
            ours.merge(theirs)
