"""Tests for the FIFO queueing-network replay."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.hierarchy.topology import HierarchyTopology
from repro.netmodel.testbed import TestbedCostModel
from repro.sim.queueing_sim import (
    FifoServer,
    QueueingReplay,
    compression_for_target_load,
)
from repro.traces.records import Request, Trace

TOPOLOGY = HierarchyTopology(clients_per_l1=1, l1_per_l2=2, n_l2=2)


def make_trace(n_requests=60, gap_s=1.0):
    requests = [
        Request(
            time=i * gap_s,
            client_id=i % 4,
            object_id=i % 7,
            size=1000,
            version=0,
        )
        for i in range(n_requests)
    ]
    return Trace(
        profile_name="q", requests=requests, n_objects=7, n_clients=4,
        duration=n_requests * gap_s, warmup=0.0,
    )


class TestFifoServer:
    def test_idle_server_serves_immediately(self):
        server = FifoServer("s")
        assert server.serve(arrival_ms=10.0, service_ms=5.0) == 15.0
        assert server.total_wait_ms == 0.0

    def test_busy_server_queues(self):
        server = FifoServer("s")
        server.serve(0.0, 10.0)
        departure = server.serve(2.0, 10.0)
        assert departure == 20.0
        assert server.total_wait_ms == 8.0

    def test_utilization(self):
        server = FifoServer("s")
        server.serve(0.0, 25.0)
        assert server.utilization(horizon_ms=100.0) == pytest.approx(0.25)

    def test_mean_wait(self):
        server = FifoServer("s")
        server.serve(0.0, 10.0)
        server.serve(0.0, 10.0)
        assert server.mean_wait_ms() == pytest.approx(5.0)


class TestQueueingReplay:
    def test_uncompressed_sparse_trace_has_no_queueing(self):
        # 1 request/s with ~hundreds of ms of service: almost no overlap.
        replay = QueueingReplay(
            DataHierarchy(TOPOLOGY, TestbedCostModel()), compression=1.0
        )
        result = replay.run(make_trace(gap_s=10.0))
        assert result.mean_queue_wait_ms < 1.0

    def test_compression_creates_queueing(self):
        light = QueueingReplay(
            DataHierarchy(TOPOLOGY, TestbedCostModel()), compression=1.0
        ).run(make_trace(gap_s=1.0))
        heavy = QueueingReplay(
            DataHierarchy(TOPOLOGY, TestbedCostModel()), compression=20.0
        ).run(make_trace(gap_s=1.0))
        assert heavy.mean_queue_wait_ms > light.mean_queue_wait_ms
        assert heavy.mean_response_ms > light.mean_response_ms

    def test_response_time_bounded_below_by_idle_cost(self):
        """Queueing can only add delay on top of the idle access cost."""
        from repro.sim.engine import run_simulation

        trace = make_trace(gap_s=1.0)
        idle = run_simulation(
            trace, DataHierarchy(TOPOLOGY, TestbedCostModel()), warmup_s=0.0
        )
        replay = QueueingReplay(
            DataHierarchy(TOPOLOGY, TestbedCostModel()), compression=10.0
        )
        queued = replay.run(trace)
        assert queued.mean_response_ms >= idle.mean_response_ms - 1e-6

    def test_utilizations_reported_per_level(self):
        replay = QueueingReplay(
            DataHierarchy(TOPOLOGY, TestbedCostModel()), compression=5.0
        )
        result = replay.run(make_trace())
        assert set(result.utilization_by_level) == {"l1_max", "l2_max", "l3"}
        for value in result.utilization_by_level.values():
            assert 0.0 <= value <= 1.0

    def test_hint_paths_touch_at_most_two_cache_servers(self):
        replay = QueueingReplay(
            HintHierarchy(TOPOLOGY, TestbedCostModel()), compression=1.0
        )
        result = replay.run(make_trace())
        # The L2/L3 servers never serve hint-architecture requests.
        assert all(s.served == 0 for s in replay.l2_servers)
        assert replay.l3_server.served == 0
        assert result.measured_requests > 0

    def test_rejects_decompression(self):
        with pytest.raises(ConfigurationError):
            QueueingReplay(
                DataHierarchy(TOPOLOGY, TestbedCostModel()), compression=0.5
            )


class TestCalibration:
    def test_calibrated_load_is_close_to_target(self):
        trace = make_trace(n_requests=200, gap_s=2.0)
        target = 0.5
        compression = compression_for_target_load(
            trace, DataHierarchy(TOPOLOGY, TestbedCostModel()), target
        )
        replay = QueueingReplay(
            DataHierarchy(TOPOLOGY, TestbedCostModel()), compression=compression
        )
        result = replay.run(trace)
        busiest = max(result.utilization_by_level.values())
        assert busiest == pytest.approx(target, rel=0.25)

    def test_rejects_bad_target(self):
        with pytest.raises(ConfigurationError):
            compression_for_target_load(
                make_trace(), DataHierarchy(TOPOLOGY, TestbedCostModel()), 1.5
            )
