"""SimulationStepper: slicing a run never changes its result.

``run_simulation`` itself drives the stepper (construct, full-drain
``advance()``, ``finish()``), so the only behaviour to pin is that
*partial* advances compose: any slicing schedule must telescope to the
one-shot metrics, and the epilogue must refuse to run early.
"""

from __future__ import annotations

import pytest

from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.netmodel.testbed import TestbedCostModel
from repro.sim.engine import SimulationStepper, run_simulation


def fresh(cls, tiny_config):
    return cls(tiny_config.topology, TestbedCostModel())


@pytest.mark.parametrize("cls", [DataHierarchy, HintHierarchy])
def test_sliced_advance_matches_one_shot(cls, tiny_config, dec_trace):
    one_shot = run_simulation(dec_trace, fresh(cls, tiny_config))
    stepper = SimulationStepper(dec_trace, fresh(cls, tiny_config))
    horizon, day = 0.0, 86_400.0
    while not stepper.exhausted:
        horizon += day
        stepper.advance(until=horizon)
    assert stepper.finish() == one_shot


def test_advance_respects_the_horizon(tiny_config, dec_trace):
    stepper = SimulationStepper(dec_trace, fresh(DataHierarchy, tiny_config))
    cutoff = dec_trace.duration / 2
    stepper.advance(until=cutoff)
    assert not stepper.exhausted
    assert stepper.next_time > cutoff  # everything at or before is consumed
    stepper.advance()
    assert stepper.exhausted
    assert stepper.next_time is None


def test_finish_refuses_before_drain(tiny_config, dec_trace):
    stepper = SimulationStepper(dec_trace, fresh(DataHierarchy, tiny_config))
    stepper.advance(until=dec_trace.requests[0].time)
    with pytest.raises(ValueError, match="pending"):
        stepper.finish()


def test_finish_is_idempotent(tiny_config, dec_trace):
    stepper = SimulationStepper(dec_trace, fresh(DataHierarchy, tiny_config))
    stepper.advance()
    assert stepper.finish() is stepper.finish()
