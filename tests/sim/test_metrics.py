"""Tests for simulation metrics aggregation."""

from __future__ import annotations

import pytest

from repro.hierarchy.base import AccessResult
from repro.netmodel.model import AccessPoint
from repro.sim.metrics import SimMetrics


def hit(point, time_ms=100.0, **kw):
    return AccessResult(point=point, time_ms=time_ms, hit=True, **kw)


def miss(time_ms=500.0, **kw):
    return AccessResult(point=AccessPoint.SERVER, time_ms=time_ms, hit=False, **kw)


@pytest.fixture()
def metrics():
    m = SimMetrics(architecture="test", cost_model="testbed")
    m.record(hit(AccessPoint.L1, 100.0), size=1000)
    m.record(hit(AccessPoint.L2, 300.0, remote_hit=True), size=3000)
    m.record(miss(500.0), size=2000)
    return m


class TestAggregation:
    def test_mean_response(self, metrics):
        assert metrics.mean_response_ms == pytest.approx(300.0)

    def test_hit_ratio(self, metrics):
        assert metrics.hit_ratio == pytest.approx(2 / 3)

    def test_byte_hit_ratio(self, metrics):
        assert metrics.byte_hit_ratio == pytest.approx(4000 / 6000)

    def test_point_ratio(self, metrics):
        assert metrics.point_ratio(AccessPoint.L1) == pytest.approx(1 / 3)
        assert metrics.point_ratio(AccessPoint.SERVER) == pytest.approx(1 / 3)

    def test_remote_hits_counted(self, metrics):
        assert metrics.remote_hits == 1

    def test_cumulative_ratios(self, metrics):
        assert metrics.cumulative_hit_ratio_through(AccessPoint.L1) == pytest.approx(1 / 3)
        assert metrics.cumulative_hit_ratio_through(AccessPoint.L2) == pytest.approx(2 / 3)
        assert metrics.cumulative_hit_ratio_through(AccessPoint.L3) == pytest.approx(2 / 3)

    def test_cumulative_byte_ratios(self, metrics):
        assert metrics.cumulative_byte_hit_ratio_through(
            AccessPoint.L1
        ) == pytest.approx(1 / 6)

    def test_flag_counters(self):
        m = SimMetrics()
        m.record(miss(false_positive=True), size=10)
        m.record(miss(false_negative=True), size=10)
        m.record(hit(AccessPoint.L1, push_hit=True), size=10)
        assert m.false_positives == 1
        assert m.false_negatives == 1
        assert m.push_hits == 1

    def test_empty_metrics_are_zero(self):
        m = SimMetrics()
        assert m.mean_response_ms == 0.0
        assert m.hit_ratio == 0.0
        assert m.byte_hit_ratio == 0.0

    def test_summary_keys(self, metrics):
        summary = metrics.summary()
        assert summary["mean_response_ms"] == pytest.approx(300.0)
        assert set(summary) >= {"hit_ratio", "l1_ratio", "miss_ratio"}


def journeyed_hit(point, steps):
    """Build a ledger-backed hit via the Journey API."""
    from repro.obs.journey import Journey

    journey = Journey()
    for appender, args, kwargs in steps:
        getattr(journey, appender)(*args, **kwargs)
    return journey.result(point, hit=point is not AccessPoint.SERVER)


class TestStepAggregation:
    def test_journeys_fold_into_per_kind_aggregates(self):
        m = SimMetrics()
        m.record(
            journeyed_hit(
                AccessPoint.L1, [("local_lookup", (8.0,), {"target": "l1:0"})]
            ),
            size=10,
        )
        m.record(
            journeyed_hit(
                AccessPoint.SERVER,
                [
                    ("peer_probe", (7.0,), {"wasted": True}),
                    ("origin_fetch", (300.0,), {}),
                ],
            ),
            size=10,
        )
        assert m.journeyed_requests == 2
        assert set(m.steps) == {"local_lookup", "peer_probe", "origin_fetch"}
        probe = m.steps["peer_probe"]
        assert probe.count == 1 and probe.wasted == 1
        assert probe.mean_ms == pytest.approx(7.0)
        assert m.steps["origin_fetch"].total_ms == pytest.approx(300.0)
        m.validate()  # step totals re-sum to total_ms

    def test_ledger_free_results_still_count(self):
        m = SimMetrics()
        m.record(miss(500.0), size=10)  # plain AccessResult, journey=None
        assert m.journeyed_requests == 0
        assert m.steps == {}
        m.validate()  # decomposition check skipped, nothing raises

    def test_validate_rejects_drifted_decomposition(self):
        m = SimMetrics()
        m.record(
            journeyed_hit(AccessPoint.L1, [("local_lookup", (8.0,), {})]), size=10
        )
        m.steps["local_lookup"].total_ms += 1.0  # corrupt the ledger sums
        with pytest.raises(ValueError, match="decompos"):
            m.validate()

    def test_validate_rejects_impossible_journey_count(self):
        m = SimMetrics()
        m.record(miss(), size=10)
        m.journeyed_requests = 2
        with pytest.raises(ValueError, match="journeyed_requests"):
            m.validate()

    def test_mixed_coverage_skips_decomposition_check(self):
        m = SimMetrics()
        m.record(
            journeyed_hit(AccessPoint.L1, [("local_lookup", (8.0,), {})]), size=10
        )
        m.record(miss(500.0), size=10)  # no ledger -> partial coverage
        m.steps["local_lookup"].total_ms += 1.0  # would fail if checked
        m.validate()
