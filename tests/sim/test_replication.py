"""Tests for seed-replication summaries."""

from __future__ import annotations

import pytest

from repro.sim.replication import ReplicationSummary, replicate
from tests.conftest import make_tiny_config


class TestReplicationSummary:
    def test_statistics(self):
        summary = ReplicationSummary("s", (1.0, 2.0, 3.0))
        assert summary.n == 3
        assert summary.mean == pytest.approx(2.0)
        assert summary.std == pytest.approx(1.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.relative_spread == pytest.approx(1.0)

    def test_single_value_has_zero_std(self):
        summary = ReplicationSummary("s", (5.0,))
        assert summary.std == 0.0
        assert summary.relative_spread == 0.0

    def test_as_row(self):
        row = ReplicationSummary("speed", (2.0, 2.0)).as_row()
        assert row["statistic"] == "speed"
        assert row["n"] == 2


class TestReplicate:
    def test_runs_statistic_per_seed(self):
        config = make_tiny_config()
        summary = replicate(
            config, "dec", lambda trace: float(len(trace)),
            statistic_name="requests", n_seeds=3,
        )
        assert summary.n == 3
        # Same profile, same request count every seed.
        assert summary.relative_spread == 0.0

    def test_seeds_vary_content(self):
        config = make_tiny_config()
        summary = replicate(
            config, "dec", lambda trace: float(trace.requests[0].object_id),
            statistic_name="first object", n_seeds=4,
        )
        assert len(set(summary.values)) > 1

    def test_reproducible(self):
        config = make_tiny_config()

        def stat(trace):
            return float(trace.distinct_objects())

        a = replicate(config, "dec", stat, statistic_name="d", n_seeds=2)
        b = replicate(config, "dec", stat, statistic_name="d", n_seeds=2)
        assert a.values == b.values

    def test_rejects_zero_seeds(self):
        with pytest.raises(ValueError):
            replicate(
                make_tiny_config(), "dec", lambda t: 0.0,
                statistic_name="x", n_seeds=0,
            )


class TestSeedSensitivityExperiment:
    def test_speedup_stable_across_seeds(self):
        from repro.experiments import seed_sensitivity

        result = seed_sensitivity.run(make_tiny_config(), n_seeds=3)
        summary_row = result.rows[0]
        assert summary_row["n"] == 3
        assert summary_row["mean"] > 1.3  # hints win under every seed
        assert summary_row["relative_spread"] < 0.25
