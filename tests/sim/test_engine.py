"""Tests for the trace-driven simulation driver."""

from __future__ import annotations

import pytest

from repro.hierarchy.base import AccessResult, Architecture
from repro.netmodel.model import AccessPoint
from repro.netmodel.testbed import TestbedCostModel
from repro.sim.engine import run_comparison, run_simulation
from repro.traces.records import Request, Trace


class CountingArchitecture(Architecture):
    """Deterministic stub: constant 100 ms hit, records what it processed."""

    def __init__(self, name="stub"):
        super().__init__(TestbedCostModel())
        self.name = name
        self.seen: list[Request] = []

    def process(self, request: Request) -> AccessResult:
        self.seen.append(request)
        return AccessResult(point=AccessPoint.L1, time_ms=100.0, hit=True)


def make_trace(requests):
    return Trace(
        profile_name="t", requests=requests, n_objects=10, n_clients=2,
        duration=100.0, warmup=10.0,
    )


def make_request(time, **kw):
    defaults = dict(client_id=0, object_id=1, size=100, version=0)
    defaults.update(kw)
    return Request(time=time, **defaults)


class TestWarmup:
    def test_warmup_processed_but_not_measured(self):
        trace = make_trace([make_request(5.0), make_request(50.0)])
        arch = CountingArchitecture()
        metrics = run_simulation(trace, arch)
        assert len(arch.seen) == 2  # both processed (caches warm)
        assert metrics.measured_requests == 1
        assert metrics.warmup_requests == 1

    def test_warmup_override(self):
        trace = make_trace([make_request(5.0), make_request(50.0)])
        metrics = run_simulation(trace, CountingArchitecture(), warmup_s=0.0)
        assert metrics.measured_requests == 2


class TestFiltering:
    def test_uncachable_and_error_skipped(self):
        trace = make_trace(
            [
                make_request(50.0),
                make_request(51.0, cacheable=False),
                make_request(52.0, error=True),
            ]
        )
        arch = CountingArchitecture()
        metrics = run_simulation(trace, arch)
        assert len(arch.seen) == 1
        assert metrics.measured_requests == 1
        assert metrics.skipped_uncachable == 1
        assert metrics.skipped_error == 1
        # Nothing was processed-but-flagged: the included_* pair stays zero.
        assert metrics.included_uncachable == 0
        assert metrics.included_error == 0

    def test_include_uncachable_processes_them(self):
        trace = make_trace([make_request(50.0, cacheable=False)])
        arch = CountingArchitecture()
        metrics = run_simulation(trace, arch, include_uncachable=True)
        assert len(arch.seen) == 1
        assert metrics.measured_requests == 1
        assert metrics.included_uncachable == 1
        # A processed request was never skipped: the skipped_* pair stays
        # zero (these used to be conflated under one mislabeled counter).
        assert metrics.skipped_uncachable == 0
        assert metrics.skipped_error == 0

    def test_include_uncachable_counts_errors_separately(self):
        trace = make_trace(
            [
                make_request(50.0),
                make_request(51.0, cacheable=False),
                make_request(52.0, error=True),
            ]
        )
        arch = CountingArchitecture()
        metrics = run_simulation(trace, arch, include_uncachable=True)
        assert len(arch.seen) == 3
        assert metrics.measured_requests == 3
        assert metrics.included_uncachable == 1
        assert metrics.included_error == 1
        assert metrics.skipped_uncachable == 0
        assert metrics.skipped_error == 0


class TestComparison:
    def test_runs_each_architecture(self):
        trace = make_trace([make_request(50.0)])
        results = run_comparison(
            trace, [CountingArchitecture("a"), CountingArchitecture("b")]
        )
        assert list(results) == ["a", "b"]
        assert results["a"].mean_response_ms == pytest.approx(100.0)

    def test_rejects_duplicate_names(self):
        trace = make_trace([make_request(50.0)])
        with pytest.raises(ValueError, match="duplicate"):
            run_comparison(
                trace, [CountingArchitecture("a"), CountingArchitecture("a")]
            )

    def test_metrics_labelled(self):
        trace = make_trace([make_request(50.0)])
        metrics = run_simulation(trace, CountingArchitecture("labelled"))
        assert metrics.architecture == "labelled"
        assert metrics.cost_model == "testbed"

    def test_rejects_warmed_architecture(self):
        """Reusing an architecture would bias the comparison: hard error."""
        trace = make_trace([make_request(50.0)])
        warmed = CountingArchitecture("warmed")
        run_simulation(trace, warmed)
        with pytest.raises(ValueError, match="already processed"):
            run_comparison(trace, [warmed])

    def test_accepts_fresh_architectures(self):
        trace = make_trace([make_request(50.0)])
        results = run_comparison(trace, [CountingArchitecture("fresh")])
        assert results["fresh"].measured_requests == 1

    def test_forwards_include_uncachable(self):
        """The serial comparison exposes run_simulation's filtering knob."""
        trace = make_trace(
            [make_request(50.0), make_request(51.0, cacheable=False)]
        )
        skipped = run_comparison(trace, [CountingArchitecture("a")])
        included = run_comparison(
            trace, [CountingArchitecture("a")], include_uncachable=True
        )
        assert skipped["a"].measured_requests == 1
        assert skipped["a"].skipped_uncachable == 1
        assert included["a"].measured_requests == 2
        assert included["a"].included_uncachable == 1

    def test_forwards_journey_sink_restamping_architecture(self):
        from repro.obs.sink import JourneySink

        class RecordingSink(JourneySink):
            def __init__(self):
                self.labels = []
                self.architecture = ""

            def emit(self, seq, request, result):
                self.labels.append(self.architecture)

        trace = make_trace([make_request(50.0)])
        sink = RecordingSink()
        run_comparison(
            trace,
            [CountingArchitecture("a"), CountingArchitecture("b")],
            journey_sink=sink,
        )
        assert sink.labels == ["a", "b"]


class TestProcessedRequestsCounter:
    def test_counts_only_processed_requests(self):
        trace = make_trace(
            [
                make_request(5.0),  # warmup: processed, not measured
                make_request(50.0),
                make_request(51.0, cacheable=False),  # skipped entirely
            ]
        )
        arch = CountingArchitecture()
        assert arch.processed_requests == 0
        run_simulation(trace, arch)
        assert arch.processed_requests == 2

    def test_accumulates_across_runs(self):
        trace = make_trace([make_request(50.0)])
        arch = CountingArchitecture()
        run_simulation(trace, arch)
        run_simulation(trace, arch)
        assert arch.processed_requests == 2
