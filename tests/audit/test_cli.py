"""``python -m repro.audit`` CLI contract tests.

The full matrix takes ~a minute, so tier-1 exercises the differential
stage and the argument surface; the matrix itself runs under the deep
profile (``tests/audit/test_differential.py::test_deep_audit_matrix_is_clean``)
and the CI audit job.
"""

from __future__ import annotations

import subprocess
import sys

from repro.audit.cli import main, run_differential_trials


def test_cli_differential_stage_is_clean(capsys):
    assert main(["--skip-matrix", "--skip-predictor", "--trials", "2"]) == 0
    out = capsys.readouterr().out
    assert "differential: 2 trials" in out
    assert "audit clean" in out


def test_cli_skip_all_stages_is_trivially_clean(capsys):
    assert (
        main(["--skip-matrix", "--skip-differential", "--skip-predictor"]) == 0
    )
    assert "audit clean" in capsys.readouterr().out


def test_cli_predictor_stage_is_clean(capsys):
    assert main(["--skip-matrix", "--skip-differential"]) == 0
    out = capsys.readouterr().out
    assert "predictor: 4 comparisons" in out
    assert "tolerance" in out
    assert "audit clean" in out


def test_cli_verbose_lists_trials(capsys):
    assert main(["--skip-matrix", "--skip-predictor", "--trials", "1", "-v"]) == 0
    assert "trial 0" in capsys.readouterr().out


def test_differential_trials_are_seed_deterministic():
    problems_a, ops_a = run_differential_trials(2, 1999)
    problems_b, ops_b = run_differential_trials(2, 1999)
    assert problems_a == problems_b == []
    assert ops_a == ops_b > 0


def test_module_entry_point_runs():
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.audit",
            "--skip-matrix",
            "--skip-predictor",
            "--trials",
            "1",
        ],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert "audit clean" in completed.stdout
