"""AuditHooks behavior: transparency when attached, teeth when violated.

Two families of tests:

* **transparency** -- an audited run produces byte-identical metrics to
  an unaudited one, across every architecture, healthy and faulted, and
  the audit is demonstrably non-vacuous (``counts`` filled in);
* **violation detection** -- each invariant check actually raises
  :class:`AuditError` when its invariant is broken, demonstrated by
  corrupting production state through the back door.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.audit import AuditError, AuditHooks
from repro.audit.differential import random_fault_plan, random_micro_trace
from repro.cache.lru import LRUCache
from repro.cache.negative import NegativeResultCache
from repro.cache.setassoc import SetAssociativeCache
from repro.hierarchy.base import AccessResult
from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.directory_arch import CentralizedDirectoryArchitecture
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.hierarchy.icp import IcpHierarchy
from repro.hierarchy.topology import HierarchyTopology
from repro.netmodel.model import AccessPoint
from repro.netmodel.testbed import TestbedCostModel
from repro.obs.journey import Journey
from repro.obs.telemetry import RunTelemetry
from repro.sim.engine import run_comparison, run_simulation
from repro.traces.records import Request, Trace

TOPOLOGY = HierarchyTopology(clients_per_l1=2, l1_per_l2=4, n_l2=2)

ARCHITECTURES = {
    "hierarchy": DataHierarchy,
    "hints": HintHierarchy,
    "directory": CentralizedDirectoryArchitecture,
    "icp": IcpHierarchy,
}


@pytest.fixture(scope="module")
def micro_trace() -> Trace:
    rng = np.random.default_rng(42)
    return random_micro_trace(rng, TOPOLOGY, n_requests=120, warmup=300.0)


def _fingerprint(metrics):
    return (metrics.summary(), metrics.total_ms, dict(metrics.requests_by_point))


# ----------------------------------------------------------------------
# transparency: audited == unaudited, and the audit is not vacuous
# ----------------------------------------------------------------------
@pytest.mark.parametrize("arch_name", sorted(ARCHITECTURES))
@pytest.mark.parametrize("faulted", [False, True], ids=["healthy", "faulted"])
def test_audited_run_is_metric_identical(micro_trace, arch_name, faulted):
    arch_cls = ARCHITECTURES[arch_name]
    plan = (
        random_fault_plan(np.random.default_rng(7), TOPOLOGY, micro_trace.duration)
        if faulted
        else None
    )
    baseline = run_simulation(
        micro_trace, arch_cls(TOPOLOGY, TestbedCostModel()), fault_plan=plan
    )
    hooks = AuditHooks()
    audited = run_simulation(
        micro_trace,
        arch_cls(TOPOLOGY, TestbedCostModel()),
        fault_plan=plan,
        telemetry=RunTelemetry(bin_s=600.0),
        audit=hooks,
    )
    assert _fingerprint(audited) == _fingerprint(baseline)
    counts = hooks.counts
    assert counts["cache_accounting"] > 0
    assert counts["journey_ledger"] == (
        audited.measured_requests + audited.warmup_requests
    )
    assert counts["request_partition"] == 1
    assert counts["telemetry_telescoping"] == 1
    if arch_name in ("hints", "directory"):
        assert counts["hint_truth"] > 0


def test_caches_detached_by_default(micro_trace):
    arch = DataHierarchy(TOPOLOGY, TestbedCostModel())
    assert arch.audit is None
    assert all(cache.audit is None for cache in arch.l1_caches)
    run_simulation(micro_trace, arch)
    assert arch.audit is None  # an unaudited run never attaches anything


def test_one_hooks_instance_audits_a_comparison(micro_trace):
    hooks = AuditHooks()
    results = run_comparison(
        micro_trace,
        [cls(TOPOLOGY, TestbedCostModel()) for cls in ARCHITECTURES.values()],
        audit=hooks,
    )
    assert len(results) == len(ARCHITECTURES)
    assert hooks.counts["request_partition"] == len(ARCHITECTURES)


def test_check_every_strides_full_scans(micro_trace):
    every = AuditHooks(check_every=1)
    run_simulation(
        micro_trace, DataHierarchy(TOPOLOGY, TestbedCostModel()), audit=every
    )
    strided = AuditHooks(check_every=50)
    run_simulation(
        micro_trace, DataHierarchy(TOPOLOGY, TestbedCostModel()), audit=strided
    )
    assert strided.counts["cache_accounting"] < every.counts["cache_accounting"]
    # Ledger checks are per-result regardless of the stride.
    assert strided.counts["journey_ledger"] == every.counts["journey_ledger"]


def test_check_every_must_be_positive():
    with pytest.raises(ValueError):
        AuditHooks(check_every=0)


# ----------------------------------------------------------------------
# violation detection: every check has teeth
# ----------------------------------------------------------------------
def _warmed_arch(trace, arch_cls=DataHierarchy, **kwargs):
    arch = arch_cls(TOPOLOGY, TestbedCostModel(), **kwargs)
    run_simulation(trace, arch)
    return arch


def test_scan_catches_corrupted_byte_accounting(micro_trace):
    arch = _warmed_arch(micro_trace, l1_bytes=64 * 1024)
    hooks = AuditHooks()
    hooks.begin(arch, micro_trace)
    hooks.scan(arch)  # clean state passes
    arch.l1_caches[0]._used_bytes += 7
    with pytest.raises(AuditError, match=r"\[cache_accounting\]"):
        hooks.scan(arch)


def test_bound_check_catches_capacity_overrun():
    hooks = AuditHooks()
    cache = LRUCache(100)
    cache.insert(1, 40, 0)
    hooks.check_cache_bounds(cache)  # clean state passes
    cache._used_bytes = 150
    with pytest.raises(AuditError, match=r"\[cache_bounds\]"):
        hooks.check_cache_bounds(cache)
    cache._used_bytes = -1
    with pytest.raises(AuditError, match="negative"):
        hooks.check_cache_bounds(cache)


def test_bound_check_catches_setassoc_overrun():
    hooks = AuditHooks()
    cache = SetAssociativeCache(n_sets=2, associativity=2)
    cache.put(1, "a")
    hooks.check_setassoc_bounds(cache)
    cache._size = cache.capacity + 1
    with pytest.raises(AuditError, match=r"\[setassoc_bounds\]"):
        hooks.check_setassoc_bounds(cache)


def test_bound_check_catches_negative_cache_overrun():
    hooks = AuditHooks()
    cache = NegativeResultCache(ttl_s=60.0, max_entries=2)
    cache.record(1, now=0.0)
    hooks.check_negative_bounds(cache)
    cache._entries[2] = 0.0
    cache._entries[3] = 0.0
    with pytest.raises(AuditError, match=r"\[negative_bounds\]"):
        hooks.check_negative_bounds(cache)


def test_scan_catches_fabricated_hint_truth(micro_trace):
    arch = _warmed_arch(micro_trace, arch_cls=HintHierarchy)
    hooks = AuditHooks()
    hooks.begin(arch, micro_trace)
    hooks.scan(arch)  # clean state passes
    # Ground truth advertising an object no cache holds, with no fault
    # or oversize rejection to explain it, is a lie.
    arch.directory.inform(0.0, 999_999, 0, 0)
    with pytest.raises(AuditError, match=r"\[hint_truth\]"):
        hooks.scan(arch)


def test_scan_catches_version_mismatch_in_hint_truth(micro_trace):
    arch = _warmed_arch(micro_trace, arch_cls=HintHierarchy)
    hooks = AuditHooks()
    hooks.begin(arch, micro_trace)
    cache = arch.l1_caches[0]
    cache.insert(777_777, 10, 0)
    arch.directory.inform(0.0, 777_777, 0, 5)  # truth claims v5, cache has v0
    with pytest.raises(AuditError, match="v5"):
        hooks.scan(arch)


def test_journey_check_catches_mismatched_ledger():
    hooks = AuditHooks()
    journey = Journey()
    journey.local_lookup(2.0)
    result = journey.result(AccessPoint.L1, hit=True)
    hooks.check_journey(result)  # a consistent ledger passes

    bad = AccessResult(point=AccessPoint.L1, time_ms=99.0, hit=True, journey=journey)
    with pytest.raises(AuditError, match=r"\[journey_ledger\]"):
        hooks.check_journey(bad)

    # Ledger-free results (hand-built test stubs) are legal, not errors.
    hooks.check_journey(AccessResult(point=AccessPoint.L1, time_ms=1.0, hit=True))


def test_finish_catches_partition_mismatch(micro_trace):
    metrics = run_simulation(micro_trace, DataHierarchy(TOPOLOGY, TestbedCostModel()))
    hooks = AuditHooks()
    hooks.begin(DataHierarchy(TOPOLOGY, TestbedCostModel()), micro_trace)
    # The hooks saw zero results, but the metrics claim a full run.
    with pytest.raises(AuditError, match=r"\[request_partition\]"):
        hooks.finish(metrics)


def test_finish_catches_telemetry_disagreement(micro_trace):
    hooks = AuditHooks()
    telemetry = RunTelemetry(bin_s=600.0)
    metrics = run_simulation(
        micro_trace,
        DataHierarchy(TOPOLOGY, TestbedCostModel()),
        telemetry=telemetry,
        audit=hooks,
    )
    hooks.check_telemetry(metrics, telemetry)  # the honest pairing passes
    metrics.measured_requests += 1
    with pytest.raises(AuditError, match=r"\[telemetry_telescoping\]"):
        hooks.check_telemetry(metrics, telemetry)
