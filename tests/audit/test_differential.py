"""Hypothesis-driven differential tests: production vs. oracle twins.

Two profiles share the same drivers as ``python -m repro.audit``:

* **quick** (always on) -- a small number of examples per property, with
  ``deadline=None`` so tier-1 stays fast and deterministic-ish in CI;
* **deep** (``REPRO_AUDIT_DEEP=1``, marked ``audit_deep``) -- many more
  examples plus a seeded brute-force sweep and the full audit matrix.

Hypothesis shrinks any divergence to a minimal operation stream, which
is the debugging artifact the brute-force oracles were built to produce.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.audit.differential import (
    random_directory_ops,
    random_fault_plan,
    random_lru_ops,
    random_micro_trace,
    run_directory_differential,
    run_engine_differential,
    run_lru_differential,
)
from repro.hierarchy.topology import HierarchyTopology

DEEP = os.environ.get("REPRO_AUDIT_DEEP") == "1"
QUICK = settings(
    max_examples=200 if DEEP else 15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
TOPOLOGY = HierarchyTopology(clients_per_l1=2, l1_per_l2=4, n_l2=2)


# ----------------------------------------------------------------------
# LRU cache vs. list-scan oracle
# ----------------------------------------------------------------------
_key = st.integers(0, 6)
_version = st.integers(0, 4)
_lru_op = st.one_of(
    st.tuples(st.just("lookup"), _key, _version),
    st.tuples(st.just("insert"), _key, st.integers(0, 90), _version),
    st.tuples(st.just("invalidate"), _key),
    st.tuples(st.just("remove"), _key),
    st.tuples(st.just("demote"), _key),
    st.tuples(st.just("clear")),
)


@QUICK
@given(
    ops=st.lists(_lru_op, max_size=80),
    capacity=st.one_of(st.none(), st.integers(0, 200)),
)
def test_lru_differential(ops, capacity):
    run_lru_differential(list(ops), capacity)


# ----------------------------------------------------------------------
# hint directory vs. event-log replay oracle
# ----------------------------------------------------------------------
_dir_elem = st.tuples(
    st.floats(0.0, 4.0, allow_nan=False, allow_infinity=False),  # time delta
    st.sampled_from(["inform", "retract", "find", "find+drop"]),
    st.integers(0, 3),  # object
    st.integers(0, 4),  # node
    _version,
    st.booleans(),  # visible
)


def _directory_ops(elems):
    """Fold per-step deltas into the time-ordered op tuples the driver eats."""
    now, ops = 0.0, []
    for delta, kind, obj, node, version, visible in elems:
        now += delta
        if kind == "inform":
            ops.append(("inform", now, obj, node, version, visible))
        elif kind == "retract":
            ops.append(("retract", now, obj, node, visible))
        else:
            ops.append((kind, now, obj, node))
    return ops


@QUICK
@given(elems=st.lists(_dir_elem, max_size=60), delay=st.sampled_from([0.0, 5.0]))
def test_directory_differential(elems, delay):
    run_directory_differential(_directory_ops(elems), delay=delay)


# ----------------------------------------------------------------------
# engine + DataHierarchy vs. straight-line oracle evaluator
# ----------------------------------------------------------------------
@settings(
    max_examples=40 if DEEP else 6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 2**20),
    bounded=st.booleans(),
    faulted=st.booleans(),
    include_uncachable=st.booleans(),
    warmup=st.sampled_from([0.0, 400.0]),
)
def test_engine_differential(seed, bounded, faulted, include_uncachable, warmup):
    rng = np.random.default_rng(seed)
    trace = random_micro_trace(rng, TOPOLOGY, n_requests=60, warmup=warmup)
    plan = random_fault_plan(rng, TOPOLOGY, trace.duration) if faulted else None
    run_engine_differential(
        trace,
        TOPOLOGY,
        l1_bytes=48 * 1024 if bounded else None,
        fault_plan=plan,
        include_uncachable=include_uncachable,
    )


# ----------------------------------------------------------------------
# the CLI's seeded generators drive the same properties (one smoke each)
# ----------------------------------------------------------------------
def test_seeded_generators_round_trip():
    rng = np.random.default_rng(2026)
    assert run_lru_differential(random_lru_ops(rng), 256) == 300
    assert run_directory_differential(random_directory_ops(rng), delay=12.0) == 250


# ----------------------------------------------------------------------
# deep profile: exhaustive sweep + the full audit matrix
# ----------------------------------------------------------------------
@pytest.mark.audit_deep
@pytest.mark.skipif(not DEEP, reason="set REPRO_AUDIT_DEEP=1 for the deep profile")
def test_deep_seeded_engine_sweep():
    for trial in range(24):
        rng = np.random.default_rng([2027, trial])
        trace = random_micro_trace(rng, TOPOLOGY, warmup=300.0 if trial % 3 else 0.0)
        plan = (
            random_fault_plan(rng, TOPOLOGY, trace.duration) if trial % 2 else None
        )
        run_engine_differential(
            trace,
            TOPOLOGY,
            l1_bytes=(None, 64 * 1024, 16 * 1024)[trial % 3],
            fault_plan=plan,
            include_uncachable=bool(trial % 4 == 1),
        )


@pytest.mark.audit_deep
@pytest.mark.skipif(not DEEP, reason="set REPRO_AUDIT_DEEP=1 for the deep profile")
def test_deep_audit_matrix_is_clean():
    from repro.audit.cli import run_matrix

    problems, total_checks = run_matrix()
    assert problems == []
    assert total_checks > 100_000


@pytest.mark.audit_deep
@pytest.mark.skipif(not DEEP, reason="set REPRO_AUDIT_DEEP=1 for the deep profile")
def test_deep_policy_matrix_is_clean():
    from repro.audit.cli import run_policy_matrix

    problems, total_checks = run_policy_matrix()
    assert problems == []
    assert total_checks > 100_000
