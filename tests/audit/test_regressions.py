"""Regression tests for the bugs the audit subsystem was built to catch.

Each test here fails on the pre-audit code and passes after the fix:

* **engine clock skew** -- the simulated clock (telemetry timeline and
  fault injector) used to advance only for *processed* requests, so a
  run of skipped error/uncachable requests stalled time and scheduled
  faults fired late;
* **double counting** -- a request that was both error and uncachable
  used to increment ``included_error`` *and* ``included_uncachable``
  under ``include_uncachable=True``, breaking the partition;
* **stale survivor** -- an oversize insert used to leave an older
  version of the same key serving hits, violating strong consistency.

The fourth bug of this series (push-half rounding half *down* in odd
sibling groups) is pinned by
``tests/push/test_hierarchical.py::test_push_half_rounds_up_in_odd_groups``.
"""

from __future__ import annotations

import pytest

from repro.cache.lru import LookupResult, LRUCache
from repro.faults.events import FaultPlan, NodeCrash, NodeRecover
from repro.faults.injector import FaultInjector
from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.topology import HierarchyTopology
from repro.netmodel.testbed import TestbedCostModel
from repro.obs.telemetry import RunTelemetry
from repro.sim.engine import run_simulation
from repro.traces.records import Request, Trace

TOPOLOGY = HierarchyTopology(clients_per_l1=2, l1_per_l2=4, n_l2=2)


def _request(time, *, object_id=0, error=False, cacheable=True):
    return Request(
        time=time,
        client_id=0,
        object_id=object_id,
        size=100,
        version=0,
        cacheable=cacheable,
        error=error,
    )


# ----------------------------------------------------------------------
# bug 1: engine clock skew across skipped requests
# ----------------------------------------------------------------------
def test_clock_advances_through_skipped_requests(monkeypatch):
    """Telemetry and injector see *every* request time, skipped or not.

    The fix is output-invariant for most traces (the injector catches up
    eventually), so this test pins the call pattern itself: a run of
    skipped error requests spans a scheduled crash, and both observers
    must still be advanced at each skipped request's timestamp.
    """
    requests = [_request(0.0)]
    requests += [_request(50.0 * i, error=True) for i in range(1, 10)]  # 50..450
    requests.append(_request(500.0))
    trace = Trace(
        profile_name="clock-skew",
        requests=requests,
        n_objects=1,
        n_clients=TOPOLOGY.n_clients_covered,
        duration=600.0,
    )
    plan = FaultPlan(
        events=(
            NodeCrash(time=200.0, kind="l1", node=0),
            NodeRecover(time=460.0, kind="l1", node=0),
        ),
        seed=1,
    )

    injector_times: list[float] = []
    injector_advance = FaultInjector.advance

    def spy_injector(self, now):
        injector_times.append(now)
        injector_advance(self, now)

    # The engine imports FaultInjector inside run_simulation, so patching
    # the class method intercepts the instance it constructs.
    monkeypatch.setattr(FaultInjector, "advance", spy_injector)

    telemetry_times: list[float] = []
    telemetry_advance = RunTelemetry.advance

    def spy_telemetry(self, now):
        telemetry_times.append(now)
        telemetry_advance(self, now)

    monkeypatch.setattr(RunTelemetry, "advance", spy_telemetry)

    expected = [request.time for request in trace.requests]

    # Injector-only run: the engine is the sole advance() caller, so the
    # spy must record exactly one call per trace request.
    run_simulation(trace, DataHierarchy(TOPOLOGY, TestbedCostModel()), fault_plan=plan)
    assert injector_times == expected

    # Telemetry run: RunTelemetry.advance is likewise engine-only.  (The
    # timeline additionally drives the injector at bin edges, which is
    # why the injector assertion above runs telemetry-free.)
    metrics = run_simulation(
        trace,
        DataHierarchy(TOPOLOGY, TestbedCostModel()),
        fault_plan=plan,
        telemetry=RunTelemetry(bin_s=100.0),
    )
    assert telemetry_times == expected
    # The crash scheduled inside the skipped run did fire (and recover).
    assert metrics.skipped_error == 9
    assert metrics.measured_requests == 2


def test_clock_skew_fires_fault_during_skipped_run(monkeypatch):
    """A crash+recover window wholly inside skipped requests still fires.

    Pre-fix, the injector jumped from t=0 straight to the next processed
    request, so it applied crash and recover back-to-back *at that later
    time*; the spy above pins the timing, this pins that the events were
    applied from a skipped request's advance call, not a processed one.
    """
    applied_at: list[float] = []
    injector_advance = FaultInjector.advance

    def spy(self, now):
        before = self.stats.crashes
        injector_advance(self, now)
        if self.stats.crashes != before:
            applied_at.append(now)

    monkeypatch.setattr(FaultInjector, "advance", spy)

    requests = [_request(0.0)]
    requests += [_request(100.0 + 10.0 * i, error=True) for i in range(5)]  # 100..140
    requests.append(_request(400.0))
    trace = Trace(
        profile_name="clock-skew-window",
        requests=requests,
        n_objects=1,
        n_clients=TOPOLOGY.n_clients_covered,
        duration=500.0,
    )
    plan = FaultPlan(events=(NodeCrash(time=115.0, kind="l1", node=0),), seed=1)
    run_simulation(trace, DataHierarchy(TOPOLOGY, TestbedCostModel()), fault_plan=plan)
    assert applied_at == [120.0]  # the first *skipped* request past t=115


# ----------------------------------------------------------------------
# bug 2: error+uncachable double count under include_uncachable
# ----------------------------------------------------------------------
def test_error_and_uncachable_counts_once_when_included():
    trace = Trace(
        profile_name="double-count",
        requests=[
            _request(0.0),
            _request(1.0, error=True, cacheable=False),
            _request(2.0, error=False, cacheable=False),
        ],
        n_objects=1,
        n_clients=TOPOLOGY.n_clients_covered,
        duration=10.0,
    )
    metrics = run_simulation(
        trace,
        DataHierarchy(TOPOLOGY, TestbedCostModel()),
        include_uncachable=True,
    )
    # Error takes precedence: the both-flags request counts exactly once.
    assert metrics.included_error == 1
    assert metrics.included_uncachable == 1
    assert metrics.measured_requests == 3


def test_error_and_uncachable_skips_once_when_excluded():
    trace = Trace(
        profile_name="double-count-skip",
        requests=[_request(1.0, error=True, cacheable=False)],
        n_objects=1,
        n_clients=TOPOLOGY.n_clients_covered,
        duration=10.0,
    )
    metrics = run_simulation(trace, DataHierarchy(TOPOLOGY, TestbedCostModel()))
    assert metrics.skipped_error == 1
    assert metrics.skipped_uncachable == 0
    assert metrics.measured_requests == 0


# ----------------------------------------------------------------------
# bug 3: oversize insert left a stale older version serving hits
# ----------------------------------------------------------------------
def test_oversize_insert_invalidates_stale_survivor():
    evictions: list[tuple[int, str]] = []
    cache = LRUCache(100, on_evict=lambda key, entry, reason: evictions.append((key, reason)))
    cache.insert(7, 50, 1)
    assert cache.lookup(7, 1) is LookupResult.HIT

    # Version 2 is too large to cache -- but version 1 must not survive.
    assert cache.insert(7, 200, 2) == []
    assert cache.peek(7) is None
    assert cache.lookup(7, 2) is LookupResult.MISS
    assert cache.invalidations == 1
    assert evictions == [(7, "invalidate")]
    assert cache.used_bytes == 0
    assert 7 in cache.oversize_rejections
    assert cache.ever_stored_version(7) == 2


def test_oversize_insert_keeps_current_version_copy():
    """Same-version oversize sighting: the held copy is still valid."""
    cache = LRUCache(100)
    cache.insert(3, 40, 5)
    cache.insert(3, 200, 5)
    entry = cache.peek(3)
    assert entry is not None
    assert (entry.size, entry.version) == (40, 5)
    assert cache.invalidations == 0
    assert cache.lookup(3, 5) is LookupResult.HIT


@pytest.mark.parametrize("version_gap", [1, 3])
def test_oversize_stale_survivor_cannot_resurface_via_reinsert(version_gap):
    """After the invalidation, a later fitting insert starts clean."""
    cache = LRUCache(100)
    cache.insert(9, 60, 0)
    cache.insert(9, 150, version_gap)  # oversize, invalidates v0
    assert cache.peek(9) is None
    evicted = cache.insert(9, 30, version_gap + 1)
    assert evicted == []
    assert 9 not in cache.oversize_rejections
    entry = cache.peek(9)
    assert (entry.size, entry.version) == (30, version_gap + 1)
