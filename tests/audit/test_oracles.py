"""Unit tests for the brute-force reference oracles themselves.

The differential harness only catches bugs if the oracles are right, so
each oracle's semantics are pinned here by hand-built scenarios with
known answers (no production component in the loop).
"""

from __future__ import annotations

import pytest

from repro.audit.oracles import (
    OracleHintDirectory,
    OracleLRUCache,
    oracle_data_hierarchy_run,
)
from repro.cache.lru import LookupResult
from repro.faults.events import FaultPlan, NodeCrash
from repro.hierarchy.topology import HierarchyTopology
from repro.netmodel.model import AccessPoint
from repro.netmodel.testbed import TestbedCostModel
from repro.traces.records import Request, Trace

TOPOLOGY = HierarchyTopology(clients_per_l1=2, l1_per_l2=4, n_l2=2)


# ----------------------------------------------------------------------
# OracleLRUCache
# ----------------------------------------------------------------------
class TestOracleLRUCache:
    def test_lru_order_and_eviction(self):
        cache = OracleLRUCache(100)
        cache.insert(1, 40, 0)
        cache.insert(2, 40, 0)
        assert cache.lookup(1, 0) is LookupResult.HIT  # 1 becomes MRU
        evicted = cache.insert(3, 40, 0)  # over budget: 2 is LRU now
        assert evicted == [2]
        assert cache.keys() == [1, 3]
        assert cache.used_bytes == 80
        assert cache.evictions == 1

    def test_stale_lookup_invalidates(self):
        cache = OracleLRUCache()
        cache.insert(1, 10, 0)
        assert cache.lookup(1, 1) is LookupResult.STALE
        assert cache.lookup(1, 1) is LookupResult.MISS
        assert cache.invalidations == 1

    def test_oversize_insert_mirrors_fixed_semantics(self):
        cache = OracleLRUCache(100)
        cache.insert(5, 60, 1)
        assert cache.insert(5, 400, 2) == []
        assert cache.peek(5) is None  # the stale v1 copy was invalidated
        assert cache.invalidations == 1
        assert 5 in cache.oversize_rejections
        assert cache.ever_stored_version(5) == 2
        # A later fitting insert clears the rejection mark.
        cache.insert(5, 30, 3)
        assert 5 not in cache.oversize_rejections

    def test_demote_and_clear(self):
        cache = OracleLRUCache()
        cache.insert(1, 10, 0)
        cache.insert(2, 10, 0)
        cache.touch_lru_demote(2)
        assert cache.keys() == [2, 1]
        assert cache.clear() == [2, 1]
        assert len(cache) == 0
        assert cache.used_bytes == 0

    def test_used_bytes_is_recounted_not_tracked(self):
        cache = OracleLRUCache()
        cache.insert(1, 25, 0)
        cache.insert(2, 17, 0)
        cache._entries[0][1] = 99  # corrupt an entry directly...
        assert cache.used_bytes == 99 + 17  # ...and the recount sees it


# ----------------------------------------------------------------------
# OracleHintDirectory
# ----------------------------------------------------------------------
class TestOracleHintDirectory:
    def test_zero_delay_visibility(self):
        directory = OracleHintDirectory()
        directory.inform(1.0, object_id=7, node=2, version=0)
        holders, false_negative = directory.find(1.0, 7, requester=0)
        assert holders == frozenset({2})
        assert not false_negative
        # The requester's own copy is excluded from holders.
        holders, _ = directory.find(1.0, 7, requester=2)
        assert holders == frozenset()

    def test_propagation_delay_creates_false_negative(self):
        directory = OracleHintDirectory(propagation_delay_s=10.0)
        directory.inform(0.0, object_id=1, node=3, version=0)
        holders, false_negative = directory.find(5.0, 1, requester=0)
        assert holders == frozenset()
        assert false_negative  # truth knows, visibility lags
        holders, false_negative = directory.find(10.0, 1, requester=0)
        assert holders == frozenset({3})
        assert not false_negative
        assert directory.false_negatives == 1

    def test_invisible_inform_never_becomes_visible(self):
        directory = OracleHintDirectory()
        directory.inform(0.0, object_id=1, node=2, version=0, visible=False)
        holders, false_negative = directory.find(100.0, 1, requester=0)
        assert holders == frozenset()
        assert false_negative
        assert directory.truth_holders(1) == {2: 0}

    def test_retract_and_drop(self):
        directory = OracleHintDirectory()
        directory.inform(0.0, 1, 2, 0)
        directory.inform(0.0, 1, 4, 1)
        directory.retract(1.0, 1, 2)
        assert directory.truth_holders(1) == {4: 1}
        holders, _ = directory.find(2.0, 1, requester=0)
        assert holders == frozenset({4})
        directory.drop_visible(2.0, 1, 4)
        assert directory.corrections == 1
        holders, false_negative = directory.find(3.0, 1, requester=0)
        assert holders == frozenset()
        assert false_negative  # truth still has node 4; visibility dropped
        # Dropping an already-invisible holder is not a correction.
        directory.drop_visible(3.0, 1, 4)
        assert directory.corrections == 1

    def test_truth_replay_keeps_latest_version(self):
        directory = OracleHintDirectory()
        directory.inform(0.0, 1, 2, 0)
        directory.inform(5.0, 1, 2, 3)
        assert directory.truth_holders(1) == {2: 3}


# ----------------------------------------------------------------------
# oracle_data_hierarchy_run
# ----------------------------------------------------------------------
def _trace(requests, duration=100.0, warmup=0.0):
    return Trace(
        profile_name="oracle-unit",
        requests=requests,
        n_objects=8,
        n_clients=TOPOLOGY.n_clients_covered,
        duration=duration,
        warmup=warmup,
    )


def _request(time, object_id, *, client_id=0, size=100, version=0, error=False,
             cacheable=True):
    return Request(
        time=time,
        client_id=client_id,
        object_id=object_id,
        size=size,
        version=version,
        cacheable=cacheable,
        error=error,
    )


class TestOracleDataHierarchyRun:
    def test_miss_then_hits_up_the_hierarchy(self):
        model = TestbedCostModel()
        # Same object: first a compulsory miss, then an L1 hit, then an
        # L2 hit from a sibling L1 under the same parent.
        sibling = TOPOLOGY.clients_per_l1  # first client of the second L1
        trace = _trace(
            [
                _request(1.0, 5, client_id=0),
                _request(2.0, 5, client_id=0),
                _request(3.0, 5, client_id=sibling),
            ]
        )
        out = oracle_data_hierarchy_run(trace, TOPOLOGY, model)
        points = [record.point for record in out.records]
        assert points == [AccessPoint.SERVER, AccessPoint.L1, AccessPoint.L2]
        assert [record.hit for record in out.records] == [False, True, True]
        assert [record.remote_hit for record in out.records] == [False, False, True]
        assert out.measured_requests == 3
        assert out.total_ms == sum(record.time_ms for record in out.records)
        assert out.records[1].time_ms == model.hierarchical_ms(AccessPoint.L1, 100)

    def test_warmup_counts_but_is_not_measured(self):
        trace = _trace(
            [_request(1.0, 5), _request(60.0, 5)], duration=100.0, warmup=50.0
        )
        out = oracle_data_hierarchy_run(trace, TOPOLOGY, TestbedCostModel())
        assert out.warmup_requests == 1
        assert out.measured_requests == 1
        assert len(out.measured_records()) == 1
        assert out.measured_records()[0].point is AccessPoint.L1

    def test_error_precedence_over_uncachable(self):
        both = _request(1.0, 5, error=True, cacheable=False)
        out = oracle_data_hierarchy_run(
            _trace([both]), TOPOLOGY, TestbedCostModel()
        )
        assert out.skipped_error == 1
        assert out.skipped_uncachable == 0
        out = oracle_data_hierarchy_run(
            _trace([both]), TOPOLOGY, TestbedCostModel(), include_uncachable=True
        )
        assert out.included_error == 1
        assert out.included_uncachable == 0
        assert out.measured_requests == 1

    def test_l1_crash_forces_timeout_fallback(self):
        plan = FaultPlan(events=(NodeCrash(time=5.0, kind="l1", node=0),), seed=1)
        trace = _trace([_request(1.0, 5), _request(10.0, 5)])
        out = oracle_data_hierarchy_run(
            trace, TOPOLOGY, TestbedCostModel(), fault_plan=plan
        )
        before, after = out.records
        assert not before.timeout_fallback
        assert after.timeout_fallback
        assert after.point is AccessPoint.SERVER
        assert after.fault_added_ms >= plan.timeout_ms
        assert out.timeout_fallbacks == 1

    def test_empty_fault_plan_is_healthy_mode(self):
        trace = _trace([_request(1.0, 5), _request(2.0, 5)])
        healthy = oracle_data_hierarchy_run(trace, TOPOLOGY, TestbedCostModel())
        empty = oracle_data_hierarchy_run(
            trace, TOPOLOGY, TestbedCostModel(),
            fault_plan=FaultPlan(events=(), seed=1),
        )
        assert healthy.total_ms == empty.total_ms
        assert [r.point for r in healthy.records] == [r.point for r in empty.records]

    def test_capacity_pressure_evicts_in_oracle_caches(self):
        # Two objects that cannot coexist in a 150-byte L1.
        trace = _trace(
            [
                _request(1.0, 1, size=100),
                _request(2.0, 2, size=100),
                _request(3.0, 1, size=100),  # evicted at step 2 -> L2 hit
            ]
        )
        out = oracle_data_hierarchy_run(
            trace, TOPOLOGY, TestbedCostModel(), l1_bytes=150
        )
        assert [record.point for record in out.records] == [
            AccessPoint.SERVER,
            AccessPoint.SERVER,
            AccessPoint.L2,
        ]


def test_oracle_rejects_negative_capacity():
    with pytest.raises(ValueError):
        OracleLRUCache(-1)
    with pytest.raises(ValueError):
        OracleHintDirectory(-0.5)
