"""Tests for the differential audit subsystem (``repro.audit``)."""
