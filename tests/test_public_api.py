"""The public import surface promised by the README stays importable."""

from __future__ import annotations

import repro


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        assert repro.__version__

    def test_quickstart_names_present(self):
        # The exact names the README quickstart uses.
        for name in (
            "DEC",
            "DataHierarchy",
            "HierarchyTopology",
            "HintHierarchy",
            "TestbedCostModel",
            "generate_trace",
            "run_simulation",
        ):
            assert name in repro.__all__

    def test_subpackages_import(self):
        import repro.cache
        import repro.experiments
        import repro.faults
        import repro.hierarchy
        import repro.hints
        import repro.netmodel
        import repro.plaxton
        import repro.push
        import repro.reporting
        import repro.sim
        import repro.traces  # noqa: F401

    def test_readme_quickstart_runs(self):
        """The README quickstart, verbatim logic at a micro scale."""
        from repro import (
            DEC,
            DataHierarchy,
            HierarchyTopology,
            HintHierarchy,
            TestbedCostModel,
            generate_trace,
            run_simulation,
        )

        trace = generate_trace(DEC.scaled(0.0001, min_clients=64), seed=42)
        topology = HierarchyTopology(clients_per_l1=2, l1_per_l2=4, n_l2=2)
        cost = TestbedCostModel()
        baseline = run_simulation(trace, DataHierarchy(topology, cost))
        hints = run_simulation(trace, HintHierarchy(topology, cost))
        assert baseline.mean_response_ms / hints.mean_response_ms > 1.0
