"""Trace-cache correctness: cached traces are the traces.

The two properties the ISSUE's acceptance rests on:

* a cached/deserialized trace is **bit-identical** to a regenerated one
  (same requests, same metadata);
* metrics computed from one shared read-only trace equal metrics from
  per-run regeneration, for every architecture.
"""

from __future__ import annotations

import os

import pytest

from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.directory_arch import CentralizedDirectoryArchitecture
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.netmodel.testbed import TestbedCostModel
from repro.runner.fingerprint import trace_fingerprint
from repro.runner.trace_cache import (
    TraceCache,
    cached_trace,
    get_trace_cache,
    set_trace_cache,
)
from repro.sim.engine import run_simulation
from repro.traces.profiles import DEC
from repro.traces.synthetic import SyntheticTraceGenerator
from tests.conftest import make_tiny_config

PROFILE = DEC.scaled(0.0002, min_clients=16)
SEED = 7


def regenerate():
    return SyntheticTraceGenerator(PROFILE, seed=SEED).generate()


def assert_traces_identical(left, right):
    """Field-for-field, request-for-request equality."""
    assert left.profile_name == right.profile_name
    assert left.n_objects == right.n_objects
    assert left.n_clients == right.n_clients
    assert left.duration == right.duration
    assert left.warmup == right.warmup
    assert len(left.requests) == len(right.requests)
    # NamedTuple equality is exact (floats compared bit-for-bit).
    assert left.requests == right.requests
    assert left == right


class TestMemoryLayer:
    def test_memoized_trace_identical_to_regenerated(self):
        cache = TraceCache()
        assert_traces_identical(cache.get(PROFILE, SEED), regenerate())

    def test_second_get_returns_same_object(self):
        cache = TraceCache()
        first = cache.get(PROFILE, SEED)
        assert cache.get(PROFILE, SEED) is first
        assert cache.stats.generations == 1
        assert cache.stats.memory_hits == 1

    def test_distinct_seeds_distinct_entries(self):
        cache = TraceCache()
        cache.get(PROFILE, SEED)
        cache.get(PROFILE, SEED + 1)
        assert cache.stats.generations == 2
        assert len(cache) == 2

    def test_clear_memory_forces_regeneration(self):
        cache = TraceCache()
        cache.get(PROFILE, SEED)
        cache.clear_memory()
        cache.get(PROFILE, SEED)
        assert cache.stats.generations == 2


class TestDiskLayer:
    def test_deserialized_trace_identical_to_regenerated(self, tmp_path):
        warm = TraceCache(tmp_path)
        warm.get(PROFILE, SEED)
        assert warm.stats.disk_writes == 1

        cold = TraceCache(tmp_path)  # fresh memo, same store
        loaded = cold.get(PROFILE, SEED)
        assert cold.stats.disk_hits == 1
        assert cold.stats.generations == 0
        assert_traces_identical(loaded, regenerate())

    def test_store_is_content_addressed(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.get(PROFILE, SEED)
        expected = tmp_path / f"{trace_fingerprint(PROFILE, SEED)}.npz"
        assert expected.exists()
        assert [p.name for p in tmp_path.iterdir()] == [expected.name]

    def test_corrupt_entry_regenerated_not_fatal(self, tmp_path):
        path = tmp_path / f"{trace_fingerprint(PROFILE, SEED)}.npz"
        path.write_bytes(b"not an npz file")
        cache = TraceCache(tmp_path)
        trace = cache.get(PROFILE, SEED)
        assert cache.stats.generations == 1
        assert cache.stats.disk_hits == 0
        assert_traces_identical(trace, regenerate())

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.get(PROFILE, SEED)
        assert not [p for p in os.listdir(tmp_path) if p.endswith(".tmp.npz")]


class TestStats:
    def test_since_and_merge(self):
        cache = TraceCache()
        before = cache.stats.snapshot()
        cache.get(PROFILE, SEED)
        cache.get(PROFILE, SEED)
        delta = cache.stats.since(before)
        assert delta.generations == 1
        assert delta.memory_hits == 1
        assert delta.generation_seconds > 0
        total = cache.stats.snapshot()
        total.merge(delta)
        assert total.generations == cache.stats.generations + 1

    def test_describe_mentions_counters(self):
        cache = TraceCache()
        cache.get(PROFILE, SEED)
        text = cache.stats.describe()
        assert "1 generated" in text


class TestActiveCache:
    def test_cached_trace_uses_installed_cache(self, tmp_path):
        replacement = TraceCache(tmp_path)
        previous = set_trace_cache(replacement)
        try:
            trace = cached_trace(PROFILE, SEED)
            assert get_trace_cache() is replacement
            assert replacement.stats.generations == 1
            assert_traces_identical(trace, regenerate())
        finally:
            set_trace_cache(previous)


class TestSharedTraceMetricsEquality:
    """One shared read-only trace == per-run regeneration, per architecture."""

    @pytest.mark.parametrize(
        "factory",
        [DataHierarchy, CentralizedDirectoryArchitecture, HintHierarchy],
        ids=["hierarchy", "directory", "hints"],
    )
    def test_shared_equals_regenerated(self, factory):
        config = make_tiny_config()
        profile = config.profile("dec")
        shared = TraceCache().get(profile, config.seed)

        def metrics_on(trace):
            return run_simulation(
                trace, factory(config.topology, TestbedCostModel())
            )

        first = metrics_on(shared)
        second = metrics_on(shared)  # the same shared object, reused
        regenerated = metrics_on(
            SyntheticTraceGenerator(profile, seed=config.seed).generate()
        )
        for metrics in (second, regenerated):
            assert metrics.measured_requests == first.measured_requests
            assert metrics.total_ms == first.total_ms
            assert metrics.requests_by_point == first.requests_by_point
            assert metrics.mean_response_ms == first.mean_response_ms


class TestStoreCrashRecovery:
    """Regression: a failed store must not leak ``.tmp.npz`` orphans."""

    @staticmethod
    def _temp_files(directory):
        return [
            name
            for name in os.listdir(directory)
            if name.endswith(".tmp.npz")
        ]

    def test_failed_store_leaves_no_temp_files(self, tmp_path, monkeypatch):
        import repro.runner.trace_cache as module

        def exploding_write(trace, path):
            with open(path, "wb") as stream:
                stream.write(b"partial")
            raise OSError("disk full")

        monkeypatch.setattr(module, "write_trace", exploding_write)
        cache = TraceCache(tmp_path)
        trace = cache.get(PROFILE, SEED)  # store fails, get succeeds
        assert trace.profile_name == PROFILE.name
        assert self._temp_files(tmp_path) == []
        assert cache.stats.disk_writes == 0
        assert cache.stats.generations == 1

        # A later get on a fresh cache regenerates cleanly (nothing on
        # disk) once writing works again.
        monkeypatch.undo()
        later = TraceCache(tmp_path)
        assert_traces_identical(later.get(PROFILE, SEED), trace)
        assert later.stats.generations == 1
        assert later.stats.disk_writes == 1
        assert self._temp_files(tmp_path) == []

    def test_construction_sweeps_dead_writer_orphans(self, tmp_path):
        fingerprint = trace_fingerprint(PROFILE, SEED)
        # A pid that cannot be alive: our own pid is live, so use a huge
        # one past any default pid_max.
        orphan = os.path.join(tmp_path, f".{fingerprint}.99999999.tmp.npz")
        with open(orphan, "wb") as stream:
            stream.write(b"leftover from a killed worker")
        TraceCache(tmp_path)
        assert not os.path.exists(orphan)

    def test_sweep_spares_live_writer_temp_files(self, tmp_path):
        fingerprint = trace_fingerprint(PROFILE, SEED)
        live = os.path.join(tmp_path, f".{fingerprint}.{os.getpid()}.tmp.npz")
        with open(live, "wb") as stream:
            stream.write(b"mid-write by a live process")
        TraceCache(tmp_path)
        assert os.path.exists(live)
        os.unlink(live)

    def test_sweep_ignores_regular_entries(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.get(PROFILE, SEED)
        fingerprint = trace_fingerprint(PROFILE, SEED)
        again = TraceCache(tmp_path)
        assert os.path.exists(os.path.join(tmp_path, f"{fingerprint}.npz"))
        assert again.get(PROFILE, SEED).profile_name == PROFILE.name
        assert again.stats.disk_hits == 1
