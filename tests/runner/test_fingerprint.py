"""Trace fingerprints: complete, stable, and collision-sensitive."""

from __future__ import annotations

import dataclasses

from repro.runner.fingerprint import trace_fingerprint
from repro.traces.profiles import DEC, PRODIGY


class TestFingerprint:
    def test_deterministic(self):
        assert trace_fingerprint(DEC, 42) == trace_fingerprint(DEC, 42)

    def test_seed_changes_fingerprint(self):
        assert trace_fingerprint(DEC, 42) != trace_fingerprint(DEC, 43)

    def test_profile_identity_not_object_identity(self):
        clone = dataclasses.replace(DEC)
        assert clone is not DEC
        assert trace_fingerprint(clone, 42) == trace_fingerprint(DEC, 42)

    def test_every_profile_field_is_significant(self):
        """No field allowlist to fall out of date: perturb each field."""
        base = trace_fingerprint(DEC, 42)
        for field in dataclasses.fields(DEC):
            value = getattr(DEC, field.name)
            if isinstance(value, bool):
                changed = not value
            elif isinstance(value, int):
                changed = value + 1
            elif isinstance(value, float):
                changed = value * 0.5 if value else 0.25
            else:  # name
                changed = value + "-x"
            mutated = dataclasses.replace(DEC, **{field.name: changed})
            assert trace_fingerprint(mutated, 42) != base, field.name

    def test_distinct_profiles_distinct(self):
        assert trace_fingerprint(DEC, 42) != trace_fingerprint(PRODIGY, 42)

    def test_filename_safe(self):
        fingerprint = trace_fingerprint(DEC, 42)
        assert len(fingerprint) == 32
        assert fingerprint == fingerprint.lower()
        assert fingerprint.isalnum()
