"""Timeline export through the parallel comparison runner.

Pins the jobs-invariance acceptance criterion: the per-architecture
timeline JSONL files are byte-identical whether the comparison ran
in-process (``jobs=1``) or fanned out (``jobs=4``), and their rows
reconcile with the returned ``SimMetrics``.
"""

from __future__ import annotations

from tests.conftest import make_tiny_config

from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.netmodel.testbed import TestbedCostModel
from repro.obs.export import check_timeline_rows, read_timeline_jsonl, sum_counters
from repro.runner.parallel import ArchitectureSpec, run_comparison_parallel


def specs(config):
    topology = config.topology
    return [
        ArchitectureSpec(DataHierarchy, (topology, TestbedCostModel())),
        ArchitectureSpec(HintHierarchy, (topology, TestbedCostModel())),
    ]


def test_jobs4_timeline_files_byte_identical_to_jobs1(tmp_path):
    config = make_tiny_config()
    dirs = {1: tmp_path / "t1", 4: tmp_path / "t4"}
    results = {
        jobs: run_comparison_parallel(
            config.profile("dec"),
            config.seed,
            specs(config),
            jobs=jobs,
            timeline_dir=str(dirs[jobs]),
            trace_cache_dir=str(tmp_path / "store"),
        )
        for jobs in dirs
    }
    names = [spec.build().name for spec in specs(config)]
    assert sorted(p.name for p in dirs[1].iterdir()) == sorted(
        f"{name}.jsonl" for name in names
    )
    for name in names:
        one = (dirs[1] / f"{name}.jsonl").read_bytes()
        four = (dirs[4] / f"{name}.jsonl").read_bytes()
        assert one == four, name
    for name in names:
        assert results[1][name].total_ms == results[4][name].total_ms


def test_timeline_files_reconcile_with_returned_metrics(tmp_path):
    config = make_tiny_config()
    out = tmp_path / "timeline"
    results = run_comparison_parallel(
        config.profile("dec"),
        config.seed,
        specs(config),
        jobs=2,
        timeline_dir=str(out),
        trace_cache_dir=str(tmp_path / "store"),
    )
    for name, metrics in results.items():
        rows = read_timeline_jsonl(str(out / f"{name}.jsonl"))
        assert check_timeline_rows(rows) == []
        assert all(row["arch"] == name for row in rows)
        assert sum_counters(
            rows, "repro_requests_total", {"window": "measured"}
        ) == sum(metrics.requests_by_point.values())


def test_timeline_and_journeys_can_coexist(tmp_path):
    config = make_tiny_config()
    results = run_comparison_parallel(
        config.profile("dec"),
        config.seed,
        specs(config)[:1],
        jobs=1,
        journey_dir=str(tmp_path / "journeys"),
        timeline_dir=str(tmp_path / "timeline"),
        trace_cache_dir=str(tmp_path / "store"),
    )
    (name,) = results
    journey_lines = (
        (tmp_path / "journeys" / f"{name}.jsonl").read_text().splitlines()
    )
    assert len(journey_lines) == results[name].measured_requests
    rows = read_timeline_jsonl(str(tmp_path / "timeline" / f"{name}.jsonl"))
    assert rows and check_timeline_rows(rows) == []
