"""Parallel execution: deterministic, cache-sharing, invariant-preserving.

The headline property: ``run_experiments(..., jobs=4)`` produces
row-for-row identical :class:`ExperimentResult`s to ``jobs=1``.  Work
units depend only on their arguments, never on scheduling, so parallelism
may only change wall-clock (timing notes are therefore excluded from the
equality check).
"""

from __future__ import annotations

import pytest

from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.directory_arch import CentralizedDirectoryArchitecture
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.netmodel.testbed import TestbedCostModel
from repro.runner.parallel import run_comparison_parallel, run_experiments
from repro.runner.specs import ArchitectureSpec
from repro.runner.trace_cache import TraceCache, cached_trace
from repro.sim.engine import run_comparison
from tests.conftest import make_tiny_config

#: A cheap cross-section of the registry: a characterization table, a
#: figure sweep, and an experiment that builds custom per-row profiles.
EXPERIMENTS = ["table4", "figure3", "scaling"]


def strip_timing(result):
    """Everything that must match across job counts (notes carry timings)."""
    return (
        result.experiment,
        result.description,
        result.rows,
        result.paper_claims,
        result.chart_spec,
    )


class TestRunExperiments:
    def test_jobs4_identical_to_jobs1(self, tmp_path):
        config = make_tiny_config()
        sequential = run_experiments(EXPERIMENTS, config, jobs=1)
        parallel = run_experiments(
            EXPERIMENTS, config, jobs=4, trace_cache_dir=str(tmp_path / "store")
        )
        assert list(sequential.results) == list(parallel.results) == EXPERIMENTS
        for name in EXPERIMENTS:
            assert strip_timing(sequential.results[name]) == strip_timing(
                parallel.results[name]
            ), name

    def test_timing_notes_and_summary(self):
        config = make_tiny_config()
        summary = run_experiments(["table4"], config, jobs=1)
        result = summary.results["table4"]
        assert any(note.startswith("[stage timing]") for note in result.notes)
        assert summary.timings[0].experiment == "table4"
        assert summary.timings[0].total_s >= summary.timings[0].trace_gen_s
        rendered = summary.render()
        assert "trace generations this run:" in rendered

    def test_warm_disk_cache_performs_zero_generations(self, tmp_path):
        config = make_tiny_config()
        store = str(tmp_path / "store")
        cold = run_experiments(EXPERIMENTS, config, jobs=2, trace_cache_dir=store)
        assert cold.cache_stats.generations > 0
        warm = run_experiments(EXPERIMENTS, config, jobs=2, trace_cache_dir=store)
        assert warm.cache_stats.generations == 0
        assert warm.cache_stats.disk_hits > 0
        for name in EXPERIMENTS:
            assert strip_timing(cold.results[name]) == strip_timing(
                warm.results[name]
            ), name

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            run_experiments(["table4"], make_tiny_config(), jobs=0)

    def test_worker_failure_propagates(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiments(["no_such_experiment"], make_tiny_config(), jobs=2)


class TestRunComparisonParallel:
    def specs(self, config):
        topology = config.topology
        return [
            ArchitectureSpec(DataHierarchy, (topology, TestbedCostModel())),
            ArchitectureSpec(
                CentralizedDirectoryArchitecture, (topology, TestbedCostModel())
            ),
            ArchitectureSpec(HintHierarchy, (topology, TestbedCostModel())),
        ]

    def test_matches_sequential_run_comparison(self, tmp_path):
        config = make_tiny_config()
        profile = config.profile("dec")
        specs = self.specs(config)

        trace = cached_trace(profile, config.seed)
        sequential = run_comparison(trace, [spec.build() for spec in specs])
        parallel = run_comparison_parallel(
            profile,
            config.seed,
            specs,
            jobs=3,
            trace_cache_dir=str(tmp_path / "store"),
        )
        assert list(parallel) == list(sequential)
        for name in sequential:
            assert parallel[name].total_ms == sequential[name].total_ms
            assert (
                parallel[name].requests_by_point
                == sequential[name].requests_by_point
            )

    def test_jobs1_inline_path(self):
        config = make_tiny_config()
        results = run_comparison_parallel(
            config.profile("dec"), config.seed, self.specs(config), jobs=1
        )
        assert len(results) == 3

    def test_specs_build_fresh_state_every_time(self):
        config = make_tiny_config()
        spec = self.specs(config)[0]
        first, second = spec.build(), spec.build()
        assert first is not second
        assert first.processed_requests == 0
        assert second.processed_requests == 0

    def test_spec_rejects_non_architecture_factory(self):
        spec = ArchitectureSpec(dict)
        with pytest.raises(TypeError, match="not an Architecture"):
            spec.build()


class _UnkernelizedHierarchy(DataHierarchy):
    """Subclass the fast engine has no kernel for (exact-type matching)."""

    name = "custom-hierarchy"


class TestFastEngine:
    def test_fast_matches_reference_results(self, tmp_path):
        config = make_tiny_config()
        specs = TestRunComparisonParallel().specs(config)
        results = {
            engine: run_comparison_parallel(
                config.profile("dec"),
                config.seed,
                specs,
                jobs=3,
                engine=engine,
                trace_cache_dir=str(tmp_path / "store"),
            )
            for engine in ("reference", "fast")
        }
        assert list(results["reference"]) == list(results["fast"])
        for name in results["reference"]:
            assert results["reference"][name] == results["fast"][name], name

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_fast_rejects_unkernelized_spec_before_workers(self, jobs):
        """The same clean error as the serial path/CLI, raised up front --
        not an opaque traceback from inside a worker process."""
        config = make_tiny_config()
        specs = TestRunComparisonParallel().specs(config) + [
            ArchitectureSpec(
                _UnkernelizedHierarchy, (config.topology, TestbedCostModel())
            )
        ]
        with pytest.raises(ValueError, match="no vectorized kernel"):
            run_comparison_parallel(
                config.profile("dec"),
                config.seed,
                specs,
                jobs=jobs,
                engine="fast",
            )


class TestJourneyExport:
    def test_jobs4_journey_files_byte_identical_to_jobs1(self, tmp_path):
        """Journey export is jobs-invariant: each architecture's JSONL file
        is written whole by one process, and its contents are a pure
        function of (profile, seed, spec), never of scheduling."""
        config = make_tiny_config()
        specs = TestRunComparisonParallel().specs(config)
        dirs = {1: tmp_path / "j1", 4: tmp_path / "j4"}
        results = {
            jobs: run_comparison_parallel(
                config.profile("dec"),
                config.seed,
                specs,
                jobs=jobs,
                journey_dir=str(dirs[jobs]),
                trace_cache_dir=str(tmp_path / "store"),
            )
            for jobs in dirs
        }
        names = [spec.build().name for spec in specs]
        assert sorted(p.name for p in dirs[1].iterdir()) == sorted(
            f"{name}.jsonl" for name in names
        )
        for name in names:
            one = (dirs[1] / f"{name}.jsonl").read_bytes()
            four = (dirs[4] / f"{name}.jsonl").read_bytes()
            assert one == four, name
            lines = one.decode().splitlines()
            assert len(lines) == results[1][name].measured_requests
        for name in names:
            assert results[1][name].total_ms == results[4][name].total_ms


class TestWorkerTraceSharing:
    def test_workers_share_one_disk_store(self, tmp_path):
        """Many workers, one store: the trace is generated at most once
        per process and persisted once (content-addressed writes race
        benignly)."""
        config = make_tiny_config()
        store = tmp_path / "store"
        run_comparison_parallel(
            config.profile("dec"),
            config.seed,
            TestRunComparisonParallel().specs(config),
            jobs=3,
            trace_cache_dir=str(store),
        )
        files = list(store.glob("*.npz"))
        assert len(files) == 1
        reloaded = TraceCache(store)
        trace = reloaded.get(config.profile("dec"), config.seed)
        assert reloaded.stats.disk_hits == 1
        assert len(trace) > 0
