"""Profiling through the parallel comparison runner.

Pins the PR's jobs-invariance criterion for the profiler: the
*aggregated span structure* (names, categories, nesting -- not times or
pids) is identical whether the comparison ran in-process (``jobs=1``) or
fanned out (``jobs=4``), and profiled runs return the same metrics as
unprofiled ones.
"""

from __future__ import annotations

from tests.conftest import make_tiny_config

from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.netmodel.testbed import TestbedCostModel
from repro.obs import profiling
from repro.obs.profiling import SpanProfiler, aggregate_spans, span_structure
from repro.runner.parallel import ArchitectureSpec, run_comparison_parallel
from repro.runner.trace_cache import TraceCache, get_trace_cache, set_trace_cache


def specs(config):
    topology = config.topology
    return [
        ArchitectureSpec(DataHierarchy, (topology, TestbedCostModel())),
        ArchitectureSpec(HintHierarchy, (topology, TestbedCostModel())),
    ]


def profiled_run(config, store, jobs):
    """One profiled comparison against a pre-warmed trace store."""
    previous = get_trace_cache()
    set_trace_cache(TraceCache(store))
    profiler = SpanProfiler()
    try:
        with profiling.attached(profiler):
            results = run_comparison_parallel(
                config.profile("dec"),
                config.seed,
                specs(config),
                jobs=jobs,
                trace_cache_dir=store,
            )
    finally:
        set_trace_cache(previous)
        profiler.close()
    return results, profiler


def warm_store(config, store):
    """Generate the trace into the on-disk store once, unprofiled, so no
    process (coordinator or worker) pays a ``trace_gen`` span later --
    generation happening in 1 vs 4 processes would legitimately differ."""
    cache = TraceCache(store)
    cache.get(config.profile("dec"), config.seed)


def test_span_structure_identical_jobs1_vs_jobs4(tmp_path):
    config = make_tiny_config()
    store = str(tmp_path / "store")
    warm_store(config, store)
    results = {}
    structures = {}
    for jobs in (1, 4):
        results[jobs], profiler = profiled_run(config, store, jobs)
        structures[jobs] = span_structure(profiler.roots)
    assert structures[1] == structures[4]
    # And the metrics agree between the two layouts, profiled or not.
    for name in results[1]:
        assert results[1][name].summary() == results[4][name].summary()


def test_profiled_metrics_match_unprofiled(tmp_path):
    config = make_tiny_config()
    store = str(tmp_path / "store")
    warm_store(config, store)
    profiled, _profiler = profiled_run(config, store, 1)
    plain = run_comparison_parallel(
        config.profile("dec"),
        config.seed,
        specs(config),
        jobs=1,
        trace_cache_dir=store,
    )
    assert sorted(profiled) == sorted(plain)
    for name in plain:
        assert profiled[name].summary() == plain[name].summary()
        assert profiled[name].requests_by_point == plain[name].requests_by_point


def test_jobs4_spans_carry_worker_pids(tmp_path):
    config = make_tiny_config()
    store = str(tmp_path / "store")
    warm_store(config, store)
    _results, profiler = profiled_run(config, store, 4)
    (comparison,) = profiler.roots
    assert comparison.name == "comparison"
    tasks = [c for c in comparison.children if c.name == "task"]
    assert len(tasks) == len(specs(config))
    pids = {span.pid for task in tasks for span in task.walk()}
    assert None not in pids  # every adopted span is stamped
    assert all(pid != profiler.pid for pid in pids)
    # Worker spans cover the whole simulate tree.
    names = {span.name for task in tasks for span in task.walk()}
    assert {"task", "trace_fetch", "build", "simulate"} <= names


def test_aggregated_tables_structurally_identical(tmp_path):
    config = make_tiny_config()
    store = str(tmp_path / "store")
    warm_store(config, store)
    tables = {}
    for jobs in (1, 4):
        _results, profiler = profiled_run(config, store, jobs)
        tables[jobs] = [
            (row["span"], row["category"], row["count"])
            for row in sorted(
                aggregate_spans(profiler.roots), key=lambda r: r["span"]
            )
        ]
    assert tables[1] == tables[4]
