"""Sharded runner: shard-count invariance is the whole contract.

The headline pins: ``run_comparison_sharded(shards=1)`` and
``shards=4`` produce *equal* :class:`SimMetrics` (full dataclass
equality, histograms included) and byte-identical timeline files, for
any job count, any bounded-lag window, under replacement-policy
pressure, and under fault plans.  Partitions share no object state and
the coordinator folds them in canonical order, so nothing about the
physical layout may leak into results.
"""

from __future__ import annotations

import filecmp
import os

import pytest

from repro.cache.policy import PolicySpec
from repro.common.errors import ShardRoutingError
from repro.common.ids import mix64, partition_of_object, partitions_of_objects
from repro.faults import FaultPlan, NodeCrash, OriginSlowdown
from repro.hierarchy.base import ShardInfo
from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.directory_arch import CentralizedDirectoryArchitecture
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.hierarchy.icp import IcpHierarchy
from repro.netmodel.testbed import TestbedCostModel
from repro.runner.sharding import (
    ShardPlan,
    advance_bounded_lag,
    partition_spec,
    run_comparison_sharded,
    split_trace,
)
from repro.runner.specs import ArchitectureSpec
from repro.sim.engine import SimulationStepper
from tests.conftest import make_tiny_config

ARCHITECTURES = {
    "hierarchy": DataHierarchy,
    "icp": IcpHierarchy,
    "hints": HintHierarchy,
    "directory": CentralizedDirectoryArchitecture,
}


def standard_specs(config):
    """The full four-architecture matrix, unbounded caches."""
    return [
        ArchitectureSpec(cls, (config.topology, TestbedCostModel()))
        for cls in ARCHITECTURES.values()
    ]


class TestShardPlan:
    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="shards"):
            ShardPlan(shards=0)

    def test_rejects_more_shards_than_partitions(self):
        with pytest.raises(ValueError, match="virtual_partitions"):
            ShardPlan(shards=5, virtual_partitions=4)

    def test_rejects_non_positive_lag(self):
        with pytest.raises(ValueError, match="clock_lag_s"):
            ShardPlan(shards=1, clock_lag_s=0.0)

    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 7, 16])
    def test_ownership_partitions_the_partition_set(self, shards):
        plan = ShardPlan(shards=shards, virtual_partitions=16)
        owned = [plan.partitions_of_shard(shard) for shard in range(shards)]
        flat = sorted(p for group in owned for p in group)
        assert flat == list(range(16))  # every partition exactly once
        for shard, group in enumerate(owned):
            for partition in group:
                assert plan.owner_of(partition) == shard

    def test_single_shard_owns_everything(self):
        plan = ShardPlan(shards=1, virtual_partitions=16)
        assert plan.partitions_of_shard(0) == tuple(range(16))

    def test_owner_of_rejects_out_of_range(self):
        plan = ShardPlan(shards=2, virtual_partitions=8)
        with pytest.raises(ValueError, match="partition"):
            plan.owner_of(8)
        with pytest.raises(ValueError, match="shard"):
            plan.partitions_of_shard(2)

    def test_shard_info_round_trip(self):
        plan = ShardPlan(shards=2, virtual_partitions=8)
        info = plan.shard_info(3)
        assert info == ShardInfo(partition=3, virtual_partitions=8)


class TestPartitionHashing:
    def test_scalar_hash_is_stable(self):
        # Pinned: splitmix64 output must never drift (it addresses every
        # on-disk partitioning and every cross-run comparison).
        assert partition_of_object(0, 16) == partition_of_object(0, 16)
        seen = {partition_of_object(obj, 16) for obj in range(1000)}
        assert seen == set(range(16))  # all partitions populated

    def test_vectorized_matches_scalar(self):
        import numpy as np

        objects = np.arange(5000, dtype=np.int64)
        vector = partitions_of_objects(objects, 16)
        assert [partition_of_object(int(o), 16) for o in objects[:200]] == list(
            vector[:200]
        )

    def test_for_partition_reseeds_only_random(self):
        lru = PolicySpec("lru")
        assert lru.for_partition(3) is lru
        random = PolicySpec("random", seed=99)
        reseeded = random.for_partition(3)
        assert reseeded.name == "random"
        assert reseeded.seed == mix64(99, 3)
        assert random.for_partition(3) == reseeded  # stable identity

    def test_partition_spec_rewrites_policy_kwargs_only(self):
        config = make_tiny_config()
        spec = ArchitectureSpec(
            DataHierarchy,
            (config.topology, TestbedCostModel()),
            dict(l1_bytes=1024, l1_policy=PolicySpec("random", seed=5)),
        )
        rewritten = partition_spec(spec, 7)
        assert rewritten.kwargs["l1_bytes"] == 1024
        assert rewritten.kwargs["l1_policy"].seed == mix64(5, 7)
        # No PolicySpec kwargs -> the spec passes through untouched.
        plain = ArchitectureSpec(DataHierarchy, spec.args)
        assert partition_spec(plain, 7) is plain


class TestSplitTrace:
    def test_partitions_cover_the_trace(self, dec_trace):
        plan = ShardPlan(shards=4, virtual_partitions=16)
        subs = split_trace(dec_trace, plan)
        assert len(subs) == 16
        assert sum(len(s.requests) for s in subs) == len(dec_trace.requests)
        for partition, sub in enumerate(subs):
            assert sub.profile_name == dec_trace.profile_name
            assert sub.duration == dec_trace.duration
            assert sub.warmup == dec_trace.warmup
            owners = partitions_of_objects(sub.columns().object, 16)
            assert (owners == partition).all()

    def test_sub_traces_stay_time_ordered(self, dec_trace):
        plan = ShardPlan(shards=2, virtual_partitions=4)
        for sub in split_trace(dec_trace, plan):
            times = sub.columns().time
            assert (times[1:] >= times[:-1]).all()


class TestBoundedLag:
    def test_lag_window_yields_full_drain_metrics(self, dec_trace, tiny_config):
        plan = ShardPlan(shards=1, virtual_partitions=4, clock_lag_s=60.0)
        subs = split_trace(dec_trace, plan)

        def steppers():
            return [
                SimulationStepper(
                    sub, DataHierarchy(tiny_config.topology, TestbedCostModel())
                )
                for sub in subs
            ]

        round_robin = steppers()
        advance_bounded_lag(round_robin, lag_s=60.0)
        one_shot = steppers()
        advance_bounded_lag(one_shot, lag_s=10 * dec_trace.duration)
        for tight, loose in zip(round_robin, one_shot):
            assert tight.finish() == loose.finish()


@pytest.fixture(scope="module")
def tiny_comparisons(tmp_path_factory):
    """shards=1 and shards=4 runs of the full matrix (shared, read-only)."""
    config = make_tiny_config()
    specs = standard_specs(config)
    runs = {}
    for shards in (1, 4):
        timeline_dir = str(tmp_path_factory.mktemp(f"timeline-{shards}"))
        runs[shards] = run_comparison_sharded(
            config.profile("dec"),
            config.seed,
            specs,
            shards=shards,
            timeline_dir=timeline_dir,
        )
    return runs


class TestShardCountInvariance:
    def test_metrics_identical_across_shard_counts(self, tiny_comparisons):
        one, four = tiny_comparisons[1], tiny_comparisons[4]
        assert list(one.results) == list(four.results) == list(ARCHITECTURES)
        for name in ARCHITECTURES:
            assert one.results[name] == four.results[name], name

    def test_timeline_rows_identical_across_shard_counts(self, tiny_comparisons):
        one, four = tiny_comparisons[1], tiny_comparisons[4]
        assert one.timeline_rows == four.timeline_rows

    def test_partition_layout_identical_across_shard_counts(
        self, tiny_comparisons
    ):
        one, four = tiny_comparisons[1], tiny_comparisons[4]
        assert one.partition_requests == four.partition_requests
        assert one.partition_objects == four.partition_objects
        # The fullest shard shrinks as shards grow -- that is the point.
        assert four.max_shard_objects < one.max_shard_objects
        assert one.max_shard_objects == sum(one.partition_objects)

    def test_requests_conserved(self, tiny_comparisons, dec_trace):
        for comparison in tiny_comparisons.values():
            assert sum(comparison.partition_requests) == len(dec_trace.requests)
            comparison.results["hierarchy"].validate()

    def test_lag_value_never_changes_results(self, tiny_comparisons):
        config = make_tiny_config()
        tight = run_comparison_sharded(
            config.profile("dec"),
            config.seed,
            standard_specs(config),
            shards=3,
            clock_lag_s=5.0,
        )
        assert tight.results == tiny_comparisons[1].results

    def test_jobs_and_timeline_files_identical(self, tmp_path, tiny_comparisons):
        config = make_tiny_config()
        timeline_dir = str(tmp_path / "timeline")
        fanned = run_comparison_sharded(
            config.profile("dec"),
            config.seed,
            standard_specs(config),
            shards=4,
            jobs=4,
            trace_cache_dir=str(tmp_path / "store"),
            timeline_dir=timeline_dir,
        )
        assert fanned.results == tiny_comparisons[4].results
        inline_dir = str(tmp_path / "timeline-inline")
        inline = run_comparison_sharded(
            config.profile("dec"),
            config.seed,
            standard_specs(config),
            shards=1,
            timeline_dir=inline_dir,
        )
        assert inline.results == fanned.results
        for name in ARCHITECTURES:
            assert filecmp.cmp(
                os.path.join(inline_dir, f"{name}.jsonl"),
                os.path.join(timeline_dir, f"{name}.jsonl"),
                shallow=False,
            ), name

    def test_random_policy_invariant_under_capacity_pressure(self):
        # Satellite: per-node Random seeds derive from stable identity
        # plus the partition id, never from shard layout -- so even the
        # stochastic policy pins across shard counts.
        config = make_tiny_config()
        kwargs = dict(
            l1_bytes=256 * 1024,
            l2_bytes=256 * 1024,
            l3_bytes=256 * 1024,
            l1_policy=PolicySpec("random", seed=41),
            l2_policy=PolicySpec("random", seed=42),
            l3_policy=PolicySpec("random", seed=43),
        )
        specs = [
            ArchitectureSpec(
                DataHierarchy, (config.topology, TestbedCostModel()), kwargs
            )
        ]
        runs = {
            shards: run_comparison_sharded(
                config.profile("dec"), config.seed, specs, shards=shards
            )
            for shards in (1, 4)
        }
        result = runs[1].results["hierarchy"]
        assert result == runs[4].results["hierarchy"]
        assert result.measured_requests > 0

    def test_fault_plan_invariant(self):
        config = make_tiny_config()
        plan = FaultPlan(
            events=(
                NodeCrash(time=0.0, kind="l2", node=0),
                OriginSlowdown(time=3600.0, factor=2.0),
            ),
            seed=config.seed,
        )
        specs = standard_specs(config)[:2]
        runs = {
            shards: run_comparison_sharded(
                config.profile("dec"),
                config.seed,
                specs,
                shards=shards,
                fault_plan=plan,
            )
            for shards in (1, 2)
        }
        assert runs[1].results == runs[2].results
        degraded = runs[1].results["hierarchy"].degraded
        assert degraded.fault_added_ms > 0 or degraded.timeout_fallbacks > 0

    def test_fast_engine_matches_reference(self, tiny_comparisons):
        config = make_tiny_config()
        fast = run_comparison_sharded(
            config.profile("dec"),
            config.seed,
            standard_specs(config),
            shards=4,
            engine="fast",
        )
        assert fast.results == tiny_comparisons[4].results

    def test_duplicate_architecture_name_rejected(self):
        config = make_tiny_config()
        specs = standard_specs(config)[:1] * 2
        with pytest.raises(ValueError, match="duplicate"):
            run_comparison_sharded(
                config.profile("dec"), config.seed, specs, shards=2
            )

    def test_rejects_bad_jobs(self):
        config = make_tiny_config()
        with pytest.raises(ValueError, match="jobs"):
            run_comparison_sharded(
                config.profile("dec"),
                config.seed,
                standard_specs(config),
                shards=1,
                jobs=0,
            )


class TestShardRouting:
    def test_misrouted_request_raises(self, dec_trace, tiny_config):
        plan = ShardPlan(shards=4, virtual_partitions=16)
        architecture = DataHierarchy(tiny_config.topology, TestbedCostModel())
        architecture.bind_shard(plan.shard_info(0))
        foreign = next(
            r
            for r in dec_trace.requests
            if partition_of_object(r.object_id, 16) != 0
        )
        with pytest.raises(ShardRoutingError, match="does not own"):
            architecture.process(foreign)

    def test_owned_request_processes(self, dec_trace, tiny_config):
        architecture = DataHierarchy(tiny_config.topology, TestbedCostModel())
        info = ShardInfo(partition=0, virtual_partitions=16)
        architecture.bind_shard(info)
        owned = next(
            r for r in dec_trace.requests if info.owns(r.object_id)
        )
        result = architecture.process(owned)
        assert result.time_ms >= 0

    def test_bind_shard_rejects_warmed_architecture(self, dec_trace, tiny_config):
        from repro.sim.engine import run_simulation

        architecture = DataHierarchy(tiny_config.topology, TestbedCostModel())
        run_simulation(dec_trace, architecture)
        with pytest.raises(ValueError, match="processed"):
            architecture.bind_shard(ShardInfo(partition=0, virtual_partitions=16))

    def test_shard_info_validates(self):
        with pytest.raises(ValueError):
            ShardInfo(partition=4, virtual_partitions=4)
        with pytest.raises(ValueError):
            ShardInfo(partition=-1, virtual_partitions=4)
