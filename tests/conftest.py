"""Shared fixtures: a tiny topology/config and memoized small traces.

Tests use a deliberately small system (8 L1 proxies, 2 clients each, ~4k
requests) so the whole suite stays fast while still exercising every
distance class and both miss regimes.
"""

from __future__ import annotations

import pytest

from repro.hierarchy.topology import HierarchyTopology
from repro.sim.config import ExperimentConfig
from repro.traces.records import Trace
from repro.traces.synthetic import SyntheticTraceGenerator


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--force-regen",
        action="store_true",
        default=False,
        help="rewrite golden regression snapshots (tests/regression/golden/) "
        "from the current code instead of comparing against them",
    )


def make_tiny_config(**overrides) -> ExperimentConfig:
    """A small-but-complete experiment configuration."""
    defaults = dict(
        topology=HierarchyTopology(clients_per_l1=2, l1_per_l2=4, n_l2=2),
        seed=7,
        trace_scale=0.0002,
        l1_cache_bytes=2 * 1024 * 1024,
        hint_data_cache_bytes=int(1.8 * 1024 * 1024),
        hint_store_bytes=200 * 1024,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@pytest.fixture(scope="session")
def tiny_config() -> ExperimentConfig:
    return make_tiny_config()


@pytest.fixture(scope="session")
def dec_trace(tiny_config: ExperimentConfig) -> Trace:
    """A small DEC-profile trace shared (read-only) across tests."""
    profile = tiny_config.profile("dec")
    return SyntheticTraceGenerator(profile, seed=tiny_config.seed).generate()


@pytest.fixture(scope="session")
def prodigy_trace(tiny_config: ExperimentConfig) -> Trace:
    """A small Prodigy-profile trace (dynamic client ids)."""
    profile = tiny_config.profile("prodigy")
    return SyntheticTraceGenerator(profile, seed=tiny_config.seed).generate()
