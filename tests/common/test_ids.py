"""Tests for MD5-derived identifiers and bit matching."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.ids import (
    ID_BITS,
    low_digit,
    matching_low_bits,
    matching_low_digits,
    node_id_from_name,
    object_id_from_url,
)


class TestIdDerivation:
    def test_object_id_is_deterministic(self):
        url = "http://example.com/a/b.html"
        assert object_id_from_url(url) == object_id_from_url(url)

    def test_different_urls_get_different_ids(self):
        assert object_id_from_url("http://a/") != object_id_from_url("http://b/")

    def test_node_id_is_deterministic(self):
        assert node_id_from_name("10.0.0.1") == node_id_from_name("10.0.0.1")

    def test_ids_fit_in_64_bits(self):
        for value in ("x", "http://example.com/" + "y" * 500):
            assert 0 <= object_id_from_url(value) < 2**64

    def test_node_and_object_spaces_use_same_hash(self):
        # Same input string -> same hash: both are "MD5 of a string".
        assert node_id_from_name("foo") == object_id_from_url("foo")


class TestMatchingLowBits:
    def test_identical_ids_match_fully(self):
        assert matching_low_bits(0xDEADBEEF, 0xDEADBEEF) == ID_BITS

    def test_differ_in_lowest_bit(self):
        assert matching_low_bits(0b1010, 0b1011) == 0

    def test_three_matching_bits(self):
        assert matching_low_bits(0b1011, 0b0011) == 3

    def test_max_bits_restricts_the_window(self):
        assert matching_low_bits(0b10000, 0b00000, max_bits=4) == 4

    @given(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1))
    def test_agrees_with_reference_implementation(self, a, b):
        reference = 0
        while reference < ID_BITS and (a >> reference) & 1 == (b >> reference) & 1:
            reference += 1
        assert matching_low_bits(a, b) == reference

    @given(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1))
    def test_symmetry(self, a, b):
        assert matching_low_bits(a, b) == matching_low_bits(b, a)


class TestDigits:
    def test_low_digit_binary(self):
        assert low_digit(0b1011, 0, 1) == 1
        assert low_digit(0b1011, 2, 1) == 0

    def test_low_digit_hex(self):
        assert low_digit(0xABC, 0, 4) == 0xC
        assert low_digit(0xABC, 2, 4) == 0xA

    def test_matching_low_digits_counts_whole_digits(self):
        # 7 matching bits = 1 matching 4-bit digit.
        a, b = 0b01111111, 0b11111111  # differ first at bit 7
        assert matching_low_bits(a, b) == 7
        assert matching_low_digits(a, b, bits_per_digit=4) == 1

    def test_matching_low_digits_rejects_bad_width(self):
        with pytest.raises(ValueError):
            matching_low_digits(1, 2, bits_per_digit=0)

    @given(
        st.integers(0, 2**64 - 1),
        st.integers(0, 2**64 - 1),
        st.integers(1, 8),
    )
    def test_digit_matching_consistent_with_bits(self, a, b, width):
        digits = matching_low_digits(a, b, bits_per_digit=width)
        assert digits == matching_low_bits(a, b) // width
