"""Tests for the exception hierarchy."""

from __future__ import annotations

from repro.common.errors import (
    ConfigurationError,
    ReproError,
    TopologyError,
    TraceFormatError,
)


def test_all_errors_derive_from_repro_error():
    for exc_type in (ConfigurationError, TraceFormatError, TopologyError):
        assert issubclass(exc_type, ReproError)


def test_topology_error_is_a_configuration_error():
    assert issubclass(TopologyError, ConfigurationError)


def test_errors_are_catchable_as_repro_error():
    try:
        raise TraceFormatError("bad line")
    except ReproError as exc:
        assert "bad line" in str(exc)
