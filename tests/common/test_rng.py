"""Tests for seeded RNG plumbing."""

from __future__ import annotations

from repro.common.rng import SeedSequenceFactory, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_labels_matter(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_root_seed_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")

    def test_seed_is_non_negative_63_bit(self):
        for labels in (("x",), ("y", 7), ()):
            seed = derive_seed(123, *labels)
            assert 0 <= seed < 2**63

    def test_adjacent_roots_are_uncorrelated(self):
        # Hash-based derivation: consecutive roots should not give
        # consecutive children.
        assert abs(derive_seed(10, "t") - derive_seed(11, "t")) > 1000


class TestSeedSequenceFactory:
    def test_same_labels_same_stream(self):
        factory = SeedSequenceFactory(5)
        a = factory.generator("g").random(8)
        b = factory.generator("g").random(8)
        assert (a == b).all()

    def test_different_labels_different_stream(self):
        factory = SeedSequenceFactory(5)
        a = factory.generator("g1").random(8)
        b = factory.generator("g2").random(8)
        assert not (a == b).all()

    def test_seed_method_matches_derive(self):
        factory = SeedSequenceFactory(9)
        assert factory.seed("x", 3) == derive_seed(9, "x", 3)

    def test_repr_mentions_seed(self):
        assert "9" in repr(SeedSequenceFactory(9))
