"""Tests for unit conversions."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.common.units import (
    DAYS,
    GB,
    HOURS,
    KB,
    MB,
    MINUTES,
    bytes_to_gb,
    bytes_to_mb,
    gb_to_bytes,
    mb_to_bytes,
    ms_to_seconds,
    seconds_to_ms,
)


class TestByteUnits:
    def test_constants_are_binary_powers(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB

    def test_mb_round_trip(self):
        assert bytes_to_mb(mb_to_bytes(500)) == 500

    def test_gb_round_trip(self):
        assert bytes_to_gb(gb_to_bytes(5)) == 5

    def test_fractional_megabytes(self):
        assert mb_to_bytes(0.5) == 512 * 1024

    @given(st.integers(0, 10**15))
    def test_mb_conversion_monotone(self, n):
        assert bytes_to_mb(n) <= bytes_to_mb(n + 1)


class TestTimeUnits:
    def test_time_constants(self):
        assert MINUTES == 60.0
        assert HOURS == 60 * MINUTES
        assert DAYS == 24 * HOURS

    def test_ms_round_trip(self):
        assert ms_to_seconds(seconds_to_ms(1.25)) == 1.25

    def test_seconds_to_ms_scale(self):
        assert seconds_to_ms(2.0) == 2000.0
