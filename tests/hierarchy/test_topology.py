"""Tests for the three-level topology grouping."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.hierarchy.topology import HierarchyTopology
from repro.netmodel.model import AccessPoint


@pytest.fixture()
def topology():
    return HierarchyTopology(clients_per_l1=4, l1_per_l2=8, n_l2=8)


class TestGrouping:
    def test_paper_default_shape(self):
        paper = HierarchyTopology()
        assert paper.clients_per_l1 == 256
        assert paper.l1_per_l2 == 8
        assert paper.n_l1 == 64

    def test_client_to_l1_mapping(self, topology):
        assert topology.l1_of_client(0) == 0
        assert topology.l1_of_client(3) == 0
        assert topology.l1_of_client(4) == 1

    def test_client_ids_wrap(self, topology):
        covered = topology.n_clients_covered
        assert topology.l1_of_client(covered) == 0

    def test_l2_of_l1(self, topology):
        assert topology.l2_of_l1(0) == 0
        assert topology.l2_of_l1(7) == 0
        assert topology.l2_of_l1(8) == 1

    def test_l1_nodes_of_l2(self, topology):
        assert topology.l1_nodes_of_l2(1) == list(range(8, 16))

    def test_siblings_exclude_self(self, topology):
        siblings = topology.siblings_of(9)
        assert 9 not in siblings
        assert len(siblings) == 7
        assert all(topology.l2_of_l1(s) == 1 for s in siblings)


class TestDistanceClasses:
    def test_same_node_is_l1(self, topology):
        assert topology.distance_class(3, 3) is AccessPoint.L1

    def test_same_group_is_l2(self, topology):
        assert topology.distance_class(3, 5) is AccessPoint.L2

    def test_cross_group_is_l3(self, topology):
        assert topology.distance_class(3, 12) is AccessPoint.L3

    def test_symmetry(self, topology):
        for a, b in [(0, 0), (1, 6), (2, 40)]:
            assert topology.distance_class(a, b) == topology.distance_class(b, a)

    def test_lca_level(self, topology):
        assert topology.lca_level(3, 3) == 1
        assert topology.lca_level(3, 5) == 2
        assert topology.lca_level(3, 12) == 3


class TestValidation:
    def test_rejects_zero_sizes(self):
        with pytest.raises(ConfigurationError):
            HierarchyTopology(clients_per_l1=0)

    def test_rejects_negative_client(self, topology):
        with pytest.raises(ConfigurationError):
            topology.l1_of_client(-1)

    def test_rejects_bad_l1_index(self, topology):
        with pytest.raises(ConfigurationError):
            topology.distance_class(0, topology.n_l1)

    def test_rejects_bad_l2_index(self, topology):
        with pytest.raises(ConfigurationError):
            topology.l1_nodes_of_l2(99)
