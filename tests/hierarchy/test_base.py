"""Tests for the AccessResult contract."""

from __future__ import annotations

import pytest

from repro.hierarchy.base import AccessResult
from repro.netmodel.model import AccessPoint


class TestAccessResultValidation:
    def test_valid_hit(self):
        AccessResult(point=AccessPoint.L2, time_ms=100.0, hit=True, remote_hit=True)

    def test_valid_miss(self):
        AccessResult(point=AccessPoint.SERVER, time_ms=100.0, hit=False)

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            AccessResult(point=AccessPoint.L1, time_ms=-1.0, hit=True)

    def test_rejects_hit_at_server(self):
        with pytest.raises(ValueError):
            AccessResult(point=AccessPoint.SERVER, time_ms=1.0, hit=True)

    def test_rejects_miss_at_cache(self):
        with pytest.raises(ValueError):
            AccessResult(point=AccessPoint.L2, time_ms=1.0, hit=False)
