"""Tests for the ICP-style sibling-query baseline."""

from __future__ import annotations

import pytest

from repro.hierarchy.icp import IcpHierarchy
from repro.hierarchy.topology import HierarchyTopology
from repro.netmodel.model import AccessPoint
from repro.netmodel.testbed import TestbedCostModel
from repro.traces.records import Request

TOPOLOGY = HierarchyTopology(clients_per_l1=1, l1_per_l2=2, n_l2=2)


def make_request(client, obj=1, version=0, size=1000, time=0.0):
    return Request(
        time=time, client_id=client, object_id=obj, size=size, version=version
    )


@pytest.fixture()
def icp():
    return IcpHierarchy(TOPOLOGY, TestbedCostModel())


class TestSiblingQueries:
    def test_sibling_hit_is_cache_to_cache(self, icp):
        icp.process(make_request(client=0))
        result = icp.process(make_request(client=1))
        assert result.point is AccessPoint.L2
        assert icp.sibling_hits == 1
        expected = icp.cost_model.probe_ms(AccessPoint.L2) + icp.cost_model.via_l1_ms(
            AccessPoint.L2, 1000
        )
        assert result.time_ms == pytest.approx(expected)

    def test_every_local_miss_pays_the_query(self, icp):
        result = icp.process(make_request(client=0))
        assert icp.sibling_queries == 1
        expected = icp.cost_model.probe_ms(AccessPoint.L2) + icp.cost_model.hierarchical_ms(
            AccessPoint.SERVER, 1000
        )
        assert result.time_ms == pytest.approx(expected)

    def test_local_hit_pays_nothing_extra(self, icp):
        icp.process(make_request(client=0))
        result = icp.process(make_request(client=0))
        assert result.time_ms == icp.cost_model.hierarchical_ms(AccessPoint.L1, 1000)
        assert icp.sibling_queries == 1  # only the initial miss queried

    def test_cross_group_copies_unreachable_by_query(self, icp):
        icp.process(make_request(client=0))
        result = icp.process(make_request(client=2))
        # The copy at node 0 is outside node 2's sibling group; ICP falls
        # back to the hierarchy, which finds it at L3.
        assert result.point is AccessPoint.L3
        assert icp.sibling_hits == 0

    def test_icp_slower_than_plain_hierarchy_on_misses(self):
        from repro.hierarchy.data_hierarchy import DataHierarchy

        plain = DataHierarchy(TOPOLOGY, TestbedCostModel())
        icp = IcpHierarchy(TOPOLOGY, TestbedCostModel())
        request = make_request(client=0)
        assert icp.process(request).time_ms > plain.process(request).time_ms
