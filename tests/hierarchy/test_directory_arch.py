"""Tests for the CRISP-style centralized directory architecture."""

from __future__ import annotations

import pytest

from repro.hierarchy.directory_arch import CentralizedDirectoryArchitecture
from repro.hierarchy.topology import HierarchyTopology
from repro.netmodel.model import AccessPoint
from repro.netmodel.testbed import TestbedCostModel
from repro.traces.records import Request

TOPOLOGY = HierarchyTopology(clients_per_l1=1, l1_per_l2=2, n_l2=2)


def make_request(client, obj=1, version=0, size=1000, time=0.0):
    return Request(
        time=time, client_id=client, object_id=obj, size=size, version=version
    )


@pytest.fixture()
def arch():
    return CentralizedDirectoryArchitecture(TOPOLOGY, TestbedCostModel())


class TestQueryCost:
    def test_local_hit_pays_no_query(self, arch):
        arch.process(make_request(client=0))
        result = arch.process(make_request(client=0))
        assert result.time_ms == arch.cost_model.via_l1_ms(AccessPoint.L1, 1000)

    def test_miss_pays_the_query_round_trip(self, arch):
        result = arch.process(make_request(client=0))
        expected = arch.cost_model.probe_ms(AccessPoint.L3) + arch.cost_model.via_l1_ms(
            AccessPoint.SERVER, 1000
        )
        assert result.time_ms == pytest.approx(expected)

    def test_remote_hit_pays_query_plus_transfer(self, arch):
        arch.process(make_request(client=0))
        result = arch.process(make_request(client=1))
        expected = arch.cost_model.probe_ms(AccessPoint.L3) + arch.cost_model.via_l1_ms(
            AccessPoint.L2, 1000
        )
        assert result.point is AccessPoint.L2
        assert result.time_ms == pytest.approx(expected)


class TestFreshness:
    def test_no_false_positives_ever(self, arch):
        # Stale versions are filtered by the always-fresh directory.
        arch.process(make_request(client=0, version=0))
        result = arch.process(make_request(client=1, version=1))
        assert not result.false_positive
        assert result.point is AccessPoint.SERVER

    def test_directory_tracks_evictions_synchronously(self):
        arch = CentralizedDirectoryArchitecture(
            TOPOLOGY, TestbedCostModel(), l1_bytes=1500
        )
        arch.process(make_request(client=0, obj=1))
        arch.process(make_request(client=0, obj=2))  # evicts obj 1
        result = arch.process(make_request(client=1, obj=1))
        assert result.point is AccessPoint.SERVER
        assert not result.false_positive
