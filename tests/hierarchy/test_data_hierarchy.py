"""Scripted-scenario tests for the traditional data hierarchy."""

from __future__ import annotations

import pytest

from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.topology import HierarchyTopology
from repro.netmodel.model import AccessPoint
from repro.netmodel.testbed import TestbedCostModel
from repro.traces.records import Request

TOPOLOGY = HierarchyTopology(clients_per_l1=1, l1_per_l2=2, n_l2=2)
# Client c maps to L1 proxy c: clients 0,1 share L2 group 0; 2,3 group 1.


def make_request(client, obj=1, version=0, size=1000, time=0.0):
    return Request(
        time=time, client_id=client, object_id=obj, size=size, version=version
    )


@pytest.fixture()
def hierarchy():
    return DataHierarchy(TOPOLOGY, TestbedCostModel())


class TestAccessPaths:
    def test_first_access_misses_to_server(self, hierarchy):
        result = hierarchy.process(make_request(client=0))
        assert result.point is AccessPoint.SERVER
        assert not result.hit

    def test_repeat_from_same_client_is_l1_hit(self, hierarchy):
        hierarchy.process(make_request(client=0))
        result = hierarchy.process(make_request(client=0))
        assert result.point is AccessPoint.L1
        assert result.hit
        assert not result.remote_hit

    def test_sibling_client_gets_l2_hit(self, hierarchy):
        hierarchy.process(make_request(client=0))
        result = hierarchy.process(make_request(client=1))
        assert result.point is AccessPoint.L2
        assert result.remote_hit

    def test_cross_group_client_gets_l3_hit(self, hierarchy):
        hierarchy.process(make_request(client=0))
        result = hierarchy.process(make_request(client=2))
        assert result.point is AccessPoint.L3

    def test_hit_copies_down_the_path(self, hierarchy):
        hierarchy.process(make_request(client=0))
        hierarchy.process(make_request(client=2))  # L3 hit, copies to L2/L1
        result = hierarchy.process(make_request(client=2))
        assert result.point is AccessPoint.L1

    def test_times_follow_hierarchical_cost(self, hierarchy):
        cost = hierarchy.cost_model
        miss = hierarchy.process(make_request(client=0))
        assert miss.time_ms == cost.hierarchical_ms(AccessPoint.SERVER, 1000)
        hit = hierarchy.process(make_request(client=0))
        assert hit.time_ms == cost.hierarchical_ms(AccessPoint.L1, 1000)


class TestConsistency:
    def test_version_bump_invalidates_whole_path(self, hierarchy):
        hierarchy.process(make_request(client=0, version=0))
        result = hierarchy.process(make_request(client=0, version=1))
        assert result.point is AccessPoint.SERVER
        # The new version is now cached everywhere on the path.
        assert hierarchy.process(make_request(client=0, version=1)).hit

    def test_old_version_request_still_hits_newer_copy(self, hierarchy):
        hierarchy.process(make_request(client=0, version=3))
        result = hierarchy.process(make_request(client=0, version=2))
        assert result.hit


class TestCapacity:
    def test_space_constrained_l1_evicts(self):
        hierarchy = DataHierarchy(TOPOLOGY, TestbedCostModel(), l1_bytes=1500)
        hierarchy.process(make_request(client=0, obj=1, size=1000))
        hierarchy.process(make_request(client=0, obj=2, size=1000))  # evicts 1 at L1
        result = hierarchy.process(make_request(client=0, obj=1, size=1000))
        # Object 1 is gone from L1 but still at L2 (infinite there).
        assert result.point is AccessPoint.L2

    def test_separate_l1_caches_per_proxy(self, hierarchy):
        hierarchy.process(make_request(client=0, obj=1))
        assert 1 in hierarchy.l1_caches[0]
        assert 1 not in hierarchy.l1_caches[1]
