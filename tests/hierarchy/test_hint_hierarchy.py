"""Scripted-scenario tests for the hint architecture."""

from __future__ import annotations

import pytest

from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.hierarchy.topology import HierarchyTopology
from repro.netmodel.model import AccessPoint
from repro.netmodel.testbed import TestbedCostModel
from repro.traces.records import Request

TOPOLOGY = HierarchyTopology(clients_per_l1=1, l1_per_l2=2, n_l2=2)


def make_request(client, obj=1, version=0, size=1000, time=0.0):
    return Request(
        time=time, client_id=client, object_id=obj, size=size, version=version
    )


@pytest.fixture()
def hints():
    return HintHierarchy(TOPOLOGY, TestbedCostModel())


class TestAccessPaths:
    def test_miss_goes_straight_to_server(self, hints):
        result = hints.process(make_request(client=0))
        assert result.point is AccessPoint.SERVER
        assert result.time_ms >= hints.cost_model.via_l1_ms(AccessPoint.SERVER, 1000)

    def test_local_hit(self, hints):
        hints.process(make_request(client=0))
        result = hints.process(make_request(client=0))
        assert result.point is AccessPoint.L1
        assert result.time_ms == hints.cost_model.via_l1_ms(AccessPoint.L1, 1000)

    def test_sibling_copy_fetched_at_l2_distance(self, hints):
        hints.process(make_request(client=0))
        result = hints.process(make_request(client=1))
        assert result.point is AccessPoint.L2
        assert result.remote_hit
        assert result.time_ms == pytest.approx(
            hints.cost_model.via_l1_ms(AccessPoint.L2, 1000), rel=0.01
        )

    def test_cross_group_copy_fetched_at_l3_distance(self, hints):
        hints.process(make_request(client=0))
        result = hints.process(make_request(client=2))
        assert result.point is AccessPoint.L3

    def test_nearest_holder_preferred(self, hints):
        hints.process(make_request(client=2))  # copy at node 2 (other group)
        hints.process(make_request(client=1))  # copy at node 1 (same group as 0)
        result = hints.process(make_request(client=0))
        assert result.point is AccessPoint.L2  # node 1, not node 2

    def test_remote_fetch_stores_local_copy(self, hints):
        hints.process(make_request(client=0))
        hints.process(make_request(client=1))
        result = hints.process(make_request(client=1))
        assert result.point is AccessPoint.L1


class TestHintErrors:
    def test_false_negative_from_delay(self):
        hints = HintHierarchy(TOPOLOGY, TestbedCostModel(), hint_delay_s=3600.0)
        hints.process(make_request(client=0, time=0.0))
        result = hints.process(make_request(client=1, time=10.0))
        assert result.false_negative
        assert result.point is AccessPoint.SERVER
        # Misses are not slowed: no probe was paid.
        assert result.time_ms == pytest.approx(
            hints.cost_model.via_l1_ms(AccessPoint.SERVER, 1000), rel=0.01
        )

    def test_false_positive_from_delayed_removal(self):
        hints = HintHierarchy(
            TOPOLOGY, TestbedCostModel(), l1_bytes=1500, hint_delay_s=5.0
        )
        hints.process(make_request(client=0, obj=1, time=0.0))
        hints.process(make_request(client=0, obj=2, time=10.0))  # evicts obj 1
        # Node 1 sees the (stale) hint for node 0's evicted copy.
        result = hints.process(make_request(client=1, obj=1, time=12.0))
        assert result.false_positive
        assert result.point is AccessPoint.SERVER
        # The wasted probe is charged on top of the server fetch.
        assert result.time_ms > hints.cost_model.via_l1_ms(AccessPoint.SERVER, 1000)

    def test_stale_version_at_holder_is_false_positive(self, hints):
        hints.process(make_request(client=0, version=0))
        result = hints.process(make_request(client=1, version=1))
        assert result.false_positive
        # The holder invalidated its stale copy when probed.
        assert 1 not in hints.l1_caches[0]

    def test_eviction_retracts_hint(self):
        hints = HintHierarchy(TOPOLOGY, TestbedCostModel(), l1_bytes=1500)
        hints.process(make_request(client=0, obj=1))
        hints.process(make_request(client=0, obj=2))  # evicts obj 1
        assert hints.directory.truth_holders(1) == {}


class TestIdealPushAccounting:
    def test_remote_hits_charged_as_l1(self):
        ideal = HintHierarchy(TOPOLOGY, TestbedCostModel(), charge_remote_as_l1=True)
        ideal.process(make_request(client=0))
        result = ideal.process(make_request(client=2))
        assert result.point is AccessPoint.L1
        assert result.remote_hit
        assert result.time_ms == pytest.approx(
            ideal.cost_model.via_l1_ms(AccessPoint.L1, 1000), rel=0.01
        )

    def test_ideal_name(self):
        ideal = HintHierarchy(TOPOLOGY, TestbedCostModel(), charge_remote_as_l1=True)
        assert ideal.name == "hints-ideal-push"

    def test_misses_unchanged(self):
        ideal = HintHierarchy(TOPOLOGY, TestbedCostModel(), charge_remote_as_l1=True)
        result = ideal.process(make_request(client=0))
        assert result.point is AccessPoint.SERVER


class TestDirectoryIntegration:
    def test_inform_on_every_store(self, hints):
        hints.process(make_request(client=0, obj=5))
        assert hints.directory.truth_holders(5) == {0: 0}

    def test_hint_capacity_limits_reach(self):
        # A hint store of 4 entries (1 set x 4 ways) over many objects.
        hints = HintHierarchy(
            TOPOLOGY, TestbedCostModel(), hint_capacity_bytes=4 * 16
        )
        for obj in range(1, 9):
            hints.process(make_request(client=0, obj=obj))
        # Some displaced hints: node 1 cannot see every copy.
        invisible = 0
        for obj in range(1, 9):
            lookup = hints.directory.find(0.0, obj, requester=1)
            if not lookup.holders:
                invisible += 1
        assert invisible >= 4


class TestSuboptimalPositives:
    def test_optimal_selection_with_fresh_directory(self, hints):
        """An instant, unbounded directory always names the nearest copy."""
        hints.process(make_request(client=2))  # L3-distance copy
        hints.process(make_request(client=1))  # L2-distance copy
        result = hints.process(make_request(client=0))
        assert result.point is AccessPoint.L2
        assert not result.suboptimal_positive

    def test_stale_view_yields_suboptimal_positive(self):
        """With delayed propagation, a nearer new copy is invisible and the
        request hits a farther holder -- the section 3.1.1 error class."""
        hints = HintHierarchy(TOPOLOGY, TestbedCostModel(), hint_delay_s=100.0)
        hints.process(make_request(client=2, time=0.0))  # far copy (node 2)
        hints.process(make_request(client=1, time=300.0))  # near copy (node 1)
        # Node 1's copy is not yet visible at t=310; node 0 hits node 2.
        result = hints.process(make_request(client=0, time=310.0))
        assert result.point is AccessPoint.L3
        assert result.suboptimal_positive
        assert result.hit

    def test_metrics_count_suboptimal_positives(self):
        from repro.sim.metrics import SimMetrics

        hints = HintHierarchy(TOPOLOGY, TestbedCostModel(), hint_delay_s=100.0)
        metrics = SimMetrics()
        for request in (
            make_request(client=2, time=0.0),
            make_request(client=1, time=300.0),
            make_request(client=0, time=310.0),
        ):
            metrics.record(hints.process(request), request.size)
        assert metrics.suboptimal_positives == 1
