"""Tests for the client-side hint configuration (Figure 4b)."""

from __future__ import annotations

import pytest

from repro.hierarchy.client_hints import ClientHintHierarchy
from repro.hierarchy.topology import HierarchyTopology
from repro.netmodel.model import AccessPoint
from repro.netmodel.testbed import TestbedCostModel
from repro.traces.records import Request

TOPOLOGY = HierarchyTopology(clients_per_l1=1, l1_per_l2=2, n_l2=2)


def make_request(client, obj=1, version=0, size=1000, time=0.0):
    return Request(
        time=time, client_id=client, object_id=obj, size=size, version=version
    )


class TestDirectPaths:
    def test_local_hit_uses_direct_l1_time(self):
        arch = ClientHintHierarchy(TOPOLOGY, TestbedCostModel())
        arch.process(make_request(client=0))
        result = arch.process(make_request(client=0))
        assert result.point is AccessPoint.L1
        assert result.time_ms == arch.cost_model.direct_ms(AccessPoint.L1, 1000)

    def test_remote_hit_skips_the_l1_relay(self):
        arch = ClientHintHierarchy(TOPOLOGY, TestbedCostModel())
        arch.process(make_request(client=0))
        result = arch.process(make_request(client=1))
        assert result.point is AccessPoint.L2
        assert result.time_ms == arch.cost_model.direct_ms(AccessPoint.L2, 1000)

    def test_miss_goes_direct_to_server(self):
        arch = ClientHintHierarchy(TOPOLOGY, TestbedCostModel())
        result = arch.process(make_request(client=0))
        assert result.time_ms == arch.cost_model.direct_ms(AccessPoint.SERVER, 1000)

    def test_faster_than_proxy_config_when_complete(self):
        from repro.hierarchy.hint_hierarchy import HintHierarchy

        client_arch = ClientHintHierarchy(TOPOLOGY, TestbedCostModel())
        proxy_arch = HintHierarchy(TOPOLOGY, TestbedCostModel())
        requests = [make_request(client=c % 4, obj=c % 3) for c in range(30)]
        client_total = sum(client_arch.process(r).time_ms for r in requests)
        proxy_total = sum(proxy_arch.process(r).time_ms for r in requests)
        assert client_total < proxy_total


class TestFalseNegatives:
    def test_rate_zero_never_degrades(self):
        arch = ClientHintHierarchy(TOPOLOGY, TestbedCostModel())
        arch.process(make_request(client=0))
        for _ in range(20):
            assert not arch.process(make_request(client=1)).false_negative

    def test_rate_one_never_finds_remote_copies(self):
        arch = ClientHintHierarchy(
            TOPOLOGY, TestbedCostModel(), client_false_negative_rate=1.0
        )
        arch.process(make_request(client=0))
        result = arch.process(make_request(client=1))
        assert result.false_negative
        assert result.point is AccessPoint.SERVER

    def test_local_hits_survive_degradation(self):
        arch = ClientHintHierarchy(
            TOPOLOGY, TestbedCostModel(), client_false_negative_rate=1.0
        )
        arch.process(make_request(client=0))
        result = arch.process(make_request(client=0))
        assert result.point is AccessPoint.L1

    def test_seeded_runs_are_reproducible(self):
        def total(seed):
            arch = ClientHintHierarchy(
                TOPOLOGY, TestbedCostModel(),
                client_false_negative_rate=0.5, seed=seed,
            )
            requests = [make_request(client=c % 4, obj=c % 5) for c in range(50)]
            return sum(arch.process(r).time_ms for r in requests)

        assert total(3) == total(3)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            ClientHintHierarchy(
                TOPOLOGY, TestbedCostModel(), client_false_negative_rate=1.5
            )
