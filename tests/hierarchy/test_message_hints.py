"""Tests for the message-level hint architecture."""

from __future__ import annotations

import pytest

from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.hierarchy.message_hints import MessageLevelHintHierarchy
from repro.hierarchy.topology import HierarchyTopology
from repro.netmodel.model import AccessPoint
from repro.netmodel.testbed import TestbedCostModel
from repro.traces.records import Request

TOPOLOGY = HierarchyTopology(clients_per_l1=1, l1_per_l2=2, n_l2=2)


def make_request(client, obj=1, version=0, size=1000, time=0.0):
    return Request(
        time=time, client_id=client, object_id=obj, size=size, version=version
    )


def make_arch(**kwargs):
    defaults = dict(link_latency_s=0.1, max_period_s=5.0, seed=1)
    defaults.update(kwargs)
    return MessageLevelHintHierarchy(TOPOLOGY, TestbedCostModel(), **defaults)


class TestEmergentBehaviour:
    def test_local_hit(self):
        arch = make_arch()
        arch.process(make_request(client=0, time=0.0))
        result = arch.process(make_request(client=0, time=100.0))
        assert result.point is AccessPoint.L1

    def test_remote_hit_after_hints_propagate(self):
        arch = make_arch()
        arch.process(make_request(client=0, time=0.0))
        result = arch.process(make_request(client=1, time=300.0))
        assert result.point is AccessPoint.L2
        assert result.remote_hit

    def test_false_negative_before_hints_arrive(self):
        """A request racing the update batch misses to the server -- the
        emergent version of Figure 6's staleness effect."""
        arch = make_arch(max_period_s=1000.0)
        arch.process(make_request(client=0, time=0.0))
        result = arch.process(make_request(client=1, time=1.0))
        assert result.point is AccessPoint.SERVER
        assert result.false_negative
        assert arch.false_negative_misses == 1

    def test_false_positive_from_in_flight_invalidation(self):
        arch = make_arch(l1_bytes=1500, max_period_s=2.0)
        arch.process(make_request(client=0, obj=1, time=0.0))
        arch.process(make_request(client=1, obj=1, time=60.0))  # node 1 learns
        # Node 0 evicts obj 1; node 1's hint cache hasn't heard yet.
        arch.process(make_request(client=0, obj=2, time=120.0))
        # Node 1 dropped its own copy too?  No: node 1 has a local copy, so
        # use node 3 (never had it) as the victim of the stale hint.
        result = arch.process(make_request(client=3, obj=1, time=120.5))
        # Either it found node 1's copy (valid) or probed node 0 (stale).
        if result.false_positive:
            assert result.point is AccessPoint.SERVER
            assert arch.false_positive_probes == 1
        else:
            assert result.hit

    def test_eviction_advertises_non_presence(self):
        arch = make_arch(l1_bytes=1500, max_period_s=1.0)
        arch.process(make_request(client=0, obj=1, time=0.0))
        arch.process(make_request(client=0, obj=2, time=10.0))  # evicts obj 1
        # After propagation, no node believes node 0 still has obj 1.
        arch.cluster.run_until(120.0)
        found = arch.cluster.find_nearest(1, arch._hash_of(1), 120.0)
        assert found is None or found.node != 0


class TestAgainstModeledDirectory:
    def test_tracks_the_model_closely(self, tiny_config, dec_trace):
        """The mechanism must land within ~10% of the instant model and be
        strictly slower or equal (staleness can only hurt)."""
        from repro.sim.engine import run_simulation

        modeled = run_simulation(
            dec_trace, HintHierarchy(tiny_config.topology, TestbedCostModel())
        )
        mechanism = run_simulation(
            dec_trace,
            MessageLevelHintHierarchy(
                tiny_config.topology, TestbedCostModel(), seed=1
            ),
        )
        assert mechanism.mean_response_ms >= modeled.mean_response_ms * 0.99
        assert mechanism.mean_response_ms <= modeled.mean_response_ms * 1.15

    def test_emergent_hint_errors_are_counted(self, tiny_config, dec_trace):
        from repro.sim.engine import run_simulation

        arch = MessageLevelHintHierarchy(
            tiny_config.topology, TestbedCostModel(), seed=1
        )
        metrics = run_simulation(dec_trace, arch)
        # The architecture counters include warmup-window events, so they
        # bound the measured-window metrics from above.
        assert 0 < metrics.false_negatives <= arch.false_negative_misses
        assert 0 < metrics.false_positives <= arch.false_positive_probes


class TestConfiguration:
    def test_shorter_flush_period_reduces_false_negatives(
        self, tiny_config, dec_trace
    ):
        """Staleness-induced false negatives scale with the flush period.

        Note the baseline: even at near-instant flushing some false
        negatives remain -- those are the *single-record* pathology (a
        later inform overwrites the only slot; when that holder drops its
        copy, knowledge of the earlier holder is gone).  The flush period
        adds staleness false negatives on top.
        """
        from repro.sim.engine import run_simulation

        slow = MessageLevelHintHierarchy(
            tiny_config.topology, TestbedCostModel(), max_period_s=60_000.0, seed=1
        )
        fast = MessageLevelHintHierarchy(
            tiny_config.topology, TestbedCostModel(), max_period_s=60.0, seed=1
        )
        slow_metrics = run_simulation(dec_trace, slow)
        fast_metrics = run_simulation(dec_trace, fast)
        assert fast_metrics.false_negatives < slow_metrics.false_negatives
        assert fast_metrics.hit_ratio > slow_metrics.hit_ratio

    def test_name(self):
        assert make_arch().name == "hints-message-level"

    def test_rejects_bad_period(self):
        with pytest.raises(Exception):
            make_arch(max_period_s=0.0)
