"""Tests for the analytic hit-rate predictor (the audit's third oracle).

Covers the characteristic-time solver's contract (the capacity constraint
actually holds at the root), the closed-form edge cases (unbounded cache,
catalog-fits, single-access streams), and the headline property: on the
tiny trace, prediction and the production-cache measurement agree within
the documented tolerance for both tractable policies -- and *disagree*
beyond it across policies, so the audit check has teeth.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analytic import (
    PREDICTABLE_POLICIES,
    PREDICTOR_TOLERANCE,
    characteristic_time,
    measure_l1_hit_rate,
    predict_hit_rate,
    predict_l1_hit_rate,
)
from repro.cache.policy import PolicySpec

KB = 1024


@pytest.fixture(scope="module")
def zipfish():
    """A skewed per-object workload: counts ~ 1/rank, mixed sizes."""
    rng = np.random.default_rng(7)
    ranks = np.arange(1, 401)
    counts = np.maximum(1, (600 / ranks)).astype(np.int64)
    sizes = rng.integers(256, 64 * KB, size=ranks.size)
    return counts, sizes


class TestCharacteristicTime:
    @pytest.mark.parametrize("policy", PREDICTABLE_POLICIES)
    def test_root_satisfies_capacity_constraint(self, zipfish, policy):
        counts, sizes = zipfish
        probabilities = counts / counts.sum()
        capacity = int(sizes.sum() * 0.3)
        t = characteristic_time(probabilities, sizes, capacity, policy)
        assert math.isfinite(t) and t > 0
        occ = (
            -np.expm1(-probabilities * t)
            if policy == "lru"
            else (probabilities * t) / (1.0 + probabilities * t)
        )
        resident = float((sizes * occ).sum())
        assert resident == pytest.approx(capacity, rel=1e-6)

    def test_catalog_fits_gives_infinite_time(self, zipfish):
        counts, sizes = zipfish
        probabilities = counts / counts.sum()
        assert math.isinf(
            characteristic_time(probabilities, sizes, int(sizes.sum()), "lru")
        )

    @pytest.mark.parametrize("policy", PREDICTABLE_POLICIES)
    def test_monotone_in_capacity(self, zipfish, policy):
        counts, sizes = zipfish
        probabilities = counts / counts.sum()
        total = int(sizes.sum())
        times = [
            characteristic_time(probabilities, sizes, int(total * f), policy)
            for f in (0.1, 0.3, 0.6)
        ]
        assert times[0] < times[1] < times[2]


class TestPredictHitRate:
    @pytest.mark.parametrize("policy", PREDICTABLE_POLICIES)
    def test_monotone_in_capacity_and_bounded(self, zipfish, policy):
        counts, sizes = zipfish
        total = int(sizes.sum())
        rates = [
            predict_hit_rate(counts, sizes, int(total * f), policy).warm_hit_rate
            for f in (0.1, 0.4, 0.8)
        ]
        assert rates[0] < rates[1] < rates[2]
        assert all(0.0 <= r <= 1.0 for r in rates)

    def test_unbounded_and_fitting_caches_hit_every_warm_access(self, zipfish):
        counts, sizes = zipfish
        assert predict_hit_rate(counts, sizes, None).warm_hit_rate == 1.0
        fits = predict_hit_rate(counts, sizes, int(sizes.sum()))
        assert fits.warm_hit_rate == 1.0
        assert math.isinf(fits.characteristic_time)

    def test_lru_beats_random_on_skewed_streams(self, zipfish):
        # Che vs TTL: popularity-aware retention wins under Zipf skew.
        counts, sizes = zipfish
        capacity = int(sizes.sum() * 0.25)
        lru = predict_hit_rate(counts, sizes, capacity, "lru").warm_hit_rate
        rnd = predict_hit_rate(counts, sizes, capacity, "random").warm_hit_rate
        assert lru > rnd

    def test_single_access_stream_has_no_warm_accesses(self):
        prediction = predict_hit_rate(
            np.ones(10), np.full(10, 1000), 2000, "lru"
        )
        assert prediction.warm_accesses == 0
        assert prediction.warm_hit_rate == 1.0

    def test_rejects_unmodelled_policy_and_shape_mismatch(self, zipfish):
        counts, sizes = zipfish
        with pytest.raises(ValueError, match="no analytic model"):
            predict_hit_rate(counts, sizes, 1000, "lfu")
        with pytest.raises(ValueError, match="parallel"):
            predict_hit_rate(counts[:-1], sizes, 1000)


class TestAgainstSimulation:
    @pytest.mark.parametrize("policy", PREDICTABLE_POLICIES)
    def test_agrees_with_production_caches_within_tolerance(
        self, policy, tiny_config, dec_trace
    ):
        """The audit gate's property: on exchangeable-shuffled substreams
        (the IRM regime the formulas model), prediction and the real
        cache classes agree within the documented tolerance."""
        capacity = tiny_config.l1_cache_bytes
        predicted = predict_l1_hit_rate(
            dec_trace, tiny_config.topology, capacity, policy
        )
        measured = measure_l1_hit_rate(
            dec_trace,
            tiny_config.topology,
            capacity,
            PolicySpec(policy, seed=3),
            shuffle_seed=2024,
        )
        assert measured.warm_accesses == predicted.warm_accesses > 0
        delta = abs(predicted.warm_hit_rate - measured.warm_hit_rate)
        assert delta <= PREDICTOR_TOLERANCE

    def test_check_discriminates_between_policies(self, tiny_config, dec_trace):
        """Teeth: at a tight capacity the LRU prediction disagrees with a
        *Random* cache by more than the tolerance, so a cache running the
        wrong victim selection cannot slip through the audit."""
        capacity = 512 * KB
        lru_prediction = predict_l1_hit_rate(
            dec_trace, tiny_config.topology, capacity, "lru"
        )
        random_measured = measure_l1_hit_rate(
            dec_trace,
            tiny_config.topology,
            capacity,
            PolicySpec("random", seed=3),
            shuffle_seed=2024,
        )
        assert (
            abs(lru_prediction.warm_hit_rate - random_measured.warm_hit_rate)
            > PREDICTOR_TOLERANCE
        )

    def test_in_order_replay_reads_above_the_lru_prediction(
        self, tiny_config, dec_trace
    ):
        """Documented direction of the IRM approximation error: the real
        stream's temporal locality helps LRU, so the unshuffled
        measurement sits at or above the Che prediction."""
        capacity = tiny_config.l1_cache_bytes
        predicted = predict_l1_hit_rate(
            dec_trace, tiny_config.topology, capacity, "lru"
        )
        in_order = measure_l1_hit_rate(
            dec_trace, tiny_config.topology, capacity, PolicySpec("lru")
        )
        assert in_order.warm_hit_rate >= predicted.warm_hit_rate

    def test_unbounded_measurement_hits_every_warm_access(
        self, tiny_config, dec_trace
    ):
        measured = measure_l1_hit_rate(
            dec_trace, tiny_config.topology, None, PolicySpec("lru")
        )
        assert measured.warm_hit_rate == 1.0
