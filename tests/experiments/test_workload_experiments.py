"""Shape tests for the workload experiments (Table 4, Figures 2 and 3)."""

from __future__ import annotations

import pytest

from repro.experiments import figure2, figure3, table4
from tests.conftest import make_tiny_config


@pytest.fixture(scope="module")
def config():
    return make_tiny_config()


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return table4.run(make_tiny_config())

    def test_three_traces(self, result):
        assert [row["trace"] for row in result.rows] == ["dec", "berkeley", "prodigy"]

    def test_distinct_ratio_matches_paper(self, result):
        for row in result.rows:
            assert row["distinct_ratio"] == pytest.approx(
                row["paper_distinct_ratio"], rel=0.2
            )

    def test_days_match_paper(self, result):
        days = {row["trace"]: row["days"] for row in result.rows}
        assert days["dec"] == pytest.approx(21, rel=0.05)
        assert days["prodigy"] == pytest.approx(3, rel=0.05)

    def test_berkeley_more_uncachable_than_dec(self, result):
        by_trace = {row["trace"]: row for row in result.rows}
        assert (
            by_trace["berkeley"]["uncachable_frac"]
            > by_trace["dec"]["uncachable_frac"]
        )


class TestFigure2:
    @pytest.fixture(scope="class")
    def result(self):
        return figure2.run(make_tiny_config())

    def rows_for(self, result, trace):
        return [row for row in result.rows if row["trace"] == trace]

    def test_total_miss_decreases_with_cache_size(self, result):
        for trace in ("dec", "berkeley", "prodigy"):
            totals = [row["total_miss"] for row in self.rows_for(result, trace)]
            assert all(a >= b - 1e-9 for a, b in zip(totals, totals[1:]))

    def test_capacity_misses_vanish_at_infinite_size(self, result):
        for trace in ("dec", "berkeley", "prodigy"):
            infinite = self.rows_for(result, trace)[-1]
            assert infinite["capacity"] == 0.0

    def test_compulsory_dominates_in_large_caches(self, result):
        infinite = self.rows_for(result, "dec")[-1]
        others = (
            infinite["communication"] + infinite["error"] + infinite["uncachable"]
        )
        assert infinite["compulsory"] > others

    def test_compulsory_independent_of_cache_size(self, result):
        values = {row["compulsory"] for row in self.rows_for(result, "dec")}
        assert max(values) - min(values) < 0.02

    def test_byte_ratios_present_and_bounded(self, result):
        for row in result.rows:
            assert 0.0 <= row["total_byte_miss"] <= 1.0


class TestFigure3:
    @pytest.fixture(scope="class")
    def result(self):
        return figure3.run(make_tiny_config())

    def test_hit_ratio_grows_with_sharing(self, result):
        for row in result.rows:
            assert row["l1_hit_ratio"] < row["l2_hit_ratio"] < row["l3_hit_ratio"]

    def test_byte_ratios_also_grow(self, result):
        for row in result.rows:
            assert row["l1_byte_hit"] <= row["l2_byte_hit"] <= row["l3_byte_hit"]

    def test_all_traces_present(self, result):
        assert len(result.rows) == 3
