"""Tests for experiment-result export."""

from __future__ import annotations

import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.cli import main
from repro.reporting.export import (
    load_result,
    result_from_json,
    result_to_csv,
    result_to_json,
    save_result,
)


@pytest.fixture()
def result():
    return ExperimentResult(
        experiment="demo",
        description="a demo result",
        rows=[{"a": 1, "b": 2.5}, {"a": 3, "c": "x"}],
        paper_claims={"claim": "value"},
        notes=["note"],
        chart_spec={"kind": "xy", "x": "a", "y": ["b"]},
    )


class TestJson:
    def test_round_trip(self, result):
        loaded = result_from_json(result_to_json(result))
        assert loaded.experiment == "demo"
        assert loaded.rows == result.rows
        assert loaded.paper_claims == result.paper_claims
        assert loaded.chart_spec == result.chart_spec

    def test_file_round_trip(self, result, tmp_path):
        path = tmp_path / "demo.json"
        save_result(result, path)
        assert load_result(path).rows == result.rows


class TestCsv:
    def test_header_is_union_of_columns(self, result):
        text = result_to_csv(result)
        header = text.splitlines()[0]
        assert header == "a,b,c"

    def test_rows_serialized(self, result):
        lines = result_to_csv(result).splitlines()
        assert lines[1] == "1,2.5,"
        assert lines[2] == "3,,x"

    def test_csv_cannot_be_loaded_back(self, tmp_path, result):
        path = tmp_path / "demo.csv"
        save_result(result, path)
        with pytest.raises(ValueError):
            load_result(path)

    def test_unknown_extension_rejected(self, result, tmp_path):
        with pytest.raises(ValueError):
            save_result(result, tmp_path / "demo.xlsx")


class TestCliExport:
    def test_export_dir_writes_both_formats(self, tmp_path, capsys):
        out = tmp_path / "exports"
        assert main(["figure1", "--export-dir", str(out)]) == 0
        assert (out / "figure1.json").exists()
        assert (out / "figure1.csv").exists()
        loaded = load_result(out / "figure1.json")
        assert loaded.experiment == "figure1"
        assert len(loaded.rows) == 10
