"""Shape tests for the hint-system experiments (Figures 5, 6; Table 5)."""

from __future__ import annotations

import pytest

from repro.experiments import figure5, figure6, table5
from tests.conftest import make_tiny_config


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return figure5.run(make_tiny_config())

    def test_hit_rate_grows_with_hint_capacity(self, result):
        ratios = [row["hit_ratio"] for row in result.rows]
        assert ratios[0] < ratios[-1]
        # Loosely monotone: each step within noise of the previous.
        assert all(b >= a - 0.02 for a, b in zip(ratios, ratios[1:]))

    def test_full_index_matches_unbounded(self, result):
        # A hint cache big enough for every distinct object behaves like
        # the unbounded one.
        bounded = result.rows[-2]["hit_ratio"]
        unbounded = result.rows[-1]["hit_ratio"]
        assert bounded == pytest.approx(unbounded, abs=0.02)

    def test_false_negatives_shrink_with_capacity(self, result):
        negatives = [row["false_negatives"] for row in result.rows]
        assert negatives[0] > negatives[-1]
        assert negatives[-1] == 0

    def test_tiny_hint_cache_still_beats_nothing(self, result):
        # Even 0.5% of the index gives the local hit rate or better.
        assert result.rows[0]["hit_ratio"] > 0.0


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self):
        return figure6.run(make_tiny_config())

    def test_delay_axis_matches_paper_range(self, result):
        delays = [row["delay_minutes"] for row in result.rows]
        assert delays[0] == 0.0
        assert delays[-1] == 1000.0

    def test_hit_rate_degrades_with_delay(self, result):
        ratios = [row["hit_ratio"] for row in result.rows]
        assert ratios[0] > ratios[-1]
        assert all(b <= a + 0.005 for a, b in zip(ratios, ratios[1:]))

    def test_few_minutes_delay_is_tolerable(self, result):
        """The paper's claim: minutes of delay cost almost nothing."""
        instant = result.rows[0]["hit_ratio"]
        five_minutes = next(
            row for row in result.rows if row["delay_minutes"] == 5.0
        )["hit_ratio"]
        assert five_minutes >= instant - 0.02

    def test_false_negatives_grow_with_delay(self, result):
        negatives = [row["false_negatives"] for row in result.rows]
        assert negatives[-1] > negatives[0]


class TestTable5:
    @pytest.fixture(scope="class")
    def result(self):
        return table5.run(make_tiny_config())

    def test_two_organizations(self, result):
        assert [row["organization"] for row in result.rows] == [
            "centralized directory",
            "hierarchy",
        ]

    def test_hierarchy_filters_updates(self, result):
        central, hierarchy = result.rows
        assert hierarchy["root_updates"] < central["root_updates"]

    def test_bandwidth_uses_20_byte_updates(self, result):
        for row in result.rows:
            assert row["bandwidth_bytes_per_s"] == pytest.approx(
                row["updates_per_s"] * 20
            )

    def test_reduction_factor_reported(self, result):
        assert "measured reduction here" in result.paper_claims
