"""Tests for the cost-model-only experiments (Figure 1, Table 3)."""

from __future__ import annotations

import pytest

from repro.experiments import figure1, table3


class TestFigure1:
    @pytest.fixture(scope="class")
    def result(self):
        return figure1.run()

    def test_covers_all_paper_sizes(self, result):
        sizes = [row["size_kb"] for row in result.rows]
        assert sizes == list(figure1.SIZES_KB)
        assert sizes[0] == 2 and sizes[-1] == 1024

    def test_panel_a_monotone_in_depth(self, result):
        for row in result.rows:
            assert (
                row["hier_l1_ms"]
                < row["hier_l2_ms"]
                < row["hier_l3_ms"]
                < row["hier_server_ms"]
            )

    def test_direct_cheaper_than_hierarchy_beyond_l1(self, result):
        for row in result.rows:
            assert row["direct_l3_ms"] < row["hier_l3_ms"]
            assert row["direct_server_ms"] < row["hier_server_ms"]

    def test_anchor_claims_recorded(self, result):
        assert "545 ms" in result.paper_claims["8KB L3 hierarchy-vs-direct gap"]

    def test_render_produces_table(self, result):
        text = result.render()
        assert "figure1" in text
        assert "size_kb" in text


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return table3.run()

    def test_has_four_levels(self, result):
        assert [row["level"] for row in result.rows] == [
            "Leaf", "Intermediate", "Root", "Miss",
        ]

    def test_exact_published_totals(self, result):
        by_level = {row["level"]: row for row in result.rows}
        assert by_level["Leaf"]["hier_min"] == 163
        assert by_level["Intermediate"]["hier_max"] == 2767
        assert by_level["Root"]["via_l1_min"] == 411
        assert by_level["Miss"]["hier_max"] == 7217
        assert by_level["Miss"]["direct_min"] == 550

    def test_component_columns_present(self, result):
        leaf = result.rows[0]
        assert leaf["connect_min"] == 16.0
        assert leaf["disk_max"] == 135.0
