"""The failure_sensitivity experiment: registration, determinism, fail-soft."""

from __future__ import annotations

import pytest

from repro.experiments import failure_sensitivity
from repro.experiments.cli import main as cli_main
from repro.experiments.registry import all_experiments, get_experiment
from tests.conftest import make_tiny_config


@pytest.fixture(scope="module")
def result():
    return failure_sensitivity.run(make_tiny_config())


class TestRegistration:
    def test_registered(self):
        assert "failure_sensitivity" in all_experiments()
        assert get_experiment("failure_sensitivity") is failure_sensitivity.run


class TestPlans:
    def test_rate_zero_is_clean(self):
        config = make_tiny_config()
        assert failure_sensitivity.plan_for_rate(config, 1000.0, 0.0, 0) is None

    def test_plans_are_deterministic_and_distinct_per_point(self):
        config = make_tiny_config()
        first = failure_sensitivity.plan_for_rate(config, 1000.0, 2.0, 1)
        again = failure_sensitivity.plan_for_rate(config, 1000.0, 2.0, 1)
        other = failure_sensitivity.plan_for_rate(config, 1000.0, 2.0, 2)
        assert first == again
        assert first != other

    def test_targets_cover_every_population(self):
        config = make_tiny_config()
        kinds = {kind for kind, _node in failure_sensitivity.fault_targets(config)}
        assert kinds == {"l1", "l2", "l3", "meta"}


class TestResult:
    def test_sweep_shape(self, result):
        assert [row["crashes_per_node"] for row in result.rows] == list(
            failure_sensitivity.CRASH_RATES
        )
        for row in result.rows:
            for name in ("hierarchy", "hints", "directory"):
                assert f"{name}_ms" in row
                assert f"{name}_degradation_ms" in row

    def test_baseline_row_is_clean(self, result):
        baseline = result.rows[0]
        assert baseline["crashes_per_node"] == 0.0
        for name in ("hierarchy", "hints", "directory"):
            assert baseline[f"{name}_degradation_ms"] == 0.0
        assert baseline["hierarchy_timeouts"] == 0
        assert baseline["directory_timeouts"] == 0

    def test_crashes_degrade_everyone(self, result):
        worst = result.rows[-1]
        for name in ("hierarchy", "hints", "directory"):
            assert worst[f"{name}_degradation_ms"] > 0.0
        assert worst["hierarchy_timeouts"] > 0
        assert worst["hints_stale_forwards"] > 0

    def test_hints_fail_soft(self, result):
        """The ISSUE's acceptance claim: at the highest crash rate the
        hint architecture degrades strictly less than the data hierarchy."""
        worst = result.rows[-1]
        assert (
            worst["hints_degradation_ms"] < worst["hierarchy_degradation_ms"]
        )
        assert not any("claim violated" in note for note in result.notes)

    def test_deterministic(self, result):
        assert failure_sensitivity.run(make_tiny_config()).rows == result.rows


class TestCli:
    def test_accepts_leading_run_verb(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        # `python -m repro.experiments run <name>` and `<name>` both work.
        code = cli_main(["run", "--list"])
        assert code == 0
        assert "failure_sensitivity" in capsys.readouterr().out
