"""Shape tests for the headline experiments (Figure 8, Table 6)."""

from __future__ import annotations

import pytest

from repro.experiments import figure8, table6
from tests.conftest import make_tiny_config


class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self):
        return figure8.run(make_tiny_config())

    def test_full_grid_present(self, result):
        assert len(result.rows) == 3 * 2 * 3  # traces x disks x cost models

    def test_hints_beat_hierarchy_everywhere(self, result):
        """The paper's central result."""
        for row in result.rows:
            assert row["hints_ms"] < row["hierarchy_ms"], row

    def test_directory_lands_between(self, result):
        for row in result.rows:
            assert row["hints_ms"] <= row["directory_ms"] + 1e-9, row
            assert row["directory_ms"] <= row["hierarchy_ms"] + 1e-9, row

    def test_speedup_band_reasonable(self, result):
        """Paper band is 1.28-2.79; scaled runs must stay in a sane band."""
        for row in result.rows:
            assert 1.05 < row["speedup_hints"] < 4.0, row

    def test_max_times_dominate_min_times(self, result):
        by_key = {
            (row["trace"], row["disk"], row["cost_model"]): row for row in result.rows
        }
        for trace in ("dec", "berkeley", "prodigy"):
            for disk in ("infinite", "constrained"):
                low = by_key[(trace, disk, "min")]
                high = by_key[(trace, disk, "max")]
                assert high["hierarchy_ms"] > low["hierarchy_ms"]
                assert high["hints_ms"] > low["hints_ms"]

    def test_constrained_hurts_hierarchy_more(self, result):
        """The hint architecture pools one copy per object at the leaves,
        so the space crunch falls harder on the triple-caching hierarchy."""
        by_key = {
            (row["trace"], row["disk"], row["cost_model"]): row for row in result.rows
        }
        for trace in ("dec", "berkeley", "prodigy"):
            infinite = by_key[(trace, "infinite", "testbed")]
            constrained = by_key[(trace, "constrained", "testbed")]
            assert constrained["speedup_hints"] >= infinite["speedup_hints"] * 0.9


class TestTable6:
    @pytest.fixture(scope="class")
    def result(self):
        return table6.run(make_tiny_config())

    def test_three_traces(self, result):
        assert len(result.rows) == 3

    def test_all_speedups_exceed_one(self, result):
        for row in result.rows:
            for model in ("max", "min", "testbed"):
                assert row[model] > 1.0

    def test_testbed_shows_largest_speedup(self, result):
        """Paper ordering: testbed > max > min for every trace."""
        for row in result.rows:
            assert row["testbed"] > row["max"] > row["min"]

    def test_paper_columns_present(self, result):
        for row in result.rows:
            assert row["paper_testbed"] in (2.31, 2.79, 1.99)
