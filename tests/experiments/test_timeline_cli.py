"""The ``timeline`` CLI verb: exports, validation, and flag guards."""

from __future__ import annotations

import pytest

from repro.experiments.cli import main
from repro.obs.export import (
    check_prometheus_text,
    check_timeline_rows,
    read_timeline_jsonl,
)


@pytest.fixture(scope="module")
def outputs(tmp_path_factory):
    """One tiny timeline run shared by the assertions below."""
    out = tmp_path_factory.mktemp("timeline")
    jsonl = out / "timeline.jsonl"
    prom = out / "metrics.prom"
    status = main(
        [
            "timeline",
            "--scale", "0.0002",
            "--timeline", str(jsonl),
            "--prometheus", str(prom),
        ]
    )
    return status, jsonl, prom


class TestTimelineVerb:
    def test_exits_cleanly(self, outputs):
        assert outputs[0] == 0

    def test_jsonl_rows_valid_for_all_architectures(self, outputs):
        rows = read_timeline_jsonl(str(outputs[1]))
        assert check_timeline_rows(rows) == []
        assert {row["arch"] for row in rows} == {
            "hierarchy", "icp", "hints", "directory",
        }

    def test_prometheus_exposition_valid(self, outputs):
        problems = check_prometheus_text(outputs[2].read_text())
        assert problems == []

    def test_exported_rows_render_chart_and_convergence(self, outputs):
        from repro.obs.telemetry import warmup_convergence
        from repro.reporting.timeline import render_hit_rate_chart

        rows = read_timeline_jsonl(str(outputs[1]))
        assert "hit rate" in render_hit_rate_chart(rows)
        hierarchy = [row for row in rows if row["arch"] == "hierarchy"]
        assert "L1 hit rate" in warmup_convergence(hierarchy).summary_line()

    def test_csv_extension_switches_format(self, tmp_path):
        out = tmp_path / "timeline.csv"
        assert main(["timeline", "--scale", "0.0002", "--timeline", str(out)]) == 0
        header = out.read_text().splitlines()[0]
        assert header.startswith("arch,bin,t_start,t_end")


class TestGuards:
    def test_timeline_takes_no_experiment_names(self):
        assert main(["timeline", "figure1"]) == 2

    def test_timeline_flag_requires_verb(self):
        assert main(["figure1", "--timeline", "x.jsonl"]) == 2

    def test_prometheus_flag_requires_verb(self):
        assert main(["figure1", "--prometheus", "x.prom"]) == 2

    def test_bin_must_be_positive(self):
        assert main(["timeline", "--bin", "0"]) == 2

    def test_engine_fast_matches_reference(self, tmp_path):
        # Every standard architecture (incl. ICP/directory) now has a
        # vectorized kernel, so 'fast' is legal for the standard four and
        # must produce identical timeline rows.
        rows = {}
        for engine in ("reference", "fast", "auto"):
            out = tmp_path / f"{engine}.jsonl"
            assert main(
                ["timeline", "--scale", "0.0002",
                 "--engine", engine, "--timeline", str(out)]
            ) == 0
            rows[engine] = read_timeline_jsonl(out)
        assert rows["reference"] == rows["fast"]
        assert rows["reference"] == rows["auto"]
