"""Shape tests for the load-sensitivity experiment."""

from __future__ import annotations

import pytest

from repro.experiments import load_sensitivity
from tests.conftest import make_tiny_config


@pytest.fixture(scope="module")
def result():
    return load_sensitivity.run(make_tiny_config())


class TestLoadSensitivity:
    def test_covers_idle_through_saturation(self, result):
        loads = [row["load"] for row in result.rows]
        assert loads[0] == 0.0
        assert loads[-1] >= 0.9

    def test_response_times_grow_with_load(self, result):
        for column in ("hierarchy_ms", "hints_ms"):
            values = [row[column] for row in result.rows]
            assert values == sorted(values)

    def test_speedup_grows_with_load(self, result):
        """The paper's 2.1.1 hypothesis: hop reduction matters more when
        caches are busy."""
        speedups = [row["speedup"] for row in result.rows]
        assert all(b >= a - 0.01 for a, b in zip(speedups, speedups[1:]))
        assert speedups[-1] > speedups[0] * 1.3

    def test_hints_always_win(self, result):
        for row in result.rows:
            assert row["speedup"] > 1.0

    def test_chart_available(self, result):
        chart = result.render_chart()
        assert chart is not None
        assert "speedup" in chart
