"""Shape tests for client-hints, ablations, registry and CLI."""

from __future__ import annotations

import pytest

from repro.experiments import ablations, client_hints
from repro.experiments.cli import main
from repro.experiments.registry import all_experiments, get_experiment
from tests.conftest import make_tiny_config


class TestClientHints:
    @pytest.fixture(scope="class")
    def result(self):
        return client_hints.run(make_tiny_config())

    def test_complete_client_hints_beat_proxy_hints(self, result):
        """The Figure 4b advantage: skipping the L1 relay is faster."""
        complete = result.rows[0]
        assert complete["client_fn_rate"] == 0.0
        assert complete["client_superior"]

    def test_useless_client_hints_lose(self, result):
        assert not result.rows[-1]["client_superior"]

    def test_response_time_monotone_in_fn_rate(self, result):
        times = [row["client_config_ms"] for row in result.rows]
        assert all(b >= a - 1.0 for a, b in zip(times, times[1:]))

    def test_crossover_recorded(self, result):
        assert "measured crossover here" in result.paper_claims


class TestAblations:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.run(make_tiny_config())

    def test_all_seven_studies_present(self, result):
        studies = {row["study"] for row in result.rows}
        assert studies == {
            "ablation_icp",
            "ablation_fanout",
            "ablation_branching",
            "ablation_consistency",
            "ablation_plaxton_load",
            "ablation_negative_caching",
            "ablation_push_locality",
        }

    def test_push_locality_shifts_remote_hits_to_l2(self, result):
        rows = [
            row for row in result.rows
            if row["study"] == "ablation_push_locality"
        ]
        by_key = {(row["workload"], row["system"]): row for row in rows}
        assert (
            by_key[("regional interest", "hints")]["l2_share_of_remote"]
            > by_key[("global interest", "hints")]["l2_share_of_remote"]
        )
        # Pushes pay off more where interest is regional.
        assert (
            by_key[("regional interest", "hints+push-1")]["push_efficiency"]
            >= by_key[("global interest", "hints+push-1")]["push_efficiency"] * 0.9
        )

    def test_negative_caching_saves_contacts(self, result):
        rows = [
            row for row in result.rows
            if row["study"] == "ablation_negative_caching"
        ]
        assert rows[0]["saved_frac"] == 0.0  # no-cache baseline
        shared = [row for row in rows if row["organization"] == "hint-shared"]
        local = [row for row in rows if row["organization"] == "per-proxy"]
        # Sharing negative results reaches repeats local caches cannot.
        for shared_row, local_row in zip(shared, local):
            assert shared_row["saved_frac"] >= local_row["saved_frac"]
        # At the day-long TTL the shared cache saves real traffic.
        assert shared[-1]["saved_frac"] > 0.0

    def test_plaxton_fabric_spreads_the_load(self, result):
        rows = {
            row["organization"]: row
            for row in result.rows
            if row["study"] == "ablation_plaxton_load"
        }
        assert (
            rows["plaxton fabric"]["busiest_node_messages"]
            < rows["fixed balanced tree"]["busiest_node_messages"]
        )

    def test_icp_slower_than_hints(self, result):
        icp_rows = {
            row["architecture"]: row
            for row in result.rows
            if row["study"] == "ablation_icp"
        }
        assert icp_rows["hints"]["mean_response_ms"] < icp_rows["icp"]["mean_response_ms"]

    def test_fanout_speedups_all_exceed_one(self, result):
        for row in result.rows:
            if row["study"] == "ablation_fanout":
                assert row["speedup"] > 1.0

    def test_branching_filter_ratios_at_least_one(self, result):
        for row in result.rows:
            if row["study"] == "ablation_branching":
                assert row["filter_ratio"] >= 1.0

    def test_consistency_distortion_both_ways(self, result):
        rows = {
            row["consistency"]: row
            for row in result.rows
            if row["study"] == "ablation_consistency"
        }
        strong = rows["strong (invalidation)"]
        assert strong["stale_hits_served"] == 0
        assert strong["fresh_discards"] == 0
        for name, row in rows.items():
            if name.startswith("weak"):
                assert row["stale_hits_served"] > 0
                assert row["fresh_discards"] > 0
        # Longer TTLs serve more stale data but discard less good data.
        short = rows["weak (TTL 0.5 days)"]
        long = rows["weak (TTL 8 days)"]
        assert long["stale_hits_served"] > short["stale_hits_served"]
        assert long["fresh_discards"] < short["fresh_discards"]


class TestRegistry:
    def test_every_name_resolves(self):
        for name in all_experiments():
            assert callable(get_experiment(name))

    def test_twenty_experiments_registered(self):
        assert len(all_experiments()) == 20

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("figure99")


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "figure8" in output
        assert "table6" in output

    def test_no_arguments_is_an_error(self, capsys):
        assert main([]) == 2

    def test_unknown_experiment_is_an_error(self, capsys):
        assert main(["figure99"]) == 2

    def test_runs_a_cheap_experiment(self, capsys):
        assert main(["figure1"]) == 0
        output = capsys.readouterr().out
        assert "testbed access times" in output
        assert "completed in" in output

    def test_chart_flag_renders_chart(self, capsys):
        assert main(["figure1", "--chart"]) == 0
        output = capsys.readouterr().out
        assert "o=hier_l3_ms" in output

    def test_profile_flag_threads_through(self, capsys):
        assert main(["figure5", "--profile", "prodigy", "--scale", "0.0005"]) == 0
        output = capsys.readouterr().out
        assert "prodigy trace" in output

    def test_profile_flag_ignored_by_sweeping_experiments(self, capsys):
        # table4 sweeps all traces and takes no profile_name; must not crash.
        assert main(["table4", "--profile", "berkeley", "--scale", "0.0002"]) == 0

    def test_decompose_prints_latency_table(self, capsys, tmp_path):
        out = tmp_path / "j.jsonl"
        assert main(["decompose", "--scale", "0.0002", "--journeys", str(out)]) == 0
        output = capsys.readouterr().out
        assert "latency decomposition" in output
        for column in ("origin_fetch", "level_traversal", "mean_ms"):
            assert column in output
        lines = out.read_text().splitlines()
        assert lines  # every measured request of all four architectures
        import json as _json

        arches = {_json.loads(line)["arch"] for line in lines}
        assert arches == {"hierarchy", "icp", "hints", "directory"}

    def test_decompose_takes_no_experiment_names(self, capsys):
        assert main(["decompose", "figure1"]) == 2

    def test_journeys_requires_decompose(self, capsys):
        assert main(["figure1", "--journeys", "x.jsonl"]) == 2
