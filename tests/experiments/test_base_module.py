"""Tests for the experiment plumbing (result type, memoization, charts)."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_config, trace_for
from repro.sim.config import default_config
from tests.conftest import make_tiny_config


class TestResolveConfig:
    def test_none_gives_default(self):
        assert resolve_config(None) == default_config()

    def test_passthrough(self):
        config = make_tiny_config()
        assert resolve_config(config) is config


class TestTraceMemoization:
    def test_same_config_returns_same_object(self):
        config = make_tiny_config()
        assert trace_for(config, "dec") is trace_for(config, "dec")

    def test_different_profiles_differ(self):
        config = make_tiny_config()
        assert trace_for(config, "dec") is not trace_for(config, "prodigy")

    def test_different_seeds_differ(self):
        a = make_tiny_config(seed=1)
        b = make_tiny_config(seed=2)
        assert trace_for(a, "dec") is not trace_for(b, "dec")


class TestRenderChart:
    def make_result(self, spec, rows):
        return ExperimentResult(
            experiment="x", description="d", rows=rows, chart_spec=spec
        )

    def test_no_spec_no_chart(self):
        assert self.make_result(None, [{"a": 1}]).render_chart() is None

    def test_xy_chart(self):
        result = self.make_result(
            {"kind": "xy", "x": "x", "y": ["y"]},
            [{"x": 1, "y": 2.0}, {"x": 2, "y": 3.0}],
        )
        chart = result.render_chart()
        assert "o=y" in chart

    def test_xy_chart_skips_non_numeric_cells(self):
        result = self.make_result(
            {"kind": "xy", "x": "x", "y": ["y"]},
            [{"x": "inf", "y": 2.0}, {"x": 1, "y": 3.0}],
        )
        assert result.render_chart() is not None

    def test_log_x_skips_zero(self):
        result = self.make_result(
            {"kind": "xy", "x": "x", "y": ["y"], "log_x": True},
            [{"x": 0.0, "y": 1.0}, {"x": 1.0, "y": 2.0}, {"x": 10.0, "y": 3.0}],
        )
        assert result.render_chart() is not None

    def test_grouped_series(self):
        result = self.make_result(
            {"kind": "xy", "x": "x", "y": ["y"], "group": "g"},
            [
                {"x": 1, "y": 1.0, "g": "a"},
                {"x": 1, "y": 2.0, "g": "b"},
            ],
        )
        chart = result.render_chart()
        assert "o=a" in chart and "x=b" in chart

    def test_bar_chart(self):
        result = self.make_result(
            {"kind": "bars", "label": "name", "value": "ms"},
            [{"name": "fast", "ms": 1.0}, {"name": "slow", "ms": 5.0}],
        )
        chart = result.render_chart()
        assert "fast" in chart and "slow" in chart


class TestRender:
    def test_render_includes_all_sections(self):
        result = ExperimentResult(
            experiment="x",
            description="desc",
            rows=[{"a": 1}],
            paper_claims={"claim": "value"},
            notes=["a note"],
        )
        text = result.render()
        assert "x: desc" in text
        assert "claim: value" in text
        assert "a note" in text
