"""Tests for table and chart rendering."""

from __future__ import annotations

import pytest

from repro.reporting.charts import render_bars, render_series
from repro.reporting.tables import format_series, format_table


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(
            [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "22" in text

    def test_heterogeneous_rows_union_columns(self):
        text = format_table([{"a": 1}, {"b": 2}])
        header = text.splitlines()[0]
        assert "a" in header and "b" in header

    def test_explicit_column_order(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_float_formatting(self):
        text = format_table([{"v": 0.12345}, {"v": 1234.5}])
        assert "0.1234" in text or "0.1235" in text
        assert "1,234" in text or "1,235" in text

    def test_format_series(self):
        text = format_series([(1, 2.0)], x_label="size", y_label="ms")
        assert "size" in text and "ms" in text


class TestRenderSeries:
    def test_contains_glyphs_and_legend(self):
        text = render_series(
            {"hits": [(1, 0.2), (10, 0.5), (100, 0.8)]},
            title="figure5",
            log_x=True,
        )
        assert "figure5" in text
        assert "o=hits" in text
        assert "log x" in text

    def test_multiple_series_get_distinct_glyphs(self):
        text = render_series(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]}
        )
        assert "o=a" in text
        assert "x=b" in text

    def test_monotone_series_has_high_point_right(self):
        text = render_series({"s": [(0, 0.0), (1, 1.0)]}, width=10, height=5)
        plot_lines = [line for line in text.splitlines() if line.startswith("|")]
        assert "o" in plot_lines[0]  # max y in the top row
        assert plot_lines[0].rindex("o") > plot_lines[-1].index("o")

    def test_log_axis_rejects_non_positive(self):
        with pytest.raises(ValueError):
            render_series({"s": [(0.0, 1.0), (10.0, 2.0)]}, log_x=True)

    def test_empty(self):
        assert "(no data)" in render_series({})


class TestRenderBars:
    def test_longest_bar_for_largest_value(self):
        text = render_bars({"small": 1.0, "large": 10.0})
        small_line, large_line = text.splitlines()
        assert large_line.count("#") > small_line.count("#")

    def test_zero_values_have_no_bar(self):
        text = render_bars({"none": 0.0})
        assert "#" not in text

    def test_unit_suffix(self):
        text = render_bars({"a": 3.0}, unit=" ms")
        assert "3 ms" in text

    def test_empty(self):
        assert "(no data)" in render_bars({})
