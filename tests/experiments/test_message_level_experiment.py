"""Shape tests for the model-vs-mechanism experiment."""

from __future__ import annotations

import pytest

from repro.experiments import message_level
from tests.conftest import make_tiny_config


@pytest.fixture(scope="module")
def result():
    return message_level.run(make_tiny_config())


class TestMessageLevel:
    def test_four_systems(self, result):
        assert [row["system"] for row in result.rows] == [
            "hierarchy (baseline)",
            "hints, modeled (instant)",
            "hints, modeled (2 min delay)",
            "hints, message-level",
        ]

    def test_mechanism_validates_the_model(self, result):
        by_system = {row["system"]: row for row in result.rows}
        modeled = by_system["hints, modeled (instant)"]["mean_response_ms"]
        mechanism = by_system["hints, message-level"]["mean_response_ms"]
        assert abs(mechanism - modeled) / modeled < 0.15

    def test_every_hint_variant_beats_the_hierarchy(self, result):
        hierarchy = result.rows[0]["mean_response_ms"]
        for row in result.rows[1:]:
            assert row["mean_response_ms"] < hierarchy

    def test_mechanism_has_emergent_errors(self, result):
        mechanism = result.rows[-1]
        assert mechanism["false_negatives"] > 0
        # The modeled instant directory never misses a fresh copy.
        assert result.rows[1]["false_negatives"] == 0
