"""Shape tests for the population-scaling experiment."""

from __future__ import annotations

import pytest

from repro.experiments import scaling
from tests.conftest import make_tiny_config


@pytest.fixture(scope="module")
def result():
    return scaling.run(make_tiny_config())


class TestScaling:
    def test_population_factors_covered(self, result):
        assert len(result.rows) == len(scaling.POPULATION_FACTORS)

    def test_requests_scale_with_population(self, result):
        requests = [row["requests"] for row in result.rows]
        assert requests == sorted(requests)
        assert requests[-1] > 4 * requests[0]

    def test_system_hit_rate_grows_with_sharing(self, result):
        """The Gribble/Duska claim the paper builds on."""
        ratios = [row["system_hit_ratio"] for row in result.rows]
        assert all(b >= a - 0.01 for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] > ratios[0] + 0.1

    def test_hit_ratios_are_valid(self, result):
        for row in result.rows:
            assert 0.0 <= row["l1_hit_ratio"] <= row["system_hit_ratio"] <= 1.0

    def test_chart_available(self, result):
        assert result.render_chart() is not None
