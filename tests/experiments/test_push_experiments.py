"""Shape tests for the push experiments (Figures 10 and 11)."""

from __future__ import annotations

import pytest

from repro.experiments import figure10, figure11
from tests.conftest import make_tiny_config


@pytest.fixture(scope="module")
def systems():
    return figure10.run_systems(make_tiny_config(), "dec", "testbed")


class TestFigure10Systems:
    def test_all_systems_present(self, systems):
        assert set(systems) == {
            "hierarchy",
            "hints",
            "hints+update-push",
            "hints+push-1",
            "hints+push-half",
            "hints+push-all",
            "hints-ideal-push",
        }

    def test_ideal_push_is_the_best_hint_system(self, systems):
        ideal = systems["hints-ideal-push"][0].mean_response_ms
        for name, (metrics, _arch) in systems.items():
            if name != "hierarchy":
                assert ideal <= metrics.mean_response_ms + 1e-9, name

    def test_ideal_push_has_no_remote_hits_charged(self, systems):
        from repro.netmodel.model import AccessPoint

        metrics = systems["hints-ideal-push"][0]
        assert metrics.requests_by_point[AccessPoint.L2] == 0
        assert metrics.requests_by_point[AccessPoint.L3] == 0

    def test_hierarchical_push_competitive_with_no_push(self, systems):
        """Paper: hierarchical push gains 1.12-1.25x over no-push hints.

        At this tiny test scale the pushed replicas displace a larger share
        of each (2 MB) cache, so the gain can evaporate; the full-scale
        claim is asserted by ``benchmarks/test_bench_figure10.py``.  Here we
        pin that push never *costs* more than a few percent.
        """
        hints = systems["hints"][0].mean_response_ms
        push1 = systems["hints+push-1"][0].mean_response_ms
        assert push1 < hints * 1.05

    def test_update_push_changes_little(self, systems):
        """Paper: update push achieves no appreciable gain."""
        hints = systems["hints"][0].mean_response_ms
        update = systems["hints+update-push"][0].mean_response_ms
        assert update == pytest.approx(hints, rel=0.1)

    def test_push_systems_record_push_hits(self, systems):
        assert systems["hints+push-1"][0].push_hits > 0


class TestFigure10Rows:
    def test_rows_cover_cost_models(self):
        result = figure10.run(make_tiny_config())
        models = {row["cost_model"] for row in result.rows}
        assert models == {"testbed", "min", "max"}

    def test_speedups_relative_to_hierarchy(self):
        result = figure10.run(make_tiny_config())
        for row in result.rows:
            if row["system"] == "hierarchy":
                assert row["speedup_vs_hierarchy"] == pytest.approx(1.0)


class TestFigure11:
    @pytest.fixture(scope="class")
    def result(self):
        return figure11.run(make_tiny_config())

    def test_reports_the_four_push_systems(self, result):
        assert [row["system"] for row in result.rows] == list(figure11.PUSH_SYSTEMS)

    def test_efficiencies_are_fractions(self, result):
        for row in result.rows:
            assert 0.0 <= row["efficiency"] <= 1.0

    def test_update_push_competitive_in_efficiency(self, result):
        """Paper: the targeted update push wastes the least.

        The strict ordering is a full-scale property (asserted by
        ``benchmarks/test_bench_figure11.py``); at this test scale the two
        can land within noise of each other, so we pin near-parity.
        """
        by_system = {row["system"]: row for row in result.rows}
        update = by_system["hints+update-push"]["efficiency"]
        push_all = by_system["hints+push-all"]["efficiency"]
        assert update > push_all * 0.7

    def test_aggressiveness_reduces_efficiency(self, result):
        """Paper: more aggressive push wastes more of what it sends.

        The strict push-1 >= push-half >= push-all ordering is a
        full-scale property (``benchmarks/test_bench_figure11.py``); at
        this tiny scale push-half (now ceil(n/2) targets, per the paper's
        "half of the nodes") lands within noise of push-1, so we pin both
        strictly above push-all and the pair within noise of each other.
        """
        by_system = {row["system"]: row for row in result.rows}
        push1 = by_system["hints+push-1"]["efficiency"]
        push_half = by_system["hints+push-half"]["efficiency"]
        push_all = by_system["hints+push-all"]["efficiency"]
        assert push1 >= push_all
        assert push_half >= push_all
        assert push1 == pytest.approx(push_half, rel=0.1)

    def test_aggressiveness_increases_bandwidth(self, result):
        by_system = {row["system"]: row for row in result.rows}
        assert (
            by_system["hints+push-all"]["push_bw_bytes_per_s"]
            > by_system["hints+push-1"]["push_bw_bytes_per_s"]
        )

    def test_pushed_bytes_account(self, result):
        for row in result.rows:
            assert row["used_mb"] <= row["pushed_mb"] + 1e-9
