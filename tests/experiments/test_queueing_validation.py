"""Shape tests for the queueing validation experiment."""

from __future__ import annotations

import pytest

from repro.experiments import queueing_validation
from tests.conftest import make_tiny_config


@pytest.fixture(scope="module")
def result():
    return queueing_validation.run(make_tiny_config())


class TestQueueingValidation:
    def test_covers_target_loads(self, result):
        loads = [row["target_load"] for row in result.rows]
        assert loads == list(queueing_validation.TARGET_LOADS)

    def test_calibration_hits_targets(self, result):
        for row in result.rows:
            assert row["achieved_root_util"] == pytest.approx(
                row["target_load"], rel=0.25
            )

    def test_both_implementations_agree_on_direction(self, result):
        """The 2.1.1 hypothesis holds under both the analytic factor and
        the emergent FIFO contention."""
        for column in ("emergent_speedup", "analytic_speedup"):
            values = [row[column] for row in result.rows]
            assert all(v > 1.0 for v in values)
            assert values[-1] > values[0]

    def test_hierarchy_queues_harder_than_hints(self, result):
        for row in result.rows:
            assert row["hierarchy_queue_wait_ms"] > row["hints_queue_wait_ms"]

    def test_emergent_contention_exceeds_steady_state(self, result):
        """Bursty arrivals make real queues worse than the M/M/1 average
        at the highest load."""
        top = result.rows[-1]
        assert top["emergent_speedup"] >= top["analytic_speedup"]
