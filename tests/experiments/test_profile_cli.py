"""The ``profile`` CLI verb: Chrome-trace export, table, and flag guards."""

from __future__ import annotations

import json
import re

from repro.experiments.cli import main
from repro.obs.profiling import SIM_TRACK_PID, check_chrome_trace


class TestProfileVerb:
    def test_run_writes_valid_trace_and_reconciles(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        assert main(["profile", "--scale", "0.0002", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        # The comparison table and the profile table both rendered.
        assert "architecture comparison" in stdout
        assert "host profile" in stdout
        assert str(out) in stdout
        # Acceptance: self time reconciles with wall-clock within 1%.
        match = re.search(r"span-accounted .* \((\d+(?:\.\d+)?)%\)", stdout)
        assert match, stdout
        assert abs(float(match.group(1)) - 100.0) <= 1.0
        # The written artifact is a valid Chrome trace with the
        # documented nesting: profile_run > comparison > task > simulate.
        payload = json.loads(out.read_text())
        assert check_chrome_trace(payload) == []
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert {"profile_run", "comparison", "task", "simulate"} <= names
        assert "reference_loop" in names

    def test_trace_gen_span_present_on_cold_store(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        status = main(
            [
                "profile",
                "--scale", "0.0002",
                "--out", str(out),
                "--trace-cache", str(tmp_path / "store"),
            ]
        )
        assert status == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        names = [e["name"] for e in payload["traceEvents"] if e["ph"] == "X"]
        assert names.count("trace_gen") == 1  # generated once, reused thrice
        assert names.count("trace_fetch") == 4

    def test_memory_and_sim_track(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        status = main(
            [
                "profile",
                "--scale", "0.0002",
                "--out", str(out),
                "--memory",
                "--sim-track",
            ]
        )
        assert status == 0
        stdout = capsys.readouterr().out
        assert "peak_rss" in stdout
        payload = json.loads(out.read_text())
        assert check_chrome_trace(payload) == []
        sim = [
            e
            for e in payload["traceEvents"]
            if e["ph"] == "X" and e["pid"] == SIM_TRACK_PID
        ]
        assert sim, "sim-track should add a simulated-time process"
        host = [
            e
            for e in payload["traceEvents"]
            if e["ph"] == "X" and e["pid"] != SIM_TRACK_PID
        ]
        assert any("mem_peak_kb" in e.get("args", {}) for e in host)


class TestGuards:
    def test_profile_takes_no_experiment_names(self):
        assert main(["profile", "figure1"]) == 2

    def test_out_flag_requires_verb(self):
        assert main(["figure1", "--out", "x.json"]) == 2

    def test_memory_flag_requires_verb(self):
        assert main(["figure1", "--memory"]) == 2

    def test_sim_track_flag_requires_verb(self):
        assert main(["figure1", "--sim-track"]) == 2

    def test_jobs_must_be_positive(self):
        assert main(["profile", "--jobs", "0"]) == 2
