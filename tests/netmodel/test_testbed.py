"""Tests for the testbed cost model (Figure 1 calibration)."""

from __future__ import annotations

import pytest

from repro.common.units import KB
from repro.netmodel.model import AccessPoint
from repro.netmodel.testbed import Segment, TestbedCostModel


@pytest.fixture(scope="module")
def model():
    return TestbedCostModel()


class TestPaperAnchors:
    """The calibration targets quoted from the paper's text."""

    def test_8kb_l3_hierarchy_vs_direct_gap(self, model):
        gap = model.hierarchical_ms(AccessPoint.L3, 8 * KB) - model.direct_ms(
            AccessPoint.L3, 8 * KB
        )
        assert gap == pytest.approx(545, rel=0.05)

    def test_8kb_l3_direct_speedup(self, model):
        ratio = model.hierarchical_ms(AccessPoint.L3, 8 * KB) / model.direct_ms(
            AccessPoint.L3, 8 * KB
        )
        assert ratio == pytest.approx(2.5, rel=0.05)

    def test_l1_hits_much_faster_than_remote(self, model):
        # Section 4: L1 ~4.75x faster than L2-distance, ~6.2x than L3.
        l1 = model.direct_ms(AccessPoint.L1, 8 * KB)
        assert model.direct_ms(AccessPoint.L2, 8 * KB) / l1 > 3.0
        assert model.direct_ms(AccessPoint.L3, 8 * KB) / l1 > 4.5

    def test_l1_hit_is_tens_of_ms(self, model):
        assert 10 <= model.direct_ms(AccessPoint.L1, 8 * KB) <= 60


class TestStructure:
    def test_monotone_in_size(self, model):
        for point in AccessPoint:
            small = model.hierarchical_ms(point, 2 * KB)
            large = model.hierarchical_ms(point, 64 * KB)
            assert large > small

    def test_monotone_in_distance(self, model):
        for size in (2 * KB, 128 * KB):
            hier = [model.hierarchical_ms(p, size) for p in AccessPoint]
            direct = [model.direct_ms(p, size) for p in AccessPoint]
            assert hier == sorted(hier)
            assert direct == sorted(direct)

    def test_hierarchical_dominates_direct(self, model):
        for point in (AccessPoint.L2, AccessPoint.L3, AccessPoint.SERVER):
            assert model.hierarchical_ms(point, 8 * KB) > model.direct_ms(
                point, 8 * KB
            )

    def test_via_l1_between_direct_and_hierarchy(self, model):
        for point in (AccessPoint.L2, AccessPoint.L3):
            via = model.via_l1_ms(point, 8 * KB)
            assert model.direct_ms(point, 8 * KB) < via
            assert via < model.hierarchical_ms(point, 8 * KB)

    def test_via_l1_at_l1_equals_direct(self, model):
        assert model.via_l1_ms(AccessPoint.L1, 4 * KB) == model.direct_ms(
            AccessPoint.L1, 4 * KB
        )

    def test_probe_is_connect_only(self, model):
        # A probe moves no data: cheaper than any fetch of real size.
        for point in AccessPoint:
            assert model.probe_ms(point) <= model.direct_ms(point, 2 * KB)


class TestCustomization:
    def test_segment_cost_formula(self):
        segment = Segment(connect_ms=100.0, per_kb_ms=2.0)
        assert segment.cost_ms(8 * KB) == 116.0

    def test_rejects_missing_access_points(self):
        partial = {AccessPoint.L1: Segment(1.0, 1.0)}
        with pytest.raises(ValueError, match="missing"):
            TestbedCostModel(hierarchy_segments=partial, direct_segments=partial)
