"""Tests for the cost-model factory."""

from __future__ import annotations

import pytest

from repro.netmodel import RousskovCostModel, TestbedCostModel, cost_model_by_name


class TestCostModelFactory:
    def test_testbed(self):
        assert isinstance(cost_model_by_name("testbed"), TestbedCostModel)

    @pytest.mark.parametrize("bound", ["min", "max"])
    def test_rousskov_bounds(self, bound):
        model = cost_model_by_name(bound)
        assert isinstance(model, RousskovCostModel)
        assert model.name == bound

    def test_case_insensitive(self):
        assert isinstance(cost_model_by_name("Testbed"), TestbedCostModel)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown cost model"):
            cost_model_by_name("median")

    def test_fresh_instance_per_call(self):
        assert cost_model_by_name("testbed") is not cost_model_by_name("testbed")
