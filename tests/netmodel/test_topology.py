"""Tests for the synthetic geographic topology."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import TopologyError
from repro.netmodel.topology import GeographicTopology


def make_topology(n_nodes=24, n_clusters=4, seed=0, **kw):
    return GeographicTopology(n_nodes, n_clusters, np.random.default_rng(seed), **kw)


class TestGeometry:
    def test_positions_shape(self):
        topology = make_topology()
        assert topology.positions.shape == (24, 2)

    def test_distance_symmetric(self):
        topology = make_topology()
        assert topology.distance(1, 5) == topology.distance(5, 1)

    def test_distance_to_self_is_zero(self):
        assert make_topology().distance(3, 3) == 0.0

    def test_triangle_inequality_samples(self):
        topology = make_topology(seed=2)
        for a, b, c in [(0, 5, 10), (1, 7, 20), (3, 11, 17)]:
            assert topology.distance(a, c) <= (
                topology.distance(a, b) + topology.distance(b, c) + 1e-9
            )

    def test_distances_from_matches_pairwise(self):
        topology = make_topology()
        vector = topology.distances_from(2)
        assert vector[9] == pytest.approx(topology.distance(2, 9))

    def test_clusters_are_tighter_than_the_world(self):
        topology = make_topology(n_nodes=40, n_clusters=5, seed=3)
        assert topology.mean_intra_cluster_distance() < topology.mean_inter_cluster_distance()


class TestNearest:
    def test_nearest_prefers_closer(self):
        topology = make_topology(seed=1)
        distances = topology.distances_from(0)
        candidates = [5, 9, 13]
        best = topology.nearest(0, candidates)
        assert distances[best] == min(distances[c] for c in candidates)

    def test_nearest_tie_breaks_deterministically(self):
        topology = make_topology()
        assert topology.nearest(0, [3, 3]) == 3

    def test_nearest_rejects_empty(self):
        with pytest.raises(TopologyError):
            make_topology().nearest(0, [])


class TestValidation:
    def test_rejects_zero_nodes(self):
        with pytest.raises(TopologyError):
            make_topology(n_nodes=0)

    def test_rejects_more_clusters_than_nodes(self):
        with pytest.raises(TopologyError):
            make_topology(n_nodes=3, n_clusters=5)

    def test_rejects_out_of_range_node(self):
        with pytest.raises(TopologyError):
            make_topology().distance(0, 99)

    def test_cluster_of(self):
        topology = make_topology(n_nodes=8, n_clusters=4)
        assert topology.cluster_of(0) == 0
        assert topology.cluster_of(5) == 1
