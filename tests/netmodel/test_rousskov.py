"""Tests pinning every derived cell of the paper's Table 3."""

from __future__ import annotations

import pytest

from repro.netmodel.model import AccessPoint
from repro.netmodel.rousskov import ComponentTimes, RousskovCostModel

#: (point, bound) -> (hierarchical, direct, via_l1), exactly as published.
TABLE3 = {
    (AccessPoint.L1, "min"): (163, 163, 163),
    (AccessPoint.L1, "max"): (352, 352, 352),
    (AccessPoint.L2, "min"): (271, 180, 271),
    (AccessPoint.L2, "max"): (2767, 2550, 2767),
    (AccessPoint.L3, "min"): (531, 320, 411),
    (AccessPoint.L3, "max"): (4667, 2850, 3067),
    (AccessPoint.SERVER, "min"): (981, 550, 641),
    (AccessPoint.SERVER, "max"): (7217, 3200, 3417),
}


class TestTable3Cells:
    @pytest.mark.parametrize("point,bound", list(TABLE3))
    def test_hierarchical(self, point, bound):
        model = RousskovCostModel(bound)
        assert model.hierarchical_ms(point) == TABLE3[(point, bound)][0]

    @pytest.mark.parametrize("point,bound", list(TABLE3))
    def test_direct(self, point, bound):
        model = RousskovCostModel(bound)
        assert model.direct_ms(point) == TABLE3[(point, bound)][1]

    @pytest.mark.parametrize("point,bound", list(TABLE3))
    def test_via_l1(self, point, bound):
        model = RousskovCostModel(bound)
        assert model.via_l1_ms(point) == TABLE3[(point, bound)][2]


class TestBehaviour:
    def test_size_is_ignored(self):
        model = RousskovCostModel("min")
        assert model.hierarchical_ms(AccessPoint.L3, 0) == model.hierarchical_ms(
            AccessPoint.L3, 10**6
        )

    def test_rejects_unknown_bound(self):
        with pytest.raises(ValueError):
            RousskovCostModel("median")

    def test_probe_uses_connect_time(self):
        model = RousskovCostModel("min")
        assert model.probe_ms(AccessPoint.L3) == 100.0

    def test_probe_on_server_is_miss_time(self):
        assert RousskovCostModel("max").probe_ms(AccessPoint.SERVER) == 3200.0

    def test_table3_row_helper(self):
        row = RousskovCostModel("min").table3_row(AccessPoint.L3)
        assert row == {"hierarchical": 531, "direct": 320, "via_l1": 411}

    def test_component_times_pick(self):
        component = ComponentTimes(1.0, 2.0)
        assert component.pick("min") == 1.0
        assert component.pick("max") == 2.0
        with pytest.raises(ValueError):
            component.pick("avg")

    def test_max_dominates_min_everywhere(self):
        low, high = RousskovCostModel("min"), RousskovCostModel("max")
        for point in AccessPoint:
            assert high.hierarchical_ms(point) > low.hierarchical_ms(point)
            assert high.direct_ms(point) > low.direct_ms(point)
