"""Tests for the cost-model interface pieces."""

from __future__ import annotations

import pytest

from repro.netmodel.model import AccessPoint
from repro.netmodel.testbed import TestbedCostModel


class TestAccessPoint:
    def test_ordering_reflects_distance(self):
        assert AccessPoint.L1 < AccessPoint.L2 < AccessPoint.L3 < AccessPoint.SERVER

    def test_is_cache(self):
        assert AccessPoint.L1.is_cache
        assert AccessPoint.L3.is_cache
        assert not AccessPoint.SERVER.is_cache


class TestCostModelHelpers:
    def test_hint_lookup_is_microseconds(self):
        # The prototype measured 4.3 us for a warm lookup.
        assert TestbedCostModel().hint_lookup_ms() == pytest.approx(0.0043)

    def test_speedup(self):
        model = TestbedCostModel()
        assert model.speedup(200.0, 100.0) == 2.0

    def test_speedup_rejects_zero(self):
        with pytest.raises(ValueError):
            TestbedCostModel().speedup(100.0, 0.0)

    def test_repr_names_model(self):
        assert "testbed" in repr(TestbedCostModel())
