"""Tests for the load-aware queueing cost model."""

from __future__ import annotations

import pytest

from repro.common.units import KB
from repro.netmodel.model import AccessPoint
from repro.netmodel.queueing import LoadAwareCostModel
from repro.netmodel.testbed import TestbedCostModel


def make_model(load):
    return LoadAwareCostModel(TestbedCostModel(), load=load)


class TestInflation:
    def test_zero_load_matches_base(self):
        base = TestbedCostModel()
        loaded = make_model(0.0)
        for point in AccessPoint:
            assert loaded.hierarchical_ms(point, 8 * KB) == pytest.approx(
                base.hierarchical_ms(point, 8 * KB)
            )
            assert loaded.direct_ms(point, 8 * KB) == pytest.approx(
                base.direct_ms(point, 8 * KB)
            )
            assert loaded.via_l1_ms(point, 8 * KB) == pytest.approx(
                base.via_l1_ms(point, 8 * KB)
            )

    def test_costs_grow_with_load(self):
        low, high = make_model(0.3), make_model(0.9)
        for point in (AccessPoint.L1, AccessPoint.L2, AccessPoint.L3):
            assert high.hierarchical_ms(point, 8 * KB) > low.hierarchical_ms(
                point, 8 * KB
            )

    def test_server_fetch_itself_does_not_queue(self):
        """Only cache service time queues; a pure origin fetch with no
        cache on the path is untouched."""
        base = TestbedCostModel()
        loaded = make_model(0.9)
        assert loaded.direct_ms(AccessPoint.SERVER, 8 * KB) == pytest.approx(
            base.direct_ms(AccessPoint.SERVER, 8 * KB)
        )

    def test_higher_levels_inflate_more(self):
        """The shared root saturates before the leaves."""
        base = TestbedCostModel()
        loaded = make_model(0.9)
        l1_growth = loaded.direct_ms(AccessPoint.L1, 8 * KB) / base.direct_ms(
            AccessPoint.L1, 8 * KB
        )
        l3_growth = loaded.direct_ms(AccessPoint.L3, 8 * KB) / base.direct_ms(
            AccessPoint.L3, 8 * KB
        )
        assert l3_growth > l1_growth

    def test_hierarchy_pays_more_absolute_queueing_than_via_l1(self):
        """The paper's hypothesis at the cost-model level: the multi-hop
        hierarchical path accumulates more queueing delay (in ms) than the
        one-cache-hop hint path to the same data."""
        base = TestbedCostModel()
        loaded = make_model(0.9)
        hier_penalty = loaded.hierarchical_ms(AccessPoint.L3, 8 * KB) - base.hierarchical_ms(
            AccessPoint.L3, 8 * KB
        )
        via_penalty = loaded.via_l1_ms(AccessPoint.L3, 8 * KB) - base.via_l1_ms(
            AccessPoint.L3, 8 * KB
        )
        assert hier_penalty > via_penalty

    def test_name_encodes_load(self):
        assert "load0.5" in make_model(0.5).name


class TestValidation:
    @pytest.mark.parametrize("load", [-0.1, 1.0, 2.0])
    def test_rejects_bad_load(self, load):
        with pytest.raises(ValueError):
            make_model(load)
