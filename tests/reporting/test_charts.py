"""Tests for the ASCII chart renderers."""

from __future__ import annotations

import pytest

from repro.reporting.charts import render_bars, render_series


class TestRenderSeries:
    def test_empty_series(self):
        assert render_series({}, title="t") == "t\n(no data)"

    def test_plots_each_series_with_distinct_glyph(self):
        text = render_series(
            {"a": [(1, 1), (2, 2)], "b": [(1, 2), (2, 1)]}, width=20, height=5
        )
        assert "o" in text and "x" in text
        assert "o=a" in text and "x=b" in text

    def test_axis_captions(self):
        text = render_series(
            {"s": [(1, 10), (100, 20)]},
            log_x=True,
            x_label="size",
            y_label="ms",
        )
        assert "log size: 1 .. 100" in text
        assert "ms (top=20, bottom=10)" in text

    def test_log_x_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="log axes"):
            render_series({"s": [(0, 1), (10, 2)]}, log_x=True)

    def test_extremes_land_on_grid_edges(self):
        text = render_series({"s": [(0, 0), (10, 10)]}, width=10, height=4)
        rows = [line[1:] for line in text.splitlines() if line.startswith("|")]
        assert rows[0].rstrip().endswith("o")  # max point: top-right
        assert rows[-1].startswith("o")  # min point: bottom-left


class TestRenderBars:
    def test_empty_values(self):
        assert render_bars({}) == "(no data)"

    def test_bars_scale_to_peak(self):
        text = render_bars({"big": 10.0, "small": 5.0}, width=10)
        lines = {line.split()[0]: line for line in text.splitlines()}
        assert lines["big"].count("#") == 10
        assert lines["small"].count("#") == 5

    def test_zero_value_has_no_bar(self):
        text = render_bars({"none": 0.0, "some": 1.0})
        none_line = next(line for line in text.splitlines() if line.startswith("none"))
        assert "#" not in none_line

    def test_unit_suffix_and_title(self):
        text = render_bars({"a": 2.0}, title="T", unit="ms")
        assert text.splitlines()[0] == "T"
        assert "2ms" in text
