"""Tests for ASCII table rendering, including the decomposition table."""

from __future__ import annotations

import pytest

from repro.netmodel.model import AccessPoint
from repro.obs.journey import Journey
from repro.reporting.tables import (
    DECOMPOSITION_KINDS,
    _cell,
    decomposition_rows,
    format_decomposition_table,
    format_series,
    format_table,
)
from repro.sim.metrics import SimMetrics


class TestCell:
    def test_zero_float_renders_bare(self):
        assert _cell(0.0) == "0"

    def test_large_floats_group_thousands(self):
        assert _cell(1234.5) == "1,234"

    def test_mid_floats_two_decimals(self):
        assert _cell(12.345) == "12.35"

    def test_small_floats_four_decimals(self):
        assert _cell(0.12345) == "0.1235"

    def test_non_floats_pass_through(self):
        assert _cell("hints") == "hints"
        assert _cell(7) == "7"


class TestFormatTable:
    def test_empty_rows(self):
        assert format_table([], title="t") == "t\n(no rows)"

    def test_renders_header_rule_and_rows(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert set(lines[1]) <= {"-", " "}
        assert lines[2].split() == ["1", "x"]
        assert lines[3].split() == ["2", "y"]

    def test_heterogeneous_rows_union_columns(self):
        text = format_table([{"a": 1}, {"b": 2}])
        assert text.splitlines()[0].split() == ["a", "b"]

    def test_explicit_column_order(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b", "a"])
        assert text.splitlines()[0].split() == ["b", "a"]

    def test_title_prepended(self):
        assert format_table([{"a": 1}], title="T").splitlines()[0] == "T"


class TestFormatSeries:
    def test_two_column_shape(self):
        text = format_series([(1, 2.0), (3, 4.0)], x_label="size", y_label="ms")
        lines = text.splitlines()
        assert lines[0].split() == ["size", "ms"]
        assert lines[2].split() == ["1", "2.00"]


def _metrics_with_journeys() -> dict[str, SimMetrics]:
    """Two architectures' metrics built from hand-rolled ledgers."""
    hier = SimMetrics(architecture="hierarchy")
    for _ in range(2):
        journey = Journey()
        journey.level_traversal(30.0, target="l2:0")
        hier.record(journey.result(AccessPoint.L2, hit=True, remote_hit=True), 100)
    hints = SimMetrics(architecture="hints")
    journey = Journey()
    journey.hint_lookup(0.5)
    journey.origin_fetch(99.5)
    hints.record(journey.result(AccessPoint.SERVER, hit=False), 100)
    return {"hierarchy": hier, "hints": hints}


class TestDecomposition:
    def test_rows_sum_to_mean(self):
        rows = decomposition_rows(_metrics_with_journeys())
        for row in rows:
            total = sum(row[kind] for kind in DECOMPOSITION_KINDS)
            assert total == pytest.approx(row["mean_ms"])

    def test_per_kind_means(self):
        rows = {r["architecture"]: r for r in decomposition_rows(_metrics_with_journeys())}
        assert rows["hierarchy"]["level_traversal"] == pytest.approx(30.0)
        assert rows["hierarchy"]["origin_fetch"] == 0.0
        assert rows["hints"]["hint_lookup"] == pytest.approx(0.5)
        assert rows["hints"]["origin_fetch"] == pytest.approx(99.5)

    def test_zero_measured_requests(self):
        rows = decomposition_rows({"empty": SimMetrics(architecture="empty")})
        assert rows[0]["mean_ms"] == 0.0
        assert all(rows[0][kind] == 0.0 for kind in DECOMPOSITION_KINDS)

    def test_fault_column_appears_only_when_faulted(self):
        metrics = _metrics_with_journeys()
        rows = decomposition_rows(metrics)
        assert all("fault_ms" not in row for row in rows)
        faulted = SimMetrics(architecture="faulted")
        journey = Journey()
        journey.timeout(4000.0, target="l2:0")
        journey.origin_fetch(100.0)
        faulted.record(journey.result(AccessPoint.SERVER, hit=False), 10)
        row = decomposition_rows({"faulted": faulted})[0]
        assert row["fault_ms"] == pytest.approx(4000.0)
        assert row["timeout"] == pytest.approx(4000.0)

    def test_format_includes_all_kind_columns(self):
        text = format_decomposition_table(_metrics_with_journeys(), title="decomp")
        header = text.splitlines()[1]
        for kind in DECOMPOSITION_KINDS:
            assert kind in header
        assert text.splitlines()[0] == "decomp"
