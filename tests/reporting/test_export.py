"""Tests for JSON/CSV experiment-result export."""

from __future__ import annotations

import json

import pytest

from repro.experiments.base import ExperimentResult
from repro.reporting.export import (
    load_result,
    result_from_json,
    result_to_csv,
    result_to_json,
    save_result,
)


def make_result() -> ExperimentResult:
    return ExperimentResult(
        experiment="figure8",
        description="mean response times",
        rows=[
            {"architecture": "hierarchy", "mean_ms": 650.0},
            {"architecture": "hints", "mean_ms": 306.0, "extra": "x"},
        ],
        paper_claims={"speedup": "1.3-2.3x"},
        notes=["scaled run"],
        chart_spec={"kind": "bars", "label": "architecture", "value": "mean_ms"},
    )


class TestJsonRoundTrip:
    def test_round_trip_preserves_everything(self):
        result = make_result()
        loaded = result_from_json(result_to_json(result))
        assert loaded == result

    def test_json_is_one_document(self):
        data = json.loads(result_to_json(make_result()))
        assert data["experiment"] == "figure8"
        assert data["rows"][0]["mean_ms"] == 650.0
        assert data["paper_claims"] == {"speedup": "1.3-2.3x"}

    def test_missing_optional_fields_default(self):
        loaded = result_from_json('{"experiment": "e", "description": "d"}')
        assert loaded.rows == [] and loaded.notes == []
        assert loaded.chart_spec is None


class TestCsv:
    def test_columns_are_union_of_row_keys(self):
        lines = result_to_csv(make_result()).strip().splitlines()
        assert lines[0] == "architecture,mean_ms,extra"
        assert lines[1] == "hierarchy,650.0,"
        assert lines[2] == "hints,306.0,x"

    def test_empty_rows_give_header_only(self):
        text = result_to_csv(ExperimentResult(experiment="e", description="d"))
        assert text.strip() == ""


class TestSaveLoad:
    def test_save_json_and_load_back(self, tmp_path):
        path = tmp_path / "r.json"
        save_result(make_result(), path)
        assert load_result(path) == make_result()

    def test_save_csv(self, tmp_path):
        path = tmp_path / "r.csv"
        save_result(make_result(), path)
        assert path.read_text().startswith("architecture,mean_ms,extra")

    def test_unknown_extension_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="extension"):
            save_result(make_result(), tmp_path / "r.txt")

    def test_load_rejects_csv(self, tmp_path):
        with pytest.raises(ValueError, match="JSON"):
            load_result(tmp_path / "r.csv")
