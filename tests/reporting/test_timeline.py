"""Timeline chart helpers: series extraction and rendering."""

from __future__ import annotations

from repro.reporting.timeline import (
    hit_rate_series,
    occupancy_series,
    render_hit_rate_chart,
    render_occupancy_chart,
)


def _row(arch, bin_index, t_end, counters=None, gauges=None):
    return {
        "arch": arch,
        "bin": bin_index,
        "t_start": bin_index * 3600.0,
        "t_end": t_end,
        "counters": counters or {},
        "gauges": gauges or {},
    }


def _requests(arch, point, window, count):
    key = (
        f'repro_requests_total{{arch="{arch}",point="{point}",window="{window}"}}'
    )
    return {key: count}


ROWS = [
    _row(
        "h", 0, 3600.0,
        counters={
            **_requests("h", "L1", "warmup", 3),
            **_requests("h", "SERVER", "warmup", 7),
        },
        gauges={'repro_cache_occupancy_bytes{arch="h",level="l1",node="0"}': 100.0},
    ),
    _row("h", 1, 7200.0),  # empty bin: no point
    _row(
        "h", 2, 10800.0,
        counters={
            **_requests("h", "L1", "measured", 8),
            **_requests("h", "SERVER", "measured", 2),
        },
        gauges={
            'repro_cache_occupancy_bytes{arch="h",level="l1",node="0"}': 250.0,
            'repro_cache_occupancy_bytes{arch="h",level="l2",node="0"}': 40.0,
        },
    ),
]


class TestHitRateSeries:
    def test_rate_per_bin_and_empty_bins_skipped(self):
        series = hit_rate_series(ROWS)
        assert list(series) == ["h"]
        assert series["h"] == [(1.0, 0.3), (3.0, 0.8)]

    def test_window_filter(self):
        series = hit_rate_series(ROWS, window="measured")
        assert series["h"] == [(3.0, 0.8)]


class TestOccupancySeries:
    def test_sums_across_nodes_and_levels(self):
        series = occupancy_series(ROWS)
        # Bin 1 carries no occupancy gauges, so it contributes no point.
        assert series["h"] == [(1.0, 100.0), (3.0, 290.0)]

    def test_level_filter(self):
        series = occupancy_series(ROWS, level="l2")
        assert series["h"][-1] == (3.0, 40.0)


class TestCharts:
    def test_hit_rate_chart_renders(self):
        chart = render_hit_rate_chart(ROWS)
        assert "hit rate vs simulated time" in chart
        assert "t (h)" in chart

    def test_occupancy_chart_names_level(self):
        chart = render_occupancy_chart(ROWS, level="l1")
        assert "(l1)" in chart
