"""Failure-injection tests for the hint cluster.

The paper's answer to metadata-node failure is the self-configuring
Plaxton hierarchy: "as nodes enter or leave the system, the algorithm
automatically reassigns children to new parents."  These tests crash
nodes, observe the partition, reconfigure, and check re-convergence.
"""

from __future__ import annotations

import pytest

from repro.common.errors import TopologyError
from repro.hints.cluster import HintCluster

#: 7-node tree: root 0; interior 1, 2; leaves 3..6.
PARENTS = [None, 0, 0, 1, 1, 2, 2]


def make_cluster(**kwargs):
    defaults = dict(parents=list(PARENTS), link_latency_s=0.1, max_period_s=5.0, seed=3)
    defaults.update(kwargs)
    return HintCluster(**defaults)


class TestFailure:
    def test_failed_interior_node_partitions_updates(self):
        cluster = make_cluster()
        cluster.fail_node(1, now=0.0)  # cuts leaves 3,4 from the rest
        cluster.local_inform(3, url_hash=42, now=1.0)
        cluster.run_until(500.0)
        # Node 3's update dies at the failed node.
        assert cluster.batches_lost_to_failures > 0
        found = cluster.find_nearest(5, 42, now=500.0)
        assert found is None

    def test_failed_node_stops_flushing(self):
        cluster = make_cluster()
        cluster.local_inform(3, url_hash=42, now=0.0)
        cluster.fail_node(3, now=0.1)
        cluster.run_until(500.0)
        assert cluster.find_nearest(0, 42, now=500.0) is None

    def test_coverage_counts_only_live_nodes(self):
        cluster = make_cluster()
        cluster.local_inform(3, url_hash=42, now=0.0)
        cluster.run_until(500.0)
        assert cluster.coverage(42) == 1.0
        cluster.fail_node(6, now=500.0)
        assert cluster.coverage(42) == 1.0  # six live nodes, all knowing

    def test_fail_unknown_node(self):
        with pytest.raises(TopologyError):
            make_cluster().fail_node(99, now=0.0)


class TestReconfiguration:
    def test_reconfigure_reconnects_partition(self):
        cluster = make_cluster()
        cluster.fail_node(1, now=0.0)
        cluster.local_inform(3, url_hash=42, now=1.0)
        cluster.run_until(300.0)
        assert cluster.find_nearest(5, 42, now=300.0) is None

        # The Plaxton layer hands down a new tree over the survivors:
        # 3 and 4 re-home under node 2.
        new_parents = [None, None, 0, 2, 2, 2, 2]
        new_parents[1] = 0  # failed node keeps a slot; edges to it ignored
        cluster.reconfigure(new_parents, now=300.0)
        cluster.run_until(900.0)
        found = cluster.find_nearest(5, 42, now=900.0)
        assert found is not None
        assert found.node == 3

    def test_reconfigure_reconverges_everyone(self):
        cluster = make_cluster()
        for url_hash in (7, 8, 9):
            cluster.local_inform(3, url_hash, now=0.0)
        cluster.run_until(300.0)
        cluster.fail_node(1, now=300.0)
        cluster.reconfigure([None, 0, 0, 2, 2, 2, 2], now=300.0)
        cluster.run_until(900.0)
        for url_hash in (7, 8, 9):
            for node in (0, 2, 4, 5, 6):
                found = cluster.find_nearest(node, url_hash, now=900.0)
                assert found is not None and found.node == 3

    def test_reconfigure_rejects_wrong_size(self):
        cluster = make_cluster()
        with pytest.raises(TopologyError):
            cluster.reconfigure([None, 0], now=0.0)

    def test_reconfigure_rejects_still_partitioned_tree(self):
        cluster = make_cluster()
        cluster.fail_node(1, now=0.0)
        # The old tree routes 3 and 4 through the failed node: rejected.
        with pytest.raises(TopologyError, match="unreachable"):
            cluster.reconfigure(list(PARENTS), now=1.0)

    def test_reconfigure_requires_one_live_root(self):
        cluster = make_cluster()
        cluster.fail_node(0, now=0.0)
        with pytest.raises(TopologyError, match="live root"):
            cluster.reconfigure(
                [None, 0, 0, 1, 1, 2, 2], now=1.0
            )  # root slot is the failed node


class TestReconfigurationWithoutFailures:
    def test_pure_topology_change_preserves_knowledge(self):
        """Re-parenting live nodes (e.g. after a Plaxton re-embedding)
        keeps every hint cache's contents and re-converges new updates."""
        cluster = make_cluster()
        cluster.local_inform(3, url_hash=42, now=0.0)
        cluster.run_until(300.0)
        # Flip leaves 3..6 between the two interior nodes.
        cluster.reconfigure([None, 0, 0, 2, 2, 1, 1], now=300.0)
        assert cluster.find_nearest(6, 42, now=300.0) is not None
        cluster.local_inform(4, url_hash=77, now=301.0)
        cluster.run_until(900.0)
        found = cluster.find_nearest(5, 77, now=900.0)
        assert found is not None and found.node == 4
