"""Tests for the Squid-facing hint module facade."""

from __future__ import annotations

import pytest

from repro.hints.records import MachineId
from repro.hints.squid_module import UPDATES_URL, SquidHintModule
from repro.hints.wire import MAX_UPDATE_PERIOD_S


def make_module(node=0, seed=0, **kwargs):
    return SquidHintModule(MachineId.for_node(node), seed=seed, **kwargs)


class TestCommands:
    def test_inform_then_find(self):
        module = make_module(node=3)
        module.inform("http://example.com/a", now=0.0)
        found = module.find_nearest("http://example.com/a")
        assert found is not None
        assert found.node == 3

    def test_invalidate(self):
        module = make_module()
        module.inform("http://example.com/a", now=0.0)
        module.invalidate("http://example.com/a", now=1.0)
        assert module.find_nearest("http://example.com/a") is None

    def test_unknown_url_not_found(self):
        assert make_module().find_nearest("http://nowhere/") is None


class TestNeighborExchange:
    def test_two_proxies_converge(self):
        proxy_a = make_module(node=0, seed=1)
        proxy_b = make_module(node=1, seed=2)
        urls = [f"http://site-{i}.com/page" for i in range(12)]
        for url in urls:
            proxy_a.inform(url, now=0.0)
        post = proxy_a.poll_outgoing(now=MAX_UPDATE_PERIOD_S + 1)
        assert post is not None
        target, body = post
        assert target == UPDATES_URL
        applied = proxy_b.handle_post(target, body)
        assert applied == 12
        for url in urls:
            assert proxy_b.find_nearest(url).node == 0

    def test_invalidation_round_trip(self):
        proxy_a = make_module(node=0, seed=1)
        proxy_b = make_module(node=1, seed=2)
        proxy_a.inform("http://x/", now=0.0)
        _url, body = proxy_a.poll_outgoing(now=100.0)
        proxy_b.handle_post(UPDATES_URL, body)
        proxy_a.invalidate("http://x/", now=101.0)
        _url, body = proxy_a.poll_outgoing(now=300.0)
        proxy_b.handle_post(UPDATES_URL, body)
        assert proxy_b.find_nearest("http://x/") is None

    def test_no_post_before_period(self):
        module = make_module()
        module.inform("http://x/", now=0.0)
        # poll at time 0: the jittered deadline may not have passed.
        result = module.poll_outgoing(now=0.0)
        later = module.poll_outgoing(now=MAX_UPDATE_PERIOD_S + 1)
        assert result is not None or later is not None

    def test_rejects_wrong_post_url(self):
        with pytest.raises(ValueError, match="POST target"):
            make_module().handle_post("http://wrong/", b"")

    def test_rejects_ragged_body(self):
        with pytest.raises(ValueError):
            make_module().handle_post(UPDATES_URL, b"x" * 7)

    def test_invalidate_for_other_machine_preserved(self):
        proxy_b = make_module(node=1, seed=2)
        proxy_a = make_module(node=0, seed=1)
        proxy_c = make_module(node=2, seed=3)
        proxy_a.inform("http://x/", now=0.0)
        _u, body = proxy_a.poll_outgoing(now=100.0)
        proxy_b.handle_post(UPDATES_URL, body)
        # C never held the object; its invalidate must not clear A's hint.
        proxy_c.invalidate("http://x/", now=101.0)
        _u, body = proxy_c.poll_outgoing(now=300.0)
        proxy_b.handle_post(UPDATES_URL, body)
        assert proxy_b.find_nearest("http://x/").node == 0


class TestMmapBacked:
    def test_persists_across_restart(self, tmp_path):
        path = str(tmp_path / "squid-hints.db")
        with make_module(node=4, store_path=path) as module:
            module.inform("http://persist.example.com/", now=0.0)
        with make_module(node=4, store_path=path) as module:
            assert module.find_nearest("http://persist.example.com/").node == 4
