"""Tests for the hierarchical hint-propagation filtering protocol."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import TopologyError
from repro.hints.propagation import CentralizedDirectoryProtocol, HintPropagationTree


class TestTreeConstruction:
    def test_balanced_64_leaves_branching_8(self):
        tree = HintPropagationTree.balanced(branching=8, leaves=64)
        assert len(tree.leaves) == 64
        assert tree.leaves == list(range(64))

    def test_single_leaf_tree(self):
        tree = HintPropagationTree.balanced(branching=2, leaves=1)
        assert tree.root == 0
        tree.inform(0, object_id=1)  # must not explode

    def test_rejects_multiple_roots(self):
        with pytest.raises(TopologyError, match="root"):
            HintPropagationTree([None, None])

    def test_rejects_bad_parent(self):
        with pytest.raises(TopologyError):
            HintPropagationTree([None, 99])

    def test_rejects_cycle(self):
        # 1 -> 2 -> 1 with a separate root 0.
        with pytest.raises(TopologyError, match="cycle"):
            HintPropagationTree([None, 2, 1])

    def test_rejects_bad_branching(self):
        with pytest.raises(TopologyError):
            HintPropagationTree.balanced(branching=1, leaves=4)


class TestFiltering:
    def make_tree(self):
        return HintPropagationTree.balanced(branching=2, leaves=4)

    def test_first_copy_reaches_root(self):
        tree = self.make_tree()
        tree.inform(leaf=0, object_id=1)
        assert tree.root_messages == 1

    def test_second_copy_in_same_subtree_is_filtered(self):
        tree = self.make_tree()
        tree.inform(leaf=0, object_id=1)
        tree.inform(leaf=1, object_id=1)  # sibling of 0: filtered below root
        assert tree.root_messages == 1

    def test_copy_in_other_subtree_is_also_filtered(self):
        # The root already knows of a copy in its subtree (the whole system).
        tree = self.make_tree()
        tree.inform(leaf=0, object_id=1)
        before = tree.root_messages
        tree.inform(leaf=3, object_id=1)
        assert tree.root_messages == before + 1  # new first copy for 3's side
        tree.inform(leaf=2, object_id=1)
        assert tree.root_messages == before + 1  # filtered: sibling had it

    def test_different_objects_are_independent(self):
        tree = self.make_tree()
        tree.inform(leaf=0, object_id=1)
        tree.inform(leaf=0, object_id=2)
        assert tree.root_messages == 2

    def test_removal_of_last_copy_reaches_root(self):
        tree = self.make_tree()
        tree.inform(leaf=0, object_id=1)
        tree.retract(leaf=0, object_id=1)
        assert tree.root_messages == 2  # one add + one remove

    def test_removal_with_surviving_sibling_copy_is_filtered(self):
        tree = self.make_tree()
        tree.inform(leaf=0, object_id=1)
        tree.inform(leaf=1, object_id=1)
        tree.retract(leaf=0, object_id=1)
        # Leaf 1's copy keeps the subtree non-empty: no root message.
        assert tree.root_messages == 1

    def test_readd_after_total_removal_propagates_again(self):
        tree = self.make_tree()
        tree.inform(leaf=0, object_id=1)
        tree.retract(leaf=0, object_id=1)
        tree.inform(leaf=1, object_id=1)
        assert tree.root_messages == 3

    def test_known_in_subtree(self):
        tree = self.make_tree()
        tree.inform(leaf=0, object_id=1)
        assert tree.known_in_subtree(tree.root, 1)

    def test_inform_rejects_interior_node(self):
        tree = self.make_tree()
        with pytest.raises(TopologyError, match="not a leaf"):
            tree.inform(tree.root, object_id=1)

    def test_push_down_notifies_other_subtrees(self):
        tree = self.make_tree()
        total_before = tree.total_messages
        tree.inform(leaf=0, object_id=1)
        # A brand-new object is news to everyone: more messages flowed in
        # the tree than just the root's.
        assert tree.total_messages > tree.root_messages
        assert tree.total_messages > total_before


class TestAgainstCentralized:
    @settings(deadline=None, max_examples=30)
    @given(
        events=st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 5), st.booleans()),
            max_size=80,
        )
    )
    def test_root_never_busier_than_centralized(self, events):
        """The filtering hierarchy's root load is bounded by the centralized
        directory's for any event sequence (the Table 5 claim)."""
        tree = HintPropagationTree.balanced(branching=2, leaves=8)
        central = CentralizedDirectoryProtocol()
        holding: set[tuple[int, int]] = set()
        for leaf, oid, is_add in events:
            if is_add and (leaf, oid) not in holding:
                holding.add((leaf, oid))
                tree.inform(leaf, oid)
                central.inform(leaf, oid)
            elif not is_add and (leaf, oid) in holding:
                holding.discard((leaf, oid))
                tree.retract(leaf, oid)
                central.retract(leaf, oid)
        assert tree.root_messages <= central.messages_received

    def test_centralized_counts_every_event(self):
        central = CentralizedDirectoryProtocol()
        central.inform(0, 1)
        central.retract(0, 1)
        central.inform(1, 1)
        assert central.messages_received == 3
