"""Tests for the packed-array set-associative hint cache."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hints.hintcache import HINT_RECORD_BYTES, HintCache
from repro.hints.records import MachineId


def make_cache(entries=64, associativity=4):
    return HintCache(
        capacity_bytes=entries * HINT_RECORD_BYTES, associativity=associativity
    )


class TestGeometry:
    def test_capacity_entries(self):
        cache = make_cache(entries=64)
        assert cache.capacity_entries == 64
        assert cache.n_sets == 16

    def test_rounds_down_to_whole_sets(self):
        cache = HintCache(capacity_bytes=100, associativity=4)  # 1 set = 64 B
        assert cache.capacity_bytes == 64

    def test_rejects_too_small(self):
        with pytest.raises(ValueError):
            HintCache(capacity_bytes=10)

    def test_rejects_bad_associativity(self):
        with pytest.raises(ValueError):
            HintCache(capacity_bytes=1024, associativity=0)

    def test_rejects_short_buffer(self):
        with pytest.raises(ValueError, match="too small"):
            HintCache(capacity_bytes=1024, buffer=bytearray(10))


class TestOperations:
    def test_find_on_empty(self):
        assert make_cache().find_nearest(42) is None

    def test_inform_then_find(self):
        cache = make_cache()
        cache.inform(42, MachineId.for_node(7))
        found = cache.find_nearest(42)
        assert found is not None
        assert found.node == 7

    def test_inform_updates_existing(self):
        cache = make_cache()
        cache.inform(42, MachineId.for_node(1))
        cache.inform(42, MachineId.for_node(2))
        assert cache.find_nearest(42).node == 2
        assert len(cache) == 1

    def test_invalidate(self):
        cache = make_cache()
        cache.inform(42, MachineId.for_node(1))
        assert cache.invalidate(42)
        assert cache.find_nearest(42) is None
        assert not cache.invalidate(42)

    def test_len_counts_entries(self):
        cache = make_cache()
        for key in range(1, 11):
            cache.inform(key, MachineId.for_node(0))
        assert len(cache) == 10

    def test_stats_counters(self):
        cache = make_cache()
        cache.find_nearest(1)
        cache.inform(1, MachineId.for_node(0))
        assert cache.lookups == 1
        assert cache.insertions == 1


class TestConflicts:
    def test_set_conflict_displaces_cold_entry(self):
        # One set, 2 ways: three same-set keys must displace one.
        cache = HintCache(capacity_bytes=2 * HINT_RECORD_BYTES, associativity=2)
        assert cache.n_sets == 1
        cache.inform(1, MachineId.for_node(1))
        cache.inform(2, MachineId.for_node(2))
        cache.find_nearest(1)  # promote key 1
        displaced = cache.inform(3, MachineId.for_node(3))
        assert displaced is not None
        assert displaced.url_hash == 2
        assert cache.find_nearest(1) is not None
        assert cache.find_nearest(2) is None
        assert cache.conflict_evictions == 1

    def test_zero_hash_key_maps_to_a_set(self):
        # URL hash 0 is reserved, but a hash that's a multiple of n_sets
        # must still work (set index 0).
        cache = make_cache(entries=64)
        key = cache.n_sets * 3
        cache.inform(key, MachineId.for_node(9))
        assert cache.find_nearest(key).node == 9


class TestModelBased:
    @settings(deadline=None, max_examples=40)
    @given(
        st.lists(
            st.tuples(st.integers(1, 40), st.integers(0, 15)),
            min_size=1,
            max_size=60,
        )
    )
    def test_matches_dict_when_no_conflicts_possible(self, operations):
        """Capacity >= key range: the cache must behave like a dict."""
        cache = make_cache(entries=64, associativity=4)
        model: dict[int, int] = {}
        for key, node in operations:
            cache.inform(key, MachineId.for_node(node))
            model[key] = node
        assert cache.conflict_evictions == 0
        for key, node in model.items():
            assert cache.find_nearest(key).node == node
