"""Pins the paper's section 3.1.1 capacity arithmetic."""

from __future__ import annotations

import pytest

from repro.common.units import GB, KB, MB
from repro.hints.arithmetic import (
    caches_indexable,
    hint_index_entries,
    index_reach_ratio,
    update_bandwidth_bytes_per_s,
)


class TestPaperNumbers:
    def test_500mb_index_tracks_over_30_million_objects(self):
        """'Such an index could track the location of over 30 million
        unique objects stored in a cache system.'"""
        entries = hint_index_entries(500 * MB)
        assert entries > 30_000_000

    def test_hint_is_almost_three_orders_smaller_than_object(self):
        """16 B vs an average 10 KB object: ratio 640."""
        ratio = index_reach_ratio(10 * KB)
        assert ratio == 640.0
        assert 100 < ratio < 1000  # "almost three orders of magnitude"

    def test_ten_percent_slice_reaches_about_63_caches(self):
        """'Such a directory would allow a node to directly access the
        content of about 63 nearby caches.'"""
        covered = caches_indexable(
            disk_bytes=5 * GB, hint_fraction=0.10, mean_object_bytes=10 * KB
        )
        assert covered == pytest.approx(71.1, rel=0.01)
        # The paper rounds with a full-disk peer (640 * 0.1 ~= 64 - 1):
        simple = 0.10 * index_reach_ratio(10 * KB) - 1
        assert simple == pytest.approx(63.0)

    def test_ten_percent_slice_indexes_two_orders_more_than_local(self):
        """'Its hint cache will index about two orders of magnitude more
        data than it can store locally.'"""
        covered = caches_indexable(
            disk_bytes=5 * GB, hint_fraction=0.10, mean_object_bytes=10 * KB
        )
        assert 30 <= covered <= 300

    def test_busiest_hint_cache_bandwidth(self):
        """'1.9 hint updates per second ... consumes only 38 bytes per
        second of bandwidth', ~1% of a 33.6 Kbit/s modem."""
        bandwidth = update_bandwidth_bytes_per_s(1.9)
        assert bandwidth == pytest.approx(38.0)
        modem_bytes_per_s = 33_600 / 8
        assert bandwidth / modem_bytes_per_s == pytest.approx(0.009, abs=0.002)


class TestValidation:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            hint_index_entries(-1)
        with pytest.raises(ValueError):
            index_reach_ratio(0)
        with pytest.raises(ValueError):
            caches_indexable(0, 0.1, 10 * KB)
        with pytest.raises(ValueError):
            caches_indexable(5 * GB, 1.0, 10 * KB)
        with pytest.raises(ValueError):
            update_bandwidth_bytes_per_s(-1.0)
