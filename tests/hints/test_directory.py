"""Tests for the simulation-level hint directory."""

from __future__ import annotations

import pytest

from repro.hints.directory import HintDirectory, nearest_holder


class TestGroundTruth:
    def test_inform_and_find(self):
        directory = HintDirectory()
        directory.inform(0.0, object_id=1, node=3, version=0)
        lookup = directory.find(0.0, object_id=1, requester=7)
        assert lookup.holders == (3,)
        assert not lookup.false_negative

    def test_requester_own_copy_excluded(self):
        directory = HintDirectory()
        directory.inform(0.0, 1, node=3, version=0)
        lookup = directory.find(0.0, 1, requester=3)
        assert lookup.holders == ()
        assert not lookup.false_negative  # no *other* copy exists

    def test_retract_removes_holder(self):
        directory = HintDirectory()
        directory.inform(0.0, 1, node=3, version=0)
        directory.retract(1.0, 1, node=3)
        assert directory.find(1.0, 1, requester=7).holders == ()

    def test_truth_holders_versions(self):
        directory = HintDirectory()
        directory.inform(0.0, 1, node=3, version=2)
        directory.inform(0.0, 1, node=4, version=5)
        assert directory.truth_holders(1) == {3: 2, 4: 5}

    def test_event_counters(self):
        directory = HintDirectory()
        directory.inform(0.0, 1, 1, 0)
        directory.inform(0.0, 2, 1, 0)
        directory.retract(0.0, 1, 1)
        assert directory.inform_events == 2
        assert directory.retract_events == 1


class TestPropagationDelay:
    def test_add_invisible_until_delay(self):
        directory = HintDirectory(propagation_delay_s=60.0)
        directory.inform(0.0, 1, node=3, version=0)
        early = directory.find(30.0, 1, requester=7)
        assert early.holders == ()
        assert early.false_negative  # ground truth has a copy
        late = directory.find(61.0, 1, requester=7)
        assert late.holders == (3,)

    def test_remove_invisible_until_delay(self):
        directory = HintDirectory(propagation_delay_s=60.0)
        directory.inform(0.0, 1, node=3, version=0)
        directory.find(100.0, 1, requester=7)  # add now visible
        directory.retract(100.0, 1, node=3)
        stale = directory.find(130.0, 1, requester=7)
        assert stale.holders == (3,)  # the removal has not propagated yet
        fresh = directory.find(161.0, 1, requester=7)
        assert fresh.holders == ()

    def test_events_apply_in_order(self):
        directory = HintDirectory(propagation_delay_s=10.0)
        directory.inform(0.0, 1, node=3, version=0)
        directory.retract(1.0, 1, node=3)
        assert directory.find(20.0, 1, requester=7).holders == ()

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            HintDirectory(propagation_delay_s=-1.0)

    def test_false_negative_counter(self):
        directory = HintDirectory(propagation_delay_s=60.0)
        directory.inform(0.0, 1, node=3, version=0)
        directory.find(5.0, 1, requester=7)
        assert directory.false_negatives == 1


class TestCapacity:
    def test_bounded_view_loses_entries(self):
        # 1 set x 4 ways = 4 entries; the 5th conflicting object evicts one.
        directory = HintDirectory(capacity_bytes=4 * 16)
        for oid in range(5):
            directory.inform(0.0, oid, node=oid, version=0)
        visible = [
            directory.find(0.0, oid, requester=99).holders for oid in range(5)
        ]
        missing = sum(1 for holders in visible if holders == ())
        assert missing == 1
        assert directory.false_negatives == 1

    def test_unbounded_view_keeps_everything(self):
        directory = HintDirectory()
        for oid in range(1000):
            directory.inform(0.0, oid, node=1, version=0)
        assert all(
            directory.find(0.0, oid, requester=2).holders == (1,)
            for oid in range(1000)
        )


class TestNearestHolder:
    def test_picks_minimum_by_key(self):
        assert nearest_holder((5, 2, 9), distance_key=lambda n: (n,)) == 2

    def test_empty_returns_none(self):
        assert nearest_holder((), distance_key=lambda n: (n,)) is None
