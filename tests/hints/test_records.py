"""Tests for the 16-byte hint record."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hints.records import INVALID_HASH, RECORD_BYTES, HintRecord, MachineId


class TestRecordSize:
    def test_record_is_exactly_16_bytes(self):
        # Pinned to the paper: "Each entry consumes 16 bytes".
        assert RECORD_BYTES == 16
        record = HintRecord(url_hash=1, machine=MachineId.for_node(0))
        assert len(record.pack()) == 16


class TestMachineId:
    def test_for_node_round_trips(self):
        machine = MachineId.for_node(37)
        assert machine.node == 37

    def test_for_node_default_port_is_squid(self):
        assert MachineId.for_node(0).port == 3128

    def test_dotted_rendering(self):
        machine = MachineId.for_node(258)  # 258 = 0x0102
        assert machine.dotted() == "10.0.1.2:3128"

    def test_rejects_wide_address(self):
        with pytest.raises(ValueError):
            MachineId(address=2**32, port=80)

    def test_rejects_wide_port(self):
        with pytest.raises(ValueError):
            MachineId(address=0, port=2**16)

    def test_rejects_wide_node(self):
        with pytest.raises(ValueError):
            MachineId.for_node(2**16)

    def test_ordering_is_total(self):
        assert MachineId.for_node(1) < MachineId.for_node(2)


class TestPacking:
    @given(
        url_hash=st.integers(1, 2**64 - 1),
        node=st.integers(0, 2**16 - 1),
        port=st.integers(0, 2**16 - 1),
    )
    def test_pack_unpack_round_trip(self, url_hash, node, port):
        machine = MachineId(address=(10 << 24) | node, port=port)
        record = HintRecord(url_hash=url_hash, machine=machine)
        assert HintRecord.unpack(record.pack()) == record

    def test_zero_hash_reserved(self):
        with pytest.raises(ValueError, match="reserved"):
            HintRecord(url_hash=INVALID_HASH, machine=MachineId.for_node(0))

    def test_empty_slot_unpacks_to_none(self):
        assert HintRecord.unpack(bytes(16)) is None

    def test_unpack_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            HintRecord.unpack(b"short")

    def test_rejects_oversized_hash(self):
        with pytest.raises(ValueError):
            HintRecord(url_hash=2**64, machine=MachineId.for_node(0))
