"""Tests for the per-proxy hint module."""

from __future__ import annotations

from repro.hints.node import HintNode
from repro.hints.records import MachineId
from repro.hints.wire import HintAction, HintUpdate


class TestPrototypeCommands:
    def test_inform_records_locally_and_queues(self):
        node = HintNode(index=3, hint_capacity_bytes=1024)
        node.inform(url_hash=42, now=1.0)
        assert node.find_nearest(42).node == 3
        assert len(node.outbox) == 1
        assert node.outbox[0].update.action is HintAction.INFORM
        assert node.outbox[0].exclude_neighbor is None

    def test_invalidate_drops_and_queues(self):
        node = HintNode(index=3, hint_capacity_bytes=1024)
        node.inform(42, now=1.0)
        node.invalidate(42, now=2.0)
        assert node.find_nearest(42) is None
        assert node.outbox[1].update.action is HintAction.INVALIDATE

    def test_first_learned_timestamps(self):
        node = HintNode(index=0, hint_capacity_bytes=1024)
        node.inform(42, now=5.0)
        node.inform(42, now=9.0)  # re-inform keeps the first time
        assert node.first_learned[42] == 5.0


class TestReceivedUpdates:
    def test_apply_inform(self):
        node = HintNode(index=0, hint_capacity_bytes=1024)
        update = HintUpdate(
            action=HintAction.INFORM, object_id=42, machine=MachineId.for_node(9)
        )
        node.apply_update(update, from_neighbor=1, now=3.0)
        assert node.find_nearest(42).node == 9
        assert node.first_learned[42] == 3.0
        # Queued for forwarding, excluding the arrival edge.
        assert node.outbox[0].exclude_neighbor == 1

    def test_apply_invalidate_only_hits_matching_machine(self):
        node = HintNode(index=0, hint_capacity_bytes=1024)
        node.apply_update(
            HintUpdate(HintAction.INFORM, 42, MachineId.for_node(9)),
            from_neighbor=1, now=0.0,
        )
        # An invalidate for a *different* holder must not clobber the hint.
        node.apply_update(
            HintUpdate(HintAction.INVALIDATE, 42, MachineId.for_node(4)),
            from_neighbor=1, now=1.0,
        )
        assert node.find_nearest(42).node == 9
        node.apply_update(
            HintUpdate(HintAction.INVALIDATE, 42, MachineId.for_node(9)),
            from_neighbor=1, now=2.0,
        )
        assert node.find_nearest(42) is None

    def test_drain_outbox_empties(self):
        node = HintNode(index=0, hint_capacity_bytes=1024)
        node.inform(1, now=0.0)
        node.inform(2, now=0.0)
        drained = node.drain_outbox()
        assert len(drained) == 2
        assert node.outbox == []

    def test_counters(self):
        node = HintNode(index=0, hint_capacity_bytes=1024)
        node.inform(1, now=0.0)
        node.apply_update(
            HintUpdate(HintAction.INFORM, 2, MachineId.for_node(5)),
            from_neighbor=1, now=0.0,
        )
        assert node.updates_originated == 1
        assert node.updates_applied == 1
