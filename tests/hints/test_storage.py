"""Tests for the mmap-backed hint store."""

from __future__ import annotations

import pytest

from repro.hints.records import MachineId
from repro.hints.storage import MmapHintStore


class TestLifecycle:
    def test_basic_inform_find(self, tmp_path):
        with MmapHintStore(tmp_path / "hints.db", capacity_bytes=4096) as store:
            store.inform(42, MachineId.for_node(5))
            assert store.find_nearest(42).node == 5

    def test_persists_across_reopen(self, tmp_path):
        path = tmp_path / "hints.db"
        with MmapHintStore(path, capacity_bytes=4096) as store:
            store.inform(42, MachineId.for_node(5))
            store.inform(77, MachineId.for_node(9))
        with MmapHintStore(path, capacity_bytes=4096) as store:
            assert store.find_nearest(42).node == 5
            assert store.find_nearest(77).node == 9
            assert len(store) == 2

    def test_invalidate_persists(self, tmp_path):
        path = tmp_path / "hints.db"
        with MmapHintStore(path, capacity_bytes=4096) as store:
            store.inform(42, MachineId.for_node(5))
            store.invalidate(42)
        with MmapHintStore(path, capacity_bytes=4096) as store:
            assert store.find_nearest(42) is None

    def test_close_is_idempotent(self, tmp_path):
        store = MmapHintStore(tmp_path / "hints.db", capacity_bytes=4096)
        store.close()
        store.close()

    def test_operations_after_close_fail(self, tmp_path):
        store = MmapHintStore(tmp_path / "hints.db", capacity_bytes=4096)
        store.close()
        with pytest.raises(ValueError, match="closed"):
            store.find_nearest(1)

    def test_flush(self, tmp_path):
        with MmapHintStore(tmp_path / "hints.db", capacity_bytes=4096) as store:
            store.inform(1, MachineId.for_node(0))
            store.flush()

    def test_capacity_entries(self, tmp_path):
        with MmapHintStore(tmp_path / "hints.db", capacity_bytes=4096) as store:
            assert store.capacity_entries == 256

    def test_rejects_tiny_capacity(self, tmp_path):
        with pytest.raises(ValueError):
            MmapHintStore(tmp_path / "hints.db", capacity_bytes=8)

    def test_file_size_matches_layout(self, tmp_path):
        path = tmp_path / "hints.db"
        with MmapHintStore(path, capacity_bytes=4096):
            pass
        assert path.stat().st_size == 4096
