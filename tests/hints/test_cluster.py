"""Tests for the message-level hint cluster."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import TopologyError
from repro.hints.cluster import HintCluster
from repro.hints.wire import UPDATE_RECORD_BYTES


def make_cluster(**kwargs):
    # 7-node binary-ish tree: root 0, children 1/2, leaves 3..6.
    defaults = dict(
        parents=[None, 0, 0, 1, 1, 2, 2],
        link_latency_s=0.5,
        max_period_s=10.0,
        seed=1,
    )
    defaults.update(kwargs)
    return HintCluster(**defaults)


class TestPropagation:
    def test_update_reaches_every_node(self):
        cluster = make_cluster()
        cluster.local_inform(3, url_hash=42, now=0.0)
        cluster.run_until(500.0)
        assert cluster.coverage(42) == 1.0

    def test_every_node_resolves_the_holder(self):
        cluster = make_cluster()
        cluster.local_inform(3, 42, now=0.0)
        cluster.run_until(500.0)
        for node in range(7):
            found = cluster.find_nearest(node, 42, now=500.0)
            assert found is not None
            assert found.node == 3

    def test_visibility_delay_bounded_by_hops_and_period(self):
        cluster = make_cluster()
        cluster.local_inform(3, 42, now=0.0)
        cluster.run_until(500.0)
        delays = cluster.visibility_delays(42, origin=3)
        assert len(delays) == 6
        # Farthest node is 3 hops away: <= 3 x (period + latency).
        assert max(delays) <= 3 * (10.0 + 0.5)
        assert min(delays) > 0.0

    def test_invalidation_propagates(self):
        cluster = make_cluster()
        cluster.local_inform(3, 42, now=0.0)
        cluster.run_until(200.0)
        cluster.local_invalidate(3, 42, now=200.0)
        cluster.run_until(400.0)
        for node in range(7):
            assert cluster.find_nearest(node, 42, now=400.0) is None

    def test_tree_delivery_is_exactly_once(self):
        cluster = make_cluster()
        cluster.local_inform(3, 42, now=0.0)
        cluster.run_until(500.0)
        # 6 other nodes, each applying the update exactly once.
        applied = sum(node.updates_applied for node in cluster.nodes)
        assert applied == 6

    def test_batching_amortizes_messages(self):
        cluster = make_cluster(seed=4)
        for url_hash in range(1, 21):
            cluster.local_inform(3, url_hash, now=0.0)
        cluster.run_until(500.0)
        # 20 updates crossed 6 tree edges (once each way of the spanning
        # paths), but batching keeps the message count far below 20 x 6.
        assert cluster.batches_sent < 60
        total_bytes = sum(cluster.bytes_sent)
        assert total_bytes == pytest.approx(20 * 6 * UPDATE_RECORD_BYTES)

    def test_quiet_cluster_sends_nothing(self):
        cluster = make_cluster()
        cluster.run_until(100.0)
        assert cluster.batches_sent == 0


class TestConstruction:
    def test_balanced_helper(self):
        cluster = HintCluster.balanced(branching=8, leaves=64, seed=0)
        assert len(cluster.nodes) == 73  # 64 leaves + 8 interior + root

    def test_rejects_forest(self):
        with pytest.raises(TopologyError):
            HintCluster(parents=[None, None])

    def test_rejects_bad_parent(self):
        with pytest.raises(TopologyError):
            HintCluster(parents=[None, 9])

    def test_rejects_bad_latency(self):
        with pytest.raises(TopologyError):
            make_cluster(link_latency_s=-1.0)

    def test_visibility_requires_known_origin(self):
        cluster = make_cluster()
        with pytest.raises(KeyError):
            cluster.visibility_delays(42, origin=0)


class TestPaperClaim:
    def test_three_level_tree_propagates_within_minutes(self):
        """Section 3.1.1 + 3.2: 0-60 s batching per hop over a 3-level
        hierarchy keeps staleness inside Figure 6's safe zone."""
        cluster = HintCluster.balanced(
            branching=8, leaves=64, link_latency_s=0.1, seed=5
        )
        cluster.local_inform(0, url_hash=7, now=0.0)
        cluster.run_until(3600.0)
        delays = cluster.visibility_delays(7, origin=0)
        assert cluster.coverage(7) == 1.0
        # Leaf -> root -> leaf is 4 hops of up-to-60 s batching: "a few
        # minutes", the regime Figure 6 shows to be tolerable.
        assert max(delays) < 5 * 60.0
        assert float(np.mean(delays)) < 4 * 60.0
