"""Tests for the 20-byte update wire format and the randomized batcher."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hints.records import MachineId
from repro.hints.wire import (
    MAX_UPDATE_PERIOD_S,
    UPDATE_RECORD_BYTES,
    HintAction,
    HintUpdate,
    UpdateBatcher,
    decode_updates,
    encode_updates,
)


def make_update(action=HintAction.INFORM, oid=1234, node=3):
    return HintUpdate(action=action, object_id=oid, machine=MachineId.for_node(node))


class TestWireFormat:
    def test_update_is_exactly_20_bytes(self):
        # Pinned to the paper: "each update consumes 20 bytes".
        assert UPDATE_RECORD_BYTES == 20
        assert len(make_update().pack()) == 20

    @given(
        action=st.sampled_from(list(HintAction)),
        oid=st.integers(0, 2**64 - 1),
        node=st.integers(0, 2**16 - 1),
    )
    def test_round_trip(self, action, oid, node):
        update = make_update(action=action, oid=oid, node=node)
        assert HintUpdate.unpack(update.pack()) == update

    def test_batch_round_trip(self):
        updates = [make_update(oid=i, node=i % 5) for i in range(13)]
        blob = encode_updates(updates)
        assert len(blob) == 13 * 20
        assert decode_updates(blob) == updates

    def test_decode_rejects_ragged_batch(self):
        with pytest.raises(ValueError, match="multiple"):
            decode_updates(b"x" * 21)

    def test_unpack_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            HintUpdate.unpack(b"x" * 19)


class TestUpdateBatcher:
    def make_batcher(self, seed=0):
        return UpdateBatcher(rng=np.random.default_rng(seed))

    def test_nothing_to_send_initially(self):
        assert self.make_batcher().poll(100.0) is None

    def test_flush_after_period(self):
        batcher = self.make_batcher()
        batcher.add(make_update(), now=0.0)
        assert batcher.poll(0.0) is None or batcher.poll(0.0) is not None  # may fire at 0
        blob = batcher.poll(MAX_UPDATE_PERIOD_S + 1)
        if blob is None:  # already flushed at time 0 edge case
            assert batcher.total_flushes == 1
        else:
            assert decode_updates(blob) == [make_update()]

    def test_period_within_bounds(self):
        batcher = self.make_batcher(seed=3)
        batcher.add(make_update(), now=10.0)
        assert 10.0 <= batcher._next_flush <= 10.0 + MAX_UPDATE_PERIOD_S

    def test_batching_accumulates(self):
        batcher = self.make_batcher()
        for i in range(5):
            batcher.add(make_update(oid=i), now=0.0)
        assert batcher.pending_count() == 5
        blob = batcher.poll(MAX_UPDATE_PERIOD_S + 1)
        assert blob is not None
        assert len(decode_updates(blob)) == 5
        assert batcher.pending_count() == 0

    def test_counters_track_bandwidth(self):
        batcher = self.make_batcher()
        for i in range(4):
            batcher.add(make_update(oid=i), now=0.0)
        batcher.poll(MAX_UPDATE_PERIOD_S + 1)
        assert batcher.total_updates == 4
        assert batcher.total_bytes == 80
        assert batcher.bandwidth_bytes_per_s(80.0) == 1.0

    def test_bandwidth_rejects_bad_elapsed(self):
        with pytest.raises(ValueError):
            self.make_batcher().bandwidth_bytes_per_s(0.0)

    def test_paper_bandwidth_arithmetic(self):
        # 1.9 updates/s x 20 B = 38 B/s: the paper's busiest-hint-cache load.
        assert 1.9 * UPDATE_RECORD_BYTES == pytest.approx(38.0)
