"""Property-based invariants across the hint system's moving parts."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.hierarchy.topology import HierarchyTopology
from repro.hints.cluster import HintCluster
from repro.netmodel.testbed import TestbedCostModel
from repro.traces.records import Request

TOPOLOGY = HierarchyTopology(clients_per_l1=1, l1_per_l2=2, n_l2=2)

request_strategy = st.tuples(
    st.integers(0, 3),  # client
    st.integers(0, 12),  # object
    st.integers(0, 2),  # version
    st.integers(200, 2000),  # size
)


class TestDirectoryCoherence:
    @settings(deadline=None, max_examples=50)
    @given(st.lists(request_strategy, max_size=80))
    def test_directory_truth_matches_cache_contents(self, raw_requests):
        """After any request sequence, the hint directory's ground truth
        must equal the actual contents of every L1 cache -- the invariant
        the inform/retract protocol exists to maintain."""
        arch = HintHierarchy(TOPOLOGY, TestbedCostModel(), l1_bytes=5000)
        time = 0.0
        versions: dict[int, int] = {}
        for client, obj, version_bump, size in raw_requests:
            time += 1.0
            # Versions must be non-decreasing per object to be a valid trace.
            versions[obj] = max(versions.get(obj, 0), version_bump)
            arch.process(
                Request(
                    time=time,
                    client_id=client,
                    object_id=obj,
                    size=size,
                    version=versions[obj],
                )
            )
        for obj in versions:
            truth = arch.directory.truth_holders(obj)
            actual = {
                node: cache.peek(obj).version
                for node, cache in enumerate(arch.l1_caches)
                if cache.peek(obj) is not None
            }
            assert truth == actual, f"object {obj}: {truth} != {actual}"

    @settings(deadline=None, max_examples=30)
    @given(st.lists(request_strategy, max_size=60))
    def test_used_bytes_never_exceed_capacity(self, raw_requests):
        capacity = 4000
        arch = HintHierarchy(TOPOLOGY, TestbedCostModel(), l1_bytes=capacity)
        time = 0.0
        versions: dict[int, int] = {}
        for client, obj, version_bump, size in raw_requests:
            time += 1.0
            versions[obj] = max(versions.get(obj, 0), version_bump)
            arch.process(
                Request(
                    time=time, client_id=client, object_id=obj,
                    size=size, version=versions[obj],
                )
            )
            for cache in arch.l1_caches:
                assert cache.used_bytes <= capacity


class TestClusterConvergence:
    @settings(deadline=None, max_examples=30)
    @given(
        st.lists(
            st.tuples(st.integers(0, 6), st.integers(1, 8), st.booleans()),
            max_size=40,
        )
    )
    def test_quiescent_cluster_is_safe(self, events):
        """After quiescence, no hint cache points at a non-holder.

        Per-origin updates travel FIFO along the tree, so once everything
        flushes, a record can only name a node whose *final* action for
        that object was an inform.  (Liveness is weaker by design: the
        16-byte single-machine record can lose knowledge of earlier
        holders -- the emergent false-negative pathology -- so we do not
        assert that every holder is findable.)
        """
        cluster = HintCluster(
            parents=[None, 0, 0, 1, 1, 2, 2],
            link_latency_s=0.1,
            max_period_s=5.0,
            seed=2,
        )
        final_action: dict[tuple[int, int], bool] = {}  # (node, hash) -> informed?
        time = 0.0
        for node, url_hash, is_inform in events:
            time += 1.0
            if is_inform:
                cluster.local_inform(node, url_hash, now=time)
            else:
                cluster.local_invalidate(node, url_hash, now=time)
            final_action[(node, url_hash)] = is_inform
        # Drain: enough time for every batch to flush and forward.
        cluster.run_until(time + 10_000.0)
        hashes = {url_hash for _node, url_hash in final_action}
        for url_hash in hashes:
            holders = {
                node
                for (node, h), informed in final_action.items()
                if h == url_hash and informed
            }
            for node in range(7):
                found = cluster.find_nearest(node, url_hash, now=time + 10_000.0)
                if found is not None:
                    assert found.node in holders, (url_hash, node, found.node)
        # Note there is deliberately NO liveness assertion: a holder can be
        # globally forgotten when a later inform overwrites every record
        # and that machine then invalidates -- hypothesis finds the minimal
        # program ([B informs, A informs, A invalidates]) immediately.
        # That lost knowledge surfaces as the false negatives measured by
        # the message-level architecture, and the paper prices exactly this
        # case as a plain miss ("do not slow down misses").
