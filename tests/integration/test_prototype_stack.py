"""Integration tests for the prototype-faithful hint stack.

Drives the pieces the Squid prototype wired together -- URL hashing, the
packed hint cache, the 20-byte update wire format, and the Plaxton routing
fabric -- as one system: two simulated proxies exchange update batches and
answer find-nearest queries from their own stores.
"""

from __future__ import annotations

import numpy as np

from repro.common.ids import node_id_from_name, object_id_from_url
from repro.hints.hintcache import HintCache
from repro.hints.records import MachineId
from repro.hints.storage import MmapHintStore
from repro.hints.wire import HintAction, HintUpdate, UpdateBatcher, decode_updates
from repro.netmodel.topology import GeographicTopology
from repro.plaxton.tree import PlaxtonTree


class TestTwoProxyExchange:
    def test_update_batch_propagates_hints(self):
        """Proxy A caches objects, batches updates, POSTs them to proxy B;
        B's hint cache then answers find-nearest for A's objects."""
        cache_a = HintCache(capacity_bytes=64 * 16)
        cache_b = HintCache(capacity_bytes=64 * 16)
        machine_a = MachineId.for_node(0)
        batcher = UpdateBatcher(rng=np.random.default_rng(1))

        urls = [f"http://site-{i}.example.com/page" for i in range(10)]
        for url in urls:
            url_hash = object_id_from_url(url)
            cache_a.inform(url_hash, machine_a)
            batcher.add(
                HintUpdate(
                    action=HintAction.INFORM,
                    object_id=url_hash,
                    machine=machine_a,
                ),
                now=0.0,
            )

        blob = batcher.poll(now=61.0)
        assert blob is not None
        for update in decode_updates(blob):
            if update.action is HintAction.INFORM:
                cache_b.inform(update.object_id, update.machine)
            else:
                cache_b.invalidate(update.object_id)

        for url in urls:
            found = cache_b.find_nearest(object_id_from_url(url))
            assert found is not None
            assert found.node == 0

    def test_invalidation_round_trip(self):
        cache_b = HintCache(capacity_bytes=64 * 16)
        machine_a = MachineId.for_node(0)
        url_hash = object_id_from_url("http://gone.example.com/")
        cache_b.inform(url_hash, machine_a)

        update = HintUpdate(
            action=HintAction.INVALIDATE, object_id=url_hash, machine=machine_a
        )
        decoded = HintUpdate.unpack(update.pack())
        assert decoded.action is HintAction.INVALIDATE
        cache_b.invalidate(decoded.object_id)
        assert cache_b.find_nearest(url_hash) is None


class TestPersistentProxyRestart:
    def test_proxy_restart_recovers_hint_state(self, tmp_path):
        """A proxy crash/restart keeps its mmap'ed hint file."""
        path = tmp_path / "proxy-hints.db"
        urls = [f"http://host-{i}.example.com/obj" for i in range(25)]
        with MmapHintStore(path, capacity_bytes=256 * 16) as store:
            for i, url in enumerate(urls):
                store.inform(object_id_from_url(url), MachineId.for_node(i % 4))
        with MmapHintStore(path, capacity_bytes=256 * 16) as store:
            for i, url in enumerate(urls):
                found = store.find_nearest(object_id_from_url(url))
                assert found is not None
                assert found.node == i % 4


class TestPlaxtonRoutingFabric:
    def test_updates_route_to_consistent_roots(self):
        """Hint updates for one URL, injected at different proxies, all
        reach the same metadata root -- the property the self-configuring
        hierarchy needs to aggregate location knowledge."""
        rng = np.random.default_rng(5)
        topology = GeographicTopology(16, 4, rng)
        node_ids = [node_id_from_name(f"proxy-{i}.example.com") for i in range(16)]
        tree = PlaxtonTree(node_ids, topology)

        url_hash = object_id_from_url("http://popular.example.com/index.html")
        roots = {tree.route_path(start, url_hash)[-1] for start in range(16)}
        assert len(roots) == 1

    def test_fabric_survives_root_failure(self):
        rng = np.random.default_rng(6)
        topology = GeographicTopology(16, 4, rng)
        node_ids = [node_id_from_name(f"proxy-{i}.example.com") for i in range(16)]
        tree = PlaxtonTree(node_ids, topology)

        url_hash = object_id_from_url("http://popular.example.com/index.html")
        old_root = tree.root_for(url_hash)
        tree.remove_node(old_root)
        new_roots = {
            tree.route_path(start, url_hash)[-1] for start in tree.member_indices
        }
        assert len(new_roots) == 1
        assert old_root not in new_roots
