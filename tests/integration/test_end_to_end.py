"""End-to-end integration tests across the full stack."""

from __future__ import annotations

import pytest

from repro import (
    CentralizedDirectoryArchitecture,
    DataHierarchy,
    HintHierarchy,
    RousskovCostModel,
    TestbedCostModel,
    run_simulation,
)
from repro.sim.engine import run_comparison
from repro.traces.io import read_trace, write_trace
from repro.traces.synthetic import SyntheticTraceGenerator


class TestHeadlineResult:
    """The paper's central claim, end to end on a shared small trace."""

    def test_hints_beat_hierarchy_on_every_cost_model(self, tiny_config, dec_trace):
        for cost_name, cost in (
            ("testbed", TestbedCostModel()),
            ("min", RousskovCostModel("min")),
            ("max", RousskovCostModel("max")),
        ):
            base = run_simulation(
                dec_trace, DataHierarchy(tiny_config.topology, cost)
            )
            ours = run_simulation(
                dec_trace, HintHierarchy(tiny_config.topology, cost)
            )
            speedup = base.mean_response_ms / ours.mean_response_ms
            assert speedup > 1.1, f"{cost_name}: speedup {speedup:.2f}"

    def test_speedup_from_time_not_hit_rate(self, tiny_config, dec_trace):
        """Paper: "these improvements ... come not from improving the
        global hit rate ... but from improving hit times and miss times"."""
        cost = TestbedCostModel()
        base = run_simulation(dec_trace, DataHierarchy(tiny_config.topology, cost))
        ours = run_simulation(dec_trace, HintHierarchy(tiny_config.topology, cost))
        assert ours.hit_ratio == pytest.approx(base.hit_ratio, abs=0.05)
        assert ours.mean_response_ms < base.mean_response_ms

    def test_comparison_runner_on_all_architectures(self, tiny_config, dec_trace):
        cost = TestbedCostModel()
        results = run_comparison(
            dec_trace,
            [
                DataHierarchy(tiny_config.topology, cost),
                CentralizedDirectoryArchitecture(tiny_config.topology, cost),
                HintHierarchy(tiny_config.topology, cost),
            ],
        )
        assert (
            results["hints"].mean_response_ms
            <= results["directory"].mean_response_ms
            <= results["hierarchy"].mean_response_ms
        )


class TestReproducibility:
    def test_identical_runs_identical_metrics(self, tiny_config):
        profile = tiny_config.profile("dec")

        def run_once():
            trace = SyntheticTraceGenerator(profile, seed=3).generate()
            arch = HintHierarchy(tiny_config.topology, TestbedCostModel())
            return run_simulation(trace, arch)

        first, second = run_once(), run_once()
        assert first.mean_response_ms == second.mean_response_ms
        assert first.requests_by_point == second.requests_by_point

    def test_trace_survives_serialization_round_trip(
        self, tiny_config, dec_trace, tmp_path
    ):
        path = tmp_path / "dec.npz"
        write_trace(dec_trace, path)
        reloaded = read_trace(path)
        cost = TestbedCostModel()
        original = run_simulation(
            dec_trace, HintHierarchy(tiny_config.topology, cost)
        )
        replayed = run_simulation(
            reloaded, HintHierarchy(tiny_config.topology, cost)
        )
        assert replayed.mean_response_ms == original.mean_response_ms


class TestConsistencyAcrossArchitectures:
    def test_all_architectures_see_the_same_miss_structure(
        self, tiny_config, dec_trace
    ):
        """Infinite caches: hit counts may differ slightly (hint errors)
        but total requests measured must agree exactly."""
        cost = TestbedCostModel()
        architectures = [
            DataHierarchy(tiny_config.topology, cost),
            CentralizedDirectoryArchitecture(tiny_config.topology, cost),
            HintHierarchy(tiny_config.topology, cost),
        ]
        measured = {
            arch.name: run_simulation(dec_trace, arch).measured_requests
            for arch in architectures
        }
        assert len(set(measured.values())) == 1

    def test_prodigy_dynamic_ids_work_everywhere(self, tiny_config, prodigy_trace):
        cost = TestbedCostModel()
        for arch in (
            DataHierarchy(tiny_config.topology, cost),
            HintHierarchy(tiny_config.topology, cost),
        ):
            metrics = run_simulation(prodigy_trace, arch)
            assert metrics.measured_requests > 0
            assert metrics.mean_response_ms > 0
