"""Tests for the generic k-way set-associative cache."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.setassoc import SetAssociativeCache


class TestBasicOperations:
    def test_put_and_get(self):
        cache: SetAssociativeCache[str] = SetAssociativeCache(n_sets=4)
        cache.put(1, "a")
        assert cache.get(1) == "a"
        assert 1 in cache
        assert len(cache) == 1

    def test_get_missing(self):
        cache: SetAssociativeCache[str] = SetAssociativeCache(n_sets=4)
        assert cache.get(9) is None

    def test_update_in_place(self):
        cache: SetAssociativeCache[str] = SetAssociativeCache(n_sets=4)
        cache.put(1, "a")
        assert cache.put(1, "b") is None
        assert cache.get(1) == "b"
        assert len(cache) == 1

    def test_remove(self):
        cache: SetAssociativeCache[str] = SetAssociativeCache(n_sets=4)
        cache.put(1, "a")
        assert cache.remove(1)
        assert not cache.remove(1)
        assert len(cache) == 0

    def test_items_and_clear(self):
        cache: SetAssociativeCache[int] = SetAssociativeCache(n_sets=2)
        for key in range(4):
            cache.put(key, key * 10)
        assert dict(cache.items()) == {0: 0, 1: 10, 2: 20, 3: 30}
        cache.clear()
        assert len(cache) == 0


class TestAssociativity:
    def test_conflict_evicts_lru_within_set(self):
        cache: SetAssociativeCache[str] = SetAssociativeCache(n_sets=1, associativity=2)
        cache.put(0, "a")
        cache.put(1, "b")
        cache.get(0)  # promote key 0
        displaced = cache.put(2, "c")
        assert displaced == (1, "b")
        assert cache.conflict_evictions == 1

    def test_different_sets_do_not_conflict(self):
        cache: SetAssociativeCache[str] = SetAssociativeCache(n_sets=2, associativity=1)
        cache.put(0, "a")  # set 0
        cache.put(1, "b")  # set 1
        assert cache.get(0) == "a"
        assert cache.get(1) == "b"
        assert cache.conflict_evictions == 0

    def test_capacity(self):
        cache: SetAssociativeCache[int] = SetAssociativeCache(n_sets=3, associativity=4)
        assert cache.capacity == 12

    def test_load_factor(self):
        cache: SetAssociativeCache[int] = SetAssociativeCache(n_sets=2, associativity=2)
        cache.put(0, 1)
        assert cache.load_factor() == 0.25

    def test_peek_does_not_promote(self):
        cache: SetAssociativeCache[str] = SetAssociativeCache(n_sets=1, associativity=2)
        cache.put(0, "a")
        cache.put(1, "b")
        cache.peek(0)
        displaced = cache.put(2, "c")
        assert displaced == (0, "a")


class TestValidation:
    @pytest.mark.parametrize("n_sets,assoc", [(0, 4), (-1, 4), (4, 0)])
    def test_rejects_bad_geometry(self, n_sets, assoc):
        with pytest.raises(ValueError):
            SetAssociativeCache(n_sets=n_sets, associativity=assoc)


class TestModelBased:
    @settings(deadline=None, max_examples=60)
    @given(
        st.lists(
            st.tuples(st.sampled_from(["put", "get", "remove"]), st.integers(0, 30)),
            max_size=150,
        )
    )
    def test_against_dict_model_when_capacity_suffices(self, operations):
        """With capacity > key range, behaviour must match a plain dict."""
        cache: SetAssociativeCache[int] = SetAssociativeCache(n_sets=31, associativity=4)
        model: dict[int, int] = {}
        for op, key in operations:
            if op == "put":
                cache.put(key, key)
                model[key] = key
            elif op == "get":
                assert cache.get(key) == model.get(key)
            else:
                assert cache.remove(key) == (model.pop(key, None) is not None)
        assert len(cache) == len(model)
        assert cache.conflict_evictions == 0
