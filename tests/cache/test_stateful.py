"""Stateful model-based tests for the cache data structures.

Hypothesis drives random operation sequences against each cache and an
oracle; any divergence shrinks to a minimal failing program.
"""

from __future__ import annotations

from collections import OrderedDict

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.cache.lru import LookupResult, LRUCache
from repro.cache.setassoc import SetAssociativeCache

KEYS = st.integers(0, 12)
SIZES = st.integers(1, 400)
VERSIONS = st.integers(0, 3)

CAPACITY = 1000


class LRUCacheMachine(RuleBasedStateMachine):
    """LRUCache against an ordered-dict oracle with identical semantics."""

    def __init__(self):
        super().__init__()
        self.cache = LRUCache(CAPACITY)
        # oracle: key -> (size, version), in LRU order (first = coldest).
        self.oracle: OrderedDict[int, tuple[int, int]] = OrderedDict()

    def _oracle_evict(self):
        used = sum(size for size, _v in self.oracle.values())
        while used > CAPACITY and self.oracle:
            _key, (size, _v) = self.oracle.popitem(last=False)
            used -= size

    @rule(key=KEYS, size=SIZES, version=VERSIONS)
    def insert(self, key, size, version):
        self.cache.insert(key, size, version)
        if key in self.oracle:
            del self.oracle[key]
        self.oracle[key] = (size, version)
        self._oracle_evict()

    @rule(key=KEYS, version=VERSIONS)
    def lookup(self, key, version):
        result = self.cache.lookup(key, version)
        entry = self.oracle.get(key)
        if entry is None:
            assert result is LookupResult.MISS
        elif entry[1] < version:
            assert result is LookupResult.STALE
            del self.oracle[key]
        else:
            assert result is LookupResult.HIT
            self.oracle.move_to_end(key)

    @rule(key=KEYS)
    def remove(self, key):
        removed = self.cache.remove(key)
        assert removed == (self.oracle.pop(key, None) is not None)

    @invariant()
    def same_contents(self):
        assert set(self.cache) == set(self.oracle)

    @invariant()
    def same_byte_accounting(self):
        assert self.cache.used_bytes == sum(s for s, _v in self.oracle.values())

    @invariant()
    def capacity_respected(self):
        assert self.cache.used_bytes <= CAPACITY


class SetAssociativeMachine(RuleBasedStateMachine):
    """SetAssociativeCache against per-set ordered-dict oracles."""

    N_SETS = 4
    ASSOC = 2

    def __init__(self):
        super().__init__()
        self.cache: SetAssociativeCache[int] = SetAssociativeCache(
            n_sets=self.N_SETS, associativity=self.ASSOC
        )
        self.oracle = [OrderedDict() for _ in range(self.N_SETS)]

    def _bucket(self, key):
        return self.oracle[key % self.N_SETS]

    @rule(key=KEYS, value=st.integers(0, 100))
    def put(self, key, value):
        displaced = self.cache.put(key, value)
        bucket = self._bucket(key)
        if key in bucket:
            assert displaced is None
            bucket[key] = value
            bucket.move_to_end(key)
            return
        expected_displaced = None
        if len(bucket) >= self.ASSOC:
            expected_displaced = bucket.popitem(last=False)
        bucket[key] = value
        assert displaced == expected_displaced

    @rule(key=KEYS)
    def get(self, key):
        bucket = self._bucket(key)
        expected = bucket.get(key)
        assert self.cache.get(key) == expected
        if expected is not None:
            bucket.move_to_end(key)

    @rule(key=KEYS)
    def remove(self, key):
        bucket = self._bucket(key)
        assert self.cache.remove(key) == (bucket.pop(key, None) is not None)

    @invariant()
    def same_size(self):
        assert len(self.cache) == sum(len(b) for b in self.oracle)

    @invariant()
    def same_contents(self):
        expected = {k: v for b in self.oracle for k, v in b.items()}
        assert dict(self.cache.items()) == expected


TestLRUCacheStateful = LRUCacheMachine.TestCase
TestLRUCacheStateful.settings = settings(max_examples=40, deadline=None)

TestSetAssociativeStateful = SetAssociativeMachine.TestCase
TestSetAssociativeStateful.settings = settings(max_examples=40, deadline=None)
