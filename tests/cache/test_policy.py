"""Conformance and differential tests for the replacement-policy layer.

Three groups:

* **Conformance** -- every policy (LRU, LFU, Random) must uphold the
  contracts the architectures rely on: capacity is never exceeded, the
  eviction callback fires exactly once per victim, the just-inserted key
  is never its own victim, and behaviour is a pure function of the
  construction seed.
* **Policy semantics** -- LFU picks the least-frequent (oldest among
  ties), Random draws uniformly from its seeded stream, and both compose
  with the version/consistency machinery they inherit.
* **LRU differential** -- a Hypothesis-driven byte-identity check of the
  hook-refactored ``LRUCache`` against an independent model of the
  pre-refactor semantics, so the policy seam provably changed nothing
  for the default policy.
"""

from __future__ import annotations

from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.lru import LookupResult, LRUCache
from repro.cache.policy import (
    DEFAULT_POLICY,
    POLICY_NAMES,
    LFUCache,
    PolicySpec,
    RandomCache,
    ReplacementPolicy,
    parse_policy_map,
    parse_policy_spec,
    policy_payload,
)

SPECS = {
    "lru": PolicySpec("lru"),
    "lfu": PolicySpec("lfu"),
    "random": PolicySpec("random", seed=42),
}


def drive(cache, operations):
    """Replay ``(op, *args)`` tuples; returns per-op observable outcomes."""
    outcomes = []
    for op in operations:
        kind = op[0]
        if kind == "lookup":
            outcomes.append(("lookup", cache.lookup(op[1], op[2]).name))
        elif kind == "insert":
            outcomes.append(("insert", tuple(cache.insert(op[1], op[2], op[3]))))
        elif kind == "invalidate":
            outcomes.append(("invalidate", cache.invalidate(op[1])))
        elif kind == "remove":
            outcomes.append(("remove", cache.remove(op[1])))
        else:  # pragma: no cover - defensive
            raise AssertionError(kind)
    return outcomes


def mixed_stream(n=400, seed=5):
    """A deterministic op stream with enough churn to force evictions."""
    import random as _random

    rng = _random.Random(seed)
    ops = []
    for _ in range(n):
        key = rng.randrange(40)
        roll = rng.random()
        if roll < 0.55:
            ops.append(("insert", key, rng.randrange(1, 400), rng.randrange(3)))
        elif roll < 0.9:
            ops.append(("lookup", key, rng.randrange(3)))
        elif roll < 0.95:
            ops.append(("invalidate", key))
        else:
            ops.append(("remove", key))
    return ops


@pytest.mark.parametrize("name", POLICY_NAMES)
class TestConformance:
    def test_satisfies_protocol(self, name):
        cache = SPECS[name].build(1000)
        assert isinstance(cache, ReplacementPolicy)
        assert cache.policy_name == name

    def test_capacity_never_exceeded(self, name):
        cache = SPECS[name].build(1000)
        for op in mixed_stream():
            drive(cache, [op])
            assert cache.used_bytes <= 1000
            assert cache.occupancy_bytes == cache.used_bytes
            assert cache.used_bytes == sum(
                cache.peek(k).size for k in cache
            )

    def test_eviction_callback_fires_exactly_once_per_victim(self, name):
        departures = []
        cache = SPECS[name].build(
            800, on_evict=lambda key, entry, reason: departures.append((key, reason))
        )
        returned = []
        for op in mixed_stream():
            outcome = drive(cache, [op])[0]
            if outcome[0] == "insert":
                returned.extend(outcome[1])
        capacity_departures = [k for k, reason in departures if reason == "capacity"]
        assert capacity_departures == returned
        assert len(returned) > 0  # the stream actually forces evictions
        # every departure was reported with a known reason
        assert {reason for _, reason in departures} <= {
            "capacity",
            "invalidate",
            "remove",
        }

    def test_incoming_key_is_never_its_own_victim(self, name):
        cache = SPECS[name].build(1000)
        for op in mixed_stream(seed=11):
            if op[0] == "insert":
                evicted = cache.insert(op[1], op[2], op[3])
                assert op[1] not in evicted
                if op[2] <= 1000:
                    assert op[1] in cache
            else:
                drive(cache, [op])

    def test_deterministic_under_fixed_seed(self, name):
        stream = mixed_stream(seed=23)
        first = SPECS[name].build(700, salt=9)
        second = SPECS[name].build(700, salt=9)
        assert drive(first, stream) == drive(second, stream)
        assert list(first) == list(second)
        assert first.used_bytes == second.used_bytes

    def test_oversize_objects_rejected_not_thrashed(self, name):
        cache = SPECS[name].build(500)
        cache.insert(1, 200, 0)
        assert cache.insert(2, 501, 0) == []
        assert 2 not in cache
        assert 2 in cache.oversize_rejections
        assert 1 in cache  # nothing was evicted to make room

    def test_clear_resets_policy_state(self, name):
        cache = SPECS[name].build(1000)
        drive(cache, mixed_stream(n=100, seed=3))
        cache.clear()
        assert len(cache) == 0
        assert cache.used_bytes == 0
        # The cache keeps working after a crash-style clear.
        cache.insert(7, 100, 0)
        assert cache.lookup(7, 0) is LookupResult.HIT


class TestLFU:
    def test_victim_is_least_frequent(self):
        cache = LFUCache(300)
        cache.insert(1, 100, 0)
        cache.insert(2, 100, 0)
        cache.insert(3, 100, 0)
        cache.lookup(1, 0)
        cache.lookup(1, 0)
        cache.lookup(3, 0)
        assert cache.insert(4, 100, 0) == [2]

    def test_tie_breaks_least_recent(self):
        cache = LFUCache(300)
        cache.insert(1, 100, 0)
        cache.insert(2, 100, 0)
        cache.insert(3, 100, 0)
        cache.lookup(1, 0)  # all at freq 1 except key 1; 2 is older than 3
        assert cache.insert(4, 100, 0) == [2]

    def test_reinsert_counts_as_access(self):
        cache = LFUCache(300)
        cache.insert(1, 100, 0)
        cache.insert(1, 100, 0)  # freq 2
        cache.insert(2, 100, 0)
        cache.insert(3, 100, 0)
        assert cache.insert(4, 100, 0) == [2]

    def test_demote_ages_frequency(self):
        cache = LFUCache(300)
        cache.insert(1, 100, 0)
        for _ in range(5):
            cache.lookup(1, 0)
        cache.insert(2, 100, 0)
        cache.insert(3, 100, 0)
        cache.touch_lru_demote(1)  # hot object aged to frequency 0
        assert cache.insert(4, 100, 0) == [1]


class TestRandom:
    def test_same_seed_same_victims(self):
        stream = mixed_stream(seed=31)
        a = RandomCache(600, seed=99)
        b = RandomCache(600, seed=99)
        assert drive(a, stream) == drive(b, stream)

    def test_different_seeds_diverge(self):
        stream = mixed_stream(seed=31)
        a = drive(RandomCache(600, seed=1), stream)
        b = drive(RandomCache(600, seed=2), stream)
        assert a != b

    def test_spec_salt_decorrelates_nodes(self):
        stream = mixed_stream(seed=31)
        spec = PolicySpec("random", seed=4)
        a = drive(spec.build(600, salt=0), stream)
        b = drive(spec.build(600, salt=1), stream)
        assert a != b

    def test_hits_do_not_touch_the_rng(self):
        # Random replacement is memoryless: a lookup-heavy prefix must not
        # shift later victim draws.
        tail = [("insert", 100 + i, 90, 0) for i in range(12)]
        a = RandomCache(600, seed=7)
        b = RandomCache(600, seed=7)
        for cache in (a, b):
            for key in range(6):
                cache.insert(key, 90, 0)
        for _ in range(50):
            a.lookup(3, 0)  # extra hits on one side only
        assert drive(a, tail) == drive(b, tail)


class TestSpecParsing:
    def test_parse_single_token(self):
        assert parse_policy_spec("lfu") == PolicySpec("lfu")
        assert parse_policy_spec("random:7") == PolicySpec("random", seed=7)

    def test_parse_rejects_unknown_and_bad_seed(self):
        with pytest.raises(ValueError, match="unknown policy"):
            parse_policy_spec("arc")
        with pytest.raises(ValueError, match="takes no seed"):
            parse_policy_spec("lfu:3")
        with pytest.raises(ValueError, match="bad policy seed"):
            parse_policy_spec("random:x")
        with pytest.raises(ValueError, match="unknown policy"):
            PolicySpec("fifo")

    def test_parse_map_per_level(self):
        policies = parse_policy_map("l1=lfu,l2=lru,l3=random:7")
        assert policies == {
            "l1": PolicySpec("lfu"),
            "l2": PolicySpec("lru"),
            "l3": PolicySpec("random", seed=7),
        }

    def test_parse_map_bare_policy_applies_everywhere(self):
        assert parse_policy_map("lfu") == {
            "l1": PolicySpec("lfu"),
            "l2": PolicySpec("lfu"),
            "l3": PolicySpec("lfu"),
        }

    def test_parse_map_rejects_bad_input(self):
        for bad in ("", "l4=lfu", "l1=lfu,l1=lru", "l1"):
            with pytest.raises(ValueError):
                parse_policy_map(bad)

    def test_payload_collapses_defaults(self):
        assert policy_payload(None) is None
        assert policy_payload({"l1": DEFAULT_POLICY, "l2": PolicySpec("lru")}) is None
        assert policy_payload({"l1": PolicySpec("lfu"), "l2": DEFAULT_POLICY}) == {
            "l1": {"name": "lfu"}
        }
        # the seed is identity-relevant only under random
        assert PolicySpec("lfu", seed=5).to_payload() == PolicySpec("lfu").to_payload()
        assert PolicySpec("random", seed=5).to_payload() == {
            "name": "random",
            "seed": 5,
        }

    def test_fingerprint_policy_axis(self):
        from repro.runner.fingerprint import simulation_fingerprint
        from repro.traces.profiles import DEC

        profile = DEC.scaled(0.0002)
        bare = simulation_fingerprint(profile, 7)
        all_lru = simulation_fingerprint(
            profile, 7, policies={"l1": DEFAULT_POLICY}
        )
        lfu = simulation_fingerprint(
            profile, 7, policies={"l1": PolicySpec("lfu")}
        )
        assert bare == all_lru  # pre-policy addresses preserved exactly
        assert lfu != bare
        assert simulation_fingerprint(
            profile, 7, policies={"l1": PolicySpec("random", seed=1)}
        ) != simulation_fingerprint(
            profile, 7, policies={"l1": PolicySpec("random", seed=2)}
        )


# ----------------------------------------------------------------------
# LRU old-vs-new differential
# ----------------------------------------------------------------------
class ModelLRU:
    """Independent model of the pre-refactor ``LRUCache`` semantics.

    Deliberately naive -- an ordered dict of ``key -> (size, version)``
    with inline recency moves and front-first capacity eviction -- so it
    shares none of the refactored hook structure it checks.
    """

    def __init__(self, capacity):
        self.capacity = capacity
        self.entries: OrderedDict[int, tuple[int, int]] = OrderedDict()
        self.departures: list[tuple[int, str]] = []

    @property
    def used(self):
        return sum(size for size, _ in self.entries.values())

    def lookup(self, key, version):
        if key not in self.entries:
            return "MISS"
        size, stored = self.entries[key]
        if stored < version:
            del self.entries[key]
            self.departures.append((key, "invalidate"))
            return "STALE"
        self.entries.move_to_end(key)
        return "HIT"

    def insert(self, key, size, version):
        if self.capacity is not None and size > self.capacity:
            if key in self.entries and self.entries[key][1] < version:
                del self.entries[key]
                self.departures.append((key, "invalidate"))
            return []
        self.entries.pop(key, None)
        self.entries[key] = (size, version)
        self.entries.move_to_end(key)
        evicted = []
        if self.capacity is not None:
            while self.used > self.capacity and len(self.entries) > 1:
                victim = next(iter(self.entries))
                if victim == key:  # pragma: no cover - unreachable for LRU
                    break
                del self.entries[victim]
                self.departures.append((victim, "capacity"))
                evicted.append(victim)
        return evicted

    def invalidate(self, key):
        if key not in self.entries:
            return False
        del self.entries[key]
        self.departures.append((key, "invalidate"))
        return True

    def remove(self, key):
        if key not in self.entries:
            return False
        del self.entries[key]
        self.departures.append((key, "remove"))
        return True


_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            st.integers(0, 15),
            st.integers(0, 300),
            st.integers(0, 2),
        ),
        st.tuples(st.just("lookup"), st.integers(0, 15), st.integers(0, 2)),
        st.tuples(st.just("invalidate"), st.integers(0, 15)),
        st.tuples(st.just("remove"), st.integers(0, 15)),
    ),
    max_size=150,
)


@settings(max_examples=200, deadline=None)
@given(operations=_ops, capacity=st.one_of(st.none(), st.integers(0, 800)))
def test_lru_matches_prerefactor_model(operations, capacity):
    """The hook-refactored LRU is byte-identical to the old semantics:
    same lookup results, same eviction lists in the same order, same
    callback stream, same final contents and recency order."""
    departures = []
    cache = LRUCache(
        capacity, on_evict=lambda key, entry, reason: departures.append((key, reason))
    )
    model = ModelLRU(capacity)
    for op in operations:
        kind = op[0]
        if kind == "insert":
            assert cache.insert(op[1], op[2], op[3]) == model.insert(
                op[1], op[2], op[3]
            )
        elif kind == "lookup":
            assert cache.lookup(op[1], op[2]).name == model.lookup(op[1], op[2])
        elif kind == "invalidate":
            assert cache.invalidate(op[1]) == model.invalidate(op[1])
        else:
            assert cache.remove(op[1]) == model.remove(op[1])
        assert cache.used_bytes == model.used
    assert list(cache) == list(model.entries)
    assert departures == model.departures
    assert {k: (e.size, e.version) for k, e in zip(cache, map(cache.peek, cache))} == {
        k: v for k, v in model.entries.items()
    }
