"""Tests for the byte-capacity LRU cache."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.lru import LookupResult, LRUCache


class TestBasicOperations:
    def test_miss_on_empty(self):
        cache = LRUCache(1000)
        assert cache.lookup(1, 0) is LookupResult.MISS

    def test_insert_then_hit(self):
        cache = LRUCache(1000)
        cache.insert(1, 100, 0)
        assert cache.lookup(1, 0) is LookupResult.HIT
        assert 1 in cache
        assert len(cache) == 1

    def test_used_bytes_tracks_sizes(self):
        cache = LRUCache(1000)
        cache.insert(1, 100, 0)
        cache.insert(2, 250, 0)
        assert cache.used_bytes == 350

    def test_reinsert_same_key_replaces_size(self):
        cache = LRUCache(1000)
        cache.insert(1, 100, 0)
        cache.insert(1, 400, 0)
        assert cache.used_bytes == 400
        assert len(cache) == 1

    def test_peek_does_not_promote(self):
        cache = LRUCache(250)
        cache.insert(1, 100, 0)
        cache.insert(2, 100, 0)
        cache.peek(1)  # does not touch LRU order
        evicted = cache.insert(3, 100, 0)
        assert evicted == [1]

    def test_remove(self):
        cache = LRUCache(1000)
        cache.insert(1, 100, 0)
        assert cache.remove(1)
        assert not cache.remove(1)
        assert cache.used_bytes == 0


class TestEviction:
    def test_lru_order(self):
        cache = LRUCache(300)
        cache.insert(1, 100, 0)
        cache.insert(2, 100, 0)
        cache.insert(3, 100, 0)
        cache.lookup(1, 0)  # promote 1
        evicted = cache.insert(4, 100, 0)
        assert evicted == [2]

    def test_multi_eviction_for_large_insert(self):
        cache = LRUCache(300)
        for key in (1, 2, 3):
            cache.insert(key, 100, 0)
        evicted = cache.insert(4, 200, 0)
        assert set(evicted) == {1, 2}

    def test_oversized_object_not_cached(self):
        cache = LRUCache(100)
        assert cache.insert(1, 500, 0) == []
        assert 1 not in cache
        # ...but the sighting is recorded for miss classification.
        assert cache.ever_stored_version(1) == 0

    def test_infinite_capacity_never_evicts(self):
        cache = LRUCache(None)
        for key in range(100):
            assert cache.insert(key, 10**6, 0) == []
        assert len(cache) == 100

    def test_eviction_callback_reasons(self):
        events = []
        cache = LRUCache(150, on_evict=lambda k, e, r: events.append((k, r)))
        cache.insert(1, 100, 0)
        cache.insert(2, 100, 0)  # evicts 1 for capacity
        cache.invalidate(2)
        cache.insert(3, 100, 0)
        cache.remove(3)
        assert events == [(1, "capacity"), (2, "invalidate"), (3, "remove")]


class TestVersioning:
    def test_stale_lookup_invalidates(self):
        cache = LRUCache(1000)
        cache.insert(1, 100, version=0)
        assert cache.lookup(1, version=1) is LookupResult.STALE
        assert 1 not in cache

    def test_newer_cached_version_still_hits(self):
        cache = LRUCache(1000)
        cache.insert(1, 100, version=5)
        assert cache.lookup(1, version=3) is LookupResult.HIT

    def test_ever_stored_tracks_max_version(self):
        cache = LRUCache(1000)
        cache.insert(1, 100, version=2)
        cache.insert(1, 100, version=1)
        assert cache.ever_stored_version(1) == 2

    def test_touch_lru_demote_moves_to_front_of_eviction(self):
        cache = LRUCache(300)
        cache.insert(1, 100, 0)
        cache.insert(2, 100, 0)
        cache.insert(3, 100, 0)
        cache.touch_lru_demote(3)
        evicted = cache.insert(4, 100, 0)
        assert evicted == [3]


class TestValidation:
    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            LRUCache(100).insert(1, -5, 0)


class TestInvariants:
    @settings(deadline=None, max_examples=60)
    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(1, 120), st.integers(0, 3)),
            max_size=120,
        )
    )
    def test_capacity_and_accounting_invariants(self, operations):
        capacity = 500
        cache = LRUCache(capacity)
        for key, size, version in operations:
            cache.insert(key, size, version)
            assert cache.used_bytes <= capacity
            expected = sum(cache.peek(k).size for k in cache)
            assert cache.used_bytes == expected
