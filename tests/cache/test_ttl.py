"""Tests for the Squid-style TTL cache and its distortion counters."""

from __future__ import annotations

import pytest

from repro.cache.ttl import TTLCache, TTLLookupResult


class TestLookupSemantics:
    def test_fresh_hit(self):
        cache = TTLCache(ttl_s=100.0)
        cache.insert(1, 100, version=0, now=0.0)
        assert cache.lookup(1, version=0, now=50.0) is TTLLookupResult.FRESH_HIT

    def test_miss_on_absent(self):
        assert TTLCache(ttl_s=100.0).lookup(1, 0, 0.0) is TTLLookupResult.MISS

    def test_age_expiry_discards(self):
        cache = TTLCache(ttl_s=100.0)
        cache.insert(1, 100, version=0, now=0.0)
        assert cache.lookup(1, version=0, now=150.0) is TTLLookupResult.EXPIRED
        assert len(cache) == 0

    def test_stale_hit_served_within_ttl(self):
        """The first distortion: stale data counted as a hit."""
        cache = TTLCache(ttl_s=100.0)
        cache.insert(1, 100, version=0, now=0.0)
        outcome = cache.lookup(1, version=3, now=50.0)
        assert outcome is TTLLookupResult.STALE_HIT
        assert cache.stale_hits_served == 1

    def test_fresh_discard_counted(self):
        """The second distortion: perfectly good data discarded by age."""
        cache = TTLCache(ttl_s=100.0)
        cache.insert(1, 100, version=5, now=0.0)
        outcome = cache.lookup(1, version=5, now=200.0)
        assert outcome is TTLLookupResult.EXPIRED
        assert cache.fresh_discards == 1

    def test_expired_stale_entry_is_not_a_fresh_discard(self):
        cache = TTLCache(ttl_s=100.0)
        cache.insert(1, 100, version=0, now=0.0)
        cache.lookup(1, version=2, now=200.0)
        assert cache.fresh_discards == 0


class TestCapacity:
    def test_byte_capacity_evicts_lru(self):
        cache = TTLCache(ttl_s=1e9, capacity_bytes=250)
        cache.insert(1, 100, 0, now=0.0)
        cache.insert(2, 100, 0, now=1.0)
        cache.lookup(1, 0, now=2.0)  # promote 1
        evicted = cache.insert(3, 100, 0, now=3.0)
        assert evicted == [2]

    def test_used_bytes(self):
        cache = TTLCache(ttl_s=100.0)
        cache.insert(1, 100, 0, now=0.0)
        cache.insert(1, 300, 0, now=1.0)
        assert cache.used_bytes == 300

    def test_oversized_object_skipped(self):
        cache = TTLCache(ttl_s=100.0, capacity_bytes=50)
        assert cache.insert(1, 100, 0, now=0.0) == []
        assert len(cache) == 0


class TestValidation:
    def test_rejects_non_positive_ttl(self):
        with pytest.raises(ValueError):
            TTLCache(ttl_s=0.0)

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            TTLCache(ttl_s=1.0, capacity_bytes=-1)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            TTLCache(ttl_s=1.0).insert(1, -5, 0, now=0.0)
