"""Tests for the Figure 2 miss taxonomy."""

from __future__ import annotations

import pytest

from repro.cache.classify import AccessOutcome, MissClass, MissClassifier
from repro.cache.lru import LRUCache
from repro.traces.records import Request


def make_request(obj=1, version=0, size=100, time=0.0, **kw):
    return Request(
        time=time, client_id=0, object_id=obj, size=size, version=version, **kw
    )


@pytest.fixture()
def classifier():
    return MissClassifier(LRUCache(1000))


class TestClassification:
    def test_first_access_is_compulsory(self, classifier):
        outcome = classifier.access(make_request())
        assert outcome.miss_class is MissClass.COMPULSORY

    def test_second_access_is_hit(self, classifier):
        classifier.access(make_request())
        assert classifier.access(make_request()).hit

    def test_updated_object_is_communication_miss(self, classifier):
        classifier.access(make_request(version=0))
        outcome = classifier.access(make_request(version=1))
        assert outcome.miss_class is MissClass.COMMUNICATION

    def test_evicted_object_is_capacity_miss(self):
        classifier = MissClassifier(LRUCache(150))
        classifier.access(make_request(obj=1))
        classifier.access(make_request(obj=2))  # evicts 1
        outcome = classifier.access(make_request(obj=1))
        assert outcome.miss_class is MissClass.CAPACITY

    def test_evicted_and_updated_counts_as_communication(self):
        # The evicted copy would have been invalidated anyway.
        classifier = MissClassifier(LRUCache(150))
        classifier.access(make_request(obj=1, version=0))
        classifier.access(make_request(obj=2))
        outcome = classifier.access(make_request(obj=1, version=2))
        assert outcome.miss_class is MissClass.COMMUNICATION

    def test_error_request(self, classifier):
        outcome = classifier.access(make_request(error=True))
        assert outcome.miss_class is MissClass.ERROR

    def test_uncachable_request(self, classifier):
        outcome = classifier.access(make_request(cacheable=False))
        assert outcome.miss_class is MissClass.UNCACHABLE

    def test_uncachable_never_becomes_hit(self, classifier):
        classifier.access(make_request(cacheable=False))
        outcome = classifier.access(make_request(cacheable=False))
        assert outcome.miss_class is MissClass.UNCACHABLE


class TestCounts:
    def test_ratios(self, classifier):
        classifier.access(make_request(obj=1))  # compulsory
        classifier.access(make_request(obj=1))  # hit
        classifier.access(make_request(obj=2))  # compulsory
        counts = classifier.counts
        assert counts.total_requests == 3
        assert counts.miss_ratio() == pytest.approx(2 / 3)
        assert counts.miss_ratio(MissClass.COMPULSORY) == pytest.approx(2 / 3)
        assert counts.miss_ratio(MissClass.CAPACITY) == 0.0

    def test_byte_ratios_weighted_by_size(self, classifier):
        classifier.access(make_request(obj=1, size=100))  # compulsory, 100 B
        classifier.access(make_request(obj=1, size=100))  # hit, 100 B
        classifier.access(make_request(obj=2, size=300))  # compulsory, 300 B
        counts = classifier.counts
        assert counts.byte_miss_ratio() == pytest.approx(400 / 500)

    def test_empty_counts(self):
        counts = MissClassifier(LRUCache(10)).counts
        assert counts.miss_ratio() == 0.0
        assert counts.byte_miss_ratio() == 0.0


class TestOutcomeValidation:
    def test_hit_with_class_rejected(self):
        with pytest.raises(ValueError):
            AccessOutcome(hit=True, miss_class=MissClass.CAPACITY)

    def test_miss_without_class_rejected(self):
        with pytest.raises(ValueError):
            AccessOutcome(hit=False)
