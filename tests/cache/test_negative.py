"""Tests for negative result caching."""

from __future__ import annotations

import pytest

from repro.cache.negative import NegativeResultCache


class TestSemantics:
    def test_unknown_key_misses(self):
        cache = NegativeResultCache(ttl_s=60.0)
        assert not cache.check(1, now=0.0)

    def test_recorded_error_hits_within_ttl(self):
        cache = NegativeResultCache(ttl_s=60.0)
        cache.record(1, now=0.0)
        assert cache.check(1, now=30.0)

    def test_expires_after_ttl(self):
        cache = NegativeResultCache(ttl_s=60.0)
        cache.record(1, now=0.0)
        assert not cache.check(1, now=61.0)
        assert len(cache) == 0  # expired entry is removed

    def test_rerecord_refreshes(self):
        cache = NegativeResultCache(ttl_s=60.0)
        cache.record(1, now=0.0)
        cache.record(1, now=50.0)
        assert cache.check(1, now=100.0)

    def test_hit_ratio(self):
        cache = NegativeResultCache(ttl_s=60.0)
        cache.record(1, now=0.0)
        cache.check(1, now=1.0)  # hit
        cache.check(2, now=1.0)  # miss
        assert cache.hit_ratio == pytest.approx(0.5)


class TestBounds:
    def test_entry_bound_evicts_oldest(self):
        cache = NegativeResultCache(ttl_s=1e9, max_entries=2)
        cache.record(1, now=0.0)
        cache.record(2, now=1.0)
        cache.record(3, now=2.0)
        assert not cache.check(1, now=3.0)
        assert cache.check(2, now=3.0)
        assert cache.check(3, now=3.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            NegativeResultCache(ttl_s=0.0)
        with pytest.raises(ValueError):
            NegativeResultCache(ttl_s=1.0, max_entries=0)
