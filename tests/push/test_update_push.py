"""Tests for the update-push policy."""

from __future__ import annotations

import pytest

from repro.push.update_push import UpdatePush
from repro.traces.records import Request


def make_request(obj=1, version=1, size=100, time=0.0):
    return Request(
        time=time, client_id=0, object_id=obj, size=size, version=version
    )


class TestTargeting:
    def test_pushes_to_stale_holders(self):
        policy = UpdatePush()
        actions = policy.on_server_fetch(
            now=0.0,
            request=make_request(version=2),
            requester_l1=0,
            communication_miss=True,
            stale_holders={3: 1, 5: 0},
        )
        assert sorted(a.target_l1 for a in actions) == [3, 5]
        assert all(a.version == 2 for a in actions)

    def test_requester_excluded(self):
        policy = UpdatePush()
        actions = policy.on_server_fetch(
            now=0.0,
            request=make_request(version=2),
            requester_l1=3,
            communication_miss=True,
            stale_holders={3: 1, 5: 0},
        )
        assert [a.target_l1 for a in actions] == [5]

    def test_no_push_on_compulsory_miss(self):
        policy = UpdatePush()
        assert (
            policy.on_server_fetch(
                now=0.0,
                request=make_request(),
                requester_l1=0,
                communication_miss=False,
                stale_holders={},
            )
            == []
        )

    def test_ignores_remote_fetches(self):
        policy = UpdatePush()
        assert policy.on_remote_fetch(0.0, make_request(), 0, 1, 3) == []


class TestRateLimit:
    def test_budget_discards_excess(self):
        policy = UpdatePush(max_bandwidth_bytes_per_s=100.0)
        # First event at t=0: elapsed is clamped to 1 s -> 100 B budget.
        actions = policy.on_server_fetch(
            now=0.0,
            request=make_request(version=2, size=80),
            requester_l1=0,
            communication_miss=True,
            stale_holders={1: 0, 2: 0, 3: 0},
        )
        assert len(actions) == 1
        assert policy.discarded_for_rate == 2

    def test_budget_recovers_over_time(self):
        policy = UpdatePush(max_bandwidth_bytes_per_s=100.0)
        policy.on_server_fetch(
            now=0.0, request=make_request(version=2, size=80),
            requester_l1=0, communication_miss=True, stale_holders={1: 0},
        )
        later = policy.on_server_fetch(
            now=100.0, request=make_request(obj=2, version=2, size=80),
            requester_l1=0, communication_miss=True, stale_holders={2: 0},
        )
        assert len(later) == 1

    def test_rejects_non_positive_cap(self):
        with pytest.raises(ValueError):
            UpdatePush(max_bandwidth_bytes_per_s=0.0)
