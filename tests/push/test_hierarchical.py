"""Tests for hierarchical push on miss."""

from __future__ import annotations

import pytest

from repro.hierarchy.topology import HierarchyTopology
from repro.push.hierarchical import HierarchicalPushOnMiss
from repro.traces.records import Request

TOPOLOGY = HierarchyTopology(clients_per_l1=1, l1_per_l2=4, n_l2=3)  # 12 L1s


def make_request(obj=1, version=0, size=100):
    return Request(time=0.0, client_id=0, object_id=obj, size=size, version=version)


def targets(policy, requester, source, lca):
    actions = policy.on_remote_fetch(
        now=0.0, request=make_request(), requester_l1=requester,
        source_l1=source, lca_level=lca,
    )
    return [a.target_l1 for a in actions]


class TestEligibleSubtrees:
    def test_l3_fetch_push_1_hits_each_l2_group_once(self):
        policy = HierarchicalPushOnMiss(TOPOLOGY, "push-1", seed=0)
        chosen = targets(policy, requester=0, source=8, lca=3)
        groups = {TOPOLOGY.l2_of_l1(node) for node in chosen}
        assert len(chosen) == len(groups) == 3

    def test_l3_fetch_push_all_hits_everyone_else(self):
        policy = HierarchicalPushOnMiss(TOPOLOGY, "push-all", seed=0)
        chosen = targets(policy, requester=0, source=8, lca=3)
        assert sorted(chosen) == [n for n in range(12) if n not in (0, 8)]

    def test_l3_fetch_push_half_takes_half_per_group(self):
        policy = HierarchicalPushOnMiss(TOPOLOGY, "push-half", seed=0)
        chosen = targets(policy, requester=0, source=8, lca=3)
        for group in range(3):
            members = set(TOPOLOGY.l1_nodes_of_l2(group)) - {0, 8}
            in_group = [n for n in chosen if TOPOLOGY.l2_of_l1(n) == group]
            # "Half" rounds up: 3 eligible nodes -> 2 targets, 4 -> 2.
            assert len(in_group) == (len(members) + 1) // 2

    def test_push_half_rounds_up_in_odd_groups(self):
        # Regression for the floor-division bug: a 3-node subtree must
        # push to 2 caches, not 1.
        policy = HierarchicalPushOnMiss(TOPOLOGY, "push-half", seed=0)
        chosen = targets(policy, requester=0, source=8, lca=3)
        for group in (0, 2):  # the groups that lose a member to exclusion
            members = set(TOPOLOGY.l1_nodes_of_l2(group)) - {0, 8}
            assert len(members) == 3
            in_group = [n for n in chosen if TOPOLOGY.l2_of_l1(n) == group]
            assert len(in_group) == 2

    def test_l2_fetch_pushes_to_sibling_caches(self):
        # Level-1 subtrees are single caches: every mode pushes to all
        # siblings under the shared L2 parent (Figure 9's object B).
        for mode in ("push-1", "push-half", "push-all"):
            policy = HierarchicalPushOnMiss(TOPOLOGY, mode, seed=1)
            chosen = targets(policy, requester=0, source=1, lca=2)
            assert sorted(chosen) == [2, 3]

    def test_l1_fetch_pushes_nothing(self):
        policy = HierarchicalPushOnMiss(TOPOLOGY, "push-all", seed=0)
        assert targets(policy, requester=0, source=0, lca=1) == []

    def test_requester_and_source_never_targeted(self):
        policy = HierarchicalPushOnMiss(TOPOLOGY, "push-all", seed=0)
        chosen = targets(policy, requester=5, source=9, lca=3)
        assert 5 not in chosen
        assert 9 not in chosen


class TestDeterminism:
    def test_seeded_choices_reproducible(self):
        a = HierarchicalPushOnMiss(TOPOLOGY, "push-1", seed=3)
        b = HierarchicalPushOnMiss(TOPOLOGY, "push-1", seed=3)
        assert targets(a, 0, 8, 3) == targets(b, 0, 8, 3)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            HierarchicalPushOnMiss(TOPOLOGY, "push-two")

    def test_name_is_mode(self):
        assert HierarchicalPushOnMiss(TOPOLOGY, "push-half").name == "push-half"

    def test_actions_carry_request_identity(self):
        policy = HierarchicalPushOnMiss(TOPOLOGY, "push-1", seed=0)
        actions = policy.on_remote_fetch(
            now=0.0, request=make_request(obj=42, version=7, size=555),
            requester_l1=0, source_l1=8, lca_level=3,
        )
        assert all(
            (a.object_id, a.version, a.size) == (42, 7, 555) for a in actions
        )
