"""Integration tests: push policies running inside the hint hierarchy."""

from __future__ import annotations

import pytest

from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.hierarchy.topology import HierarchyTopology
from repro.netmodel.model import AccessPoint
from repro.netmodel.testbed import TestbedCostModel
from repro.push.hierarchical import HierarchicalPushOnMiss
from repro.push.update_push import UpdatePush
from repro.traces.records import Request

TOPOLOGY = HierarchyTopology(clients_per_l1=1, l1_per_l2=2, n_l2=2)


def make_request(client, obj=1, version=0, size=1000, time=0.0):
    return Request(
        time=time, client_id=client, object_id=obj, size=size, version=version
    )


class TestHierarchicalPushInSitu:
    def test_cross_group_fetch_seeds_other_caches(self):
        policy = HierarchicalPushOnMiss(TOPOLOGY, "push-all", seed=0)
        arch = HintHierarchy(TOPOLOGY, TestbedCostModel(), push_policy=policy)
        arch.process(make_request(client=0))
        arch.process(make_request(client=2))  # L3-distance fetch triggers push
        # Nodes 1 and 3 received pushed copies without ever asking.
        assert 1 in arch.l1_caches[1]
        assert 1 in arch.l1_caches[3]
        assert arch.push_stats.pushed_count == 2

    def test_pushed_copy_serves_next_request_locally(self):
        policy = HierarchicalPushOnMiss(TOPOLOGY, "push-all", seed=0)
        arch = HintHierarchy(TOPOLOGY, TestbedCostModel(), push_policy=policy)
        arch.process(make_request(client=0))
        arch.process(make_request(client=2))
        result = arch.process(make_request(client=3))
        assert result.point is AccessPoint.L1
        assert result.push_hit
        assert arch.push_stats.used_count == 1

    def test_push_does_not_overwrite_fresher_copy(self):
        policy = HierarchicalPushOnMiss(TOPOLOGY, "push-all", seed=0)
        arch = HintHierarchy(TOPOLOGY, TestbedCostModel(), push_policy=policy)
        arch.process(make_request(client=1, version=5))  # node 1: fresh copy
        arch.process(make_request(client=0, version=5))
        arch.process(make_request(client=2, version=5))  # triggers pushes
        assert arch.push_stats.skipped_count >= 1
        assert arch.l1_caches[1].peek(1).version == 5

    def test_name_includes_policy(self):
        policy = HierarchicalPushOnMiss(TOPOLOGY, "push-1", seed=0)
        arch = HintHierarchy(TOPOLOGY, TestbedCostModel(), push_policy=policy)
        assert arch.name == "hints+push-1"


class TestUpdatePushInSitu:
    def test_update_propagates_to_stale_holders(self):
        arch = HintHierarchy(
            TOPOLOGY, TestbedCostModel(), push_policy=UpdatePush()
        )
        arch.process(make_request(client=0, version=0, time=0.0))
        arch.process(make_request(client=2, version=0, time=1.0))
        # Client 1 sees the new version: a communication-miss server fetch.
        arch.process(make_request(client=1, version=1, time=2.0))
        # Nodes 0 and 2 held version 0; both get the fresh version pushed.
        assert arch.l1_caches[0].peek(1).version == 1
        assert arch.l1_caches[2].peek(1).version == 1

    def test_pushed_update_serves_future_hit(self):
        arch = HintHierarchy(
            TOPOLOGY, TestbedCostModel(), push_policy=UpdatePush()
        )
        arch.process(make_request(client=0, version=0, time=0.0))
        arch.process(make_request(client=1, version=1, time=1.0))
        result = arch.process(make_request(client=0, version=1, time=2.0))
        assert result.point is AccessPoint.L1
        assert result.push_hit

    def test_wasted_push_counted_on_eviction(self):
        arch = HintHierarchy(
            TOPOLOGY, TestbedCostModel(), l1_bytes=1500,
            push_policy=UpdatePush(),
        )
        arch.process(make_request(client=0, obj=1, version=0, time=0.0))
        arch.process(make_request(client=1, obj=1, version=1, time=1.0))
        assert arch.push_stats.pushed_count == 1
        # Node 0's pushed copy is evicted unread by local demand traffic.
        arch.process(make_request(client=0, obj=2, version=0, size=1400, time=2.0))
        assert arch.push_stats.wasted_count == 1


class TestUpdatePushAging:
    def test_aged_pushes_are_evicted_first(self):
        """With aging on, a pushed update sits at the eviction end."""
        arch = HintHierarchy(
            TOPOLOGY, TestbedCostModel(), l1_bytes=2500,
            push_policy=UpdatePush(age_pushed_entries=True),
        )
        # Node 0 holds obj 1 and obj 2.
        arch.process(make_request(client=0, obj=1, version=0, time=0.0))
        arch.process(make_request(client=0, obj=2, version=0, time=1.0))
        # Client 1 fetches obj 1 v1: update-push to node 0, aged on arrival.
        arch.process(make_request(client=1, obj=1, version=1, time=2.0))
        assert arch.l1_caches[0].peek(1).version == 1
        # A new demand insert must evict the AGED pushed entry, not obj 2.
        arch.process(make_request(client=0, obj=3, version=0, size=900, time=3.0))
        assert 1 not in arch.l1_caches[0]
        assert 2 in arch.l1_caches[0]

    def test_without_aging_pushed_entry_is_mru(self):
        arch = HintHierarchy(
            TOPOLOGY, TestbedCostModel(), l1_bytes=2500,
            push_policy=UpdatePush(age_pushed_entries=False),
        )
        arch.process(make_request(client=0, obj=1, version=0, time=0.0))
        arch.process(make_request(client=0, obj=2, version=0, time=1.0))
        arch.process(make_request(client=1, obj=1, version=1, time=2.0))
        arch.process(make_request(client=0, obj=3, version=0, size=900, time=3.0))
        # The freshly pushed obj 1 survives; the older obj 2 is evicted.
        assert 1 in arch.l1_caches[0]
        assert 2 not in arch.l1_caches[0]


class TestEfficiencyAccounting:
    def test_efficiency_reflects_use(self):
        policy = HierarchicalPushOnMiss(TOPOLOGY, "push-all", seed=0)
        arch = HintHierarchy(TOPOLOGY, TestbedCostModel(), push_policy=policy)
        arch.process(make_request(client=0))
        arch.process(make_request(client=2))  # pushes to nodes 1 and 3
        arch.process(make_request(client=3))  # uses one of them
        stats = arch.push_stats
        assert stats.pushed_count == 2
        assert stats.used_count == 1
        assert stats.efficiency == pytest.approx(0.5)
