"""Tests for push accounting."""

from __future__ import annotations

import pytest

from repro.push.base import PushAction, PushStats
from repro.push.nopush import NoPush
from repro.traces.records import Request


def make_request():
    return Request(time=0.0, client_id=0, object_id=1, size=100, version=0)


class TestPushStats:
    def test_efficiency(self):
        stats = PushStats(pushed_bytes=1000, used_bytes=300)
        assert stats.efficiency == pytest.approx(0.3)

    def test_efficiency_by_count(self):
        stats = PushStats(pushed_count=10, used_count=4)
        assert stats.efficiency_by_count == pytest.approx(0.4)

    def test_zero_pushes_zero_efficiency(self):
        assert PushStats().efficiency == 0.0
        assert PushStats().efficiency_by_count == 0.0

    def test_bandwidth_over_span(self):
        stats = PushStats(pushed_bytes=1000, demand_bytes=4000)
        stats.note_time(0.0)
        stats.note_time(100.0)
        assert stats.push_bandwidth_bytes_per_s() == pytest.approx(10.0)
        assert stats.demand_bandwidth_bytes_per_s() == pytest.approx(40.0)

    def test_bandwidth_without_span(self):
        assert PushStats(pushed_bytes=100).push_bandwidth_bytes_per_s() == 0.0


class TestNoPush:
    def test_pushes_nothing_on_any_event(self):
        policy = NoPush()
        assert policy.on_remote_fetch(0.0, make_request(), 0, 1, 3) == []
        assert policy.on_server_fetch(0.0, make_request(), 0, True, {1: 0}) == []

    def test_push_action_fields(self):
        action = PushAction(target_l1=3, object_id=7, size=100, version=2)
        assert (action.target_l1, action.object_id) == (3, 7)
