"""Golden snapshot of the architecture comparison under a non-LRU policy.

Pins a Table-3-style four-architecture comparison with every L1 data
cache running LFU (space-constrained, so the policy actually evicts) to
``golden/policy_lfu.json``.  The pre-existing table snapshots prove the
default-LRU path is untouched; this one pins what the *policy layer
itself* computes, so an accidental change to LFU victim selection or to
how specs thread through construction fails here before it shifts any
reported number.

Regenerate intentionally with::

    PYTHONPATH=src python -m pytest tests/regression --force-regen

A second test pins jobs-invariance for a *mixed* policy map through
``run_comparison_parallel``: worker processes rebuild caches from pickled
``PolicySpec`` values, and any seed/salt drift between the in-process and
multiprocess paths would break the equality.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.cache.policy import PolicySpec
from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.directory_arch import CentralizedDirectoryArchitecture
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.hierarchy.icp import IcpHierarchy
from repro.netmodel.testbed import TestbedCostModel
from repro.runner.parallel import run_comparison_parallel
from repro.runner.specs import ArchitectureSpec
from repro.sim.engine import run_simulation
from repro.traces.synthetic import SyntheticTraceGenerator
from tests.conftest import make_tiny_config

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"

LFU = PolicySpec("lfu")


def _policy_specs(config, l1_policy):
    """The standard four, space-constrained, under ``l1_policy`` at L1."""
    cost = TestbedCostModel()
    data_kwargs = dict(l1_bytes=config.l1_cache_bytes, l1_policy=l1_policy)
    hint_kwargs = dict(l1_bytes=config.hint_data_cache_bytes, l1_policy=l1_policy)
    return [
        ArchitectureSpec(DataHierarchy, (config.topology, cost), data_kwargs),
        ArchitectureSpec(IcpHierarchy, (config.topology, cost), data_kwargs),
        ArchitectureSpec(HintHierarchy, (config.topology, cost), hint_kwargs),
        ArchitectureSpec(
            CentralizedDirectoryArchitecture, (config.topology, cost), hint_kwargs
        ),
    ]


def _snapshot() -> dict:
    """Comparison rows under l1=lfu, JSON round-tripped for stable repr."""
    config = make_tiny_config()
    trace = SyntheticTraceGenerator(
        config.profile("dec"), seed=config.seed
    ).generate()
    rows = {}
    for spec in _policy_specs(config, LFU):
        architecture = spec.build()
        metrics = run_simulation(trace, architecture)
        rows[architecture.name] = metrics.summary()
    return json.loads(json.dumps(rows, sort_keys=True))


def test_golden_policy_lfu(force_regen: bool) -> None:
    path = GOLDEN_DIR / "policy_lfu.json"
    snapshot = _snapshot()
    if force_regen or not path.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        if not force_regen:
            pytest.fail(
                f"golden snapshot {path} was missing and has been written; "
                "review and commit it, then re-run"
            )
        return
    golden = json.loads(path.read_text())
    assert snapshot == golden, (
        "the l1=lfu comparison drifted from its golden snapshot; if the "
        "change is intentional, regenerate with --force-regen and review "
        "the diff"
    )


def test_mixed_policy_comparison_is_jobs_invariant() -> None:
    """jobs=1 vs jobs=4 over a mixed per-level policy map: identical
    metrics.  Workers rebuild Random caches from pickled specs, so this
    pins the (spec, salt) purity of the seeded victim streams."""
    config = make_tiny_config()
    cost = TestbedCostModel()
    profile = config.profile("dec")
    mixed = dict(
        l1_bytes=config.l1_cache_bytes,
        l2_bytes=4 * config.l1_cache_bytes,
        l3_bytes=8 * config.l1_cache_bytes,
        l1_policy=PolicySpec("lfu"),
        l2_policy=PolicySpec("random", seed=17),
        l3_policy=PolicySpec("lru"),
    )
    specs = [
        ArchitectureSpec(DataHierarchy, (config.topology, cost), mixed),
        ArchitectureSpec(
            HintHierarchy,
            (config.topology, cost),
            dict(
                l1_bytes=config.hint_data_cache_bytes,
                l1_policy=PolicySpec("random", seed=17),
            ),
        ),
    ]
    serial = run_comparison_parallel(profile, config.seed, specs, jobs=1)
    parallel = run_comparison_parallel(profile, config.seed, specs, jobs=4)
    assert serial == parallel
    assert set(serial) == {"hierarchy", "hints"}
