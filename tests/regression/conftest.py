"""Fixtures for the golden-snapshot regression tests.

The ``--force-regen`` command-line flag itself is registered in the
top-level ``tests/conftest.py`` (pytest only honours ``pytest_addoption``
in initial conftests); this one exposes it as a fixture.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def force_regen(request: pytest.FixtureRequest) -> bool:
    """True when the run should rewrite golden snapshots in place."""
    return bool(request.config.getoption("--force-regen"))
