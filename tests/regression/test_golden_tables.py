"""Golden snapshots of the table experiments at the tiny config.

Each experiment's rows are pinned to a checked-in JSON file.  The
simulations are deterministic pure functions of (config, code), so any
diff against the snapshot is a *behavioural* change -- a perf PR that
reorders floating-point accumulation, changes an eviction tie-break, or
touches the trace generator will fail here before it silently shifts the
paper's numbers.

Intentional changes regenerate the snapshots::

    PYTHONPATH=src python -m pytest tests/regression --force-regen

then the diff gets reviewed like any other code change.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.experiments.registry import get_experiment
from tests.conftest import make_tiny_config

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"

#: Experiments pinned: the paper's numeric tables with fast tiny-config runs.
PINNED = ("table3", "table4", "table5")


def _snapshot(name: str) -> dict:
    """The experiment's canonical, JSON-stable output at the tiny config."""
    result = get_experiment(name)(make_tiny_config())
    # Round-trip through JSON so the comparison sees exactly what the
    # file stores (tuples become lists, ints stay ints, floats use the
    # same repr on both sides).
    return json.loads(
        json.dumps(
            {
                "experiment": result.experiment,
                "description": result.description,
                "rows": result.rows,
            },
            sort_keys=True,
        )
    )


@pytest.mark.parametrize("name", PINNED)
def test_golden_table(name: str, force_regen: bool) -> None:
    path = GOLDEN_DIR / f"{name}.json"
    snapshot = _snapshot(name)
    if force_regen or not path.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        if not force_regen:
            pytest.fail(
                f"golden snapshot {path} was missing and has been written; "
                "review and commit it, then re-run"
            )
        return
    golden = json.loads(path.read_text())
    assert snapshot == golden, (
        f"{name} output drifted from its golden snapshot; if the change is "
        "intentional, regenerate with --force-regen and review the diff"
    )


def test_golden_snapshots_checked_in() -> None:
    """Every pinned experiment has its snapshot file in the repo."""
    missing = [name for name in PINNED if not (GOLDEN_DIR / f"{name}.json").exists()]
    assert not missing, f"missing golden snapshots: {missing}"
