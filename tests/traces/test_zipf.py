"""Tests for the bounded Zipf sampler and catalog sizing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.zipf import ZipfSampler, catalog_size_for_distinct


def make_sampler(n=100, alpha=0.8, seed=0):
    return ZipfSampler(n, alpha, np.random.default_rng(seed))


class TestZipfSampler:
    def test_probabilities_sum_to_one(self):
        sampler = make_sampler(n=50)
        total = sum(sampler.probability(r) for r in range(50))
        assert total == pytest.approx(1.0)

    def test_probability_decreases_with_rank(self):
        sampler = make_sampler(n=50, alpha=0.9)
        probs = [sampler.probability(r) for r in range(50)]
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_alpha_zero_is_uniform(self):
        sampler = make_sampler(n=10, alpha=0.0)
        for rank in range(10):
            assert sampler.probability(rank) == pytest.approx(0.1)

    def test_samples_stay_in_range(self):
        sampler = make_sampler(n=20)
        draws = sampler.sample(5000)
        assert draws.min() >= 0
        assert draws.max() < 20

    def test_empirical_head_frequency_matches(self):
        sampler = make_sampler(n=100, alpha=0.8, seed=3)
        draws = sampler.sample(200_000)
        empirical = np.mean(draws == 0)
        assert empirical == pytest.approx(sampler.probability(0), rel=0.05)

    def test_sample_zero_count(self):
        assert len(make_sampler().sample(0)) == 0

    def test_probability_rank_out_of_range(self):
        with pytest.raises(IndexError):
            make_sampler(n=5).probability(5)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            make_sampler().sample(-1)

    @pytest.mark.parametrize("n,alpha", [(0, 0.8), (-3, 0.8), (10, -0.1)])
    def test_invalid_construction(self, n, alpha):
        with pytest.raises(ValueError):
            ZipfSampler(n, alpha, np.random.default_rng(0))

    def test_expected_distinct_bounds(self):
        sampler = make_sampler(n=100)
        expected = sampler.expected_distinct(1000)
        assert 0 < expected <= 100

    def test_expected_distinct_matches_empirical(self):
        sampler = make_sampler(n=200, alpha=0.7, seed=1)
        expected = sampler.expected_distinct(2000)
        observed = np.mean(
            [len(set(make_sampler(200, 0.7, seed).sample(2000))) for seed in range(20)]
        )
        assert observed == pytest.approx(expected, rel=0.05)


class TestCatalogSizing:
    @settings(deadline=None, max_examples=25)
    @given(
        requests=st.integers(2_000, 50_000),
        ratio=st.floats(0.05, 0.5),
        alpha=st.floats(0.5, 1.0),
    )
    def test_sized_catalog_hits_target(self, requests, ratio, alpha):
        target = max(10, int(requests * ratio))
        n = catalog_size_for_distinct(requests, target, alpha)
        sampler = ZipfSampler(n, alpha, np.random.default_rng(0))
        expected = sampler.expected_distinct(requests)
        assert expected == pytest.approx(target, rel=0.1)

    def test_rejects_distinct_above_requests(self):
        with pytest.raises(ValueError):
            catalog_size_for_distinct(100, 200, 0.8)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            catalog_size_for_distinct(0, 10, 0.8)
