"""Tests for trace serialization round trips."""

from __future__ import annotations

import io

import pytest

from repro.common.errors import TraceFormatError
from repro.traces.io import read_trace, read_trace_text, write_trace, write_trace_text
from repro.traces.records import Request, Trace


@pytest.fixture()
def trace():
    requests = [
        Request(time=0.5, client_id=1, object_id=10, size=2048, version=0),
        Request(time=1.25, client_id=2, object_id=11, size=4096, version=1,
                cacheable=False),
        Request(time=2.0, client_id=1, object_id=10, size=2048, version=0,
                error=True),
    ]
    return Trace(
        profile_name="unit",
        requests=requests,
        n_objects=12,
        n_clients=3,
        duration=100.0,
        warmup=1.0,
    )


class TestTextFormat:
    def test_round_trip(self, trace):
        buffer = io.StringIO()
        write_trace_text(trace, buffer)
        buffer.seek(0)
        loaded = read_trace_text(buffer)
        assert loaded.requests == trace.requests
        assert loaded.profile_name == "unit"
        assert loaded.n_objects == 12
        assert loaded.n_clients == 3
        assert loaded.duration == 100.0
        assert loaded.warmup == 1.0

    def test_rejects_bad_header(self):
        with pytest.raises(TraceFormatError, match="header"):
            read_trace_text(io.StringIO("not a trace\n"))

    def test_rejects_wrong_field_count(self, trace):
        buffer = io.StringIO()
        write_trace_text(trace, buffer)
        text = buffer.getvalue() + "1.0\t2\t3\n"
        with pytest.raises(TraceFormatError, match="fields"):
            read_trace_text(io.StringIO(text))

    def test_rejects_non_numeric_field(self, trace):
        buffer = io.StringIO()
        write_trace_text(trace, buffer)
        text = buffer.getvalue() + "x\t1\t1\t1\t0\t1\t0\n"
        with pytest.raises(TraceFormatError):
            read_trace_text(io.StringIO(text))

    def test_skips_comments_and_blanks(self, trace):
        buffer = io.StringIO()
        write_trace_text(trace, buffer)
        text = buffer.getvalue() + "\n# trailing comment\n"
        loaded = read_trace_text(io.StringIO(text))
        assert len(loaded) == 3


class TestFileRoundTrips:
    def test_text_file(self, trace, tmp_path):
        path = tmp_path / "trace.tsv"
        write_trace(trace, path)
        assert read_trace(path).requests == trace.requests

    def test_npz_file(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert loaded.requests == trace.requests
        assert loaded.profile_name == "unit"

    def test_npz_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(TraceFormatError):
            read_trace(path)
