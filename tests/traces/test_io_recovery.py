"""Regression tests: corrupt/foreign ``.npz`` files raise ``TraceFormatError``.

Before the fix, ``_read_trace_npz`` wrapped only the ``np.load`` call, so
a truncated zip (zipfile raises lazily, on member read) or a foreign
``.npz`` missing a column (``KeyError``) escaped as an uncaught exception
-- crashing the run at the exact spot ``TraceCache._load`` is documented
to regenerate.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.common.errors import TraceFormatError
from repro.runner.fingerprint import trace_fingerprint
from repro.runner.trace_cache import TraceCache
from repro.traces.io import read_trace, write_trace
from repro.traces.records import Request, Trace
from tests.runner.test_trace_cache import PROFILE, SEED, assert_traces_identical


@pytest.fixture()
def trace():
    requests = [
        Request(time=0.5, client_id=1, object_id=10, size=2048, version=0),
        Request(time=1.25, client_id=2, object_id=11, size=4096, version=1),
    ]
    return Trace(
        profile_name="unit",
        requests=requests,
        n_objects=12,
        n_clients=3,
        duration=100.0,
        warmup=1.0,
    )


def test_truncated_npz_raises_trace_format_error(tmp_path, trace):
    path = os.path.join(tmp_path, "trace.npz")
    write_trace(trace, path)
    payload = open(path, "rb").read()
    # Drop the tail: depending on where the cut lands, zipfile fails at
    # open (broken central directory) or lazily at member decompression;
    # both must surface as TraceFormatError.
    for keep in (len(payload) // 2, len(payload) - 20):
        with open(path, "wb") as stream:
            stream.write(payload[:keep])
        with pytest.raises(TraceFormatError, match="npz"):
            read_trace(path)


def test_foreign_npz_raises_trace_format_error(tmp_path):
    path = os.path.join(tmp_path, "foreign.npz")
    # A perfectly valid .npz that simply is not a trace: member extraction
    # raises KeyError, which must come back as TraceFormatError.
    np.savez_compressed(path, weights=np.arange(3), bias=np.zeros(2))
    with pytest.raises(TraceFormatError, match="npz"):
        read_trace(path)


def test_wrong_dtype_npz_raises_trace_format_error(tmp_path):
    path = os.path.join(tmp_path, "badtype.npz")
    np.savez_compressed(
        path,
        profile_name=np.array("x"),
        n_objects=np.array(1),
        n_clients=np.array(1),
        duration=np.array(1.0),
        warmup=np.array(0.0),
        time=np.array(["not", "a", "float"]),
        client=np.zeros(3, dtype=np.int64),
        object=np.zeros(3, dtype=np.int64),
        size=np.ones(3, dtype=np.int64),
        version=np.zeros(3, dtype=np.int64),
        cacheable=np.ones(3, dtype=bool),
        error=np.zeros(3, dtype=bool),
    )
    with pytest.raises(TraceFormatError):
        read_trace(path)


class TestCacheRegeneratesOnBadEntries:
    """The end-to-end property the bug broke: bad store entries regenerate."""

    def _poison(self, directory: str, payload: bytes) -> str:
        fingerprint = trace_fingerprint(PROFILE, SEED)
        path = os.path.join(directory, f"{fingerprint}.npz")
        with open(path, "wb") as stream:
            stream.write(payload)
        return path

    def test_truncated_store_entry_regenerates(self, tmp_path):
        warm = TraceCache(tmp_path)
        expected = warm.get(PROFILE, SEED)
        fingerprint = trace_fingerprint(PROFILE, SEED)
        path = os.path.join(tmp_path, f"{fingerprint}.npz")
        payload = open(path, "rb").read()
        self._poison(os.fspath(tmp_path), payload[: len(payload) - 20])

        cache = TraceCache(tmp_path)
        trace = cache.get(PROFILE, SEED)
        assert_traces_identical(trace, expected)
        assert cache.stats.generations == 1
        assert cache.stats.disk_hits == 0

    def test_foreign_store_entry_regenerates(self, tmp_path):
        fingerprint = trace_fingerprint(PROFILE, SEED)
        np.savez_compressed(
            os.path.join(tmp_path, f"{fingerprint}.npz"), weights=np.arange(4)
        )
        cache = TraceCache(tmp_path)
        trace = cache.get(PROFILE, SEED)
        assert trace.profile_name == PROFILE.name
        assert cache.stats.generations == 1
        assert cache.stats.disk_hits == 0
