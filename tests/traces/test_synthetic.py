"""Tests for the synthetic trace generator's calibration and determinism."""

from __future__ import annotations

import pytest

from repro.traces.profiles import DEC, PRODIGY, WorkloadProfile
from repro.traces.synthetic import SyntheticTraceGenerator, generate_trace

SMALL = WorkloadProfile(
    name="small",
    n_clients=64,
    n_requests=12_000,
    target_distinct=2_400,
    duration_days=4.0,
    frac_uncachable=0.08,
    frac_error=0.03,
    frac_mutable=0.25,
    mean_mod_interval_days=1.0,
    warmup_days=0.5,
)


@pytest.fixture(scope="module")
def small_trace():
    return SyntheticTraceGenerator(SMALL, seed=11).generate()


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = SyntheticTraceGenerator(SMALL, seed=3).generate()
        b = SyntheticTraceGenerator(SMALL, seed=3).generate()
        assert a.requests == b.requests

    def test_different_seed_different_trace(self):
        a = SyntheticTraceGenerator(SMALL, seed=3).generate()
        b = SyntheticTraceGenerator(SMALL, seed=4).generate()
        assert a.requests != b.requests


class TestCalibration:
    def test_request_count(self, small_trace):
        assert len(small_trace) == SMALL.n_requests

    def test_distinct_objects_near_target(self, small_trace):
        assert small_trace.distinct_objects() == pytest.approx(
            SMALL.target_distinct, rel=0.15
        )

    def test_uncachable_fraction(self, small_trace):
        frac = sum(not r.cacheable for r in small_trace) / len(small_trace)
        assert frac == pytest.approx(SMALL.frac_uncachable, abs=0.02)

    def test_error_fraction(self, small_trace):
        frac = sum(r.error for r in small_trace) / len(small_trace)
        assert frac == pytest.approx(SMALL.frac_error, abs=0.01)

    def test_mean_size_near_profile(self, small_trace):
        mean = small_trace.total_bytes() / len(small_trace)
        assert mean == pytest.approx(SMALL.mean_object_bytes, rel=0.35)

    def test_popularity_is_skewed(self, small_trace):
        from collections import Counter

        counts = Counter(r.object_id for r in small_trace)
        top = counts.most_common(1)[0][1]
        assert top > 5 * len(small_trace) / SMALL.target_distinct


class TestStructure:
    def test_times_sorted_within_duration(self, small_trace):
        times = [r.time for r in small_trace]
        assert times == sorted(times)
        assert times[0] >= 0
        assert times[-1] <= SMALL.duration_seconds

    def test_warmup_boundary_from_profile(self, small_trace):
        assert small_trace.warmup == SMALL.warmup_seconds

    def test_client_ids_in_range(self, small_trace):
        assert all(0 <= r.client_id < SMALL.n_clients for r in small_trace)

    def test_sizes_are_stable_per_object(self, small_trace):
        sizes: dict[int, int] = {}
        for request in small_trace:
            previous = sizes.setdefault(request.object_id, request.size)
            assert previous == request.size

    def test_versions_monotone_in_time_per_object(self, small_trace):
        latest: dict[int, int] = {}
        for request in small_trace:
            previous = latest.get(request.object_id, -1)
            assert request.version >= previous
            latest[request.object_id] = request.version

    def test_some_objects_are_modified(self, small_trace):
        assert any(r.version > 0 for r in small_trace)

    def test_uncachable_objects_are_distinct_catalog(self, small_trace):
        cacheable_ids = {r.object_id for r in small_trace if r.cacheable}
        uncachable_ids = {r.object_id for r in small_trace if not r.cacheable}
        assert not cacheable_ids & uncachable_ids


class TestClientLocality:
    def test_repeats_raise_per_client_rereference_rate(self):
        from dataclasses import replace

        def client_rereference_rate(profile):
            trace = SyntheticTraceGenerator(profile, seed=9).generate()
            seen: dict[int, set[int]] = {}
            repeats = 0
            plain = 0
            for request in trace:
                if not request.cacheable:
                    continue
                plain += 1
                client_objects = seen.setdefault(request.client_id, set())
                if request.object_id in client_objects:
                    repeats += 1
                client_objects.add(request.object_id)
            return repeats / plain

        without = replace(SMALL, client_repeat_prob=0.0)
        with_repeats = replace(SMALL, client_repeat_prob=0.4)
        assert client_rereference_rate(with_repeats) > client_rereference_rate(
            without
        ) + 0.15

    def test_repeats_preserve_distinct_target(self):
        from dataclasses import replace

        profile = replace(SMALL, client_repeat_prob=0.4)
        trace = SyntheticTraceGenerator(profile, seed=9).generate()
        assert trace.distinct_objects() == pytest.approx(
            SMALL.target_distinct, rel=0.2
        )

    def test_zero_repeat_profile_validates(self):
        from dataclasses import replace

        replace(SMALL, client_repeat_prob=0.0)

    def test_rejects_bad_repeat_prob(self):
        from dataclasses import replace

        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            replace(SMALL, client_repeat_prob=1.0)
        with pytest.raises(ConfigurationError):
            replace(SMALL, client_working_set=0)


class TestClientBinding:
    def test_dynamic_profile_rebinds_users(self):
        static = SyntheticTraceGenerator(
            PRODIGY.scaled(0.001), seed=5
        ).profile
        assert static.dynamic_client_ids
        trace = generate_trace(PRODIGY, seed=5, scale=0.001)
        # Dynamic binding keeps ids in range but spreads a user across ids.
        assert all(0 <= r.client_id < trace.n_clients for r in trace)

    def test_generate_trace_scale_shortcut(self):
        trace = generate_trace(DEC, seed=1, scale=0.0002)
        assert len(trace) == DEC.scaled(0.0002).n_requests
        assert trace.profile_name == "dec"
