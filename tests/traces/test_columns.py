"""Tests for the columnar trace layout and its lazy row view."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces.columns import COLUMN_DTYPES, LazyRequestList, TraceColumns
from repro.traces.io import read_trace, write_trace
from repro.traces.records import Request, Trace


@pytest.fixture()
def requests():
    return [
        Request(time=0.5, client_id=1, object_id=10, size=2048, version=0),
        Request(time=1.25, client_id=2, object_id=11, size=4096, version=1,
                cacheable=False),
        Request(time=2.0, client_id=1, object_id=10, size=2048, version=0,
                error=True),
    ]


class TestTraceColumns:
    def test_round_trip_through_requests(self, requests):
        columns = TraceColumns.from_requests(requests)
        assert len(columns) == 3
        assert columns.to_requests() == requests
        assert columns.row(1) == requests[1]
        for name, dtype in COLUMN_DTYPES.items():
            assert getattr(columns, name).dtype == np.dtype(dtype)

    def test_native_scalar_types(self, requests):
        row = TraceColumns.from_requests(requests).row(0)
        assert type(row.time) is float
        assert type(row.client_id) is int
        assert type(row.cacheable) is bool

    def test_mismatched_lengths_rejected(self, requests):
        columns = TraceColumns.from_requests(requests)
        with pytest.raises(ValueError, match="mismatched lengths"):
            TraceColumns(
                time=columns.time[:2],
                client=columns.client,
                object=columns.object,
                size=columns.size,
                version=columns.version,
                cacheable=columns.cacheable,
                error=columns.error,
            )

    def test_time_sortedness(self, requests):
        assert TraceColumns.from_requests(requests).is_time_sorted()
        assert TraceColumns.from_requests([]).is_time_sorted()
        shuffled = TraceColumns.from_requests(requests[::-1])
        assert not shuffled.is_time_sorted()


class TestLazyRequestList:
    def test_len_and_equality_stay_columnar(self, requests):
        lazy = LazyRequestList(TraceColumns.from_requests(requests))
        assert len(lazy) == 3
        assert not lazy.materialized
        # Identity-based equality on shared columns stays lazy too.
        assert lazy == LazyRequestList(lazy.columns)
        assert not lazy.materialized

    def test_access_materializes_once(self, requests):
        lazy = LazyRequestList(TraceColumns.from_requests(requests))
        assert lazy[0] == requests[0]
        assert lazy.materialized
        assert list(lazy) == requests
        assert lazy == requests

    def test_trace_from_columns_validates_sortedness(self, requests):
        columns = TraceColumns.from_requests(requests[::-1])
        with pytest.raises(ValueError, match="sorted by time"):
            Trace.from_columns("unit", columns, 12, 3, 100.0)

    def test_trace_from_columns_memoizes(self, requests):
        columns = TraceColumns.from_requests(requests)
        trace = Trace.from_columns("unit", columns, 12, 3, 100.0, warmup=1.0)
        assert trace.columns() is columns
        assert not trace.requests.materialized


class TestNpzStaysColumnar:
    def test_npz_round_trip_is_lazy_and_equal(self, requests, tmp_path):
        trace = Trace(
            profile_name="unit",
            requests=requests,
            n_objects=12,
            n_clients=3,
            duration=100.0,
            warmup=1.0,
        )
        path = tmp_path / "trace.npz"
        write_trace(trace, path)
        loaded = read_trace(path)
        # The warm-load path hands back columns without building rows.
        assert isinstance(loaded.requests, LazyRequestList)
        assert not loaded.requests.materialized
        assert loaded.columns() is loaded.requests.columns
        # Equality (and any row access) materializes and matches exactly.
        assert loaded.requests == trace.requests
        assert loaded == trace
