"""Tests for request/trace records."""

from __future__ import annotations

import pytest

from repro.traces.records import Request, Trace


def make_request(time=0.0, client=0, obj=0, **kw):
    defaults = dict(size=1024, version=0)
    defaults.update(kw)
    return Request(time=time, client_id=client, object_id=obj, **defaults)


class TestRequest:
    def test_defaults(self):
        request = make_request()
        assert request.cacheable
        assert not request.error

    def test_is_a_tuple(self):
        # NamedTuple for speed: field order is part of the contract.
        request = make_request(time=1.0, client=2, obj=3)
        assert request[:3] == (1.0, 2, 3)


class TestTrace:
    def make_trace(self, requests=None, **kw):
        if requests is None:
            requests = [make_request(time=float(i), obj=i % 3) for i in range(6)]
        defaults = dict(
            profile_name="t", n_objects=3, n_clients=1, duration=10.0, warmup=2.0
        )
        defaults.update(kw)
        return Trace(requests=requests, **defaults)

    def test_len_and_iteration(self):
        trace = self.make_trace()
        assert len(trace) == 6
        assert [r.time for r in trace] == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]

    def test_rejects_unsorted_requests(self):
        requests = [make_request(time=5.0), make_request(time=1.0)]
        with pytest.raises(ValueError, match="sorted"):
            self.make_trace(requests=requests)

    def test_url_for_is_deterministic_and_cached(self):
        trace = self.make_trace()
        assert trace.url_for(7) == trace.url_for(7)
        assert "7" in trace.url_for(7)

    def test_urls_differ_per_object(self):
        trace = self.make_trace()
        assert trace.url_for(1) != trace.url_for(2)

    def test_measured_requests_respect_warmup(self):
        trace = self.make_trace()
        measured = trace.measured_requests()
        assert all(r.time >= 2.0 for r in measured)
        assert len(measured) == 4

    def test_distinct_counts(self):
        trace = self.make_trace()
        assert trace.distinct_objects() == 3
        assert trace.distinct_clients() == 1

    def test_total_bytes(self):
        trace = self.make_trace()
        assert trace.total_bytes() == 6 * 1024
