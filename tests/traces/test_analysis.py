"""Tests for trace characterization."""

from __future__ import annotations

import pytest

from repro.common.units import DAYS
from repro.traces.analysis import characterize, popularity_histogram, sharing_profile
from repro.traces.records import Request, Trace


def make_trace():
    requests = [
        Request(time=0.0, client_id=0, object_id=1, size=100, version=0),
        Request(time=DAYS, client_id=1, object_id=1, size=100, version=0),
        Request(time=2 * DAYS, client_id=0, object_id=2, size=300, version=0,
                cacheable=False),
        Request(time=3 * DAYS, client_id=2, object_id=3, size=500, version=0,
                error=True),
    ]
    return Trace(
        profile_name="unit", requests=requests, n_objects=4, n_clients=3,
        duration=4 * DAYS,
    )


class TestCharacterize:
    def test_basic_counts(self):
        stats = characterize(make_trace())
        assert stats.n_clients == 3
        assert stats.n_requests == 4
        assert stats.n_distinct_objects == 3
        assert stats.days == pytest.approx(3.0)
        assert stats.total_bytes == 1000

    def test_fractions(self):
        stats = characterize(make_trace())
        assert stats.frac_uncachable_requests == pytest.approx(0.25)
        assert stats.frac_error_requests == pytest.approx(0.25)
        assert stats.frac_re_references == pytest.approx(0.25)

    def test_distinct_ratio(self):
        stats = characterize(make_trace())
        assert stats.distinct_ratio == pytest.approx(0.75)

    def test_table_row_format(self):
        row = characterize(make_trace()).as_table_row()
        assert row["Trace"] == "unit"
        assert row["# of Clients"] == "3"
        assert row["# of Accesses"] == "4"


class TestHelpers:
    def test_popularity_histogram(self):
        top = popularity_histogram(make_trace(), top=2)
        assert top[0] == (1, 2)

    def test_sharing_profile(self):
        profile = sharing_profile(make_trace())
        # object 1 is shared by two clients; objects 2 and 3 by one each.
        assert profile == {1: 2, 2: 1}
