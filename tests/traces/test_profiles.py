"""Tests for workload profiles."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.traces.profiles import (
    BERKELEY,
    DEC,
    PRODIGY,
    WorkloadProfile,
    all_profiles,
    profile_by_name,
)


class TestBuiltinProfiles:
    def test_table4_full_scale_figures(self):
        assert DEC.n_clients == 16_660
        assert DEC.n_requests == 22_100_000
        assert DEC.target_distinct == 4_150_000
        assert DEC.duration_days == 21
        assert BERKELEY.n_clients == 8_372
        assert PRODIGY.duration_days == 3

    def test_only_prodigy_has_dynamic_ids(self):
        assert PRODIGY.dynamic_client_ids
        assert not DEC.dynamic_client_ids
        assert not BERKELEY.dynamic_client_ids

    def test_lookup_by_name(self):
        assert profile_by_name("dec") is DEC
        assert profile_by_name("DEC") is DEC

    def test_lookup_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown profile"):
            profile_by_name("squid")

    def test_all_profiles_order(self):
        assert all_profiles() == (DEC, BERKELEY, PRODIGY)


class TestScaling:
    def test_scaled_preserves_distinct_ratio(self):
        scaled = DEC.scaled(0.01)
        original_ratio = DEC.target_distinct / DEC.n_requests
        scaled_ratio = scaled.target_distinct / scaled.n_requests
        assert scaled_ratio == pytest.approx(original_ratio, rel=0.02)

    def test_scaled_keeps_duration(self):
        assert DEC.scaled(0.01).duration_days == DEC.duration_days

    def test_scaled_min_clients_floor(self):
        scaled = DEC.scaled(0.0001, min_clients=128)
        assert scaled.n_clients == 128

    def test_with_requests(self):
        resized = DEC.with_requests(10_000)
        assert resized.n_requests == pytest.approx(10_000, rel=0.1)

    @pytest.mark.parametrize("factor", [0.0, -0.5, 1.5])
    def test_invalid_scale_factor(self, factor):
        with pytest.raises(ConfigurationError):
            DEC.scaled(factor)


class TestValidation:
    def base_kwargs(self, **overrides):
        kwargs = dict(
            name="t", n_clients=10, n_requests=1000,
            target_distinct=100, duration_days=3.0,
        )
        kwargs.update(overrides)
        return kwargs

    def test_valid_profile_builds(self):
        WorkloadProfile(**self.base_kwargs())

    def test_rejects_zero_clients(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile(**self.base_kwargs(n_clients=0))

    def test_rejects_distinct_above_requests(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile(**self.base_kwargs(target_distinct=2000))

    def test_rejects_warmup_longer_than_trace(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile(**self.base_kwargs(duration_days=1.0, warmup_days=2.0))

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile(**self.base_kwargs(frac_uncachable=1.0))

    def test_derived_seconds(self):
        profile = WorkloadProfile(**self.base_kwargs())
        assert profile.duration_seconds == 3 * 86400
        assert profile.warmup_seconds == 2 * 86400
        assert profile.mean_object_bytes == 10 * 1024
