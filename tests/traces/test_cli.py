"""Tests for the trace toolkit CLI."""

from __future__ import annotations

import pytest

from repro.traces.cli import main
from repro.traces.io import read_trace


class TestGenerate:
    def test_generates_npz(self, tmp_path, capsys):
        out = tmp_path / "t.npz"
        code = main(
            [
                "generate", "--profile", "dec", "--scale", "0.0001",
                "--seed", "3", "-o", str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        trace = read_trace(out)
        assert len(trace) > 0
        assert "wrote" in capsys.readouterr().out

    def test_generates_text(self, tmp_path):
        out = tmp_path / "t.tsv"
        assert main(["generate", "--scale", "0.0001", "-o", str(out)]) == 0
        assert out.read_text().startswith("# repro-trace v1")

    def test_unknown_profile_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["generate", "--profile", "nope", "-o", str(tmp_path / "x.npz")]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestInspect:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        out = tmp_path / "t.npz"
        main(["generate", "--scale", "0.0001", "--seed", "1", "-o", str(out)])
        return out

    def test_inspect_prints_table4_fields(self, trace_path, capsys):
        assert main(["inspect", str(trace_path)]) == 0
        output = capsys.readouterr().out
        assert "# of Clients" in output
        assert "distinct/request ratio" in output

    def test_inspect_sharing_histogram(self, trace_path, capsys):
        assert main(["inspect", str(trace_path), "--sharing"]) == 0
        assert "clients-per-object" in capsys.readouterr().out

    def test_inspect_missing_file(self, tmp_path, capsys):
        assert main(["inspect", str(tmp_path / "missing.npz")]) == 1


class TestConvert:
    def test_npz_to_text_round_trip(self, tmp_path, capsys):
        npz = tmp_path / "t.npz"
        tsv = tmp_path / "t.tsv"
        main(["generate", "--scale", "0.0001", "--seed", "2", "-o", str(npz)])
        assert main(["convert", str(npz), str(tsv)]) == 0
        original = read_trace(npz)
        converted = read_trace(tsv)
        assert len(converted) == len(original)
        assert converted.requests[0].object_id == original.requests[0].object_id
