"""Tests for reuse-distance (temporal locality) analysis."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.analysis import reuse_distance_cdf, reuse_distances
from repro.traces.records import Request, Trace


def make_trace(object_sequence):
    requests = [
        Request(time=float(i), client_id=0, object_id=obj, size=100, version=0)
        for i, obj in enumerate(object_sequence)
    ]
    return Trace(
        profile_name="t",
        requests=requests,
        n_objects=max(object_sequence, default=0) + 1,
        n_clients=1,
        duration=float(len(object_sequence)),
    )


def reference_reuse_distances(sequence):
    """Quadratic oracle: distinct objects between same-object references."""
    distances = []
    last_seen: dict[int, int] = {}
    for position, obj in enumerate(sequence):
        if obj in last_seen:
            between = set(sequence[last_seen[obj] + 1 : position])
            between.discard(obj)
            distances.append(len(between))
        last_seen[obj] = position
    return distances


class TestReuseDistances:
    def test_immediate_rereference_has_distance_zero(self):
        assert reuse_distances(make_trace([1, 1])) == [0]

    def test_one_intervening_object(self):
        assert reuse_distances(make_trace([1, 2, 1])) == [1]

    def test_repeated_intervening_object_counted_once(self):
        assert reuse_distances(make_trace([1, 2, 2, 1])) == [0, 1]

    def test_first_references_omitted(self):
        assert reuse_distances(make_trace([1, 2, 3])) == []

    def test_classic_stack_example(self):
        # a b c b a: b reuses at distance 1 (c), a at distance 2 (b, c).
        assert reuse_distances(make_trace([1, 2, 3, 2, 1])) == [1, 2]

    @settings(deadline=None, max_examples=60)
    @given(st.lists(st.integers(0, 8), max_size=60))
    def test_matches_quadratic_oracle(self, sequence):
        assert reuse_distances(make_trace(sequence)) == reference_reuse_distances(
            sequence
        )


class TestReuseDistanceCdf:
    def test_cdf_is_monotone_and_bounded(self):
        trace = make_trace([1, 2, 3, 1, 2, 3, 1])
        cdf = reuse_distance_cdf(trace, [0, 1, 2, 10])
        values = [cdf[p] for p in (0, 1, 2, 10)]
        assert values == sorted(values)
        assert values[-1] == 1.0

    def test_empty_trace(self):
        assert reuse_distance_cdf(make_trace([]), [1]) == {1: 0.0}

    def test_cdf_predicts_lru_hit_rate(self):
        """cdf[d] equals the hit rate of an LRU holding d+1 objects (every
        object here has the same size)."""
        sequence = [1, 2, 3, 1, 2, 3, 1, 2, 3]
        trace = make_trace(sequence)
        cdf = reuse_distance_cdf(trace, [2])
        from repro.cache.lru import LookupResult, LRUCache

        cache = LRUCache(300)  # 3 objects of 100 B
        hits = 0
        re_references = 0
        seen = set()
        for request in trace.requests:
            if request.object_id in seen:
                re_references += 1
                if cache.lookup(request.object_id, 0) is LookupResult.HIT:
                    hits += 1
                else:
                    cache.insert(request.object_id, 100, 0)
            else:
                cache.lookup(request.object_id, 0)
                cache.insert(request.object_id, 100, 0)
                seen.add(request.object_id)
        assert cdf[2] == pytest.approx(hits / re_references)
