"""Exporter round-trips: Prometheus exposition and timeline JSONL/CSV."""

from __future__ import annotations

import csv
import io
import math

from repro.obs.export import (
    check_prometheus_text,
    check_timeline_rows,
    parse_prometheus_text,
    prometheus_text,
    read_timeline_jsonl,
    sum_counters,
    timeline_counter_totals,
    timeline_json_line,
    write_timeline_csv,
    write_timeline_jsonl,
)
from repro.obs.telemetry import MetricsRegistry, Timeline


def make_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter(
        "repro_requests_total", {"arch": "h", "point": "L1"}, help="requests"
    ).inc(5)
    registry.counter("repro_requests_total", {"arch": "h", "point": "SERVER"}).inc(2)
    registry.gauge("repro_cache_occupancy_bytes", {"arch": "h", "node": "0"}).set(123)
    histogram = registry.histogram(
        "repro_response_time_ms", {"arch": "h"}, buckets=(1.0, 10.0), help="latency"
    )
    for value in (0.5, 3.0, 30.0):
        histogram.observe(value)
    return registry


class TestPrometheus:
    def test_round_trip_and_checker_clean(self):
        text = prometheus_text(make_registry())
        samples = parse_prometheus_text(text)
        by_name = {}
        for name, labels, value in samples:
            by_name.setdefault(name, []).append((labels, value))
        assert (
            {"arch": "h", "point": "L1"},
            5.0,
        ) in by_name["repro_requests_total"]
        assert by_name["repro_response_time_ms_count"] == [({"arch": "h"}, 3.0)]
        inf_bucket = [
            value
            for labels, value in by_name["repro_response_time_ms_bucket"]
            if labels["le"] == "+Inf"
        ]
        assert inf_bucket == [3.0]
        assert check_prometheus_text(text) == []

    def test_checker_flags_duplicates_and_negatives(self):
        text = (
            "# TYPE repro_x_total counter\n"
            "repro_x_total 1\n"
            "repro_x_total 2\n"
            "repro_y_total -3\n"
        )
        # repro_y_total lacks a TYPE; also make a negative counter sample.
        text += "# TYPE repro_y_total counter\nrepro_y_total{a=\"1\"} -3\n"
        problems = check_prometheus_text(text)
        assert any("duplicate sample" in p for p in problems)
        assert any("negative counter" in p for p in problems)

    def test_checker_flags_non_cumulative_buckets(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="10"} 3\n'
            'repro_h_bucket{le="+Inf"} 6\n'
            "repro_h_sum 10\n"
            "repro_h_count 6\n"
        )
        problems = check_prometheus_text(text)
        assert any("non-cumulative" in p for p in problems)

    def test_checker_flags_missing_inf_bucket(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            "repro_h_sum 10\n"
            "repro_h_count 6\n"
        )
        problems = check_prometheus_text(text)
        assert any("+Inf" in p for p in problems)

    def test_parse_rejects_malformed_line(self):
        problems = check_prometheus_text("repro_x_total one\n")
        assert problems and "unparseable" in problems[0]

    def test_inf_value_round_trips(self):
        samples = parse_prometheus_text("# TYPE repro_x gauge\nrepro_x +Inf\n")
        assert samples[0][2] == math.inf


def make_rows():
    registry = MetricsRegistry()
    counter = registry.counter("repro_x_total", {"arch": "t"})
    gauge = registry.gauge("repro_g", {"arch": "t"})
    timeline = Timeline(registry, bin_s=10.0, arch="t")
    counter.inc(3)
    gauge.set(7)
    timeline.advance(15.0)
    counter.inc(4)
    gauge.set(9)
    timeline.finish(18.0)
    return timeline.rows


class TestTimelineFiles:
    def test_jsonl_round_trip_preserves_rows(self, tmp_path):
        rows = make_rows()
        path = tmp_path / "timeline.jsonl"
        write_timeline_jsonl(rows, str(path))
        assert read_timeline_jsonl(str(path)) == rows

    def test_json_lines_are_canonical(self):
        line = timeline_json_line({"b": 1, "a": {"z": 2, "y": 3}})
        assert line == '{"a":{"y":3,"z":2},"b":1}'

    def test_read_back_resums_to_totals(self, tmp_path):
        rows = make_rows()
        path = tmp_path / "timeline.jsonl"
        write_timeline_jsonl(rows, str(path))
        totals = timeline_counter_totals(read_timeline_jsonl(str(path)))
        assert totals == {'repro_x_total{arch="t"}': 7.0}
        assert sum_counters(rows, "repro_x_total") == 7.0
        assert sum_counters(rows, "repro_x_total", {"arch": "other"}) == 0.0

    def test_csv_has_delta_and_value_columns(self):
        rows = make_rows()
        stream = io.StringIO()
        write_timeline_csv(rows, stream)
        parsed = list(csv.reader(io.StringIO(stream.getvalue())))
        header = parsed[0]
        assert header[:4] == ["arch", "bin", "t_start", "t_end"]
        assert 'delta:repro_x_total{arch="t"}' in header
        assert 'value:repro_g{arch="t"}' in header
        delta_column = header.index('delta:repro_x_total{arch="t"}')
        assert [line[delta_column] for line in parsed[1:]] == ["3.0", "4.0"]

    def test_check_timeline_rows_clean(self):
        assert check_timeline_rows(make_rows()) == []

    def test_check_timeline_rows_flags_gaps_and_negatives(self):
        rows = make_rows()
        rows[1]["bin"] = 5
        rows[0]["counters"]['repro_x_total{arch="t"}'] = -1
        problems = check_timeline_rows(rows)
        assert any("out of order" in p for p in problems)
        assert any("went backwards" in p for p in problems)
