"""Exporter round-trips: Prometheus exposition and timeline JSONL/CSV."""

from __future__ import annotations

import csv
import io
import math

from repro.obs.export import (
    check_prometheus_text,
    check_timeline_rows,
    parse_prometheus_text,
    prometheus_text,
    read_timeline_jsonl,
    sum_counters,
    timeline_counter_totals,
    timeline_json_line,
    write_timeline_csv,
    write_timeline_jsonl,
)
from repro.obs.telemetry import MetricsRegistry, Timeline


def make_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter(
        "repro_requests_total", {"arch": "h", "point": "L1"}, help="requests"
    ).inc(5)
    registry.counter("repro_requests_total", {"arch": "h", "point": "SERVER"}).inc(2)
    registry.gauge("repro_cache_occupancy_bytes", {"arch": "h", "node": "0"}).set(123)
    histogram = registry.histogram(
        "repro_response_time_ms", {"arch": "h"}, buckets=(1.0, 10.0), help="latency"
    )
    for value in (0.5, 3.0, 30.0):
        histogram.observe(value)
    return registry


class TestPrometheus:
    def test_round_trip_and_checker_clean(self):
        text = prometheus_text(make_registry())
        samples = parse_prometheus_text(text)
        by_name = {}
        for name, labels, value in samples:
            by_name.setdefault(name, []).append((labels, value))
        assert (
            {"arch": "h", "point": "L1"},
            5.0,
        ) in by_name["repro_requests_total"]
        assert by_name["repro_response_time_ms_count"] == [({"arch": "h"}, 3.0)]
        inf_bucket = [
            value
            for labels, value in by_name["repro_response_time_ms_bucket"]
            if labels["le"] == "+Inf"
        ]
        assert inf_bucket == [3.0]
        assert check_prometheus_text(text) == []

    def test_checker_flags_duplicates_and_negatives(self):
        text = (
            "# TYPE repro_x_total counter\n"
            "repro_x_total 1\n"
            "repro_x_total 2\n"
            "repro_y_total -3\n"
        )
        # repro_y_total lacks a TYPE; also make a negative counter sample.
        text += "# TYPE repro_y_total counter\nrepro_y_total{a=\"1\"} -3\n"
        problems = check_prometheus_text(text)
        assert any("duplicate sample" in p for p in problems)
        assert any("negative counter" in p for p in problems)

    def test_checker_flags_non_cumulative_buckets(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="10"} 3\n'
            'repro_h_bucket{le="+Inf"} 6\n'
            "repro_h_sum 10\n"
            "repro_h_count 6\n"
        )
        problems = check_prometheus_text(text)
        assert any("non-cumulative" in p for p in problems)

    def test_checker_flags_missing_inf_bucket(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            "repro_h_sum 10\n"
            "repro_h_count 6\n"
        )
        problems = check_prometheus_text(text)
        assert any("+Inf" in p for p in problems)

    def test_parse_rejects_malformed_line(self):
        problems = check_prometheus_text("repro_x_total one\n")
        assert problems and "unparseable" in problems[0]

    def test_inf_value_round_trips(self):
        samples = parse_prometheus_text("# TYPE repro_x gauge\nrepro_x +Inf\n")
        assert samples[0][2] == math.inf


def make_rows():
    registry = MetricsRegistry()
    counter = registry.counter("repro_x_total", {"arch": "t"})
    gauge = registry.gauge("repro_g", {"arch": "t"})
    timeline = Timeline(registry, bin_s=10.0, arch="t")
    counter.inc(3)
    gauge.set(7)
    timeline.advance(15.0)
    counter.inc(4)
    gauge.set(9)
    timeline.finish(18.0)
    return timeline.rows


class TestTimelineFiles:
    def test_jsonl_round_trip_preserves_rows(self, tmp_path):
        rows = make_rows()
        path = tmp_path / "timeline.jsonl"
        write_timeline_jsonl(rows, str(path))
        assert read_timeline_jsonl(str(path)) == rows

    def test_json_lines_are_canonical(self):
        line = timeline_json_line({"b": 1, "a": {"z": 2, "y": 3}})
        assert line == '{"a":{"y":3,"z":2},"b":1}'

    def test_read_back_resums_to_totals(self, tmp_path):
        rows = make_rows()
        path = tmp_path / "timeline.jsonl"
        write_timeline_jsonl(rows, str(path))
        totals = timeline_counter_totals(read_timeline_jsonl(str(path)))
        assert totals == {'repro_x_total{arch="t"}': 7.0}
        assert sum_counters(rows, "repro_x_total") == 7.0
        assert sum_counters(rows, "repro_x_total", {"arch": "other"}) == 0.0

    def test_csv_has_delta_and_value_columns(self):
        rows = make_rows()
        stream = io.StringIO()
        write_timeline_csv(rows, stream)
        parsed = list(csv.reader(io.StringIO(stream.getvalue())))
        header = parsed[0]
        assert header[:4] == ["arch", "bin", "t_start", "t_end"]
        assert 'delta:repro_x_total{arch="t"}' in header
        assert 'value:repro_g{arch="t"}' in header
        delta_column = header.index('delta:repro_x_total{arch="t"}')
        assert [line[delta_column] for line in parsed[1:]] == ["3.0", "4.0"]

    def test_check_timeline_rows_clean(self):
        assert check_timeline_rows(make_rows()) == []

    def test_check_timeline_rows_flags_gaps_and_negatives(self):
        rows = make_rows()
        rows[1]["bin"] = 5
        rows[0]["counters"]['repro_x_total{arch="t"}'] = -1
        problems = check_timeline_rows(rows)
        assert any("out of order" in p for p in problems)
        assert any("went backwards" in p for p in problems)


class TestLabelEscaping:
    """Prometheus label values with backslashes, quotes, and newlines."""

    HOSTILE = [
        'plain',
        'with "quotes"',
        "back\\slash",
        "line\nbreak",
        "literal \\n (backslash then n)",
        "trailing backslash \\",
        'all \\ " \n at once',
        "brace } in value",
    ]

    def test_metric_key_round_trips_hostile_values(self):
        from repro.obs.telemetry import parse_metric_key, render_metric_key

        for value in self.HOSTILE:
            key = render_metric_key("repro_x_total", {"node": value})
            name, labels = parse_metric_key(key)
            assert name == "repro_x_total"
            assert labels == {"node": value}, value

    def test_exposition_round_trips_hostile_values(self):
        registry = MetricsRegistry()
        for index, value in enumerate(self.HOSTILE):
            registry.counter(
                "repro_x_total", {"node": value, "i": str(index)}
            ).inc(index + 1)
        text = prometheus_text(registry)
        assert check_prometheus_text(text) == []
        got = {
            labels["node"]: value
            for _name, labels, value in parse_prometheus_text(text)
        }
        assert sorted(got) == sorted(self.HOSTILE)

    def test_escaped_newline_never_splits_a_line(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", {"node": "a\nb"}).inc(1)
        for line in prometheus_text(registry).splitlines():
            if line.startswith("#"):
                continue
            assert line.endswith(" 1"), line  # one sample, one line

    def test_help_text_escapes_newlines_and_backslashes(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_x_total", {"a": "b"}, help="first\nsecond \\ third"
        ).inc(1)
        text = prometheus_text(registry)
        (help_line,) = [
            line for line in text.splitlines() if line.startswith("# HELP")
        ]
        assert "\n" not in help_line
        assert "first\\nsecond \\\\ third" in help_line
        assert check_prometheus_text(text) == []

    def test_distinct_values_stay_distinct_after_escaping(self):
        # The classic corruption: 'a\nb' (literal backslash-n) and an
        # actual newline must not collide after a round trip.
        from repro.obs.telemetry import parse_metric_key, render_metric_key

        tricky = ["a\\nb", "a\nb", "a\\\nb"]
        keys = [render_metric_key("m", {"v": value}) for value in tricky]
        assert len(set(keys)) == len(tricky)
        back = [parse_metric_key(key)[1]["v"] for key in keys]
        assert back == tricky


class TestExporterEdgeCases:
    def test_empty_registry_exposition(self):
        text = prometheus_text(MetricsRegistry())
        assert text.strip() == ""
        assert check_prometheus_text(text) == []
        assert parse_prometheus_text(text) == []

    def test_empty_timeline_round_trip(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        write_timeline_jsonl([], str(path))
        assert path.read_text() == ""
        assert read_timeline_jsonl(str(path)) == []
        assert check_timeline_rows([]) == []
        assert timeline_counter_totals([]) == {}

    def test_empty_timeline_csv_has_no_rows(self):
        stream = io.StringIO()
        write_timeline_csv([], stream)
        parsed = list(csv.reader(io.StringIO(stream.getvalue())))
        assert parsed in ([], [["arch", "bin", "t_start", "t_end"]])

    def test_zero_observation_histogram(self):
        registry = MetricsRegistry()
        registry.histogram("repro_empty_ms", {"arch": "h"}, buckets=(1.0, 10.0))
        text = prometheus_text(registry)
        assert check_prometheus_text(text) == []
        by_name = {}
        for name, labels, value in parse_prometheus_text(text):
            by_name.setdefault(name, []).append((labels, value))
        assert by_name["repro_empty_ms_count"] == [({"arch": "h"}, 0.0)]
        assert by_name["repro_empty_ms_sum"] == [({"arch": "h"}, 0.0)]
        inf_bucket = [
            value
            for labels, value in by_name["repro_empty_ms_bucket"]
            if labels["le"] == "+Inf"
        ]
        assert inf_bucket == [0.0]

    def test_callback_only_gauges_and_counters(self):
        registry = MetricsRegistry()
        occupancy = {"bytes": 0.0}
        registry.gauge(
            "repro_occ_bytes", {"node": "0"}, fn=lambda: occupancy["bytes"]
        )
        registry.counter("repro_evictions_total", {"node": "0"}, fn=lambda: 4.0)
        occupancy["bytes"] = 1536.0
        text = prometheus_text(registry)
        assert check_prometheus_text(text) == []
        samples = dict(
            (name, value) for name, _labels, value in parse_prometheus_text(text)
        )
        # Callback read at render time, not registration time.
        assert samples["repro_occ_bytes"] == 1536.0
        assert samples["repro_evictions_total"] == 4.0
