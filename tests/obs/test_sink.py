"""Tests for journey sinks: JSONL export, sampling, and non-perturbation."""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.netmodel.testbed import TestbedCostModel
from repro.obs.sink import JourneySink, JsonlJourneySink, SamplingJourneySink
from repro.sim.engine import run_simulation


class TestBaseSink:
    def test_noop_and_context_manager(self):
        with JourneySink() as sink:
            sink.emit(0, None, None)  # accepts anything, does nothing
        sink.close()  # idempotent


class TestJsonlSink:
    def test_lazy_open_creates_no_file(self, tmp_path):
        path = tmp_path / "never.jsonl"
        with JsonlJourneySink(path):
            pass
        assert not path.exists()

    def test_writes_valid_jsonl(self, tiny_config, dec_trace, tmp_path):
        path = tmp_path / "j.jsonl"
        with JsonlJourneySink(path, architecture="hierarchy") as sink:
            metrics = run_simulation(
                dec_trace,
                DataHierarchy(tiny_config.topology, TestbedCostModel()),
                journey_sink=sink,
            )
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == metrics.measured_requests == sink.emitted
        assert [r["seq"] for r in records] == list(range(len(records)))
        assert all(r["arch"] == "hierarchy" for r in records)

    def test_line_sums_and_file_totals_match_metrics(
        self, tiny_config, dec_trace, tmp_path
    ):
        path = tmp_path / "j.jsonl"
        with JsonlJourneySink(path) as sink:
            metrics = run_simulation(
                dec_trace,
                HintHierarchy(tiny_config.topology, TestbedCostModel()),
                journey_sink=sink,
            )
        total = 0.0
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert sum(s["cost_ms"] for s in record["steps"]) == pytest.approx(
                record["time_ms"]
            )
            assert record["point"] in ("L1", "L2", "L3", "SERVER")
            total += record["time_ms"]
        assert total == pytest.approx(metrics.total_ms)

    def test_buffer_holds_lines_until_threshold(self, tmp_path):
        path = tmp_path / "b.jsonl"
        sink = JsonlJourneySink(path, buffer_lines=1000)
        from repro.obs.journey import Journey
        from repro.netmodel.model import AccessPoint
        from repro.traces.records import Request

        journey = Journey()
        journey.origin_fetch(10.0)
        result = journey.result(AccessPoint.SERVER, hit=False)
        request = Request(time=0.0, client_id=0, object_id=1, size=100, version=0)
        sink.emit(0, request, result)
        assert not path.exists()  # buffered, not yet written
        sink.close()
        assert len(path.read_text().splitlines()) == 1

    def test_rejects_nonpositive_buffer(self, tmp_path):
        with pytest.raises(ValueError, match="buffer_lines"):
            JsonlJourneySink(tmp_path / "x.jsonl", buffer_lines=0)

    def test_borrowed_stream_not_closed(self):
        stream = io.StringIO()
        sink = JsonlJourneySink(stream, architecture="a")
        sink.close()
        assert not stream.closed

    def test_one_file_many_architectures(self, tiny_config, dec_trace, tmp_path):
        """decompose-style use: relabel the sink between runs."""
        path = tmp_path / "multi.jsonl"
        with JsonlJourneySink(path) as sink:
            for cls in (DataHierarchy, HintHierarchy):
                architecture = cls(tiny_config.topology, TestbedCostModel())
                sink.architecture = architecture.name
                run_simulation(dec_trace, architecture, journey_sink=sink)
        arches = {json.loads(line)["arch"] for line in path.read_text().splitlines()}
        assert arches == {"hierarchy", "hints"}


class TestSamplingSink:
    def test_capacity_bounds_samples_not_seen(self, tiny_config, dec_trace):
        sink = SamplingJourneySink(capacity=5)
        metrics = run_simulation(
            dec_trace,
            DataHierarchy(tiny_config.topology, TestbedCostModel()),
            journey_sink=sink,
        )
        assert len(sink.samples) == 5
        assert sink.seen == metrics.measured_requests

    def test_unbounded_keeps_everything(self, tiny_config, dec_trace):
        sink = SamplingJourneySink(capacity=None)
        metrics = run_simulation(
            dec_trace,
            DataHierarchy(tiny_config.topology, TestbedCostModel()),
            journey_sink=sink,
        )
        assert len(sink.samples) == metrics.measured_requests
        seqs = [seq for seq, _, _ in sink.samples]
        assert seqs == list(range(metrics.measured_requests))

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            SamplingJourneySink(capacity=-1)


class TestNonPerturbation:
    def test_sink_does_not_change_metrics(self, tiny_config, dec_trace):
        """Observation is free: a run with a sink is metric-identical to a
        run without one (and fingerprints never hash sink output at all)."""
        plain = run_simulation(
            dec_trace, DataHierarchy(tiny_config.topology, TestbedCostModel())
        )
        observed = run_simulation(
            dec_trace,
            DataHierarchy(tiny_config.topology, TestbedCostModel()),
            journey_sink=SamplingJourneySink(capacity=0),
        )
        assert observed.total_ms == plain.total_ms
        assert observed.mean_response_ms == plain.mean_response_ms
        assert observed.requests_by_point == plain.requests_by_point
        assert observed.remote_hits == plain.remote_hits

    def test_fingerprints_take_no_sink_input(self, tiny_config):
        """Run identity is (profile, seed, plan) -- there is no journey
        parameter to perturb; the same inputs address the same run."""
        import inspect

        from repro.runner.fingerprint import simulation_fingerprint, trace_fingerprint

        params = set(inspect.signature(simulation_fingerprint).parameters)
        params |= set(inspect.signature(trace_fingerprint).parameters)
        assert not any("journey" in p or "sink" in p for p in params)
        profile = tiny_config.profile("dec")
        assert simulation_fingerprint(profile, 7) == simulation_fingerprint(profile, 7)
