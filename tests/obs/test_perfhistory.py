"""BENCH schema validation, the history trajectory, and the perf gate.

The committed ``BENCH_*.json`` pins and ``BENCH_HISTORY.jsonl`` are
load-bearing: this module checks they validate against their schemas and
pass their own floors, that append/read round-trips are canonical, and
that ``python -m repro.obs.perf`` exits 0 on the repo's committed state
and 1 on a synthetic regression.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import perf
from repro.obs.perfhistory import (
    PROFILING_DETACHED_BUDGET_PCT,
    append_history,
    bench_kind,
    floor_problems,
    headline,
    history_entry,
    history_problems,
    load_bench,
    read_history,
    validate_bench,
)

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")


def repo_bench_paths():
    return sorted(
        os.path.join(REPO_ROOT, name)
        for name in os.listdir(REPO_ROOT)
        if name.startswith("BENCH_") and name.endswith(".json")
    )


def profiling_payload():
    """A minimal valid BENCH_profiling payload for synthetic edits."""
    arch = {
        "detached_overhead_pct": 1.0,
        "attached_overhead_pct": 5.0,
        "detached_s": 1.0,
        "attached_s": 1.05,
        "uninstrumented_s": 0.99,
        "measured_requests": 1000,
        "spans": 2,
    }
    return {
        "rounds": 3,
        "scale": 0.002,
        "detached_overhead_pct": 1.0,
        "attached_overhead_pct": 5.0,
        "detached_s": 1.0,
        "attached_s": 1.05,
        "uninstrumented_s": 0.99,
        "max_detached_overhead_pct": PROFILING_DETACHED_BUDGET_PCT,
        "architectures": {"hierarchy": dict(arch)},
    }


class TestSchemas:
    def test_committed_bench_files_validate(self):
        paths = repo_bench_paths()
        assert paths, "repo should commit BENCH_*.json pins"
        for path in paths:
            kind, payload = load_bench(path)  # raises on schema problems
            assert floor_problems(kind, payload) == [], path

    def test_bench_kind_from_filename(self):
        assert bench_kind("/x/BENCH_engine.json") == "engine"
        assert bench_kind("BENCH_profiling.json") == "profiling"
        with pytest.raises(ValueError):
            bench_kind("BENCH_unknown.json")
        with pytest.raises(ValueError):
            bench_kind("engine.json")

    def test_missing_field_is_a_problem(self):
        payload = profiling_payload()
        del payload["detached_overhead_pct"]
        problems = validate_bench("profiling", payload)
        assert any("detached_overhead_pct" in p for p in problems)

    def test_non_numeric_field_is_a_problem(self):
        payload = profiling_payload()
        payload["architectures"]["hierarchy"]["spans"] = "two"
        assert any(
            "spans" in p for p in validate_bench("profiling", payload)
        )

    def test_empty_architectures_is_a_problem(self):
        payload = profiling_payload()
        payload["architectures"] = {}
        assert any("architectures" in p for p in validate_bench("profiling", payload))

    def test_floor_rejects_overheads_past_budget(self):
        payload = profiling_payload()
        payload["detached_overhead_pct"] = PROFILING_DETACHED_BUDGET_PCT + 1.0
        assert any("exceeds" in p for p in floor_problems("profiling", payload))

    def test_engine_headline_is_min_warm_speedup(self):
        _, payload = load_bench(os.path.join(REPO_ROOT, "BENCH_engine.json"))
        expected = min(
            section["warm_speedup"]
            for section in payload["architectures"].values()
        )
        assert headline("engine", payload) == expected


class TestHistory:
    def test_append_read_round_trip(self, tmp_path):
        bench = tmp_path / "BENCH_profiling.json"
        bench.write_text(json.dumps(profiling_payload()))
        history = tmp_path / "BENCH_HISTORY.jsonl"
        row = append_history(
            str(history), str(bench), recorded="2026-08-08T00:00:00Z"
        )
        assert row["bench"] == "profiling"
        assert row["headline"] == 1.0
        (read,) = read_history(str(history))
        assert read == row
        # Lines are canonical: appending the same payload is byte-stable.
        first = history.read_bytes()
        append_history(str(history), str(bench), recorded="2026-08-08T00:00:00Z")
        assert history.read_bytes() == first * 2

    def test_read_rejects_bad_lines(self, tmp_path):
        history = tmp_path / "BENCH_HISTORY.jsonl"
        history.write_text("not json\n")
        with pytest.raises(ValueError, match="bad JSON"):
            read_history(str(history))
        history.write_text('{"bench": "profiling", "recorded": "x"}\n')
        with pytest.raises(ValueError, match="headline"):
            read_history(str(history))
        history.write_text(
            '{"bench": "nope", "recorded": "x", "headline": 1.0}\n'
        )
        with pytest.raises(ValueError, match="unknown bench"):
            read_history(str(history))

    def test_committed_history_reads_and_passes(self):
        rows = read_history(os.path.join(REPO_ROOT, "BENCH_HISTORY.jsonl"))
        assert rows, "repo should seed BENCH_HISTORY.jsonl"
        assert history_problems(rows) == []

    def test_overhead_regression_is_absolute_points(self):
        entry = history_entry(
            "profiling", profiling_payload(), recorded="2026-08-08T00:00:00Z"
        )
        worse = dict(entry, headline=entry["headline"] + 10.0)
        assert history_problems([entry, worse], max_regression_pct=5.0)
        assert history_problems([entry, worse], max_regression_pct=15.0) == []

    def test_speedup_regression_is_relative(self):
        base = {"bench": "engine", "recorded": "x", "headline": 10.0}
        regressed = dict(base, headline=7.0)  # -30% relative
        assert history_problems([base, regressed], max_regression_pct=25.0)
        assert history_problems([base, regressed], max_regression_pct=35.0) == []

    def test_single_entry_never_flags(self):
        entry = {"bench": "engine", "recorded": "x", "headline": 10.0}
        assert history_problems([entry]) == []


class TestPerfGate:
    def test_passes_on_committed_repo_state(self, capsys):
        benches = repo_bench_paths()
        argv = []
        for path in benches:
            argv += ["--bench", path]
        argv += ["--history", os.path.join(REPO_ROOT, "BENCH_HISTORY.jsonl")]
        assert perf.main(argv) == 0
        out = capsys.readouterr().out
        assert "trajectory ok" in out

    def test_fails_on_synthetic_regression(self, tmp_path, capsys):
        payload = profiling_payload()
        bench = tmp_path / "BENCH_profiling.json"
        bench.write_text(json.dumps(payload))
        history = tmp_path / "BENCH_HISTORY.jsonl"
        append_history(str(history), str(bench), recorded="2026-08-07T00:00:00Z")
        payload["detached_overhead_pct"] = 2.9  # inside floor, big jump
        bench.write_text(json.dumps(payload))
        append_history(str(history), str(bench), recorded="2026-08-08T00:00:00Z")
        status = perf.main(
            [
                "--bench", str(bench),
                "--history", str(history),
                "--max-regression-pct", "1.0",
            ]
        )
        assert status == 1
        assert "regressed" in capsys.readouterr().err

    def test_fails_on_floor_violation(self, tmp_path, capsys):
        payload = profiling_payload()
        payload["detached_overhead_pct"] = 99.0
        bench = tmp_path / "BENCH_profiling.json"
        bench.write_text(json.dumps(payload))
        assert perf.main(["--bench", str(bench)]) == 1
        assert "exceeds" in capsys.readouterr().err

    def test_fails_on_invalid_schema(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_profiling.json"
        bench.write_text(json.dumps({"rounds": 3}))
        assert perf.main(["--bench", str(bench)]) == 1

    def test_append_subcommand_writes_row(self, tmp_path):
        bench = tmp_path / "BENCH_profiling.json"
        bench.write_text(json.dumps(profiling_payload()))
        history = tmp_path / "BENCH_HISTORY.jsonl"
        status = perf.main(
            [
                "append", str(bench),
                "--history", str(history),
                "--recorded", "2026-08-08T00:00:00Z",
            ]
        )
        assert status == 0
        (row,) = read_history(str(history))
        assert row["recorded"] == "2026-08-08T00:00:00Z"
