"""MetricsRegistry / Timeline unit invariants (no simulation engine)."""

from __future__ import annotations

import pytest

from repro.obs.telemetry import (
    ConvergenceReport,
    MetricsRegistry,
    Timeline,
    parse_metric_key,
    render_metric_key,
    warmup_convergence,
)


class TestMetricKeys:
    def test_labels_sorted_and_quoted(self):
        key = render_metric_key("repro_x_total", {"b": "2", "a": "1"})
        assert key == 'repro_x_total{a="1",b="2"}'

    def test_no_labels_is_bare_name(self):
        assert render_metric_key("repro_x_total", {}) == "repro_x_total"
        assert parse_metric_key("repro_x_total") == ("repro_x_total", {})

    def test_round_trip(self):
        labels = {"arch": "hints", "node": "3", "odd": 'a"b\\c\nd'}
        name, parsed = parse_metric_key(render_metric_key("repro_x_total", labels))
        assert name == "repro_x_total"
        assert parsed == labels


class TestRegistryInvariants:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", {"arch": "h"})
        b = registry.counter("repro_x_total", {"arch": "h"})
        assert a is b
        a.inc(3)
        assert b.value == 3

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", {"arch": "h"})
        with pytest.raises(TypeError):
            registry.gauge("repro_x_total", {"arch": "h"})

    def test_label_key_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", {"arch": "h"})
        with pytest.raises(ValueError):
            registry.counter("repro_x_total", {"arch": "h", "node": "1"})

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("9starts_with_digit", {})
        with pytest.raises(ValueError):
            registry.counter("repro_x_total", {"bad-key": "v"})

    def test_counter_rejects_negative_inc(self):
        counter = MetricsRegistry().counter("repro_x_total", {})
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_fn_backed_counter_rejects_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_x_total", {}, fn=lambda: 42)
        assert counter.value == 42
        with pytest.raises(RuntimeError):
            counter.inc()

    def test_fn_backed_gauge_rejects_set(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_x", {}, fn=lambda: 7)
        assert gauge.value == 7
        with pytest.raises(RuntimeError):
            gauge.set(1)

    def test_fn_reregistration_rebinds(self):
        # Fresh architectures reuse instrument keys across runs; the
        # callback must follow the newest object.
        registry = MetricsRegistry()
        registry.counter("repro_x_total", {}, fn=lambda: 1)
        counter = registry.counter("repro_x_total", {}, fn=lambda: 2)
        assert counter.value == 2

    def test_histogram_counts_and_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_t_ms", {}, buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(55.5)
        assert histogram.cumulative_buckets() == [
            (1.0, 1),
            (10.0, 2),
            (float("inf"), 3),
        ]
        with pytest.raises(ValueError):
            histogram.observe(-1)

    def test_arch_filtering(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", {"arch": "a"}).inc(1)
        registry.counter("repro_x_total", {"arch": "b"}).inc(2)
        registry.counter("repro_global_total", {}).inc(5)
        keys = {key for key, _ in registry.counter_items(arch="a")}
        assert 'repro_x_total{arch="a"}' in keys
        assert 'repro_x_total{arch="b"}' not in keys
        # Unlabeled (arch-less) instruments pass every filter.
        assert "repro_global_total" in keys


class TestTimelineBins:
    def make(self, bin_s=10.0):
        registry = MetricsRegistry()
        counter = registry.counter("repro_x_total", {"arch": "t"})
        timeline = Timeline(registry, bin_s=bin_s, arch="t")
        return counter, timeline

    def test_request_exactly_on_edge_lands_in_later_bin(self):
        counter, timeline = self.make()
        counter.inc()  # t in [0, 10)
        timeline.advance(10.0)  # a request exactly at t=10 closes bin 0 first
        counter.inc()  # belongs to bin 1
        timeline.finish(20.0)
        deltas = [row["counters"].get('repro_x_total{arch="t"}', 0) for row in timeline.rows]
        assert deltas == [1, 1]
        assert [row["bin"] for row in timeline.rows] == [0, 1]
        assert timeline.rows[0]["t_end"] == 10.0
        assert timeline.rows[1]["t_end"] == 20.0

    def test_empty_bins_emitted(self):
        counter, timeline = self.make()
        counter.inc()
        timeline.advance(35.0)  # clock jumps over bins 1 and 2
        counter.inc()
        timeline.finish(40.0)
        assert [row["bin"] for row in timeline.rows] == [0, 1, 2, 3]
        deltas = [row["counters"].get('repro_x_total{arch="t"}', 0) for row in timeline.rows]
        assert deltas == [1, 0, 0, 1]

    def test_trace_shorter_than_one_bin(self):
        counter, timeline = self.make(bin_s=3600.0)
        counter.inc()
        timeline.finish(42.0)
        assert len(timeline.rows) == 1
        (row,) = timeline.rows
        assert (row["t_start"], row["t_end"]) == (0.0, 42.0)

    def test_finish_on_edge_keeps_last_bin_full(self):
        counter, timeline = self.make()
        timeline.advance(15.0)
        counter.inc()
        timeline.finish(20.0)  # duration exactly on an edge: no zero-width row
        assert [row["bin"] for row in timeline.rows] == [0, 1]
        assert timeline.rows[-1]["t_end"] == 20.0

    def test_finish_idempotent(self):
        _counter, timeline = self.make()
        timeline.finish(25.0)
        rows_after_first = list(timeline.rows)
        timeline.finish(25.0)
        assert timeline.rows == rows_after_first

    def test_zero_deltas_dropped_from_rows(self):
        counter, timeline = self.make()
        counter.inc()
        timeline.advance(25.0)
        assert timeline.rows[0]["counters"]  # bin 0 has the delta
        assert timeline.rows[1]["counters"] == {}  # bin 1 is empty, not zero-filled

    def test_deltas_telescope_to_total(self):
        counter, timeline = self.make()
        for step in range(7):
            timeline.advance(step * 4.0)
            counter.inc(step)
        timeline.finish(24.0)
        total = sum(
            row["counters"].get('repro_x_total{arch="t"}', 0) for row in timeline.rows
        )
        assert total == counter.value == sum(range(7))

    def test_close_hook_called_with_bin_edge_before_snapshot(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_g", {"arch": "t"})
        timeline = Timeline(registry, bin_s=10.0, arch="t")
        seen = []

        def hook(t_end):
            seen.append(t_end)
            gauge.set(t_end)  # snapshot must observe the hook's effect

        timeline.add_close_hook(hook)
        timeline.advance(25.0)
        timeline.finish(25.0)
        assert seen == [10.0, 20.0, 25.0]
        assert [row["gauges"]['repro_g{arch="t"}'] for row in timeline.rows] == seen

    def test_rejects_nonpositive_bin(self):
        with pytest.raises(ValueError):
            Timeline(MetricsRegistry(), bin_s=0)


def _row(bin_index, t_end, counters):
    return {
        "arch": "t",
        "bin": bin_index,
        "t_start": bin_index * 10.0,
        "t_end": t_end,
        "counters": counters,
        "gauges": {},
    }


def _requests(window, point, count):
    key = (
        f'repro_requests_total{{arch="t",point="{point}",window="{window}"}}'
    )
    return {key: count}


class TestWarmupConvergence:
    def test_converges_when_rate_stabilizes(self):
        rows = []
        # Ramp: 0/10 L1 hits, then steady 8/10 per bin.
        rows.append(_row(0, 10.0, {**_requests("warmup", "SERVER", 10)}))
        for index in range(1, 6):
            counters = {}
            counters.update(_requests("warmup" if index < 3 else "measured", "L1", 8))
            counters.update(
                _requests("warmup" if index < 3 else "measured", "SERVER", 2)
            )
            rows.append(_row(index, (index + 1) * 10.0, counters))
        report = warmup_convergence(rows, tolerance=0.05)
        assert isinstance(report, ConvergenceReport)
        assert report.converged
        assert report.converged_at_s is not None
        assert report.converged_at_s < rows[-1]["t_end"]
        assert 0 < report.final_rate < 1
        assert "L1 hit rate" in report.summary_line()

    def test_no_rows_reports_unconverged(self):
        report = warmup_convergence([])
        assert not report.converged
        assert report.converged_at_s is None
        assert "no requests" in report.summary_line()
