"""Tests for the hop-ledger Journey and its AccessResult derivation."""

from __future__ import annotations

import pytest

from repro.netmodel.model import AccessPoint
from repro.obs.journey import Journey, Step, StepKind


class TestStepAppenders:
    def test_each_appender_records_its_kind(self):
        journey = Journey()
        journey.local_lookup(1.0, target="l1:0")
        journey.hint_lookup(0.004)
        journey.peer_probe(7.0, target="siblings")
        journey.level_traversal(30.0, target="l2:1")
        journey.timeout(4000.0, target="l3")
        journey.transfer(50.0, target="l1:3")
        journey.origin_fetch(300.0)
        kinds = [step.kind for step in journey.steps]
        assert kinds == [
            StepKind.LOCAL_LOOKUP,
            StepKind.HINT_LOOKUP,
            StepKind.PEER_PROBE,
            StepKind.LEVEL_TRAVERSAL,
            StepKind.TIMEOUT,
            StepKind.TRANSFER,
            StepKind.ORIGIN_FETCH,
        ]
        assert len(journey) == 7

    def test_origin_fetch_targets_origin(self):
        journey = Journey()
        journey.origin_fetch(100.0)
        assert journey.steps[0].target == "origin"

    def test_timeout_is_pure_fault_cost(self):
        journey = Journey()
        journey.timeout(4000.0, target="l2:0")
        step = journey.steps[0]
        assert step.fault_ms == step.cost_ms == 4000.0

    def test_wasted_probe_flagged(self):
        journey = Journey()
        journey.peer_probe(7.0, target="l1:5", wasted=True)
        assert journey.steps[0].wasted


class TestSums:
    def test_totals_are_left_to_right_sums(self):
        journey = Journey()
        costs = [0.1, 0.2, 0.3]
        for cost in costs:
            journey.transfer(cost)
        expected = 0.0
        for cost in costs:
            expected += cost
        assert journey.total_ms == expected  # bitwise, not approx

    def test_fault_sum_is_independent_of_cost_sum(self):
        journey = Journey()
        journey.level_traversal(30.0, fault_ms=10.0)
        journey.origin_fetch(300.0, fault_ms=150.0)
        assert journey.total_ms == 330.0
        assert journey.fault_added_ms == 160.0

    def test_empty_journey_sums_to_zero(self):
        assert Journey().total_ms == 0.0
        assert Journey().fault_added_ms == 0.0


class TestResultDerivation:
    def test_times_come_from_the_ledger(self):
        journey = Journey()
        journey.hint_lookup(0.004)
        journey.transfer(62.0, target="l1:3")
        result = journey.result(AccessPoint.L2, hit=True, remote_hit=True)
        assert result.time_ms == journey.total_ms
        assert result.fault_added_ms == 0.0
        assert result.hit and result.remote_hit
        assert result.point is AccessPoint.L2
        assert result.journey is journey

    def test_timeout_step_implies_timeout_fallback(self):
        journey = Journey()
        journey.timeout(4000.0, target="l1:0")
        journey.origin_fetch(300.0)
        result = journey.result(AccessPoint.SERVER, hit=False)
        assert result.timeout_fallback
        assert result.fault_added_ms == 4000.0

    def test_no_timeout_step_no_fallback(self):
        journey = Journey()
        journey.origin_fetch(300.0)
        assert not journey.result(AccessPoint.SERVER, hit=False).timeout_fallback

    def test_stale_timeout_sets_stale_forward(self):
        journey = Journey()
        journey.timeout(4000.0, target="l1:2", stale=True)
        journey.origin_fetch(300.0)
        assert journey.result(AccessPoint.SERVER, hit=False).stale_hint_forward

    def test_marks_surface_as_flags(self):
        journey = Journey()
        journey.hint_lookup(0.004)
        journey.peer_probe(7.0, wasted=True)
        journey.origin_fetch(300.0)
        journey.mark_false_positive()
        result = journey.result(AccessPoint.SERVER, hit=False)
        assert result.false_positive
        assert not result.false_negative

        journey = Journey()
        journey.origin_fetch(300.0)
        journey.mark_false_negative()
        assert journey.result(AccessPoint.SERVER, hit=False).false_negative

        journey = Journey()
        journey.local_lookup(8.0, target="l1:0")
        journey.mark_push_hit()
        assert journey.result(AccessPoint.L1, hit=True).push_hit

        journey = Journey()
        journey.transfer(90.0, target="l1:6")
        journey.mark_suboptimal()
        result = journey.result(AccessPoint.L3, hit=True, remote_hit=True)
        assert result.suboptimal_positive

    def test_result_validates_fault_within_total(self):
        journey = Journey()
        journey.origin_fetch(10.0, fault_ms=20.0)  # fault exceeds cost
        with pytest.raises(ValueError):
            journey.result(AccessPoint.SERVER, hit=False)


class TestPayload:
    def test_step_payload_shape(self):
        step = Step(StepKind.PEER_PROBE, 7.0, "l1:3", 0.0, True)
        assert step.to_payload() == {
            "kind": "peer_probe",
            "cost_ms": 7.0,
            "target": "l1:3",
            "fault_ms": 0.0,
            "wasted": True,
        }

    def test_wasted_key_omitted_when_clean(self):
        assert "wasted" not in Step(StepKind.TRANSFER, 1.0).to_payload()

    def test_journey_payload_is_step_list(self):
        journey = Journey()
        journey.hint_lookup(0.004)
        journey.origin_fetch(300.0)
        payload = journey.to_payload()
        assert [p["kind"] for p in payload] == ["hint_lookup", "origin_fetch"]
