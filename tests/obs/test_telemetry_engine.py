"""Telemetry attached to real simulations: reconciliation and safety.

The contract under test (DESIGN.md section 9): summing a run's
measured-window per-bin counter deltas reproduces the ``SimMetrics``
totals exactly, attaching telemetry never perturbs the simulation, and
the fault up/down gauges agree with the injected plan at every bin edge.
"""

from __future__ import annotations

import math

import pytest

from repro.faults import FaultPlan, HintBatchLoss, NodeCrash, NodeRecover
from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.directory_arch import CentralizedDirectoryArchitecture
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.hierarchy.icp import IcpHierarchy
from repro.netmodel.model import AccessPoint
from repro.netmodel.testbed import TestbedCostModel
from repro.obs.export import check_prometheus_text, prometheus_text, sum_counters
from repro.obs.telemetry import RunTelemetry, warmup_convergence
from repro.sim.engine import run_simulation

ARCHITECTURES = {
    "hierarchy": DataHierarchy,
    "icp": IcpHierarchy,
    "hints": HintHierarchy,
    "directory": CentralizedDirectoryArchitecture,
}

FAULT_PLANS = {
    "clean": None,
    "l2_outage": FaultPlan(
        events=(
            NodeCrash(time=0.0, kind="l2", node=0),
            NodeRecover(time=200_000.0, kind="l2", node=0),
        )
    ),
    "hint_loss": FaultPlan(events=(HintBatchLoss(time=0.0, prob=0.3),)),
}


def build(arch_name, tiny_config):
    return ARCHITECTURES[arch_name](tiny_config.topology, TestbedCostModel())


@pytest.mark.parametrize("fault_name", sorted(FAULT_PLANS))
@pytest.mark.parametrize("arch_name", sorted(ARCHITECTURES))
def test_measured_bins_reconcile_with_sim_metrics(
    arch_name, fault_name, tiny_config, dec_trace
):
    telemetry = RunTelemetry(bin_s=3600.0)
    metrics = run_simulation(
        dec_trace,
        build(arch_name, tiny_config),
        fault_plan=FAULT_PLANS[fault_name],
        telemetry=telemetry,
    )
    rows = telemetry.rows
    measured = {"window": "measured"}
    for point in AccessPoint:
        assert sum_counters(
            rows, "repro_requests_total", {**measured, "point": point.name}
        ) == metrics.requests_by_point[point]
        assert sum_counters(
            rows, "repro_bytes_total", {**measured, "point": point.name}
        ) == metrics.bytes_by_point[point]
    assert (
        sum_counters(rows, "repro_response_time_ms_count", measured)
        == metrics.measured_requests
    )
    assert math.isclose(
        sum_counters(rows, "repro_response_time_ms_sum", measured),
        metrics.total_ms,
        rel_tol=1e-9,
        abs_tol=1e-6,
    )
    flags = {
        "false_positive": metrics.false_positives,
        "false_negative": metrics.false_negatives,
        "suboptimal_positive": metrics.suboptimal_positives,
        "push_hit": metrics.push_hits,
    }
    for flag, expected in flags.items():
        assert sum_counters(
            rows, "repro_result_flags_total", {**measured, "flag": flag}
        ) == expected
    assert math.isclose(
        sum_counters(rows, "repro_fault_added_ms_total", measured),
        metrics.degraded.fault_added_ms,
        rel_tol=1e-9,
        abs_tol=1e-6,
    )
    # Warmup + measured requests cover every processed request.
    total_requests = sum_counters(rows, "repro_requests_total")
    assert total_requests == metrics.measured_requests + metrics.warmup_requests


@pytest.mark.parametrize("arch_name", sorted(ARCHITECTURES))
def test_telemetry_does_not_perturb_results(arch_name, tiny_config, dec_trace):
    bare = run_simulation(dec_trace, build(arch_name, tiny_config))
    telemetry = RunTelemetry()
    observed = run_simulation(
        dec_trace, build(arch_name, tiny_config), telemetry=telemetry
    )
    assert observed.summary() == bare.summary()
    assert observed.requests_by_point == bare.requests_by_point
    assert observed.bytes_by_point == bare.bytes_by_point
    assert telemetry.rows  # and the run actually produced bins


def test_run_telemetry_refuses_reuse(tiny_config, dec_trace):
    telemetry = RunTelemetry()
    run_simulation(dec_trace, build("hierarchy", tiny_config), telemetry=telemetry)
    with pytest.raises(RuntimeError):
        run_simulation(dec_trace, build("icp", tiny_config), telemetry=telemetry)


def test_fault_gauges_track_plan_at_bin_edges(tiny_config, dec_trace):
    crash_t, recover_t = 30_000.0, 100_000.0
    plan = FaultPlan(
        events=(
            NodeCrash(time=crash_t, kind="l2", node=0),
            NodeRecover(time=recover_t, kind="l2", node=0),
        )
    )
    telemetry = RunTelemetry(bin_s=3600.0)
    run_simulation(
        dec_trace, build("hierarchy", tiny_config), fault_plan=plan,
        telemetry=telemetry,
    )
    key = 'repro_node_up{arch="hierarchy",kind="l2",node="0"}'
    for row in telemetry.rows:
        expected = 0.0 if crash_t <= row["t_end"] < recover_t else 1.0
        assert row["gauges"][key] == expected, f"bin {row['bin']}"


def test_cache_occupancy_gauges_present_and_bounded(tiny_config, dec_trace):
    telemetry = RunTelemetry()
    architecture = build("hierarchy", tiny_config)
    run_simulation(dec_trace, architecture, telemetry=telemetry)
    last = telemetry.rows[-1]["gauges"]
    occupancy_keys = [
        key for key in last if key.startswith("repro_cache_occupancy_bytes")
    ]
    assert occupancy_keys
    l1_keys = [key for key in occupancy_keys if 'level="l1"' in key]
    assert len(l1_keys) == tiny_config.topology.n_l1
    # Default DataHierarchy caches are unbounded (Figure 8(a)); the gauge
    # must still be positive and match the cache's own accounting.
    by_node = {
        str(index): cache.used_bytes
        for index, cache in enumerate(architecture.l1_caches)
    }
    for key in l1_keys:
        node = key.split('node="')[1].split('"')[0]
        assert last[key] == by_node[node] > 0


def test_hint_instruments_present_for_hint_architecture(tiny_config, dec_trace):
    telemetry = RunTelemetry()
    run_simulation(dec_trace, build("hints", tiny_config), telemetry=telemetry)
    rows = telemetry.rows
    assert sum_counters(rows, "repro_hint_informs_total") > 0
    assert any(
        key.startswith("repro_hint_entries") for key in rows[-1]["gauges"]
    )


def test_prometheus_exposition_of_real_run_is_clean(tiny_config, dec_trace):
    telemetry = RunTelemetry()
    run_simulation(dec_trace, build("hints", tiny_config), telemetry=telemetry)
    assert check_prometheus_text(prometheus_text(telemetry.registry)) == []


def test_warmup_convergence_on_real_run(tiny_config, dec_trace):
    telemetry = RunTelemetry()
    run_simulation(dec_trace, build("hierarchy", tiny_config), telemetry=telemetry)
    report = warmup_convergence(telemetry.rows)
    assert report.arch == "hierarchy"
    assert 0 < report.final_rate < 1
    assert report.converged_at_s is None or report.converged_at_s <= dec_trace.duration
    assert report.summary_line()


def test_shared_registry_keeps_architectures_apart(tiny_config, dec_trace):
    from repro.obs.telemetry import MetricsRegistry

    registry = MetricsRegistry()
    rows = {}
    results = {}
    for arch_name in ("hierarchy", "icp"):
        telemetry = RunTelemetry(registry, bin_s=3600.0)
        results[arch_name] = run_simulation(
            dec_trace, build(arch_name, tiny_config), telemetry=telemetry
        )
        rows[arch_name] = telemetry.rows
    for arch_name, arch_rows in rows.items():
        assert all(row["arch"] == arch_name for row in arch_rows)
        assert sum_counters(
            arch_rows, "repro_requests_total", {"window": "measured", "arch": arch_name}
        ) == sum(results[arch_name].requests_by_point.values())
        # No cross-contamination: the other architecture's counters never
        # appear in this architecture's bins.
        other = "icp" if arch_name == "hierarchy" else "hierarchy"
        assert sum_counters(arch_rows, "repro_requests_total", {"arch": other}) == 0
