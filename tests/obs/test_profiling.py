"""The span profiler: mechanics, aggregation, export, and engine hooks.

Pins the PR's tentpole contracts:

* span trees nest correctly and pickle across process boundaries;
* ``aggregate_spans`` self time sums back to the root durations exactly
  (the ``profile`` verb's reconciliation footer);
* :func:`~repro.obs.profiling.chrome_trace` emits valid Chrome-trace
  JSON (and :func:`~repro.obs.profiling.check_chrome_trace` rejects
  corrupt payloads);
* worker shards re-base onto the coordinator clock and render on their
  own pid track;
* attaching a profiler changes **no** simulation result, and the engine
  span tree has the documented shape
  (``simulate`` > ``reference_loop`` / fastpath ``batch`` spans).
"""

from __future__ import annotations

import pickle

import pytest

from tests.conftest import make_tiny_config

from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.netmodel.testbed import TestbedCostModel
from repro.obs import profiling
from repro.obs.profiling import (
    ProfileShard,
    Span,
    SpanProfiler,
    aggregate_spans,
    check_chrome_trace,
    chrome_trace,
    format_profile_table,
    span_structure,
)
from repro.sim.engine import run_simulation
from repro.traces.synthetic import SyntheticTraceGenerator


@pytest.fixture(autouse=True)
def _no_leaked_profiler():
    """Every test starts and ends with profiling off."""
    profiling.detach()
    yield
    profiling.detach()


def make_forest():
    """A deterministic little forest: run(load, work(step, step)), flush."""
    profiler = SpanProfiler()
    with profiler.span("run", category="test", label="outer"):
        with profiler.span("load", category="test"):
            pass
        with profiler.span("work", category="test"):
            for _ in range(2):
                with profiler.span("step", category="test"):
                    pass
    with profiler.span("flush", category="test"):
        pass
    return profiler


class TestSpanMechanics:
    def test_nesting_shape(self):
        profiler = make_forest()
        assert [root.name for root in profiler.roots] == ["run", "flush"]
        run = profiler.roots[0]
        assert [child.name for child in run.children] == ["load", "work"]
        assert [g.name for g in run.children[1].children] == ["step", "step"]

    def test_walk_is_depth_first(self):
        run = make_forest().roots[0]
        assert [span.name for span in run.walk()] == [
            "run", "load", "work", "step", "step",
        ]

    def test_self_time_is_duration_minus_children(self):
        span = Span("p", duration_s=1.0)
        span.children.append(Span("c", duration_s=0.3))
        span.children.append(Span("c", duration_s=0.2))
        assert span.self_s == pytest.approx(0.5)
        # Never negative, even when child clocks overshoot the parent's.
        span.children.append(Span("c", duration_s=2.0))
        assert span.self_s == 0.0

    def test_durations_are_positive_and_contain_children(self):
        run = make_forest().roots[0]
        assert run.duration_s > 0
        assert run.duration_s >= sum(c.duration_s for c in run.children)

    def test_attrs_flow_through_context(self):
        profiler = SpanProfiler()
        with profiler.span("s", category="test", rows=5) as span:
            span.attrs["hits"] = 3
        assert profiler.roots[0].attrs == {"rows": 5, "hits": 3}

    def test_current_tracks_innermost_open_span(self):
        profiler = SpanProfiler()
        assert profiler.current() is None
        with profiler.span("outer"):
            with profiler.span("inner"):
                assert profiler.current().name == "inner"
            assert profiler.current().name == "outer"
        assert profiler.current() is None

    def test_span_pickles_with_children_and_attrs(self):
        root = make_forest().roots[0]
        clone = pickle.loads(pickle.dumps(root))
        assert [s.name for s in clone.walk()] == [s.name for s in root.walk()]
        assert clone.attrs == root.attrs
        assert clone.duration_s == root.duration_s

    def test_shard_pickles(self):
        profiler = make_forest()
        shard = pickle.loads(pickle.dumps(profiler.shard()))
        assert shard.pid == profiler.pid
        assert [root.name for root in shard.spans] == ["run", "flush"]


class TestAttachment:
    def test_detached_by_default(self):
        assert profiling.active() is None

    def test_attach_detach_round_trip(self):
        profiler = SpanProfiler()
        assert profiling.attach(profiler) is None
        assert profiling.active() is profiler
        assert profiling.detach() is profiler
        assert profiling.active() is None

    def test_attached_context_restores_previous(self):
        outer, inner = SpanProfiler(), SpanProfiler()
        profiling.attach(outer)
        with profiling.attached(inner) as got:
            assert got is inner
            assert profiling.active() is inner
        assert profiling.active() is outer

    def test_forked_profiler_reads_as_none(self):
        # A profiler whose origin pid is not this process (fork
        # inheritance) must read as detached so workers build their own.
        profiler = SpanProfiler()
        profiler.pid = profiler.pid + 1
        profiling.attach(profiler)
        assert profiling.active() is None


class TestAggregation:
    def test_self_time_sums_to_root_durations_exactly(self):
        profiler = make_forest()
        rows = aggregate_spans(profiler.roots)
        accounted = sum(row["self_s"] for row in rows)
        total = sum(root.duration_s for root in profiler.roots)
        assert accounted == pytest.approx(total, rel=0, abs=1e-12)

    def test_counts_and_cumulative(self):
        rows = {row["span"]: row for row in aggregate_spans(make_forest().roots)}
        assert rows["step"]["count"] == 2
        assert rows["run"]["count"] == 1
        assert rows["work"]["cumulative_s"] >= sum(
            (rows["step"]["cumulative_s"],)
        )

    def test_rows_sorted_by_descending_self_time(self):
        rows = aggregate_spans(make_forest().roots)
        selfs = [row["self_s"] for row in rows]
        assert selfs == sorted(selfs, reverse=True)

    def test_format_table_reconciles_footer(self):
        profiler = make_forest()
        total = sum(root.duration_s for root in profiler.roots)
        text = format_profile_table(
            aggregate_spans(profiler.roots), total_s=total, title="t"
        )
        assert "span-accounted" in text
        assert "(100.0%)" in text  # exact accounting identity

    def test_structure_strips_times_and_pids(self):
        one, two = make_forest(), make_forest()
        for span in two.roots[0].walk():
            span.pid = 4242  # structurally irrelevant
        assert span_structure(one.roots) == span_structure(two.roots)

    def test_structure_ignores_sibling_order(self):
        a = Span("p", children=[Span("x"), Span("y")])
        b = Span("p", children=[Span("y"), Span("x")])
        assert span_structure([a]) == span_structure([b])

    def test_structure_detects_shape_changes(self):
        a = Span("p", children=[Span("x")])
        b = Span("p", children=[Span("x", children=[Span("z")])])
        assert span_structure([a]) != span_structure([b])


class TestChromeTrace:
    def test_valid_and_nested(self):
        payload = chrome_trace(make_forest())
        assert check_chrome_trace(payload) == []
        assert payload["displayTimeUnit"] == "ms"
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {
            "run", "load", "work", "step", "flush",
        }
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] >= 0

    def test_process_metadata_present(self):
        payload = chrome_trace(make_forest())
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in meta} == {"process_name", "process_sort_index"}

    def test_sim_track_rows_land_on_pid_zero(self):
        rows = [
            {"arch": "hierarchy", "bin": 0, "t_start": 0.0, "t_end": 3600.0},
            {"arch": "hierarchy", "bin": 1, "t_start": 3600.0, "t_end": 7200.0},
            {"arch": "hints", "bin": 0, "t_start": 0.0, "t_end": 3600.0},
        ]
        payload = chrome_trace(make_forest(), sim_rows=rows)
        assert check_chrome_trace(payload) == []
        sim = [
            e
            for e in payload["traceEvents"]
            if e["ph"] == "X" and e["pid"] == profiling.SIM_TRACK_PID
        ]
        assert len(sim) == 3
        assert {e["tid"] for e in sim} == {1, 2}  # one lane per arch

    def test_check_rejects_missing_fields(self):
        assert check_chrome_trace({}) == ["traceEvents missing or not a list"]
        assert "traceEvents is empty" in check_chrome_trace({"traceEvents": []})
        problems = check_chrome_trace(
            {"traceEvents": [{"ph": "X", "ts": 0, "dur": 1}]}
        )
        assert any("missing 'name'" in p for p in problems)
        assert any("missing 'pid'" in p for p in problems)

    def test_check_rejects_negative_times(self):
        bad = {"name": "s", "ph": "X", "pid": 1, "tid": 1, "ts": -5, "dur": 1}
        assert any("bad ts" in p for p in check_chrome_trace({"traceEvents": [bad]}))
        bad = {"name": "s", "ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": -1}
        assert any("bad dur" in p for p in check_chrome_trace({"traceEvents": [bad]}))

    def test_check_rejects_overlapping_spans(self):
        events = [
            {"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": 100},
            {"name": "b", "ph": "X", "pid": 1, "tid": 1, "ts": 50, "dur": 100},
        ]
        assert any(
            "overlaps" in p for p in check_chrome_trace({"traceEvents": events})
        )
        # The same pair on different tracks is fine.
        events[1]["tid"] = 2
        assert check_chrome_trace({"traceEvents": events}) == []


class TestAdoption:
    def test_adopt_rebases_and_stamps_pid(self):
        coordinator = SpanProfiler()
        worker = make_forest()
        # Pretend the worker's perf_counter epoch started 100s later.
        shard = worker.shard()
        shard.pid = 31337
        shard.epoch_offset_s = worker.epoch_offset_s + 100.0
        starts = [span.start_s for root in shard.spans for span in root.walk()]
        with coordinator.span("comparison") as parent:
            coordinator.adopt(shard, parent=parent)
        adopted = coordinator.roots[0].children
        assert [root.name for root in adopted] == ["run", "flush"]
        got = [span.start_s for root in adopted for span in root.walk()]
        assert got == pytest.approx([s + 100.0 for s in starts])
        assert all(
            span.pid == 31337 for root in adopted for span in root.walk()
        )

    def test_adopt_under_innermost_open_span_by_default(self):
        coordinator = SpanProfiler()
        shard = ProfileShard(
            pid=9, epoch_offset_s=coordinator.epoch_offset_s, spans=[Span("w")]
        )
        with coordinator.span("outer"):
            coordinator.adopt(shard)
        assert [c.name for c in coordinator.roots[0].children] == ["w"]

    def test_adopt_without_parent_appends_roots(self):
        coordinator = SpanProfiler()
        shard = ProfileShard(
            pid=9, epoch_offset_s=coordinator.epoch_offset_s, spans=[Span("w")]
        )
        coordinator.adopt(shard)
        assert [root.name for root in coordinator.roots] == ["w"]

    def test_adopted_spans_render_on_worker_pid_track(self):
        coordinator = SpanProfiler()
        worker = make_forest()
        shard = worker.shard()
        shard.pid = 31337
        with coordinator.span("comparison") as parent:
            coordinator.adopt(shard, parent=parent)
        payload = chrome_trace(coordinator)
        assert check_chrome_trace(payload) == []
        pids = {e["pid"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert pids == {coordinator.pid, 31337}


class TestMemoryMode:
    def test_memory_attrs_present(self):
        profiler = SpanProfiler(memory=True)
        try:
            with profiler.span("alloc"):
                blob = [0] * 50_000
                del blob
        finally:
            profiler.close()
        attrs = profiler.roots[0].attrs
        assert set(attrs) >= {"mem_alloc_kb", "mem_peak_kb", "rss_peak_kb"}
        assert attrs["mem_peak_kb"] > 100.0  # the 50k-int list is ~390kB
        assert attrs["rss_peak_kb"] > 0

    def test_child_peak_folds_into_parent(self):
        profiler = SpanProfiler(memory=True)
        try:
            with profiler.span("parent"):
                with profiler.span("child"):
                    blob = [0] * 50_000
                    del blob
        finally:
            profiler.close()
        parent = profiler.roots[0]
        child = parent.children[0]
        assert parent.attrs["mem_peak_kb"] >= child.attrs["mem_peak_kb"]

    def test_default_mode_records_no_memory_attrs(self):
        profiler = make_forest()
        assert "mem_peak_kb" not in profiler.roots[0].attrs


class TestEngineIntegration:
    @pytest.fixture(scope="class")
    def trace(self):
        config = make_tiny_config()
        return config, SyntheticTraceGenerator(
            config.profile("dec"), seed=config.seed
        ).generate()

    def build(self, config):
        return DataHierarchy(config.topology, TestbedCostModel())

    def test_metrics_identical_attached_or_not(self, trace):
        config, tiny = trace
        detached = run_simulation(tiny, self.build(config))
        profiler = SpanProfiler()
        with profiling.attached(profiler):
            attached = run_simulation(tiny, self.build(config))
        assert detached.summary() == attached.summary()
        assert detached.requests_by_point == attached.requests_by_point
        assert detached.total_ms == attached.total_ms

    def test_reference_span_tree_shape(self, trace):
        config, tiny = trace
        profiler = SpanProfiler()
        with profiling.attached(profiler):
            run_simulation(tiny, self.build(config))
        (simulate,) = profiler.roots
        assert simulate.name == "simulate"
        assert simulate.category == "engine"
        assert simulate.attrs["arch"] == "hierarchy"
        assert simulate.attrs["measured_requests"] > 0
        assert [c.name for c in simulate.children] == ["reference_loop"]

    def test_fast_span_tree_has_kernel_batches(self, trace):
        config, tiny = trace
        profiler = SpanProfiler()
        with profiling.attached(profiler):
            fast = run_simulation(tiny, self.build(config), engine="fast")
        detached = run_simulation(tiny, self.build(config), engine="fast")
        assert fast.summary() == detached.summary()
        (simulate,) = profiler.roots
        batches = [c for c in simulate.children if c.name == "batch"]
        assert batches, "fast engine should record per-batch spans"
        for batch in batches:
            names = [c.name for c in batch.children]
            assert "classify" in names
            assert batch.attrs["rows"] > 0
            assert (
                batch.attrs["l1_hits"] + batch.attrs["l1_misses"]
                == batch.attrs["rows"]
            )

    def test_chrome_trace_of_real_run_is_valid(self, trace):
        config, tiny = trace
        profiler = SpanProfiler()
        with profiling.attached(profiler):
            run_simulation(tiny, self.build(config))
        assert check_chrome_trace(chrome_trace(profiler)) == []
