"""FaultPlan / FaultProfile: validation, ordering, serialization, identity."""

from __future__ import annotations

import pytest

from repro.faults import (
    FaultPlan,
    FaultProfile,
    HintBatchLoss,
    LinkDegrade,
    NodeCrash,
    NodeKind,
    NodeRecover,
    OriginSlowdown,
    StaleHintDrift,
)
from repro.runner.fingerprint import (
    fault_fingerprint,
    simulation_fingerprint,
    trace_fingerprint,
)
from repro.sim.config import default_config


class TestEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            NodeCrash(time=-1.0)

    def test_negative_node_rejected(self):
        with pytest.raises(ValueError):
            NodeCrash(time=0.0, kind="l1", node=-2)

    def test_loss_probability_bounds(self):
        with pytest.raises(ValueError):
            HintBatchLoss(time=0.0, prob=1.5)
        HintBatchLoss(time=0.0, prob=1.0)  # boundary is legal

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: OriginSlowdown(time=0.0, factor=0.5),
            lambda: LinkDegrade(time=0.0, latency_mult=0.9),
        ],
    )
    def test_speedups_rejected(self, factory):
        """Faults never make anything faster: multipliers must be >= 1."""
        with pytest.raises(ValueError):
            factory()

    def test_drift_must_be_non_negative(self):
        with pytest.raises(ValueError):
            StaleHintDrift(time=0.0, ttl_skew_s=-1.0)

    def test_kind_coerced_from_string(self):
        assert NodeCrash(time=0.0, kind="meta", node=3).kind is NodeKind.META


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan(
            events=(
                NodeRecover(time=9.0, kind="l2", node=0),
                NodeCrash(time=1.0, kind="l2", node=0),
                OriginSlowdown(time=5.0, factor=2.0),
            )
        )
        assert [event.time for event in plan] == [1.0, 5.0, 9.0]

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert len(FaultPlan()) == 0
        assert FaultPlan(events=(NodeCrash(time=0.0),))

    def test_json_round_trip(self):
        plan = FaultPlan(
            events=(
                NodeCrash(time=1.0, kind="meta", node=2),
                HintBatchLoss(time=2.0, prob=0.25),
                StaleHintDrift(time=3.0, ttl_skew_s=60.0),
                OriginSlowdown(time=4.0, factor=3.0),
                LinkDegrade(time=5.0, latency_mult=1.5),
                NodeRecover(time=6.0, kind="meta", node=2),
            ),
            seed=99,
            timeout_ms=1234.0,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.from_payload({"events": [{"type": "asteroid", "time": 0.0}]})

    def test_outage_helper(self):
        plan = FaultPlan.outage([("l2", 0), ("meta", 1)], start=10.0, end=50.0)
        crashes = [e for e in plan if isinstance(e, NodeCrash)]
        recoveries = [e for e in plan if isinstance(e, NodeRecover)]
        assert {(e.kind, e.node) for e in crashes} == {
            (NodeKind.L2, 0),
            (NodeKind.META, 1),
        }
        assert all(e.time == 10.0 for e in crashes)
        assert all(e.time == 50.0 for e in recoveries)
        with pytest.raises(ValueError):
            FaultPlan.outage([("l2", 0)], start=10.0, end=10.0)


class TestFingerprints:
    def test_equal_plans_fingerprint_identically(self):
        def make():
            return FaultPlan(events=(NodeCrash(time=1.0, kind="l2", node=0),), seed=3)

        assert fault_fingerprint(make()) == fault_fingerprint(make())
        assert make().fingerprint() == fault_fingerprint(make())

    def test_any_field_changes_the_fingerprint(self):
        base = FaultPlan(events=(NodeCrash(time=1.0, kind="l2", node=0),), seed=3)
        variants = [
            FaultPlan(events=(NodeCrash(time=2.0, kind="l2", node=0),), seed=3),
            FaultPlan(events=(NodeCrash(time=1.0, kind="l3", node=0),), seed=3),
            FaultPlan(events=(NodeCrash(time=1.0, kind="l2", node=0),), seed=4),
            FaultPlan(
                events=(NodeCrash(time=1.0, kind="l2", node=0),),
                seed=3,
                timeout_ms=1.0,
            ),
        ]
        fingerprints = {fault_fingerprint(v) for v in variants}
        assert fault_fingerprint(base) not in fingerprints
        assert len(fingerprints) == len(variants)

    def test_simulation_fingerprint_reduces_without_plan(self):
        config = default_config()
        profile = config.profile("dec")
        bare = trace_fingerprint(profile, config.seed)
        assert simulation_fingerprint(profile, config.seed) == bare
        assert simulation_fingerprint(profile, config.seed, FaultPlan()) == bare
        faulted = simulation_fingerprint(
            profile,
            config.seed,
            FaultPlan(events=(NodeCrash(time=0.0, kind="l2", node=0),)),
        )
        assert faulted != bare


class TestFaultProfile:
    TARGETS = [("l1", 0), ("l1", 1), ("l2", 0)]

    def test_same_seed_same_plan(self):
        a = FaultProfile(mtbf_s=100.0, mttr_s=25.0, seed=5)
        b = FaultProfile(mtbf_s=100.0, mttr_s=25.0, seed=5)
        assert a.plan(self.TARGETS, duration_s=1000.0) == b.plan(
            self.TARGETS, duration_s=1000.0
        )

    def test_different_seed_different_plan(self):
        a = FaultProfile(mtbf_s=100.0, mttr_s=25.0, seed=5)
        b = FaultProfile(mtbf_s=100.0, mttr_s=25.0, seed=6)
        assert a.plan(self.TARGETS, duration_s=1000.0) != b.plan(
            self.TARGETS, duration_s=1000.0
        )

    def test_targets_draw_independent_streams(self):
        """Adding a target never perturbs another target's schedule."""
        profile = FaultProfile(mtbf_s=100.0, mttr_s=25.0, seed=5)
        small = profile.plan([("l1", 0)], duration_s=1000.0)
        large = profile.plan(self.TARGETS, duration_s=1000.0)
        def of_node0(plan):
            return [
                e for e in plan if getattr(e, "node", None) == 0 and e.kind is NodeKind.L1
            ]

        assert of_node0(small) == of_node0(large)

    def test_fail_stop_without_mttr(self):
        profile = FaultProfile(mtbf_s=50.0, seed=1)
        plan = profile.plan(self.TARGETS, duration_s=10_000.0)
        assert plan  # mtbf << duration: crashes happen
        assert not any(isinstance(e, NodeRecover) for e in plan)
        # Fail-stop: at most one crash per target.
        assert len(plan) <= len(self.TARGETS)

    def test_events_alternate_per_target(self):
        profile = FaultProfile(mtbf_s=30.0, mttr_s=10.0, seed=2)
        plan = profile.plan([("meta", 4)], duration_s=5000.0)
        states = [isinstance(e, NodeCrash) for e in plan]
        assert states == [i % 2 == 0 for i in range(len(states))]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FaultProfile(mtbf_s=0.0)
        with pytest.raises(ValueError):
            FaultProfile(mtbf_s=1.0, mttr_s=0.0)
        with pytest.raises(ValueError):
            FaultProfile(mtbf_s=1.0).plan([("l1", 0)], duration_s=0.0)
