"""Fault plans through the simulation engine and the parallel runner."""

from __future__ import annotations

from repro.faults import FaultPlan, NodeCrash
from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.netmodel.model import AccessPoint
from repro.netmodel.testbed import TestbedCostModel
from repro.runner.parallel import run_comparison_parallel
from repro.runner.specs import ArchitectureSpec
from repro.sim.engine import run_simulation


def make_hierarchy(tiny_config):
    return DataHierarchy(tiny_config.topology, TestbedCostModel())


def mid_run_outage(trace, kinds=(("l2", 0),)):
    """Crash targets a third of the way into the measured window."""
    start = trace.warmup + (trace.duration - trace.warmup) / 3
    end = trace.warmup + 2 * (trace.duration - trace.warmup) / 3
    return FaultPlan.outage(kinds, start=start, end=end)


class TestPlanFreeEquivalence:
    def test_empty_plan_equals_no_plan(self, dec_trace, tiny_config):
        """FaultPlan() must be indistinguishable from fault_plan=None."""
        bare = run_simulation(dec_trace, make_hierarchy(tiny_config))
        empty = run_simulation(
            dec_trace, make_hierarchy(tiny_config), fault_plan=FaultPlan()
        )
        assert empty.summary() == bare.summary()
        assert empty.total_ms == bare.total_ms
        assert not empty.degraded

    def test_future_only_plan_changes_nothing(self, dec_trace, tiny_config):
        """Events scheduled after the trace ends never fire."""
        plan = FaultPlan.outage([("l2", 0)], start=dec_trace.duration + 1.0)
        bare = run_simulation(dec_trace, make_hierarchy(tiny_config))
        faulted = run_simulation(
            dec_trace, make_hierarchy(tiny_config), fault_plan=plan
        )
        assert faulted.total_ms == bare.total_ms
        assert not faulted.degraded


class TestDegradation:
    def test_outage_costs_time_and_is_accounted(self, dec_trace, tiny_config):
        bare = run_simulation(dec_trace, make_hierarchy(tiny_config))
        faulted = run_simulation(
            dec_trace,
            make_hierarchy(tiny_config),
            fault_plan=mid_run_outage(dec_trace),
        )
        assert faulted.measured_requests == bare.measured_requests
        assert faulted.total_ms > bare.total_ms
        assert faulted.degraded.faulted_requests > 0
        assert faulted.degraded.timeout_fallbacks > 0
        assert 0.0 < faulted.degraded.fault_added_ms <= faulted.total_ms

    def test_crashed_cache_comes_back_empty(self, dec_trace, tiny_config):
        """Post-recovery the L2 lost its contents: more misses than clean."""
        bare = run_simulation(dec_trace, make_hierarchy(tiny_config))
        faulted = run_simulation(
            dec_trace,
            make_hierarchy(tiny_config),
            fault_plan=mid_run_outage(dec_trace),
        )
        assert (
            faulted.requests_by_point[AccessPoint.SERVER]
            >= bare.requests_by_point[AccessPoint.SERVER]
        )
        assert faulted.hit_ratio <= bare.hit_ratio

    def test_same_plan_same_metrics(self, dec_trace, tiny_config):
        plan = mid_run_outage(dec_trace)
        first = run_simulation(
            dec_trace, make_hierarchy(tiny_config), fault_plan=plan
        )
        second = run_simulation(
            dec_trace, make_hierarchy(tiny_config), fault_plan=plan
        )
        assert first.summary() == second.summary()
        assert first.degraded.summary() == second.degraded.summary()


class TestParallelRunner:
    def test_jobs_invariant_with_fault_plan(self, tiny_config):
        profile = tiny_config.profile("dec")
        plan = FaultPlan(
            events=(
                NodeCrash(time=0.0, kind="l2", node=0),
                NodeCrash(time=0.0, kind="l1", node=1),
            )
        )
        specs = [
            ArchitectureSpec(
                DataHierarchy, args=(tiny_config.topology, TestbedCostModel())
            )
        ]
        serial = run_comparison_parallel(
            profile, tiny_config.seed, specs, jobs=1, fault_plan=plan
        )
        pooled = run_comparison_parallel(
            profile, tiny_config.seed, specs, jobs=2, fault_plan=plan
        )
        assert list(serial) == list(pooled) == ["hierarchy"]
        assert serial["hierarchy"].summary() == pooled["hierarchy"].summary()
        assert serial["hierarchy"].degraded.faulted_requests > 0
        assert (
            serial["hierarchy"].degraded.summary()
            == pooled["hierarchy"].degraded.summary()
        )
