"""Every architecture x every fault kind: conservation under degradation.

The failure matrix drives each architecture through the same small trace
under each fault kind in isolation and checks the accounting invariants
that make degraded-mode numbers trustworthy: every measured request is
satisfied at exactly one access point, every timeout fallback went to the
origin, and the fault-added ledger stays within the total.
"""

from __future__ import annotations

import pytest

from repro.faults import (
    FaultPlan,
    HintBatchLoss,
    LinkDegrade,
    NodeCrash,
    OriginSlowdown,
    StaleHintDrift,
)
from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.directory_arch import CentralizedDirectoryArchitecture
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.hierarchy.icp import IcpHierarchy
from repro.netmodel.model import AccessPoint
from repro.netmodel.testbed import TestbedCostModel
from repro.obs.journey import StepKind
from repro.obs.sink import SamplingJourneySink
from repro.sim.engine import run_simulation

ARCHITECTURES = {
    "hierarchy": DataHierarchy,
    "hints": HintHierarchy,
    "directory": CentralizedDirectoryArchitecture,
    "icp": IcpHierarchy,
}

#: One plan per fault kind, active from t=0 so the whole run is degraded.
FAULT_KINDS = {
    "l1_crash": (NodeCrash(time=0.0, kind="l1", node=0),),
    "l2_crash": (NodeCrash(time=0.0, kind="l2", node=0),),
    "l3_crash": (NodeCrash(time=0.0, kind="l3", node=0),),
    "meta_crash": (NodeCrash(time=0.0, kind="meta", node=0),),
    "hint_batch_loss": (HintBatchLoss(time=0.0, prob=0.3),),
    "stale_hint_drift": (StaleHintDrift(time=0.0, ttl_skew_s=120.0),),
    "origin_slowdown": (OriginSlowdown(time=0.0, factor=2.0),),
    "link_degrade": (LinkDegrade(time=0.0, latency_mult=1.5),),
}


@pytest.fixture(scope="module")
def clean_runs(tiny_config, dec_trace):
    """Fault-free reference metrics per architecture (shared, read-only)."""
    return {
        name: run_simulation(
            dec_trace, cls(tiny_config.topology, TestbedCostModel())
        )
        for name, cls in ARCHITECTURES.items()
    }


@pytest.mark.parametrize("fault_name", sorted(FAULT_KINDS))
@pytest.mark.parametrize("arch_name", sorted(ARCHITECTURES))
def test_matrix_cell(arch_name, fault_name, tiny_config, dec_trace, clean_runs):
    plan = FaultPlan(events=FAULT_KINDS[fault_name], seed=tiny_config.seed)
    architecture = ARCHITECTURES[arch_name](
        tiny_config.topology, TestbedCostModel()
    )
    sink = SamplingJourneySink(capacity=None)
    metrics = run_simulation(
        dec_trace, architecture, fault_plan=plan, journey_sink=sink
    )
    clean = clean_runs[arch_name]

    # Exact-sum invariant: every measured request carries a hop ledger
    # whose left-to-right sums *are* the charged totals, bit-for-bit, and
    # whose TIMEOUT steps are exactly the timeout-fallback flag.
    assert sink.seen == metrics.measured_requests
    for _seq, _request, result in sink.samples:
        journey = result.journey
        assert journey is not None and len(journey) > 0
        assert sum(step.cost_ms for step in journey.steps) == result.time_ms
        assert sum(step.fault_ms for step in journey.steps) == result.fault_added_ms
        timed_out = any(step.kind is StepKind.TIMEOUT for step in journey.steps)
        assert timed_out == result.timeout_fallback

    # No request lost or invented: degradation changes *where* and *how
    # slowly* requests are served, never how many.
    assert metrics.measured_requests == clean.measured_requests
    assert sum(metrics.requests_by_point.values()) == metrics.measured_requests
    metrics.validate()  # conservation + degraded-counter bounds

    # The fault is in force for the entire run, so every measured request
    # is a degraded-mode request.
    assert metrics.degraded.faulted_requests == metrics.measured_requests

    # Every timeout fallback ends at the origin server.
    assert (
        metrics.degraded.timeout_fallbacks
        <= metrics.requests_by_point[AccessPoint.SERVER]
    )

    # Whole-run multipliers slow every architecture down, strictly, and
    # where the faulted walk mirrors the clean walk exactly (everywhere
    # except the directory, which deliberately trusts its stale visible
    # map instead of the clean path's freshness filter) the fault-added
    # ledger accounts for the entire difference.
    if fault_name in ("origin_slowdown", "link_degrade"):
        assert metrics.total_ms > clean.total_ms
        if arch_name != "directory":
            assert metrics.degraded.fault_added_ms == pytest.approx(
                metrics.total_ms - clean.total_ms
            )


def test_crashes_hurt_where_they_apply(tiny_config, dec_trace, clean_runs):
    """Spot-check the matrix is not vacuous: a whole-run L1-0 crash costs
    every architecture timeout fallbacks and real response time."""
    plan = FaultPlan(events=FAULT_KINDS["l1_crash"], seed=tiny_config.seed)
    for name, cls in ARCHITECTURES.items():
        metrics = run_simulation(
            dec_trace,
            cls(tiny_config.topology, TestbedCostModel()),
            fault_plan=plan,
        )
        assert metrics.degraded.timeout_fallbacks > 0, name
        assert metrics.total_ms > clean_runs[name].total_ms, name
