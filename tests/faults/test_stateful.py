"""Model-based fault interleavings: a faulted twin never beats its clean twin.

Each machine drives the *same* request sequence through two copies of one
architecture -- a clean twin and a twin bound to a FaultInjector -- while
Hypothesis interleaves crashes, recoveries, and level faults arbitrarily.

Invariants checked on every step/sequence:

* **No request lost.**  Every request gets exactly one AccessResult from
  each twin; the faulted twin's metrics conserve counts (``validate()``).
* **Faults never speed anything up.**  Per request, the faulted response
  time is >= the clean response time.  This holds because the machine
  fixes ``version=0`` (immutable objects) and leaves caches unbounded:
  a faulted cache's contents are then always a subset of its clean
  twin's, every hint the faulted twin can see its clean twin can see
  too, and all fault charges are multipliers >= 1 or added timeouts.
  (With mutable objects a *lost* hint can dodge a false-positive probe
  the clean twin pays for -- cheaper by accident -- so that regime is
  deliberately out of scope here.)
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, rule

from repro.faults import (
    FaultInjector,
    FaultPlan,
    HintBatchLoss,
    LinkDegrade,
    NodeCrash,
    NodeRecover,
    OriginSlowdown,
    StaleHintDrift,
)
from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.directory_arch import CentralizedDirectoryArchitecture
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.hierarchy.icp import IcpHierarchy
from repro.hierarchy.topology import HierarchyTopology
from repro.netmodel.testbed import TestbedCostModel
from repro.sim.metrics import SimMetrics
from repro.traces.records import Request

TOPOLOGY = HierarchyTopology(clients_per_l1=2, l1_per_l2=2, n_l2=2)

#: Every node a fault can address in this topology.
TARGETS = (
    [("l1", node) for node in range(TOPOLOGY.n_l1)]
    + [("l2", node) for node in range(TOPOLOGY.n_l2)]
    + [("l3", 0)]
    + [("meta", node) for node in range(TOPOLOGY.n_l2)]
)

CLIENTS = st.integers(0, TOPOLOGY.n_clients_covered - 1)
OBJECTS = st.integers(0, 15)
SIZES = st.integers(1, 8000)


class FaultedTwinMachine(RuleBasedStateMachine):
    """Drive clean and faulted twins of one architecture in lockstep."""

    architecture_class: type

    def __init__(self):
        super().__init__()
        cost = TestbedCostModel()
        self.clean = self.architecture_class(TOPOLOGY, cost)
        self.faulted = self.architecture_class(TOPOLOGY, cost)
        self.injector = FaultInjector(FaultPlan())
        self.injector.bind(self.faulted)
        self.metrics = SimMetrics(architecture=self.faulted.name)
        self.sent = 0
        self.t = 0.0

    # ------------------------------------------------------------------
    # fault rules (applied to the faulted twin only)
    # ------------------------------------------------------------------
    @rule(target_index=st.integers(0, len(TARGETS) - 1))
    def crash(self, target_index):
        kind, node = TARGETS[target_index]
        self.injector.inject(NodeCrash(time=self.t, kind=kind, node=node))

    @rule(target_index=st.integers(0, len(TARGETS) - 1))
    def recover(self, target_index):
        kind, node = TARGETS[target_index]
        self.injector.inject(NodeRecover(time=self.t, kind=kind, node=node))

    @rule(prob=st.sampled_from([0.0, 0.3, 1.0]))
    def set_hint_loss(self, prob):
        self.injector.inject(HintBatchLoss(time=self.t, prob=prob))

    @rule(skew=st.sampled_from([0.0, 5.0, 60.0]))
    def set_hint_drift(self, skew):
        self.injector.inject(StaleHintDrift(time=self.t, ttl_skew_s=skew))

    @rule(factor=st.sampled_from([1.0, 2.0, 4.0]))
    def set_origin_slowdown(self, factor):
        self.injector.inject(OriginSlowdown(time=self.t, factor=factor))

    @rule(mult=st.sampled_from([1.0, 1.5, 3.0]))
    def set_link_degrade(self, mult):
        self.injector.inject(LinkDegrade(time=self.t, latency_mult=mult))

    # ------------------------------------------------------------------
    # requests (both twins, in lockstep)
    # ------------------------------------------------------------------
    @rule(client=CLIENTS, oid=OBJECTS, size=SIZES)
    def request(self, client, oid, size):
        self.t += 1.0
        self.injector.advance(self.t)
        request = Request(
            time=self.t, client_id=client, object_id=oid, size=size, version=0
        )
        clean_result = self.clean.process(request)
        faulted_result = self.faulted.process(request)
        self.sent += 1
        self.metrics.record(
            faulted_result, size, faulted=self.injector.faults_active
        )
        assert faulted_result.time_ms >= clean_result.time_ms - 1e-9, (
            f"faults sped up {self.faulted.name}: "
            f"{faulted_result.time_ms} < {clean_result.time_ms}"
        )
        assert clean_result.fault_added_ms == 0.0
        assert faulted_result.fault_added_ms <= faulted_result.time_ms + 1e-9

    def teardown(self):
        # Conservation: every request recorded exactly once, counters in
        # bounds -- the same checks the engine runs after a real trace.
        assert self.metrics.measured_requests == self.sent
        self.metrics.validate()


class DataHierarchyFaults(FaultedTwinMachine):
    architecture_class = DataHierarchy


class HintHierarchyFaults(FaultedTwinMachine):
    architecture_class = HintHierarchy


class DirectoryFaults(FaultedTwinMachine):
    architecture_class = CentralizedDirectoryArchitecture


class IcpFaults(FaultedTwinMachine):
    architecture_class = IcpHierarchy


_SETTINGS = settings(max_examples=25, stateful_step_count=40, deadline=None)

TestDataHierarchyFaults = DataHierarchyFaults.TestCase
TestDataHierarchyFaults.settings = _SETTINGS

TestHintHierarchyFaults = HintHierarchyFaults.TestCase
TestHintHierarchyFaults.settings = _SETTINGS

TestDirectoryFaults = DirectoryFaults.TestCase
TestDirectoryFaults.settings = _SETTINGS

TestIcpFaults = IcpFaults.TestCase
TestIcpFaults.settings = _SETTINGS
