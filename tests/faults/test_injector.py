"""FaultInjector: replay semantics, latency arithmetic, stats."""

from __future__ import annotations

import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    HintBatchLoss,
    LinkDegrade,
    NodeCrash,
    NodeKind,
    NodeRecover,
    OriginSlowdown,
    StaleHintDrift,
)
from repro.hierarchy.base import Architecture
from repro.netmodel.model import AccessPoint
from repro.netmodel.testbed import TestbedCostModel


class RecordingArchitecture(Architecture):
    """Stub that records the crash/recover callbacks it receives."""

    name = "recording"

    def __init__(self):
        super().__init__(TestbedCostModel())
        self.calls: list[tuple[str, NodeKind, int]] = []

    def process(self, request):  # pragma: no cover - never driven here
        raise NotImplementedError

    def on_fault_crash(self, kind, node):
        self.calls.append(("crash", kind, node))

    def on_fault_recover(self, kind, node):
        self.calls.append(("recover", kind, node))


class TestAdvance:
    def test_applies_events_up_to_now_inclusive(self):
        plan = FaultPlan(
            events=(
                NodeCrash(time=10.0, kind="l2", node=1),
                NodeRecover(time=20.0, kind="l2", node=1),
            )
        )
        injector = FaultInjector(plan)
        injector.advance(9.99)
        assert not injector.is_down("l2", 1)
        injector.advance(10.0)  # boundary: events at exactly `now` fire
        assert injector.is_down("l2", 1)
        assert injector.any_down("l2")
        assert not injector.any_down("l3")
        injector.advance(20.0)
        assert not injector.is_down("l2", 1)
        assert injector.now == 20.0

    def test_advance_is_monotone(self):
        injector = FaultInjector(
            FaultPlan(events=(NodeCrash(time=5.0, kind="l1", node=0),))
        )
        injector.advance(10.0)
        injector.advance(3.0)  # going "back" neither rewinds state nor time
        assert injector.is_down("l1", 0)
        assert injector.now == 10.0

    def test_callbacks_fire_on_bound_architectures(self):
        arch = RecordingArchitecture()
        injector = FaultInjector(
            FaultPlan(
                events=(
                    NodeCrash(time=1.0, kind="meta", node=3),
                    NodeRecover(time=2.0, kind="meta", node=3),
                )
            )
        )
        injector.bind(arch)
        assert arch.faults is injector
        injector.advance(5.0)
        assert arch.calls == [
            ("crash", NodeKind.META, 3),
            ("recover", NodeKind.META, 3),
        ]

    def test_double_crash_counts_once(self):
        """Crashing a dead node (or recovering a live one) is a no-op."""
        arch = RecordingArchitecture()
        injector = FaultInjector(
            FaultPlan(
                events=(
                    NodeCrash(time=1.0, kind="l1", node=0),
                    NodeCrash(time=2.0, kind="l1", node=0),
                    NodeRecover(time=3.0, kind="l1", node=0),
                    NodeRecover(time=4.0, kind="l1", node=0),
                )
            )
        )
        injector.bind(arch)
        injector.advance(10.0)
        assert injector.stats.crashes == 1
        assert injector.stats.recoveries == 1
        assert len(arch.calls) == 2

    def test_inject_applies_immediately(self):
        injector = FaultInjector(FaultPlan())
        injector.inject(NodeCrash(time=0.0, kind="l3", node=0))
        assert injector.is_down("l3", 0)
        injector.inject(NodeRecover(time=0.0, kind="l3", node=0))
        assert not injector.is_down("l3", 0)
        assert injector.stats.crashes == 1
        assert injector.stats.recoveries == 1


class TestLevels:
    def test_levels_are_step_functions(self):
        injector = FaultInjector(
            FaultPlan(
                events=(
                    OriginSlowdown(time=1.0, factor=3.0),
                    LinkDegrade(time=1.0, latency_mult=2.0),
                    StaleHintDrift(time=1.0, ttl_skew_s=30.0),
                    HintBatchLoss(time=1.0, prob=0.5),
                    OriginSlowdown(time=5.0, factor=1.0),  # restores health
                )
            )
        )
        injector.advance(1.0)
        assert injector.origin_factor == 3.0
        assert injector.latency_mult == 2.0
        assert injector.hint_delay_skew_s == 30.0
        assert injector.hint_loss_prob == 0.5
        assert injector.faults_active
        injector.advance(5.0)
        assert injector.origin_factor == 1.0
        assert injector.faults_active  # link/loss/drift still in force

    def test_faults_active_false_when_healthy(self):
        injector = FaultInjector(FaultPlan())
        assert not injector.faults_active
        injector.advance(1e9)
        assert not injector.faults_active


class TestLatencyArithmetic:
    def test_healthy_charge_unchanged(self):
        injector = FaultInjector(FaultPlan())
        assert injector.degraded_ms(70.0) == (70.0, 0.0)
        assert injector.degraded_ms(70.0, origin=True) == (70.0, 0.0)

    def test_link_degrade_applies_everywhere(self):
        injector = FaultInjector(FaultPlan())
        injector.inject(LinkDegrade(time=0.0, latency_mult=2.0))
        assert injector.degraded_ms(100.0) == (200.0, 100.0)

    def test_origin_slowdown_only_on_origin_charges(self):
        injector = FaultInjector(FaultPlan())
        injector.inject(OriginSlowdown(time=0.0, factor=3.0))
        assert injector.degraded_ms(100.0) == (100.0, 0.0)
        assert injector.degraded_ms(100.0, origin=True) == (300.0, 200.0)

    def test_multipliers_compose(self):
        injector = FaultInjector(FaultPlan())
        injector.inject(LinkDegrade(time=0.0, latency_mult=2.0))
        injector.inject(OriginSlowdown(time=0.0, factor=3.0))
        charged, added = injector.degraded_ms(100.0, origin=True)
        assert charged == pytest.approx(600.0)
        assert added == pytest.approx(500.0)

    def test_timeout_comes_from_plan(self):
        assert FaultInjector(FaultPlan(timeout_ms=123.0)).timeout_ms == 123.0


class TestHintLoss:
    def test_no_loss_draws_nothing(self):
        injector = FaultInjector(FaultPlan())
        assert not any(injector.hint_update_dropped() for _ in range(100))
        assert injector.stats.hint_updates_dropped == 0

    def test_draws_are_seed_deterministic(self):
        def stream(seed):
            injector = FaultInjector(FaultPlan(seed=seed))
            injector.inject(HintBatchLoss(time=0.0, prob=0.5))
            return [injector.hint_update_dropped() for _ in range(200)]

        assert stream(1) == stream(1)
        assert stream(1) != stream(2)
        assert any(stream(1)) and not all(stream(1))

    def test_stats_count_only_drops(self):
        injector = FaultInjector(FaultPlan(seed=3))
        injector.inject(HintBatchLoss(time=0.0, prob=0.5))
        drops = sum(injector.hint_update_dropped() for _ in range(200))
        assert injector.stats.hint_updates_dropped == drops
        injector.note_dead_probe()
        assert injector.stats.dead_probes == 1
        assert injector.stats.as_dict()["dead_probes"] == 1


def test_access_point_population_matches_node_kinds():
    """Every cache AccessPoint has a crashable NodeKind counterpart."""
    cache_points = {p.name.lower() for p in AccessPoint if p.is_cache}
    kinds = {k.value for k in NodeKind}
    assert cache_points <= kinds
