"""The shipped examples stay runnable.

Every example is compiled; the fast ones (no multi-minute simulations) are
executed end-to-end in a subprocess so their output contracts hold.
"""

from __future__ import annotations

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: Examples cheap enough to execute in the test suite.
FAST_EXAMPLES = {"metadata_fabric.py", "failure_drill.py"}


class TestExamples:
    def test_examples_exist(self):
        names = {path.name for path in ALL_EXAMPLES}
        assert {
            "quickstart.py",
            "isp_dialup.py",
            "corporate_push.py",
            "metadata_fabric.py",
            "failure_drill.py",
            "ascii_figures.py",
        } <= names

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
    def test_example_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    @pytest.mark.parametrize(
        "name", sorted(FAST_EXAMPLES), ids=lambda n: n.replace(".py", "")
    )
    def test_fast_example_runs(self, name):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / name)],
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert completed.returncode == 0, completed.stderr
        assert completed.stdout.strip()

    def test_failure_drill_tells_the_recovery_story(self):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "failure_drill.py")],
            capture_output=True,
            text=True,
            timeout=180,
        )
        output = completed.stdout
        assert "crash" in output.lower()
        # Recovery must reach exactly 100% coverage: the final coverage
        # report (after reconfiguration + re-advertising) says so.
        coverage_lines = [
            line for line in output.splitlines() if "mean hint coverage" in line
        ]
        assert len(coverage_lines) == 3  # converged / post-crash / recovered
        assert "100.0%" in coverage_lines[-1]
        # The crash partitioned the subtree in between.
        assert "100.0%" not in coverage_lines[1]

    def test_failure_drill_uses_the_faults_api(self):
        """The drill schedules its crash as a FaultPlan, not by poking
        cluster internals (no private ``_parent_vector`` reaches)."""
        source = (EXAMPLES_DIR / "failure_drill.py").read_text()
        assert "_parent_vector" not in source
        assert "FaultPlan" in source
        assert "ClusterFaultDriver" in source
