"""Property tests for the Plaxton embedding (the paper's four claims)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import TopologyError
from repro.common.ids import matching_low_bits, node_id_from_name
from repro.netmodel.topology import GeographicTopology
from repro.plaxton.tree import PlaxtonTree


def make_tree(n_nodes=32, bits_per_digit=1, seed=0):
    rng = np.random.default_rng(seed)
    topology = GeographicTopology(n_nodes, max(2, n_nodes // 8), rng)
    node_ids = [node_id_from_name(f"node-{i}") for i in range(n_nodes)]
    return PlaxtonTree(node_ids, topology, bits_per_digit=bits_per_digit)


@pytest.fixture(scope="module")
def tree():
    return make_tree()


class TestConstruction:
    def test_rejects_empty(self):
        rng = np.random.default_rng(0)
        with pytest.raises(TopologyError):
            PlaxtonTree([], GeographicTopology(1, 1, rng))

    def test_rejects_duplicate_ids(self):
        rng = np.random.default_rng(0)
        topology = GeographicTopology(2, 1, rng)
        with pytest.raises(TopologyError, match="unique"):
            PlaxtonTree([5, 5], topology)

    def test_rejects_size_mismatch(self):
        rng = np.random.default_rng(0)
        topology = GeographicTopology(3, 1, rng)
        with pytest.raises(TopologyError):
            PlaxtonTree([1, 2], topology)

    def test_rejects_bad_digit_width(self):
        rng = np.random.default_rng(0)
        topology = GeographicTopology(2, 1, rng)
        with pytest.raises(TopologyError):
            PlaxtonTree([1, 2], topology, bits_per_digit=0)

    def test_level_zero_parent_exists_for_every_digit_present(self, tree):
        # At level 0 the prefix constraint is empty, so for each digit value
        # that exists among node IDs some parent must be found.
        digits_present = {node.node_id & 1 for node in (tree.node(i) for i in tree.member_indices)}
        for index in tree.member_indices:
            for digit in digits_present:
                assert tree.parent(index, 0, digit) is not None


class TestRootSelection:
    def test_root_is_globally_unique(self, tree):
        object_id = node_id_from_name("object-a")
        roots = {tree.root_for(object_id) for _ in range(3)}
        assert len(roots) == 1

    def test_root_maximizes_low_bit_match(self, tree):
        object_id = node_id_from_name("object-b")
        root = tree.root_for(object_id)
        root_match = matching_low_bits(tree.node(root).node_id, object_id)
        for index in tree.member_indices:
            other = matching_low_bits(tree.node(index).node_id, object_id)
            assert other <= root_match

    @settings(deadline=None, max_examples=15)
    @given(seed=st.integers(0, 10**6))
    def test_load_is_distributed(self, seed):
        """Each node roots ~1/n of objects in expectation (the load claim).

        Suffix-match ownership sizes follow the gaps between random node
        IDs, so the heaviest node can own several times its fair share;
        the property we pin is that ownership is *spread*: no node owns
        more than ~a third of the objects and most nodes own some.
        """
        tree = make_tree(n_nodes=32, seed=3)
        rng = np.random.default_rng(seed)
        object_ids = rng.integers(0, 2**63, size=400)
        counts: dict[int, int] = {}
        for oid in object_ids:
            root = tree.root_for(int(oid))
            counts[root] = counts.get(root, 0) + 1
        assert max(counts.values()) <= 400 / 3
        assert len(counts) >= 32 * 0.6


class TestRouting:
    @settings(deadline=None, max_examples=40)
    @given(obj_seed=st.integers(0, 10**6), start=st.integers(0, 31))
    def test_every_start_converges_to_the_same_root(self, obj_seed, start):
        tree = make_tree(n_nodes=32, seed=1)
        object_id = node_id_from_name(f"obj-{obj_seed}")
        path = tree.route_path(start, object_id)
        assert path[0] == start
        assert path[-1] == tree.root_for(object_id)

    def test_path_has_no_repeats_except_terminal_jump(self):
        tree = make_tree(n_nodes=16, seed=2)
        object_id = node_id_from_name("obj-x")
        path = tree.route_path(0, object_id)
        assert len(path[:-1]) == len(set(path[:-1]))

    def test_path_length_is_logarithmic(self):
        tree = make_tree(n_nodes=64, seed=4)
        for obj in range(30):
            object_id = node_id_from_name(f"o{obj}")
            path = tree.route_path(obj % 64, object_id)
            # 64 nodes, binary digits: ~log2(64)=6 meaningful levels, allow
            # slack for surrogate hops.
            assert len(path) <= 14

    def test_route_from_root_is_trivial(self):
        tree = make_tree(n_nodes=16, seed=5)
        object_id = node_id_from_name("obj-y")
        root = tree.root_for(object_id)
        assert tree.route_path(root, object_id) == [root]

    def test_route_rejects_unknown_start(self, tree):
        with pytest.raises(TopologyError):
            tree.route_path(999, 123)


class TestLocality:
    def test_parent_distance_grows_with_level(self):
        """Near the leaves parents are nearby; near the root they are far
        (the paper's locality claim).  Compare the first level against the
        last level with data."""
        tree = make_tree(n_nodes=64, seed=6)
        by_level = tree.parent_distance_by_level()
        populated = [d for d in by_level if d > 0]
        assert len(populated) >= 2
        assert populated[0] < populated[-1]


class TestKaryTrees:
    def test_wider_digits_build_flatter_tables(self):
        binary = make_tree(n_nodes=32, bits_per_digit=1, seed=7)
        hexary = make_tree(n_nodes=32, bits_per_digit=4, seed=7)
        binary_levels = max(len(binary.node(i).parents) for i in binary.member_indices)
        hexary_levels = max(len(hexary.node(i).parents) for i in hexary.member_indices)
        assert hexary_levels < binary_levels

    @settings(deadline=None, max_examples=20)
    @given(obj_seed=st.integers(0, 10**5), start=st.integers(0, 31))
    def test_kary_routing_still_converges(self, obj_seed, start):
        tree = make_tree(n_nodes=32, bits_per_digit=4, seed=8)
        object_id = node_id_from_name(f"kobj-{obj_seed}")
        path = tree.route_path(start, object_id)
        assert path[-1] == tree.root_for(object_id)


class TestMembership:
    def test_remove_node_keeps_indices_stable(self):
        tree = make_tree(n_nodes=16, seed=9)
        tree.remove_node(5)
        assert 5 not in tree.member_indices
        assert len(tree) == 15
        # Survivors keep their indices and routing still works.
        object_id = node_id_from_name("obj-z")
        path = tree.route_path(0, object_id)
        assert 5 not in path

    def test_remove_unknown_node(self):
        tree = make_tree(n_nodes=8, seed=10)
        with pytest.raises(TopologyError):
            tree.remove_node(99)

    def test_cannot_remove_last_node(self):
        rng = np.random.default_rng(0)
        topology = GeographicTopology(1, 1, rng)
        tree = PlaxtonTree([123], topology)
        with pytest.raises(TopologyError):
            tree.remove_node(0)

    def test_add_node_back(self):
        tree = make_tree(n_nodes=16, seed=11)
        node_id = tree.node(5).node_id
        tree.remove_node(5)
        tree.add_node(5, node_id)
        assert 5 in tree.member_indices

    def test_add_duplicate_index_rejected(self):
        tree = make_tree(n_nodes=8, seed=12)
        with pytest.raises(TopologyError):
            tree.add_node(3, 12345)

    def test_add_duplicate_id_rejected(self):
        tree = make_tree(n_nodes=8, seed=13)
        existing_id = tree.node(0).node_id
        tree.remove_node(7)
        with pytest.raises(TopologyError, match="unique"):
            tree.add_node(7, existing_id)
