"""Tests for reconfiguration accounting (the "disturbs very little" claim)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.ids import node_id_from_name
from repro.netmodel.topology import GeographicTopology
from repro.plaxton.membership import remove_node_report
from repro.plaxton.tree import PlaxtonTree


def make_tree(n_nodes=32, seed=0):
    rng = np.random.default_rng(seed)
    topology = GeographicTopology(n_nodes, 4, rng)
    node_ids = [node_id_from_name(f"m-{i}") for i in range(n_nodes)]
    return PlaxtonTree(node_ids, topology)


@pytest.fixture()
def report():
    tree = make_tree()
    object_ids = [node_id_from_name(f"obj-{i}") for i in range(100)]
    return remove_node_report(tree, node=3, object_ids=object_ids)


class TestReport:
    def test_identifies_removed_node(self, report):
        assert report.removed_node == 3

    def test_counts_are_consistent(self, report):
        assert 0 <= report.changed_entries <= report.surviving_entries
        assert report.forced_changes <= report.changed_entries
        assert 0 <= report.roots_moved <= report.objects_sampled

    def test_disturbance_is_small(self, report):
        """The headline claim: most parent-table entries survive a removal."""
        assert report.disturbance < 0.25

    def test_gratuitous_disturbance_is_tiny(self, report):
        """Entries not pointing at the departed node should mostly stay."""
        assert report.gratuitous_disturbance < 0.10

    def test_few_roots_move(self, report):
        """Only objects rooted at (or near) the departed node move."""
        assert report.roots_moved <= report.objects_sampled * 0.25

    def test_tree_is_mutated(self):
        tree = make_tree(seed=5)
        remove_node_report(tree, node=3, object_ids=[1, 2, 3])
        assert 3 not in tree.member_indices

    def test_empty_object_sample(self):
        tree = make_tree(seed=6)
        report = remove_node_report(tree, node=0, object_ids=[])
        assert report.objects_sampled == 0
        assert report.roots_moved == 0
