"""Tests for hint-update routing over the Plaxton fabric."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.ids import node_id_from_name
from repro.netmodel.topology import GeographicTopology
from repro.plaxton.metadata import PlaxtonMetadataFabric
from repro.plaxton.tree import PlaxtonTree


@pytest.fixture()
def fabric():
    rng = np.random.default_rng(0)
    topology = GeographicTopology(16, 4, rng)
    tree = PlaxtonTree(
        [node_id_from_name(f"meta-{i}") for i in range(16)], topology
    )
    return PlaxtonMetadataFabric(tree)


OBJ = node_id_from_name("object-alpha")


class TestInform:
    def test_first_copy_reaches_the_object_root(self, fabric):
        origin = 3
        root = fabric.tree.root_for(OBJ)
        messaged = fabric.inform(origin, OBJ)
        if origin != root:
            assert messaged[-1] == root
        assert origin in fabric.find(root, OBJ) or origin == root

    def test_second_copy_is_filtered_along_the_path(self, fabric):
        fabric.inform(3, OBJ)
        first_total = fabric.total_messages
        fabric.inform(3, OBJ)  # same origin again: path nodes already know
        # The repeat stops at the first hop that already knew.
        assert fabric.total_messages - first_total <= 1

    def test_every_node_can_locate_after_climbing(self, fabric):
        fabric.inform(3, OBJ)
        root = fabric.tree.root_for(OBJ)
        assert fabric.find(root, OBJ) == {3} or root == 3

    def test_distinct_objects_use_distinct_roots(self, fabric):
        object_ids = [node_id_from_name(f"o-{i}") for i in range(60)]
        distribution = fabric.root_load_distribution(object_ids)
        assert len(distribution) > 4  # load is spread, not concentrated


class TestRetract:
    def test_retract_removes_knowledge(self, fabric):
        fabric.inform(3, OBJ)
        fabric.retract(3, OBJ)
        root = fabric.tree.root_for(OBJ)
        assert fabric.find(root, OBJ) == set()

    def test_retract_with_surviving_copy_stops_early(self, fabric):
        fabric.inform(3, OBJ)
        fabric.inform(5, OBJ)
        before = fabric.total_messages
        fabric.retract(3, OBJ)
        # The climb stops once a node still knows node 5's copy.
        root = fabric.tree.root_for(OBJ)
        known = fabric.find(root, OBJ)
        assert 3 not in known or 5 in known
        assert fabric.total_messages > before  # at least one hop messaged

    def test_retract_unknown_copy_is_cheap(self, fabric):
        fabric.retract(7, OBJ)
        assert fabric.find(fabric.tree.root_for(OBJ), OBJ) == set()


class TestLoadAccounting:
    def test_message_counters(self, fabric):
        fabric.inform(3, OBJ)
        assert fabric.total_messages == sum(fabric.messages_at.values())
        assert fabric.max_node_load() >= 1

    def test_empty_fabric_has_zero_load(self, fabric):
        assert fabric.max_node_load() == 0
