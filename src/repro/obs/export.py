"""Exporters for telemetry: Prometheus text exposition and per-bin rows.

Two audiences:

* a scrape endpoint / human -- :func:`prometheus_text` renders a
  :class:`~repro.obs.telemetry.MetricsRegistry` in the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` / samples, histograms with
  cumulative ``_bucket``/``_sum``/``_count`` series);
* offline analysis -- :func:`write_timeline_jsonl` /
  :func:`write_timeline_csv` persist :class:`~repro.obs.telemetry.Timeline`
  rows.  JSONL lines are canonical (sorted keys, compact separators), so
  identical rows serialize to identical bytes -- that is what makes the
  parallel runner's per-architecture timeline files jobs-invariant.

The parsers (:func:`parse_prometheus_text`, :func:`read_timeline_jsonl`)
and validators (:func:`check_prometheus_text`, :func:`check_timeline_rows`)
close the loop: CI's smoke job re-reads what a run exported and fails on
duplicate metric/label pairs, negative counters, or gapped bins.
"""

from __future__ import annotations

import csv
import json
import math
import re
from typing import IO, Iterable, Mapping, Sequence

from repro.obs.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_metric_key,
    render_metric_key,
)

# The label block must tolerate ``}`` (and spaces) *inside* quoted label
# values -- ``[^}]*`` would cut the block short -- so braces scan over
# either non-quote/non-brace characters or whole quoted strings with
# backslash escapes.
_SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(?:[^"{}]|"(?:[^"\\]|\\.)*")*\})?'
    r"\s+(-?(?:\d+\.?\d*(?:[eE][+-]?\d+)?|Inf|NaN|\+Inf))$"
)


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format.

    Families are sorted by name, children by label values, so the output
    is deterministic; each ``(name, labels)`` pair appears exactly once.
    """
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            # HELP text escapes backslash and newline (exposition format).
            help_text = family.help.replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {family.name} {help_text}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for child_key in sorted(family.instruments):
            instrument = family.instruments[child_key]
            if isinstance(instrument, Histogram):
                for bound, cumulative in instrument.cumulative_buckets():
                    labels = dict(instrument.labels)
                    labels["le"] = _format_value(bound)
                    key = render_metric_key(instrument.name + "_bucket", labels)
                    lines.append(f"{key} {cumulative}")
                sum_key = render_metric_key(instrument.name + "_sum", instrument.labels)
                count_key = render_metric_key(
                    instrument.name + "_count", instrument.labels
                )
                lines.append(f"{sum_key} {_format_value(instrument.sum)}")
                lines.append(f"{count_key} {instrument.count}")
            elif isinstance(instrument, (Counter, Gauge)):
                lines.append(f"{instrument.key} {_format_value(instrument.value)}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(
    text: str,
) -> list[tuple[str, dict[str, str], float]]:
    """Parse an exposition into ``(name, labels, value)`` samples.

    Raises ``ValueError`` on the first malformed line; comments and blank
    lines are skipped.
    """
    samples: list[tuple[str, dict[str, str], float]] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {line_number}: unparseable sample {line!r}")
        name, label_block, raw_value = match.groups()
        labels = parse_metric_key(name + (label_block or ""))[1]
        value = math.inf if raw_value in ("Inf", "+Inf") else float(raw_value)
        samples.append((name, labels, value))
    return samples


def check_prometheus_text(text: str) -> list[str]:
    """Validate an exposition; returns a list of problems (empty = clean).

    Checks: every sample parses, no duplicate ``(name, labels)`` pair,
    counter samples are non-negative, and histogram bucket series are
    cumulative (monotone in ``le``) and consistent with ``_count``.
    """
    problems: list[str] = []
    try:
        samples = parse_prometheus_text(text)
    except ValueError as exc:
        return [str(exc)]
    kinds: dict[str, str] = {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _prefix, name, kind = line.rsplit(" ", 2)
            if name in kinds:
                problems.append(f"duplicate TYPE declaration for {name}")
            kinds[name] = kind
    seen: set[tuple[str, tuple[tuple[str, str], ...]]] = set()
    buckets: dict[tuple[str, tuple[tuple[str, str], ...]], list[tuple[float, float]]] = {}
    counts: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for name, labels, value in samples:
        identity = (name, tuple(sorted(labels.items())))
        if identity in seen:
            problems.append(f"duplicate sample {render_metric_key(name, labels)}")
        seen.add(identity)
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in kinds:
                base = name[: -len(suffix)]
        kind = kinds.get(base)
        if kind is None:
            problems.append(f"sample {name} has no TYPE declaration")
            continue
        monotone = kind == "counter" or (kind == "histogram" and base != name)
        if monotone and value < 0:
            problems.append(
                f"negative {kind} sample {render_metric_key(name, labels)} = {value}"
            )
        if kind == "histogram" and name == base + "_bucket":
            series_labels = {k: v for k, v in labels.items() if k != "le"}
            series = (base, tuple(sorted(series_labels.items())))
            bound = labels.get("le", "")
            le = math.inf if bound == "+Inf" else float(bound)
            buckets.setdefault(series, []).append((le, value))
        if kind == "histogram" and name == base + "_count":
            counts[(base, tuple(sorted(labels.items())))] = value
    for series, pairs in buckets.items():
        pairs.sort()
        values = [count for _le, count in pairs]
        if any(b < a for a, b in zip(values, values[1:])):
            problems.append(f"non-cumulative histogram buckets for {series[0]}")
        if pairs and pairs[-1][0] != math.inf:
            problems.append(f"histogram {series[0]} missing +Inf bucket")
        total = counts.get(series)
        if total is not None and pairs and pairs[-1][1] != total:
            problems.append(
                f"histogram {series[0]} +Inf bucket {pairs[-1][1]} != count {total}"
            )
    return problems


# ----------------------------------------------------------------------
# timeline rows
# ----------------------------------------------------------------------
def timeline_json_line(row: Mapping) -> str:
    """Canonical one-line JSON for one bin row (sorted keys, compact)."""
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


def write_timeline_jsonl(rows: Iterable[Mapping], path_or_stream: str | IO[str]) -> None:
    """Write bin rows as canonical JSONL (one row per line)."""
    if hasattr(path_or_stream, "write"):
        for row in rows:
            path_or_stream.write(timeline_json_line(row) + "\n")
        return
    with open(path_or_stream, "w", encoding="utf-8") as stream:
        for row in rows:
            stream.write(timeline_json_line(row) + "\n")


def read_timeline_jsonl(path: str) -> list[dict]:
    """Read rows back from :func:`write_timeline_jsonl` output."""
    rows: list[dict] = []
    with open(path, encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def write_timeline_csv(rows: Sequence[Mapping], path_or_stream: str | IO[str]) -> None:
    """Write bin rows as CSV: fixed columns, then every counter/gauge key.

    Counter columns are prefixed ``delta:`` and gauge columns ``value:``;
    the header is the sorted union over all rows, so heterogeneous runs
    (several architectures in one file) stay rectangular.
    """
    counter_keys: set[str] = set()
    gauge_keys: set[str] = set()
    for row in rows:
        counter_keys.update(row.get("counters", {}))
        gauge_keys.update(row.get("gauges", {}))
    header = (
        ["arch", "bin", "t_start", "t_end"]
        + [f"delta:{key}" for key in sorted(counter_keys)]
        + [f"value:{key}" for key in sorted(gauge_keys)]
    )

    def _write(stream: IO[str]) -> None:
        writer = csv.writer(stream, lineterminator="\n")
        writer.writerow(header)
        for row in rows:
            counters = row.get("counters", {})
            gauges = row.get("gauges", {})
            writer.writerow(
                [row.get("arch", ""), row["bin"], row["t_start"], row["t_end"]]
                + [counters.get(key, 0) for key in sorted(counter_keys)]
                + [gauges.get(key, "") for key in sorted(gauge_keys)]
            )

    if hasattr(path_or_stream, "write"):
        _write(path_or_stream)
    else:
        with open(path_or_stream, "w", encoding="utf-8", newline="") as stream:
            _write(stream)


def timeline_counter_totals(
    rows: Iterable[Mapping],
    *,
    name: str | None = None,
    labels: Mapping[str, str] | None = None,
) -> dict[str, float]:
    """Re-sum per-bin counter deltas back into run totals.

    Optionally filtered to one metric ``name`` and/or a label subset
    (every given label must match).  Because deltas telescope, the result
    equals the instruments' final values -- the reconciliation tests lean
    on this to compare timeline output against ``SimMetrics``.
    """
    totals: dict[str, float] = {}
    for row in rows:
        for key, delta in row.get("counters", {}).items():
            if name is not None or labels:
                sample_name, sample_labels = parse_metric_key(key)
                if name is not None and sample_name != name:
                    continue
                if labels and any(
                    sample_labels.get(k) != v for k, v in labels.items()
                ):
                    continue
            totals[key] = totals.get(key, 0.0) + delta
    return totals


def sum_counters(
    rows: Iterable[Mapping], name: str, labels: Mapping[str, str] | None = None
) -> float:
    """Scalar convenience over :func:`timeline_counter_totals`."""
    return sum(timeline_counter_totals(rows, name=name, labels=labels).values())


def check_timeline_rows(rows: Sequence[Mapping]) -> list[str]:
    """Validate bin rows; returns a list of problems (empty = clean).

    Per architecture: bins must be contiguous from 0, ``t_start``/``t_end``
    must tile the clock without gaps, and counter deltas must be
    non-negative (counters never run backwards).
    """
    problems: list[str] = []
    expected: dict[str, int] = {}
    for row in rows:
        arch = str(row.get("arch", ""))
        index = expected.get(arch, 0)
        if row["bin"] != index:
            problems.append(f"{arch}: bin {row['bin']} out of order (expected {index})")
        expected[arch] = int(row["bin"]) + 1
        if row["t_end"] < row["t_start"]:
            problems.append(f"{arch}: bin {row['bin']} has t_end < t_start")
        for key, delta in row.get("counters", {}).items():
            if delta < 0:
                problems.append(
                    f"{arch}: bin {row['bin']} counter {key} went backwards ({delta})"
                )
    return problems
