"""The hop ledger: one request's response time as a list of typed steps.

Every architecture narrates each request as a :class:`Journey`: a local
lookup, maybe a hint-cache consultation, maybe a probe or a timeout, then
the hop that finally moved the data.  ``AccessResult.time_ms`` and
``fault_added_ms`` are **derived** from the ledger -- a left-to-right sum
over the steps' ``cost_ms`` / ``fault_ms`` -- so nothing downstream has to
trust per-architecture arithmetic, and any millisecond in any table can be
traced back to the hop that charged it.

Exact-sum invariant
-------------------
``result.time_ms == sum(step.cost_ms)`` and ``result.fault_added_ms ==
sum(step.fault_ms)`` hold *bit-for-bit* (left-to-right float accumulation,
the same order the steps were appended).  The regression suite relies on
this: ledger-derived times reproduce the pre-ledger golden snapshots
byte-identically, and the fault matrix asserts the invariant for every
architecture x fault-kind cell.

Step semantics
--------------
``LOCAL_LOOKUP``
    Satisfied from the client's own L1 proxy (or the walk's first stop).
``HINT_LOOKUP``
    Local, in-memory hint-cache consultation (microseconds; charged so the
    accounting is honest, per section 3.2.1).
``PEER_PROBE``
    A control round trip to a remote node -- an ICP sibling query, a CRISP
    directory query, or a wasted forward to a cache that no longer holds
    the object (``wasted=True`` marks the pathological case).
``LEVEL_TRAVERSAL``
    Store-and-forward walk through data-hierarchy levels.
``TIMEOUT``
    Waiting out a dead node's silence; always pure fault cost, and its
    presence is what makes ``AccessResult.timeout_fallback`` true.
``TRANSFER``
    The data-bearing cache-to-cache (or cache-to-client) hop of a hit.
``ORIGIN_FETCH``
    The origin-server fetch of a miss.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, NamedTuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.hierarchy.base import AccessResult
    from repro.netmodel.model import AccessPoint


class StepKind(enum.Enum):
    """What a journey step spent its milliseconds on."""

    LOCAL_LOOKUP = "local_lookup"
    HINT_LOOKUP = "hint_lookup"
    PEER_PROBE = "peer_probe"
    LEVEL_TRAVERSAL = "level_traversal"
    TIMEOUT = "timeout"
    TRANSFER = "transfer"
    ORIGIN_FETCH = "origin_fetch"


class Step(NamedTuple):
    """One ledger entry: where ``cost_ms`` of the response time went.

    Attributes:
        kind: The step's type (see module docstring for semantics).
        cost_ms: Milliseconds charged to the request by this step.
        target: Where the step went ("l1:3", "l2:0", "directory",
            "siblings", "origin", "" for purely local work).
        fault_ms: Portion of ``cost_ms`` attributable to injected faults
            (surcharges, timeouts).  Zero on every healthy step.
        wasted: True for control traffic that bought nothing -- a probe to
            a cache that no longer held the object, or to a corpse.
    """

    kind: StepKind
    cost_ms: float
    target: str = ""
    fault_ms: float = 0.0
    wasted: bool = False

    def to_payload(self) -> dict:
        """JSON-ready rendering (used by the JSONL sink)."""
        payload = {
            "kind": self.kind.value,
            "cost_ms": self.cost_ms,
            "target": self.target,
            "fault_ms": self.fault_ms,
        }
        if self.wasted:
            payload["wasted"] = True
        return payload


class Journey:
    """Mutable per-request ledger builder (one instance per request).

    Architectures append steps in the order the request experienced them
    and finish with :meth:`result`, which derives the
    :class:`~repro.hierarchy.base.AccessResult` from the ledger: time and
    fault totals are left-to-right sums over the steps, and
    ``timeout_fallback`` is the presence of a ``TIMEOUT`` step.  Flags the
    ledger cannot see structurally (a hint that *should* have existed, a
    nearer copy the hint missed, a pushed replica paying off) are recorded
    with the ``mark_*`` methods.
    """

    __slots__ = (
        "steps",
        "_false_positive",
        "_false_negative",
        "_suboptimal",
        "_push_hit",
        "_stale_forward",
    )

    def __init__(self) -> None:
        self.steps: list[Step] = []
        self._false_positive = False
        self._false_negative = False
        self._suboptimal = False
        self._push_hit = False
        self._stale_forward = False

    # ------------------------------------------------------------------
    # step appenders (hot path: keep them thin)
    # ------------------------------------------------------------------
    def local_lookup(self, cost_ms: float, target: str = "", fault_ms: float = 0.0) -> None:
        """The request was satisfied at (or walked through) its own proxy."""
        self.steps.append(Step(StepKind.LOCAL_LOOKUP, cost_ms, target, fault_ms))

    def hint_lookup(self, cost_ms: float, target: str = "") -> None:
        """Local hint-cache consultation (never a network operation)."""
        self.steps.append(Step(StepKind.HINT_LOOKUP, cost_ms, target))

    def peer_probe(
        self,
        cost_ms: float,
        target: str = "",
        fault_ms: float = 0.0,
        wasted: bool = False,
    ) -> None:
        """A control round trip to a remote node (query or wasted forward)."""
        self.steps.append(Step(StepKind.PEER_PROBE, cost_ms, target, fault_ms, wasted))

    def level_traversal(
        self, cost_ms: float, target: str = "", fault_ms: float = 0.0
    ) -> None:
        """Store-and-forward walk through the data hierarchy to a hit."""
        self.steps.append(Step(StepKind.LEVEL_TRAVERSAL, cost_ms, target, fault_ms))

    def timeout(self, cost_ms: float, target: str = "", stale: bool = False) -> None:
        """Waiting out a dead node (pure fault cost; implies a fallback).

        ``stale=True`` records that stale metadata *sent* the request to
        the corpse (a wasted forward), which surfaces as
        ``stale_hint_forward`` on the derived result.
        """
        self.steps.append(Step(StepKind.TIMEOUT, cost_ms, target, cost_ms, stale))
        if stale:
            self._stale_forward = True

    def transfer(self, cost_ms: float, target: str = "", fault_ms: float = 0.0) -> None:
        """The data-bearing hop of a hit (local, peer, or via-L1)."""
        self.steps.append(Step(StepKind.TRANSFER, cost_ms, target, fault_ms))

    def origin_fetch(self, cost_ms: float, fault_ms: float = 0.0) -> None:
        """The origin-server fetch of a miss."""
        self.steps.append(Step(StepKind.ORIGIN_FETCH, cost_ms, "origin", fault_ms))

    # ------------------------------------------------------------------
    # pathology marks (facts the step list cannot carry structurally)
    # ------------------------------------------------------------------
    def mark_false_positive(self) -> None:
        """A hint named a cache that no longer held the object."""
        self._false_positive = True

    def mark_false_negative(self) -> None:
        """No hint although a remote copy existed (priced as a plain miss)."""
        self._false_negative = True

    def mark_suboptimal(self) -> None:
        """The hint named a farther cache although a closer copy existed."""
        self._suboptimal = True

    def mark_push_hit(self) -> None:
        """The hit was served from a replica a push policy planted."""
        self._push_hit = True

    def mark_stale_forward(self) -> None:
        """Stale metadata forwarded the request to a dead/emptied node."""
        self._stale_forward = True

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    @property
    def total_ms(self) -> float:
        """Left-to-right sum of step costs (the exact-sum invariant)."""
        total = 0.0
        for step in self.steps:
            total += step.cost_ms
        return total

    @property
    def fault_added_ms(self) -> float:
        """Left-to-right sum of step fault surcharges."""
        total = 0.0
        for step in self.steps:
            total += step.fault_ms
        return total

    def result(
        self, point: "AccessPoint", *, hit: bool, remote_hit: bool = False
    ) -> "AccessResult":
        """Derive the :class:`~repro.hierarchy.base.AccessResult`.

        ``time_ms``/``fault_added_ms`` are the ledger sums;
        ``timeout_fallback`` is true iff a ``TIMEOUT`` step was charged;
        the remaining flags come from the ``mark_*`` calls.  The journey
        itself rides along on ``result.journey`` for sinks and metrics.
        """
        from repro.hierarchy.base import AccessResult

        total = 0.0
        fault = 0.0
        timeout_fallback = False
        for step in self.steps:
            total += step.cost_ms
            fault += step.fault_ms
            if step.kind is StepKind.TIMEOUT:
                timeout_fallback = True
        return AccessResult(
            point=point,
            time_ms=total,
            hit=hit,
            remote_hit=remote_hit,
            false_positive=self._false_positive,
            false_negative=self._false_negative,
            suboptimal_positive=self._suboptimal,
            push_hit=self._push_hit,
            timeout_fallback=timeout_fallback,
            stale_hint_forward=self._stale_forward,
            fault_added_ms=fault,
            journey=self,
        )

    def to_payload(self) -> list[dict]:
        """JSON-ready step list (used by the JSONL sink)."""
        return [step.to_payload() for step in self.steps]

    def __len__(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(
            f"{s.kind.value}({s.cost_ms:g}ms{'->' + s.target if s.target else ''})"
            for s in self.steps
        )
        return f"Journey[{inner}]"
