"""Structured per-request trace export for simulation runs.

A :class:`JourneySink` receives every *measured* request of a run together
with its ledger-derived :class:`~repro.hierarchy.base.AccessResult`.  Two
implementations cover the common needs:

* :class:`JsonlJourneySink` -- streams line-delimited JSON to a file
  through a bounded buffer, so a multi-million-request run exports traces
  with O(buffer) memory and batched writes;
* :class:`SamplingJourneySink` -- keeps the first N journeys in memory for
  interactive inspection and tests, plus a count of everything seen.

Sinks are pure observers: they never mutate the simulation, and
:func:`repro.sim.engine.run_simulation` touches them behind a single
``is not None`` check, so a run without a sink takes exactly the original
code path.  Sink output is also excluded from run identity -- the
content addresses in :mod:`repro.runner.fingerprint` are functions of
(profile, seed, fault plan) only, so attaching a sink can never perturb
trace-cache keys or golden snapshots.
"""

from __future__ import annotations

import json
import os
from typing import IO, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.hierarchy.base import AccessResult
    from repro.traces.records import Request


class JourneySink:
    """Interface: receives each measured request's journey as it completes.

    Subclasses implement :meth:`emit`; :meth:`close` flushes/releases any
    resources and is idempotent.  The base class is a no-op sink, usable
    as a null object.
    """

    def emit(self, seq: int, request: "Request", result: "AccessResult") -> None:
        """One measured request completed.

        Args:
            seq: 0-based index among the run's *measured* requests (warmup
                and skipped requests are not emitted), so ``seq`` lines up
                with ``SimMetrics.measured_requests``.
            request: The trace request that was served.
            result: Its ledger-derived access result (``result.journey``
                carries the typed steps).
        """

    def close(self) -> None:
        """Flush and release resources (idempotent)."""

    def __enter__(self) -> "JourneySink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class JsonlJourneySink(JourneySink):
    """Bounded-buffer JSONL writer: one JSON object per measured request.

    Each line is a self-describing record::

        {"seq": 17, "arch": "hints", "t": 123.4, "client": 3, "object": 9,
         "size": 2048, "point": "L2", "hit": true, "time_ms": 62.1,
         "fault_ms": 0.0, "steps": [{"kind": "hint_lookup", ...}, ...]}

    ``arch`` comes from :attr:`architecture`, which may be (re)assigned
    between runs so one file can hold several architectures' journeys
    (the CLI's ``decompose --journeys`` does exactly that).

    Args:
        path: Output file (parent directory must exist) or an open text
            stream.  Paths are opened lazily on the first emit, so
            constructing a sink that never fires creates no file.
        architecture: Label stamped on every record.
        buffer_lines: Lines buffered between writes (bounded memory).
    """

    def __init__(
        self,
        path: str | os.PathLike | IO[str],
        *,
        architecture: str = "",
        buffer_lines: int = 1024,
    ) -> None:
        if buffer_lines < 1:
            raise ValueError(f"buffer_lines must be positive, got {buffer_lines}")
        self.architecture = architecture
        self.buffer_lines = buffer_lines
        self.emitted = 0
        self._buffer: list[str] = []
        if isinstance(path, (str, os.PathLike)):
            self._path: str | None = os.fspath(path)
            self._stream: IO[str] | None = None
            self._owns_stream = True
        else:
            self._path = None
            self._stream = path
            self._owns_stream = False

    def emit(self, seq: int, request: "Request", result: "AccessResult") -> None:
        journey = result.journey
        record = {
            "seq": seq,
            "arch": self.architecture,
            "t": request.time,
            "client": request.client_id,
            "object": request.object_id,
            "size": request.size,
            "point": result.point.name,
            "hit": result.hit,
            "time_ms": result.time_ms,
            "fault_ms": result.fault_added_ms,
            "steps": journey.to_payload() if journey is not None else [],
        }
        self._buffer.append(json.dumps(record, separators=(",", ":")))
        self.emitted += 1
        if len(self._buffer) >= self.buffer_lines:
            self.flush()

    def flush(self) -> None:
        """Drain the line buffer to the underlying stream."""
        if not self._buffer:
            return
        if self._stream is None:
            self._stream = open(self._path, "w", encoding="utf-8")
        self._stream.write("\n".join(self._buffer) + "\n")
        self._buffer.clear()

    def close(self) -> None:
        self.flush()
        if self._stream is not None and self._owns_stream:
            self._stream.close()
            self._stream = None


class SamplingJourneySink(JourneySink):
    """In-memory sampler: keeps the first ``capacity`` journeys, counts all.

    Bounded by construction (``capacity=None`` keeps everything -- use
    only at test scale).  ``samples`` holds ``(seq, request, result)``
    triples in emit order.
    """

    def __init__(self, capacity: int | None = 1024) -> None:
        if capacity is not None and capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self.capacity = capacity
        self.seen = 0
        self.samples: list[tuple[int, "Request", "AccessResult"]] = []

    def emit(self, seq: int, request: "Request", result: "AccessResult") -> None:
        self.seen += 1
        if self.capacity is None or len(self.samples) < self.capacity:
            self.samples.append((seq, request, result))
