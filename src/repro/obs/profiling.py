"""Span-based host-time profiler for the whole simulation stack.

Where :mod:`repro.obs.telemetry` watches the *simulated* clock, this
module watches the *host* clock: where does wall-time go inside a run?
The answer is a tree of :class:`Span` values -- one per instrumented
region (trace generation, a simulation, a fastpath batch, a telemetry
bin close, a worker task) -- recorded by a :class:`SpanProfiler` that
call sites consult through a single module-level pointer.

Design rules (mirroring the telemetry/audit/journey observers):

* **Detached by default.**  ``active()`` returns ``None`` unless a
  profiler was attached; instrumented sites hoist that lookup out of
  their loops and pay one pointer comparison per region when detached.
  The ≤3% overhead contract is pinned by
  ``benchmarks/test_bench_profiling.py``.
* **Results never change.**  Profiling reads clocks and writes spans; it
  never touches simulation state, and fingerprints/golden snapshots
  never hash profiler output.  Runs are byte-identical attached or not.
* **Two clocks, one trace.**  Spans carry host time
  (``time.perf_counter`` seconds, same clock as
  :class:`repro.common.timing.Stopwatch`); :func:`chrome_trace` can lay
  an optional simulated-time track (from timeline rows) beside the host
  tracks so one Perfetto view shows both clocks.
* **Processes compose.**  A worker profiles into its own
  :class:`SpanProfiler`, ships a picklable :class:`ProfileShard` back,
  and the coordinator :meth:`~SpanProfiler.adopt`\\ s it -- re-based onto
  the coordinator's clock via each process's epoch offset, re-parented
  under the coordinator span, and exported under the worker's pid.

Memory mode (``SpanProfiler(memory=True)``) additionally samples
``tracemalloc`` around every span (net allocation and in-span peak,
nested spans folding their peaks into their parents) plus the process
peak RSS from ``resource.getrusage``; the numbers land in ``Span.attrs``
as ``mem_alloc_kb`` / ``mem_peak_kb`` / ``rss_peak_kb``.
"""

from __future__ import annotations

import os
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

__all__ = [
    "Span",
    "SpanProfiler",
    "ProfileShard",
    "active",
    "attach",
    "detach",
    "attached",
    "aggregate_spans",
    "span_structure",
    "chrome_trace",
    "check_chrome_trace",
    "format_profile_table",
    "write_chrome_trace",
]


class Span:
    """One profiled region: a name, a host-time interval, and children.

    ``start_s`` is in the recording process's ``time.perf_counter``
    timebase until the span crosses a process boundary, at which point
    :meth:`SpanProfiler.adopt` re-bases it onto the adopting profiler's
    timebase (using each side's epoch offset).  ``pid`` is ``None`` for
    spans recorded by the local profiler and the worker's pid for
    adopted spans, so the Chrome trace can keep one track per process.
    """

    __slots__ = ("name", "category", "start_s", "duration_s", "attrs", "children", "pid")

    def __init__(
        self,
        name: str,
        category: str = "host",
        start_s: float = 0.0,
        duration_s: float = 0.0,
        attrs: dict[str, Any] | None = None,
        children: list["Span"] | None = None,
        pid: int | None = None,
    ) -> None:
        self.name = name
        self.category = category
        self.start_s = start_s
        self.duration_s = duration_s
        self.attrs = attrs if attrs is not None else {}
        self.children = children if children is not None else []
        self.pid = pid

    def __getstate__(self):
        return (
            self.name,
            self.category,
            self.start_s,
            self.duration_s,
            self.attrs,
            self.children,
            self.pid,
        )

    def __setstate__(self, state) -> None:
        (
            self.name,
            self.category,
            self.start_s,
            self.duration_s,
            self.attrs,
            self.children,
            self.pid,
        ) = state

    @property
    def self_s(self) -> float:
        """Duration not covered by child spans (never below zero)."""
        return max(0.0, self.duration_s - sum(c.duration_s for c in self.children))

    def walk(self) -> Iterator["Span"]:
        """This span, then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration_s * 1e3:.3f}ms, "
            f"{len(self.children)} children)"
        )


@dataclass
class ProfileShard:
    """A worker's span forest, packaged to cross a process boundary.

    ``epoch_offset_s`` is the worker's ``time.time() - time.perf_counter()``
    at profiler construction; the coordinator uses the difference between
    the two processes' offsets to re-base worker spans onto its own
    ``perf_counter`` timebase (wall clocks are shared across processes on
    one host; ``perf_counter`` epochs are not).
    """

    pid: int
    epoch_offset_s: float
    spans: list[Span] = field(default_factory=list)


class _SpanContext:
    """Context manager returned by :meth:`SpanProfiler.span`."""

    __slots__ = ("_profiler", "_span")

    def __init__(self, profiler: "SpanProfiler", span: Span) -> None:
        self._profiler = profiler
        self._span = span

    def __enter__(self) -> Span:
        self._profiler._enter(self._span)
        return self._span

    def __exit__(self, *exc_info) -> None:
        self._profiler._exit(self._span)


class SpanProfiler:
    """Records a forest of :class:`Span` trees for one process.

    Args:
        memory: Sample ``tracemalloc`` (net allocation, in-span peak) and
            peak RSS around every span.  Starts ``tracemalloc`` if it is
            not already tracing (and stops it again on :meth:`close` only
            if this profiler started it).  Tracing roughly doubles
            allocation cost, so memory mode is opt-in.
    """

    def __init__(self, *, memory: bool = False) -> None:
        self.memory = bool(memory)
        self.roots: list[Span] = []
        self.pid = os.getpid()
        # Maps this process's perf_counter timebase to the (host-shared)
        # wall clock; used to align spans recorded in other processes.
        self.epoch_offset_s = time.time() - time.perf_counter()
        self._stack: list[Span] = []
        self._mem_stack: list[list[float]] = []  # [start_bytes, peak_bytes]
        self._owns_tracemalloc = False
        if self.memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True

    # -- recording ------------------------------------------------------
    def span(self, name: str, category: str = "host", **attrs: Any) -> _SpanContext:
        """Open a span: ``with profiler.span("simulate", arch=name) as sp:``."""
        return _SpanContext(self, Span(name, category, attrs=attrs))

    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def _enter(self, span: Span) -> None:
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(span)
        self._stack.append(span)
        if self.memory:
            current, peak = tracemalloc.get_traced_memory()
            if self._mem_stack:
                # The parent's open window ends here; fold its peak so the
                # child's reset cannot erase what the parent already saw.
                parent_window = self._mem_stack[-1]
                parent_window[1] = max(parent_window[1], float(peak))
            self._mem_stack.append([float(current), 0.0])
            tracemalloc.reset_peak()
        span.start_s = time.perf_counter()

    def _exit(self, span: Span) -> None:
        span.duration_s = time.perf_counter() - span.start_s
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        else:  # pragma: no cover - misuse guard
            raise RuntimeError(f"span {span.name!r} closed out of order")
        if self.memory:
            current, peak = tracemalloc.get_traced_memory()
            start_bytes, seen_peak = self._mem_stack.pop()
            peak_bytes = max(seen_peak, float(peak))
            span.attrs["mem_alloc_kb"] = round((current - start_bytes) / 1024.0, 3)
            span.attrs["mem_peak_kb"] = round(peak_bytes / 1024.0, 3)
            span.attrs["rss_peak_kb"] = _peak_rss_kb()
            if self._mem_stack:
                parent_window = self._mem_stack[-1]
                parent_window[1] = max(parent_window[1], peak_bytes)
            tracemalloc.reset_peak()

    def close(self) -> None:
        """Release resources (stops tracemalloc if this profiler started it)."""
        if self._owns_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._owns_tracemalloc = False

    # -- cross-process composition -------------------------------------
    def shard(self) -> ProfileShard:
        """Package this profiler's forest for shipping to a coordinator."""
        return ProfileShard(
            pid=self.pid, epoch_offset_s=self.epoch_offset_s, spans=list(self.roots)
        )

    def adopt(self, shard: ProfileShard, parent: Span | None = None) -> None:
        """Graft a worker's spans into this profiler's forest.

        Spans are re-based onto this profiler's ``perf_counter`` timebase
        and stamped with the worker's pid (every descendant, so the
        Chrome trace renders them on the worker's process track).  They
        attach under ``parent`` when given, else under the innermost open
        span, else as new roots.
        """
        delta = shard.epoch_offset_s - self.epoch_offset_s
        if parent is None:
            parent = self.current()
        target = parent.children if parent is not None else self.roots
        for root in shard.spans:
            for span in root.walk():
                span.start_s += delta
                if span.pid is None:
                    span.pid = shard.pid
            target.append(root)


# ----------------------------------------------------------------------
# module-level attachment (one pointer, mirroring the trace cache)
# ----------------------------------------------------------------------
_ACTIVE: SpanProfiler | None = None


def active() -> SpanProfiler | None:
    """The attached profiler, or ``None`` (the default: profiling off).

    A profiler inherited across ``fork`` (its origin pid differs from
    this process's) reads as ``None``: the forked copy's span forest can
    never ship back to the coordinator, so workers must build their own
    :class:`SpanProfiler` and return a :class:`ProfileShard` instead.
    """
    if _ACTIVE is not None and _ACTIVE.pid != os.getpid():
        return None
    return _ACTIVE


def attach(profiler: SpanProfiler | None) -> SpanProfiler | None:
    """Install ``profiler`` as the process-wide profiler; returns the previous."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = profiler
    return previous


def detach() -> SpanProfiler | None:
    """Remove the attached profiler (no-op when none); returns it."""
    return attach(None)


@contextmanager
def attached(profiler: SpanProfiler) -> Iterator[SpanProfiler]:
    """``with attached(SpanProfiler()) as prof:`` -- attach, then restore."""
    previous = attach(profiler)
    try:
        yield profiler
    finally:
        attach(previous)


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------
def aggregate_spans(roots: Sequence[Span]) -> list[dict]:
    """Fold a span forest into per-name self/cumulative time rows.

    Self time is a span's duration minus its children's durations, so
    summing the ``self_s`` column over the whole table reproduces the
    root durations exactly -- the reconciliation the ``profile`` verb's
    footer (and its test) checks.  Rows are sorted by descending self
    time.  Memory attributes, when present, aggregate as maxima.
    """
    rows: dict[str, dict] = {}
    for root in roots:
        for span in root.walk():
            row = rows.get(span.name)
            if row is None:
                row = rows[span.name] = {
                    "span": span.name,
                    "category": span.category,
                    "count": 0,
                    "cumulative_s": 0.0,
                    "self_s": 0.0,
                }
            row["count"] += 1
            row["cumulative_s"] += span.duration_s
            row["self_s"] += span.self_s
            for key in ("mem_peak_kb", "rss_peak_kb"):
                if key in span.attrs:
                    row[key] = max(row.get(key, 0.0), span.attrs[key])
    return sorted(rows.values(), key=lambda row: (-row["self_s"], row["span"]))


def span_structure(roots: Sequence[Span]) -> list:
    """The forest's shape with every timing (and pid) stripped.

    ``(name, category, sorted(children))`` nested tuples: what the
    jobs-invariance pin compares -- identical trees at ``jobs=1`` and
    ``jobs=4`` even though durations and pids necessarily differ.
    Sibling order is sorted because completion order is scheduling-
    dependent across workers.
    """

    def shape(span: Span):
        return (span.name, span.category, tuple(sorted(shape(c) for c in span.children)))

    return sorted(shape(root) for root in roots)


def format_profile_table(
    rows: Sequence[Mapping], *, total_s: float | None = None, title: str = "profile"
) -> str:
    """Render aggregation rows as the ``profile`` verb's table."""
    from repro.reporting.tables import format_table

    accounted = sum(row["self_s"] for row in rows)
    base = total_s if total_s else accounted
    rendered = []
    for row in rows:
        out = {
            "span": row["span"],
            "count": row["count"],
            "self": f"{row['self_s']:.3f}s",
            "self%": f"{100.0 * row['self_s'] / base:.1f}" if base else "0.0",
            "cumulative": f"{row['cumulative_s']:.3f}s",
        }
        if "mem_peak_kb" in row:
            out["peak_alloc"] = f"{row['mem_peak_kb']:.0f}kB"
        if "rss_peak_kb" in row:
            out["peak_rss"] = f"{row['rss_peak_kb']:.0f}kB"
        rendered.append(out)
    lines = [format_table(rendered, title=title)]
    if total_s is not None:
        lines.append(
            f"span-accounted {accounted:.3f}s of {total_s:.3f}s wall "
            f"({100.0 * accounted / total_s:.1f}%)"
            if total_s
            else "span-accounted 0.000s"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Chrome-trace / Perfetto export
# ----------------------------------------------------------------------
#: One simulated second maps to this many trace microseconds on the
#: simulated-time track (1 sim-hour == 3.6 trace-ms: a two-day trace
#: spans ~173 ms, a comfortable width next to second-scale host tracks).
SIM_TRACK_US_PER_S = 1.0

#: pid of the synthetic simulated-time track (real pids are never 0).
SIM_TRACK_PID = 0


def chrome_trace(
    profiler: SpanProfiler, *, sim_rows: Sequence[Mapping] | None = None
) -> dict:
    """Export the span forest as a Chrome-trace (Perfetto-loadable) dict.

    One process track per pid (the coordinator plus one per adopted
    worker shard), complete events (``ph: "X"``) with microsecond
    timestamps relative to the earliest span.  ``sim_rows`` (timeline
    rows from :class:`repro.obs.telemetry.Timeline`) adds a synthetic
    pid-0 process whose tracks are simulated-time bins per architecture
    -- the paper's two clocks side by side in one view.
    """
    events: list[dict] = []
    spans = [span for root in profiler.roots for span in root.walk()]
    t0 = min((span.start_s for span in spans), default=0.0)
    pids: dict[int, str] = {}
    for root in profiler.roots:
        for span in root.walk():
            pid = span.pid if span.pid is not None else profiler.pid
            pids.setdefault(
                pid,
                f"coordinator (pid {pid})"
                if pid == profiler.pid
                else f"worker (pid {pid})",
            )
            event = {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": round((span.start_s - t0) * 1e6, 3),
                "dur": round(span.duration_s * 1e6, 3),
                "pid": pid,
                "tid": 1,
            }
            if span.attrs:
                event["args"] = span.attrs
            events.append(event)
    if sim_rows:
        pids[SIM_TRACK_PID] = "simulated time"
        arch_tids: dict[str, int] = {}
        for row in sim_rows:
            arch = str(row.get("arch", ""))
            tid = arch_tids.setdefault(arch, len(arch_tids) + 1)
            events.append(
                {
                    "name": f"bin {row['bin']}",
                    "cat": "sim",
                    "ph": "X",
                    "ts": round(float(row["t_start"]) * SIM_TRACK_US_PER_S, 3),
                    "dur": round(
                        (float(row["t_end"]) - float(row["t_start"]))
                        * SIM_TRACK_US_PER_S,
                        3,
                    ),
                    "pid": SIM_TRACK_PID,
                    "tid": tid,
                    "args": {"t_start_s": row["t_start"], "t_end_s": row["t_end"]},
                }
            )
        for arch, tid in arch_tids.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": SIM_TRACK_PID,
                    "tid": tid,
                    "args": {"name": arch or "timeline"},
                }
            )
    for index, (pid, label) in enumerate(sorted(pids.items())):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        events.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": index},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    profiler: SpanProfiler, path: str, *, sim_rows: Sequence[Mapping] | None = None
) -> None:
    """Serialize :func:`chrome_trace` to ``path`` (open in ui.perfetto.dev)."""
    import json

    with open(path, "w", encoding="utf-8") as stream:
        json.dump(chrome_trace(profiler, sim_rows=sim_rows), stream, sort_keys=True)
        stream.write("\n")


def check_chrome_trace(payload: Mapping) -> list[str]:
    """Validate a Chrome-trace dict; returns problems (empty = clean).

    Checks the shape ``chrome://tracing`` / Perfetto requires -- a
    ``traceEvents`` list whose complete events carry ``name``/``ph``/
    ``pid``/``tid`` plus non-negative numeric ``ts``/``dur`` -- and that
    events on one ``(pid, tid)`` track nest properly (a later span either
    starts after the previous one ends or lies entirely within it).
    """
    problems: list[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    tracks: dict[tuple, list[tuple[float, float, str]]] = {}
    for index, event in enumerate(events):
        if not isinstance(event, Mapping):
            problems.append(f"event {index} is not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                problems.append(f"event {index} missing {key!r}")
        if event.get("ph") != "X":
            continue
        ts, dur = event.get("ts"), event.get("dur")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {index} ({event.get('name')}) bad ts {ts!r}")
            continue
        if not isinstance(dur, (int, float)) or dur < 0:
            problems.append(f"event {index} ({event.get('name')}) bad dur {dur!r}")
            continue
        tracks.setdefault((event.get("pid"), event.get("tid")), []).append(
            (float(ts), float(dur), str(event.get("name")))
        )
    epsilon = 0.5  # µs: rounding slack from the 3-decimal export
    for (pid, tid), items in tracks.items():
        items.sort()
        stack: list[tuple[float, str]] = []  # (end, name)
        for ts, dur, name in items:
            while stack and stack[-1][0] <= ts + epsilon:
                stack.pop()
            if stack and ts + dur > stack[-1][0] + epsilon:
                problems.append(
                    f"track ({pid}, {tid}): span {name!r} at {ts} overlaps "
                    f"{stack[-1][1]!r} without nesting"
                )
            stack.append((ts + dur, name))
    return problems


def _peak_rss_kb() -> float:
    """Process peak RSS in kB (``ru_maxrss`` is kB on Linux, bytes on macOS)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    import sys

    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return peak / 1024.0
    return float(peak)
