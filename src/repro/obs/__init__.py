"""Observability: typed per-request latency decomposition and trace export.

The paper's core argument (sections 2-3) is a *decomposition* of response
time into hops -- local hit vs. remote probe vs. hierarchy traversal vs.
origin fetch.  This package makes that decomposition a first-class value:

* :class:`~repro.obs.journey.Journey` -- the hop ledger every architecture
  builds per request from typed :class:`~repro.obs.journey.Step` entries;
  ``AccessResult.time_ms`` and ``fault_added_ms`` are *sums over the
  ledger*, never hand-assembled arithmetic.
* :class:`~repro.obs.sink.JourneySink` -- optional per-request trace
  export: a bounded-buffer JSONL writer
  (:class:`~repro.obs.sink.JsonlJourneySink`) and an in-memory sampler
  (:class:`~repro.obs.sink.SamplingJourneySink`), zero-cost when absent.
* :mod:`~repro.obs.telemetry` -- time-series telemetry: a typed
  :class:`~repro.obs.telemetry.MetricsRegistry` of Counter/Gauge/Histogram
  instruments, a :class:`~repro.obs.telemetry.Timeline` sampler that
  snapshots them into fixed-width simulated-time bins, and the
  :class:`~repro.obs.telemetry.RunTelemetry` bundle ``run_simulation``
  drives; :mod:`~repro.obs.export` renders the registry as a Prometheus
  text exposition and the bins as canonical JSONL/CSV rows.

Downstream, :class:`repro.sim.metrics.SimMetrics` aggregates the ledgers
per step kind and :func:`repro.reporting.tables.format_decomposition_table`
renders where every millisecond went;
:mod:`repro.reporting.timeline` charts the bins as hit-rate-vs-time and
occupancy-vs-time series.
"""

from repro.obs.export import (
    check_prometheus_text,
    check_timeline_rows,
    parse_prometheus_text,
    prometheus_text,
    read_timeline_jsonl,
    sum_counters,
    timeline_counter_totals,
    write_timeline_csv,
    write_timeline_jsonl,
)
from repro.obs.journey import Journey, Step, StepKind
from repro.obs.profiling import (
    ProfileShard,
    Span,
    SpanProfiler,
    aggregate_spans,
    check_chrome_trace,
    chrome_trace,
    format_profile_table,
    span_structure,
    write_chrome_trace,
)
from repro.obs.sink import JourneySink, JsonlJourneySink, SamplingJourneySink
from repro.obs.telemetry import (
    ConvergenceReport,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RunTelemetry,
    Timeline,
    bind_architecture,
    bind_injector,
    parse_metric_key,
    render_metric_key,
    warmup_convergence,
)

__all__ = [
    "ConvergenceReport",
    "Counter",
    "Gauge",
    "Histogram",
    "Journey",
    "JourneySink",
    "JsonlJourneySink",
    "MetricsRegistry",
    "ProfileShard",
    "RunTelemetry",
    "SamplingJourneySink",
    "Span",
    "SpanProfiler",
    "Step",
    "StepKind",
    "Timeline",
    "aggregate_spans",
    "bind_architecture",
    "bind_injector",
    "check_chrome_trace",
    "check_prometheus_text",
    "check_timeline_rows",
    "chrome_trace",
    "format_profile_table",
    "parse_metric_key",
    "parse_prometheus_text",
    "prometheus_text",
    "read_timeline_jsonl",
    "render_metric_key",
    "span_structure",
    "sum_counters",
    "timeline_counter_totals",
    "warmup_convergence",
    "write_chrome_trace",
    "write_timeline_csv",
    "write_timeline_jsonl",
]
