"""Observability: typed per-request latency decomposition and trace export.

The paper's core argument (sections 2-3) is a *decomposition* of response
time into hops -- local hit vs. remote probe vs. hierarchy traversal vs.
origin fetch.  This package makes that decomposition a first-class value:

* :class:`~repro.obs.journey.Journey` -- the hop ledger every architecture
  builds per request from typed :class:`~repro.obs.journey.Step` entries;
  ``AccessResult.time_ms`` and ``fault_added_ms`` are *sums over the
  ledger*, never hand-assembled arithmetic.
* :class:`~repro.obs.sink.JourneySink` -- optional per-request trace
  export: a bounded-buffer JSONL writer
  (:class:`~repro.obs.sink.JsonlJourneySink`) and an in-memory sampler
  (:class:`~repro.obs.sink.SamplingJourneySink`), zero-cost when absent.

Downstream, :class:`repro.sim.metrics.SimMetrics` aggregates the ledgers
per step kind and :func:`repro.reporting.tables.format_decomposition_table`
renders where every millisecond went.
"""

from repro.obs.journey import Journey, Step, StepKind
from repro.obs.sink import JourneySink, JsonlJourneySink, SamplingJourneySink

__all__ = [
    "Journey",
    "JourneySink",
    "JsonlJourneySink",
    "SamplingJourneySink",
    "Step",
    "StepKind",
]
