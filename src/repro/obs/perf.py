"""Bench-history regression gate (the CI perf step).

Usage::

    python -m repro.obs.perf                       # check BENCH_*.json + history in cwd
    python -m repro.obs.perf check --bench BENCH_engine.json --max-regression-pct 25
    python -m repro.obs.perf append BENCH_profiling.json --recorded 2026-08-08T00:00:00Z

``check`` (the default) schema-validates every ``BENCH_*.json``,
re-applies each bench's pinned floors to the committed numbers, and
regression-checks the ``BENCH_HISTORY.jsonl`` trajectory (latest
headline vs best earlier entry, ``--max-regression-pct`` margin).  Exits
0 when clean, 1 with one problem per line otherwise.  ``append``
validates a bench file and appends its history row.
"""

from __future__ import annotations

import argparse
import glob
import os
import sys
from datetime import datetime, timezone


def _default_bench_files(root: str) -> list[str]:
    return sorted(glob.glob(os.path.join(root, "BENCH_*.json")))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-obs-perf",
        description="Validate BENCH pins and gate the bench-history trajectory.",
    )
    subparsers = parser.add_subparsers(dest="command")
    check = subparsers.add_parser("check", help="validate pins + history (default)")
    check.add_argument(
        "--bench",
        action="append",
        default=None,
        metavar="FILE",
        help="BENCH_<kind>.json to validate (repeatable; default: BENCH_*.json in cwd)",
    )
    check.add_argument(
        "--history",
        default=None,
        metavar="FILE",
        help="history JSONL (default: BENCH_HISTORY.jsonl in cwd when present)",
    )
    check.add_argument(
        "--max-regression-pct",
        type=float,
        default=25.0,
        help="allowed headline regression vs the best earlier entry "
        "(relative %% for speedups, absolute points for overheads; default 25)",
    )
    append = subparsers.add_parser("append", help="append a bench run to the history")
    append.add_argument("bench", metavar="FILE", help="BENCH_<kind>.json to record")
    append.add_argument(
        "--history", default="BENCH_HISTORY.jsonl", metavar="FILE",
        help="history JSONL to append to (default: BENCH_HISTORY.jsonl)",
    )
    append.add_argument(
        "--recorded",
        default=None,
        metavar="ISO8601",
        help="timestamp for the row (default: now, UTC)",
    )
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if not argv or argv[0] not in {"check", "append", "-h", "--help"}:
        argv = ["check", *argv]  # bare flags mean the default command
    args = parser.parse_args(argv)

    from repro.obs import perfhistory

    if args.command == "append":
        recorded = args.recorded or datetime.now(timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        )
        try:
            row = perfhistory.append_history(
                args.history, args.bench, recorded=recorded
            )
        except (ValueError, OSError) as exc:
            print(str(exc), file=sys.stderr)
            return 1
        print(
            f"{args.history}: recorded {row['bench']} headline {row['headline']:g} "
            f"at {row['recorded']}"
        )
        return 0

    bench_files = args.bench if args.bench else _default_bench_files(os.getcwd())
    history_path = args.history
    if history_path is None:
        candidate = os.path.join(os.getcwd(), "BENCH_HISTORY.jsonl")
        history_path = candidate if os.path.exists(candidate) else None

    problems: list[str] = []
    if not bench_files:
        problems.append("no BENCH_*.json files found (and none given via --bench)")
    for path in bench_files:
        try:
            kind, payload = perfhistory.load_bench(path)
        except (ValueError, OSError) as exc:
            problems.append(str(exc))
            continue
        floor_issues = perfhistory.floor_problems(kind, payload)
        problems.extend(f"{path}: {issue}" for issue in floor_issues)
        if not floor_issues:
            print(
                f"{path}: {kind} pins ok "
                f"(headline {perfhistory.headline(kind, payload):g})"
            )
    if history_path is not None:
        try:
            rows = perfhistory.read_history(history_path)
        except (ValueError, OSError) as exc:
            problems.append(str(exc))
        else:
            issues = perfhistory.history_problems(
                rows, max_regression_pct=args.max_regression_pct
            )
            problems.extend(f"{history_path}: {issue}" for issue in issues)
            if not issues:
                print(
                    f"{history_path}: {len(rows)} entries, trajectory ok "
                    f"(margin {args.max_regression_pct:g}%)"
                )
    for problem in problems:
        print(problem, file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
