"""Artifact gate for telemetry exports (the CI smoke job's check step).

Usage::

    python -m repro.obs.check --prometheus metrics.prom --timeline timeline.jsonl

Exits 0 when every given artifact is clean, 1 with one problem per line
otherwise.  The checks are the library validators --
:func:`repro.obs.export.check_prometheus_text` (parseable exposition, no
duplicate metric/label pairs, monotone counters, cumulative histogram
buckets) and :func:`repro.obs.export.check_timeline_rows` (contiguous
bins, non-negative counter deltas) -- so CI and tests enforce the same
contract.
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-obs-check", description="Validate exported telemetry artifacts."
    )
    parser.add_argument(
        "--prometheus", default=None, metavar="FILE", help="exposition file to validate"
    )
    parser.add_argument(
        "--timeline", default=None, metavar="FILE", help="timeline JSONL to validate"
    )
    parser.add_argument(
        "--chrome",
        default=None,
        metavar="FILE",
        help="Chrome-trace/Perfetto JSON (profile verb output) to validate",
    )
    args = parser.parse_args(argv)
    if args.prometheus is None and args.timeline is None and args.chrome is None:
        parser.error("nothing to check; give --prometheus, --timeline, and/or --chrome")

    from repro.obs.export import (
        check_prometheus_text,
        check_timeline_rows,
        parse_prometheus_text,
        read_timeline_jsonl,
    )

    problems: list[str] = []
    if args.prometheus is not None:
        with open(args.prometheus, encoding="utf-8") as stream:
            text = stream.read()
        for problem in check_prometheus_text(text):
            problems.append(f"{args.prometheus}: {problem}")
        if not problems:
            print(f"{args.prometheus}: {len(parse_prometheus_text(text))} samples ok")
    if args.timeline is not None:
        rows = read_timeline_jsonl(args.timeline)
        for problem in check_timeline_rows(rows):
            problems.append(f"{args.timeline}: {problem}")
        if not any(p.startswith(args.timeline) for p in problems):
            print(f"{args.timeline}: {len(rows)} bin rows ok")
    if args.chrome is not None:
        import json

        from repro.obs.profiling import check_chrome_trace

        try:
            with open(args.chrome, encoding="utf-8") as stream:
                payload = json.load(stream)
        except (OSError, json.JSONDecodeError) as exc:
            payload = None
            problems.append(f"{args.chrome}: unreadable ({exc})")
        if payload is not None:
            for problem in check_chrome_trace(payload):
                problems.append(f"{args.chrome}: {problem}")
        if not any(p.startswith(args.chrome) for p in problems):
            print(
                f"{args.chrome}: {len(payload.get('traceEvents', []))} trace events ok"
            )
    for problem in problems:
        print(problem, file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
