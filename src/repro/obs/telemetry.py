"""Time-series telemetry: typed instruments sampled over simulated time.

The run-level scalars in :class:`repro.sim.metrics.SimMetrics` answer
"what happened over the measured window"; this module answers "*when* did
it happen".  Three pieces compose:

* :class:`MetricsRegistry` -- a typed registry of named, labelled
  instruments (:class:`Counter` / :class:`Gauge` / :class:`Histogram`).
  Instruments are either *stored* (incremented on the request path) or
  *callback-backed* (a ``fn`` read at snapshot time, e.g. a cache's
  ``occupancy_bytes``), so instrumenting a layer costs nothing until someone
  actually samples it.
* :class:`Timeline` -- snapshots every instrument into fixed-width bins
  of **simulated** time (``bin_s``, default one hour).  Each closed bin
  records counter *deltas* and gauge *values*; deltas telescope, so the
  per-bin rows re-sum exactly to the run totals.
* :class:`RunTelemetry` -- the engine-facing bundle: one per
  :func:`repro.sim.engine.run_simulation` call.  It registers the
  request-path counters (labelled ``window=warmup|measured`` so the
  measured slice reconciles with ``SimMetrics`` while warmup bins feed
  the convergence check), binds the architecture's caches and hint
  directory via :func:`bind_architecture`, and mirrors the fault
  injector's node states as up/down gauges via :func:`bind_injector`.

Telemetry is strictly opt-in: without a :class:`RunTelemetry` the engine
pays one pointer check per site, and nothing here ever feeds the content
addresses in :mod:`repro.runner.fingerprint` -- telemetry is output
*about* a run, never input *to* one.
"""

from __future__ import annotations

import bisect
import math
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Mapping, Sequence

from repro.netmodel.model import AccessPoint
from repro.obs import profiling

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.faults.injector import FaultInjector
    from repro.hierarchy.base import AccessResult, Architecture
    from repro.traces.records import Request

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default response-time buckets (ms), chosen to straddle the testbed's
#: charge points (local hit ~2 ms, probes ~10s of ms, origin ~1-2 s).
DEFAULT_BUCKETS_MS = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
    200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0,
)


def _escape_label_value(value: str) -> str:
    """Escape per the Prometheus exposition format: ``\\``, ``"``, newline."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


_UNESCAPE_RE = re.compile(r"\\(.)")


def _unescape_label_value(raw: str) -> str:
    # Single pass: sequential str.replace calls corrupt values where one
    # replacement manufactures another's pattern (a literal backslash
    # followed by ``n`` escapes to ``\\n``, which ``.replace("\\n", ...)``
    # would then wrongly turn into a newline).
    return _UNESCAPE_RE.sub(lambda m: "\n" if m.group(1) == "n" else m.group(1), raw)


def render_metric_key(name: str, labels: Mapping[str, str]) -> str:
    """Canonical ``name{k="v",...}`` selector (labels sorted by key).

    This one renderer is shared by the Prometheus exposition and the
    timeline rows, so a JSONL consumer can match row keys against scrape
    selectors verbatim.
    """
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{_escape_label_value(str(labels[key]))}"' for key in sorted(labels)
    )
    return f"{name}{{{inner}}}"


def parse_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`render_metric_key`; raises ``ValueError`` on bad input."""
    brace = key.find("{")
    if brace == -1:
        if not _NAME_RE.match(key):
            raise ValueError(f"bad metric name {key!r}")
        return key, {}
    name, rest = key[:brace], key[brace:]
    if not _NAME_RE.match(name) or not rest.endswith("}"):
        raise ValueError(f"bad metric key {key!r}")
    labels: dict[str, str] = {}
    body = rest[1:-1]
    position = 0
    pattern = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"(,|$)')
    while position < len(body):
        match = pattern.match(body, position)
        if match is None:
            raise ValueError(f"bad label block in {key!r}")
        labels[match.group(1)] = _unescape_label_value(match.group(2))
        position = match.end()
    return name, labels


class Instrument:
    """Base of all instruments: a name, a label set, and a canonical key."""

    kind = "abstract"

    def __init__(self, name: str, labels: Mapping[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.key = render_metric_key(name, self.labels)


class Counter(Instrument):
    """Monotonically non-decreasing count.

    Either *stored* (use :meth:`inc`) or *callback-backed* (constructed
    with ``fn``; the source -- e.g. ``cache.insertions`` -- must itself be
    monotone).  A callback-backed counter rejects :meth:`inc`.
    """

    kind = "counter"

    def __init__(
        self,
        name: str,
        labels: Mapping[str, str],
        fn: Callable[[], float] | None = None,
    ) -> None:
        super().__init__(name, labels)
        self._value = 0.0
        self._fn = fn

    def inc(self, amount: float = 1.0) -> None:
        if self._fn is not None:
            raise RuntimeError(f"counter {self.key} is callback-backed; cannot inc()")
        if amount < 0:
            raise ValueError(f"counter increments must be non-negative, got {amount}")
        self._value += amount

    def bind(self, fn: Callable[[], float]) -> None:
        """(Re)attach the value callback -- used when a fresh architecture
        re-registers under an existing instrument key."""
        self._fn = fn

    @property
    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value


class Gauge(Instrument):
    """Point-in-time value (occupancy bytes, node up/down, load factor)."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        labels: Mapping[str, str],
        fn: Callable[[], float] | None = None,
    ) -> None:
        super().__init__(name, labels)
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise RuntimeError(f"gauge {self.key} is callback-backed; cannot set()")
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.set(self._value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self._value - amount)

    def bind(self, fn: Callable[[], float]) -> None:
        self._fn = fn

    @property
    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value


class Histogram(Instrument):
    """Fixed-bucket distribution with Prometheus cumulative semantics.

    Exposes ``sum``/``count`` (both monotone, so the timeline treats them
    as counters) and per-bucket cumulative counts for the text exposition.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Mapping[str, str],
        buckets: Sequence[float] = DEFAULT_BUCKETS_MS,
    ) -> None:
        super().__init__(name, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate histogram bounds in {bounds}")
        self.bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram observations must be non-negative, got {value}")
        self._bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(le_bound, cumulative_count)`` pairs ending with ``(inf, count)``."""
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, self._bucket_counts):
            running += bucket
            pairs.append((bound, running))
        pairs.append((math.inf, self.count))
        return pairs


@dataclass
class _Family:
    """One metric name: its kind, label schema, help text, and children."""

    name: str
    kind: str
    label_keys: tuple[str, ...]
    help: str
    instruments: dict[tuple[str, ...], Instrument] = field(default_factory=dict)


class MetricsRegistry:
    """Typed, labelled instrument registry with get-or-create semantics.

    Invariants (enforced, pinned by tests):

    * a metric name has exactly one kind -- re-registering ``foo`` as a
      gauge after a counter raises ``TypeError``;
    * a metric name has exactly one label-key schema -- children may vary
      label *values* but never label *keys*;
    * names and label keys must be Prometheus-legal identifiers;
    * the same ``(name, label values)`` always returns the same instrument.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        #: Bumped on every new family/child; snapshot plans key off it.
        self._generation = 0
        self._plans: dict[str | None, tuple] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def counter(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        *,
        help: str = "",
        fn: Callable[[], float] | None = None,
    ) -> Counter:
        """Get or create the counter child for ``(name, labels)``."""
        instrument = self._get_or_create(name, "counter", labels, help, fn=fn)
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        *,
        help: str = "",
        fn: Callable[[], float] | None = None,
    ) -> Gauge:
        """Get or create the gauge child for ``(name, labels)``."""
        instrument = self._get_or_create(name, "gauge", labels, help, fn=fn)
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        *,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS_MS,
    ) -> Histogram:
        """Get or create the histogram child for ``(name, labels)``."""
        instrument = self._get_or_create(name, "histogram", labels, help, buckets=buckets)
        assert isinstance(instrument, Histogram)
        return instrument

    def _get_or_create(
        self,
        name: str,
        kind: str,
        labels: Mapping[str, str] | None,
        help: str,
        fn: Callable[[], float] | None = None,
        buckets: Sequence[float] | None = None,
    ) -> Instrument:
        if not _NAME_RE.match(name):
            raise ValueError(f"bad metric name {name!r}")
        labels = {str(k): str(v) for k, v in (labels or {}).items()}
        for key in labels:
            if not _LABEL_RE.match(key):
                raise ValueError(f"bad label key {key!r} on metric {name!r}")
        label_keys = tuple(sorted(labels))
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _Family(
                name=name, kind=kind, label_keys=label_keys, help=help
            )
        else:
            if family.kind != kind:
                raise TypeError(
                    f"metric {name!r} is a {family.kind}, cannot re-register as {kind}"
                )
            if family.label_keys != label_keys:
                raise ValueError(
                    f"metric {name!r} uses label keys {family.label_keys}, "
                    f"got {label_keys}"
                )
            if help and not family.help:
                family.help = help
        child_key = tuple(labels[k] for k in label_keys)
        instrument = family.instruments.get(child_key)
        if instrument is None:
            if kind == "counter":
                instrument = Counter(name, labels, fn=fn)
            elif kind == "gauge":
                instrument = Gauge(name, labels, fn=fn)
            else:
                instrument = Histogram(name, labels, buckets=buckets or DEFAULT_BUCKETS_MS)
            family.instruments[child_key] = instrument
            self._generation += 1
        elif fn is not None:
            # A fresh run re-registering the same key rebinds the callback
            # to the new live object (e.g. a rebuilt cache).
            instrument.bind(fn)  # type: ignore[union-attr]
        return instrument

    # ------------------------------------------------------------------
    # iteration / snapshots
    # ------------------------------------------------------------------
    def families(self) -> Iterator[_Family]:
        """Families sorted by metric name (exposition order)."""
        for name in sorted(self._families):
            yield self._families[name]

    def instruments(self) -> Iterator[Instrument]:
        """Every instrument, sorted by name then label values."""
        for family in self.families():
            for child_key in sorted(family.instruments):
                yield family.instruments[child_key]

    def _snapshot_plan(self, arch: str | None) -> tuple:
        """Memoized ``(generation, counter_entries, gauge_entries)`` for
        one ``arch`` filter.

        A timeline close used to re-sort every family and child, re-walk
        three generator layers, and re-render each histogram's series
        keys -- per bin, so over hundreds of bins that walk dominated the
        cost of enabled telemetry.  All of it is invariant between
        registrations, so the plan caches the sorted order, the kind
        split, and the pre-rendered keys, invalidated by the registration
        generation.  Entries hold the *instrument* (never its callback):
        ``bind()`` rebinds in place, so value reads stay live.
        """
        plan = self._plans.get(arch)
        if plan is not None and plan[0] == self._generation:
            return plan
        counter_entries: list[tuple] = []
        gauge_entries: list[tuple[str, Instrument]] = []
        for instrument in self.instruments():
            if arch is not None and instrument.labels.get("arch", arch) != arch:
                continue
            if isinstance(instrument, Counter):
                counter_entries.append((instrument.key, None, instrument))
            elif isinstance(instrument, Histogram):
                counter_entries.append(
                    (
                        render_metric_key(instrument.name + "_sum", instrument.labels),
                        render_metric_key(
                            instrument.name + "_count", instrument.labels
                        ),
                        instrument,
                    )
                )
            elif isinstance(instrument, Gauge):
                gauge_entries.append((instrument.key, instrument))
        plan = (self._generation, tuple(counter_entries), tuple(gauge_entries))
        self._plans[arch] = plan
        return plan

    def counter_items(self, *, arch: str | None = None) -> Iterator[tuple[str, float]]:
        """``(key, value)`` for everything monotone: counters plus each
        histogram's ``_sum``/``_count`` series.

        ``arch`` filters to instruments whose ``arch`` label matches (or
        that carry no ``arch`` label at all) -- a shared registry can hold
        several runs' instruments without cross-talk in their timelines.
        """
        for key, count_key, instrument in self._snapshot_plan(arch)[1]:
            if count_key is None:
                yield key, instrument.value
            else:
                yield key, instrument.sum
                yield count_key, float(instrument.count)

    def gauge_items(self, *, arch: str | None = None) -> Iterator[tuple[str, float]]:
        """``(key, value)`` for every gauge (same ``arch`` filter rule)."""
        for key, instrument in self._snapshot_plan(arch)[2]:
            yield key, instrument.value


class Timeline:
    """Snapshots a registry into fixed-width simulated-time bins.

    Bin ``i`` covers ``[i*bin_s, (i+1)*bin_s)``; a request exactly on a
    bin edge therefore belongs to the *later* bin (and closes the earlier
    one first).  Rows are emitted for every bin in ``[0, end_time]``,
    including empty ones, so the series has no gaps; the final row may be
    partial (``t_end == end_time``) when the trace does not end on an
    edge.  Counter values are recorded as deltas -- they telescope, so
    summing any column over all rows reproduces the run total exactly.
    """

    def __init__(
        self, registry: MetricsRegistry, *, bin_s: float = 3600.0, arch: str | None = None
    ) -> None:
        if bin_s <= 0:
            raise ValueError(f"bin width must be positive, got {bin_s}")
        self.registry = registry
        self.bin_s = float(bin_s)
        self.arch = arch
        self.rows: list[dict] = []
        self._bin = 0
        self._last: dict[str, float] = {}
        self._close_hooks: list[Callable[[float], None]] = []
        self._finished = False

    def add_close_hook(self, hook: Callable[[float], None]) -> None:
        """Call ``hook(t_end)`` just before each bin's snapshot.

        :class:`RunTelemetry` registers the fault injector's ``advance``
        here, so up/down gauges reflect the plan's state exactly at the
        bin boundary (``advance`` is monotone and idempotent, and the
        boundary never exceeds the next request's time).
        """
        self._close_hooks.append(hook)

    def advance(self, t: float) -> None:
        """Clock moved to ``t``: close every bin that ended at or before it."""
        target = int(t // self.bin_s)
        while self._bin < target:
            self._close((self._bin + 1) * self.bin_s)

    def finish(self, end_time: float) -> None:
        """Close out the run at ``end_time`` (idempotent).

        Emits all remaining bins through ``end_time``; the last row's
        ``t_end`` is ``end_time`` itself when the run ends mid-bin.
        """
        if self._finished:
            return
        target = int(end_time // self.bin_s)
        if end_time > 0 and end_time == target * self.bin_s:
            target -= 1  # ending exactly on an edge: the last bin is full
        target = max(target, self._bin)
        while self._bin < target:
            self._close((self._bin + 1) * self.bin_s)
        self._close(max(end_time, self._bin * self.bin_s))
        self._finished = True

    def _close(self, t_end: float) -> None:
        # Host-profiling hook: bin closes are the telemetry hot spot (one
        # registry snapshot each), so they get their own span when a
        # profiler is attached -- one pointer check per *bin* otherwise.
        profiler = profiling.active()
        if profiler is not None:
            with profiler.span(
                "telemetry_bin_close",
                category="telemetry",
                bin=self._bin,
                arch=self.arch or "",
            ):
                self._close_impl(t_end)
            return
        self._close_impl(t_end)

    def _close_impl(self, t_end: float) -> None:
        for hook in self._close_hooks:
            hook(t_end)
        counters: dict[str, float] = {}
        for key, value in self.registry.counter_items(arch=self.arch):
            delta = value - self._last.get(key, 0.0)
            self._last[key] = value
            if delta != 0.0:
                counters[key] = delta
        gauges = dict(self.registry.gauge_items(arch=self.arch))
        self.rows.append(
            {
                "arch": self.arch or "",
                "bin": self._bin,
                "t_start": self._bin * self.bin_s,
                "t_end": t_end,
                "counters": counters,
                "gauges": gauges,
            }
        )
        self._bin += 1


class _WindowChannel:
    """One window's ("warmup"/"measured") instruments, pre-resolved.

    The request path used to pay a tuple construction + dict hash per
    instrument per request (eight of them).  Resolving each call site's
    instrument once at ``begin`` and holding it in a slot (or a list
    indexed by the AccessPoint int) turns ``observe`` into direct
    attribute access -- the memoized-lookup satellite of the fastpath PR.
    """

    __slots__ = (
        "requests",
        "bytes",
        "response",
        "intercache",
        "false_positive",
        "false_negative",
        "suboptimal_positive",
        "push_hit",
        "timeout_fallback",
        "stale_hint_forward",
        "fault_ms",
    )

    def __init__(self, registry: MetricsRegistry, arch: str, window: str) -> None:
        # Index 0 is unused: AccessPoint ints start at 1.
        self.requests: list[Counter | None] = [None] * (len(AccessPoint) + 1)
        self.bytes: list[Counter | None] = [None] * (len(AccessPoint) + 1)
        for point in AccessPoint:
            labels = {"arch": arch, "point": point.name, "window": window}
            self.requests[int(point)] = registry.counter(
                "repro_requests_total",
                labels,
                help="Requests satisfied per access point",
            )
            self.bytes[int(point)] = registry.counter(
                "repro_bytes_total",
                labels,
                help="Bytes served per access point",
            )
        window_labels = {"arch": arch, "window": window}
        self.response = registry.histogram(
            "repro_response_time_ms",
            window_labels,
            help="Per-request response time distribution",
        )
        self.intercache = registry.counter(
            "repro_intercache_bytes_total",
            window_labels,
            help="Bytes moved cache-to-cache (remote hits)",
        )
        for flag in (
            "false_positive",
            "false_negative",
            "suboptimal_positive",
            "push_hit",
            "timeout_fallback",
            "stale_hint_forward",
        ):
            setattr(
                self,
                flag,
                registry.counter(
                    "repro_result_flags_total",
                    {"arch": arch, "flag": flag, "window": window},
                    help="Per-request result pathology flags",
                ),
            )
        self.fault_ms = registry.counter(
            "repro_fault_added_ms_total",
            window_labels,
            help="Response-time milliseconds attributable to faults",
        )


class RunTelemetry:
    """Everything the engine needs to narrate one run over time.

    Construct one per :func:`repro.sim.engine.run_simulation` call (it
    refuses to be reused) and pass it as ``telemetry=``.  Several
    ``RunTelemetry`` objects may share one :class:`MetricsRegistry` -- the
    constant ``arch`` label keeps their instruments (and their timelines)
    apart, which is how the CLI's ``timeline`` verb exports all four
    architectures through one registry.
    """

    def __init__(
        self, registry: MetricsRegistry | None = None, *, bin_s: float = 3600.0
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.bin_s = float(bin_s)
        self.timeline: Timeline | None = None
        self.arch = ""

    # ------------------------------------------------------------------
    # engine-facing lifecycle
    # ------------------------------------------------------------------
    def begin(
        self, architecture: "Architecture", injector: "FaultInjector | None" = None
    ) -> None:
        """Wire instruments for one run (engine calls this before the loop)."""
        if self.timeline is not None:
            raise RuntimeError("RunTelemetry drives exactly one run; build a new one")
        self.arch = architecture.name
        self.timeline = Timeline(self.registry, bin_s=self.bin_s, arch=self.arch)
        self._warmup = _WindowChannel(self.registry, self.arch, "warmup")
        self._measured = _WindowChannel(self.registry, self.arch, "measured")
        architecture.register_telemetry(self.registry)
        if injector is not None:
            bind_injector(self.registry, injector, arch=self.arch)
            self.timeline.add_close_hook(injector.advance)

    def advance(self, t: float) -> None:
        """Clock hook; the engine calls this *before* the injector advances."""
        self.timeline.advance(t)

    def observe(self, request: "Request", result: "AccessResult", *, measured: bool) -> None:
        """Account one processed request into the current bin's window."""
        channel = self._measured if measured else self._warmup
        point = int(result.point)
        channel.requests[point].inc()
        channel.bytes[point].inc(request.size)
        channel.response.observe(result.time_ms)
        if result.remote_hit:
            channel.intercache.inc(request.size)
        if result.false_positive:
            channel.false_positive.inc()
        if result.false_negative:
            channel.false_negative.inc()
        if result.suboptimal_positive:
            channel.suboptimal_positive.inc()
        if result.push_hit:
            channel.push_hit.inc()
        if result.timeout_fallback:
            channel.timeout_fallback.inc()
        if result.stale_hint_forward:
            channel.stale_hint_forward.inc()
        if result.fault_added_ms:
            channel.fault_ms.inc(result.fault_added_ms)

    def observe_values(
        self,
        *,
        point: int,
        size: int,
        time_ms: float,
        measured: bool,
        remote_hit: bool = False,
        false_positive: bool = False,
        false_negative: bool = False,
        suboptimal_positive: bool = False,
        push_hit: bool = False,
        timeout_fallback: bool = False,
        stale_hint_forward: bool = False,
        fault_added_ms: float = 0.0,
    ) -> None:
        """:meth:`observe` from plain scalars (the fast engine's decoder).

        Identical accounting without requiring ``Request``/``AccessResult``
        objects, so a columnar run can stream decoded rows directly.
        """
        channel = self._measured if measured else self._warmup
        channel.requests[point].inc()
        channel.bytes[point].inc(size)
        channel.response.observe(time_ms)
        if remote_hit:
            channel.intercache.inc(size)
        if false_positive:
            channel.false_positive.inc()
        if false_negative:
            channel.false_negative.inc()
        if suboptimal_positive:
            channel.suboptimal_positive.inc()
        if push_hit:
            channel.push_hit.inc()
        if timeout_fallback:
            channel.timeout_fallback.inc()
        if stale_hint_forward:
            channel.stale_hint_forward.inc()
        if fault_added_ms:
            channel.fault_ms.inc(fault_added_ms)

    def finish(self, end_time: float) -> None:
        """Close the timeline at the trace's end (engine calls after loop)."""
        self.timeline.finish(end_time)

    @property
    def rows(self) -> list[dict]:
        """The per-bin rows collected so far (empty before ``begin``)."""
        return self.timeline.rows if self.timeline is not None else []


# ----------------------------------------------------------------------
# layer bindings (callback-backed instruments; zero request-path cost)
# ----------------------------------------------------------------------
def bind_cache(
    registry: MetricsRegistry,
    cache,
    *,
    arch: str,
    level: str,
    node: int,
) -> None:
    """Register occupancy/churn instruments for one data cache.

    Works for any cache satisfying the
    :class:`repro.cache.policy.ReplacementPolicy` protocol's observation
    surface: ``occupancy_bytes``/``__len__`` plus the always-on
    ``insertions``/``evictions``/``invalidations`` counters (every policy
    cache and :class:`repro.cache.ttl.TTLCache`) -- one uniform accessor,
    no per-class fallbacks.
    """
    labels = {"arch": arch, "level": level, "node": str(node)}
    registry.gauge(
        "repro_cache_occupancy_bytes",
        labels,
        help="Bytes currently cached",
        fn=lambda c=cache: float(c.occupancy_bytes),
    )
    registry.gauge(
        "repro_cache_entries",
        labels,
        help="Objects currently cached",
        fn=lambda c=cache: float(len(c)),
    )
    registry.counter(
        "repro_cache_insertions_total",
        labels,
        help="Objects stored since construction",
        fn=lambda c=cache: float(c.insertions),
    )
    registry.counter(
        "repro_cache_evictions_total",
        labels,
        help="Capacity evictions since construction",
        fn=lambda c=cache: float(c.evictions),
    )
    registry.counter(
        "repro_cache_invalidations_total",
        labels,
        help="Consistency invalidations since construction",
        fn=lambda c=cache: float(c.invalidations),
    )


def bind_architecture(registry: MetricsRegistry, architecture: "Architecture") -> None:
    """Introspect an architecture and register its layers' instruments.

    Covers every shipped architecture by structural convention:
    ``l1_caches``/``l2_caches`` lists and a single ``l3_cache`` become
    per-node cache instruments; a ``directory``
    (:class:`repro.hints.directory.HintDirectory`) becomes hint-count,
    propagation, staleness-correction and false-probe instruments; ICP's
    sibling counters ride along when present.
    """
    arch = architecture.name
    for node, cache in enumerate(getattr(architecture, "l1_caches", ()) or ()):
        bind_cache(registry, cache, arch=arch, level="l1", node=node)
    for node, cache in enumerate(getattr(architecture, "l2_caches", ()) or ()):
        bind_cache(registry, cache, arch=arch, level="l2", node=node)
    l3 = getattr(architecture, "l3_cache", None)
    if l3 is not None:
        bind_cache(registry, l3, arch=arch, level="l3", node=0)
    directory = getattr(architecture, "directory", None)
    if directory is not None:
        labels = {"arch": arch}
        registry.gauge(
            "repro_hint_entries",
            labels,
            help="Objects with at least one visible hint",
            fn=lambda d=directory: float(d.visible_entries),
        )
        registry.counter(
            "repro_hint_informs_total",
            labels,
            help="Inform events (new copies announced)",
            fn=lambda d=directory: float(d.inform_events),
        )
        registry.counter(
            "repro_hint_retracts_total",
            labels,
            help="Retract events (copies withdrawn)",
            fn=lambda d=directory: float(d.retract_events),
        )
        registry.counter(
            "repro_hint_corrections_total",
            labels,
            help="Stale hints dropped after a probe found the copy gone",
            fn=lambda d=directory: float(d.corrections),
        )
        registry.counter(
            "repro_hint_false_negative_lookups_total",
            labels,
            help="Lookups that missed although a remote copy existed",
            fn=lambda d=directory: float(d.false_negatives),
        )
        registry.counter(
            "repro_hint_false_positive_probes_total",
            labels,
            help="Probes that found the advertised copy gone",
            fn=lambda d=directory: float(d.false_positives_recorded),
        )
    if hasattr(architecture, "sibling_queries"):
        registry.counter(
            "repro_icp_sibling_queries_total",
            {"arch": arch},
            help="ICP sibling queries issued",
            fn=lambda a=architecture: float(a.sibling_queries),
        )
    if hasattr(architecture, "sibling_hits"):
        registry.counter(
            "repro_icp_sibling_hits_total",
            {"arch": arch},
            help="ICP sibling queries answered by a sibling copy",
            fn=lambda a=architecture: float(a.sibling_hits),
        )


def bind_injector(
    registry: MetricsRegistry, injector: "FaultInjector", *, arch: str
) -> None:
    """Mirror a fault injector's state as gauges.

    Every node the plan ever crashes or recovers gets a ``repro_node_up``
    gauge (1 up, 0 down); the level-wide conditions (origin slowdown,
    link degradation, hint loss) become gauges too, so degradation
    windows are visible in the same timeline as the hit-rate dip they
    cause.
    """
    from repro.faults.events import NodeCrash, NodeRecover

    targets: set[tuple[str, int]] = set()
    for event in injector.plan.events:
        if isinstance(event, (NodeCrash, NodeRecover)):
            targets.add((event.kind.value, event.node))
    for kind, node in sorted(targets):
        registry.gauge(
            "repro_node_up",
            {"arch": arch, "kind": kind, "node": str(node)},
            help="1 while the node is reachable, 0 while crashed",
            fn=lambda i=injector, k=kind, n=node: 0.0 if i.is_down(k, n) else 1.0,
        )
    labels = {"arch": arch}
    registry.gauge(
        "repro_fault_origin_factor",
        labels,
        help="Current origin-fetch latency multiplier",
        fn=lambda i=injector: float(i.origin_factor),
    )
    registry.gauge(
        "repro_fault_latency_mult",
        labels,
        help="Current network-charge latency multiplier",
        fn=lambda i=injector: float(i.latency_mult),
    )
    registry.gauge(
        "repro_fault_hint_loss_prob",
        labels,
        help="Current hint-batch loss probability",
        fn=lambda i=injector: float(i.hint_loss_prob),
    )


# ----------------------------------------------------------------------
# warmup convergence
# ----------------------------------------------------------------------
@dataclass
class ConvergenceReport:
    """When (and whether) a run's L1 hit rate stabilized.

    ``series`` is the cumulative hit rate for ``point`` after each
    non-empty bin; ``converged_at_s`` is the end of the earliest bin from
    which every later cumulative rate stays within ``tolerance`` of the
    final rate -- i.e. the clock time after which measuring would have
    been safe.  ``converged`` is False when only the final bin qualifies
    (the rate was still moving at the end of the trace).
    """

    arch: str
    point: str
    tolerance: float
    converged: bool
    converged_at_s: float | None
    final_rate: float
    series: list[tuple[float, float]]

    def summary_line(self) -> str:
        """One human-readable line for CLI output."""
        if not self.series:
            return f"{self.arch}: no requests observed"
        if not self.converged:
            return (
                f"{self.arch}: {self.point} hit rate still moving at trace end "
                f"(final {self.final_rate:.3f})"
            )
        hours = (self.converged_at_s or 0.0) / 3600.0
        return (
            f"{self.arch}: {self.point} hit rate within {self.tolerance:.0%} of "
            f"final ({self.final_rate:.3f}) after {hours:.1f} h"
        )


def warmup_convergence(
    rows: Sequence[Mapping],
    *,
    point: str = "L1",
    tolerance: float = 0.02,
) -> ConvergenceReport:
    """Judge warmup convergence from one architecture's timeline rows.

    Uses *cumulative* hit rate at ``point`` over all windows (warmup and
    measured alike -- that is the point: the warmup bins are exactly the
    data the end-of-run scalars cannot show).  Validates the paper's
    two-day warmup by reporting when measurement would have become safe.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    arch = str(rows[0].get("arch", "")) if rows else ""
    cumulative_requests = 0.0
    cumulative_point = 0.0
    series: list[tuple[float, float]] = []
    for row in rows:
        bin_requests = 0.0
        bin_point = 0.0
        for key, delta in row["counters"].items():
            if not key.startswith("repro_requests_total"):
                continue
            _name, labels = parse_metric_key(key)
            bin_requests += delta
            if labels.get("point") == point:
                bin_point += delta
        if bin_requests == 0.0:
            continue
        cumulative_requests += bin_requests
        cumulative_point += bin_point
        series.append((float(row["t_end"]), cumulative_point / cumulative_requests))
    if not series:
        return ConvergenceReport(
            arch=arch,
            point=point,
            tolerance=tolerance,
            converged=False,
            converged_at_s=None,
            final_rate=0.0,
            series=[],
        )
    final_rate = series[-1][1]
    converged_at = series[-1][0]
    for index in range(len(series) - 1, -1, -1):
        if abs(series[index][1] - final_rate) > tolerance:
            break
        converged_at = series[index][0]
    converged = len(series) > 1 and converged_at < series[-1][0]
    return ConvergenceReport(
        arch=arch,
        point=point,
        tolerance=tolerance,
        converged=converged,
        converged_at_s=converged_at if converged else None,
        final_rate=final_rate,
        series=series,
    )


def merge_timeline_rows(row_lists: Sequence[Sequence[Mapping]]) -> list[dict]:
    """Merge per-partition timeline rows of one architecture, bin by bin.

    The sharded runner gives every virtual partition its own
    :class:`RunTelemetry` over the same trace clock (same ``bin_s``, same
    ``finish`` time), so the per-partition row lists are congruent: same
    length, same ``bin``/``t_start``/``t_end``/``arch`` per position.
    The merge sums counter *deltas* (they telescope, so merged bins
    re-sum to the merged run totals exactly) and sums gauge values --
    cache occupancies and entry counts add across partitions; a
    non-additive gauge (e.g. a fault plan's per-node up flag, mirrored
    into every partition) comes back multiplied by the partition count,
    which the sharded runner documents rather than hides.

    Callers fold partitions in canonical partition order: summing floats
    in a fixed order is what keeps merged rows byte-identical for any
    shard count.  Raises ``ValueError`` on incongruent row lists.
    """
    row_lists = [list(rows) for rows in row_lists]
    if not row_lists:
        return []
    first = row_lists[0]
    for rows in row_lists[1:]:
        if len(rows) != len(first):
            raise ValueError(
                f"cannot merge timelines of {len(rows)} vs {len(first)} bins"
            )
    merged: list[dict] = []
    for index, base in enumerate(first):
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        for rows in row_lists:
            row = rows[index]
            for field_name in ("arch", "bin", "t_start", "t_end"):
                if row[field_name] != base[field_name]:
                    raise ValueError(
                        f"bin {index}: field {field_name!r} mismatch "
                        f"({row[field_name]!r} vs {base[field_name]!r})"
                    )
            for key, delta in row.get("counters", {}).items():
                counters[key] = counters.get(key, 0.0) + delta
            for key, value in row.get("gauges", {}).items():
                gauges[key] = gauges.get(key, 0.0) + value
        merged.append(
            {
                "arch": base["arch"],
                "bin": base["bin"],
                "t_start": base["t_start"],
                "t_end": base["t_end"],
                "counters": dict(sorted(counters.items())),
                "gauges": dict(sorted(gauges.items())),
            }
        )
    return merged
