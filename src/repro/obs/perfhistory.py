"""Schema-validated BENCH loading and the bench-history regression gate.

The repo pins host performance in ``BENCH_*.json`` files written by the
benchmark suite (``benchmarks/test_bench_*.py``): ``BENCH_engine.json``
(fast-engine speedups with per-kernel floors), ``BENCH_telemetry.json``
(observer overhead vs an uninstrumented twin), and
``BENCH_profiling.json`` (span-profiler overhead, this PR).  This module
makes those files load-bearing beyond their commit-time asserts:

* :func:`validate_bench` -- structural schema check (required fields,
  numeric types, per-architecture sections);
* :func:`floor_problems` -- the same floors the benches assert, applied
  to the committed files, so a hand-edited or regressed pin fails CI;
* :func:`append_history` / :func:`read_history` -- an append-only
  ``BENCH_HISTORY.jsonl`` trajectory (one canonical JSON line per bench
  run, each carrying a single *headline* number);
* :func:`history_problems` -- the regression gate: the latest headline
  must not be worse than the best earlier entry by more than a caller-
  chosen margin (relative % for higher-is-better headlines, absolute
  percentage points for overhead headlines).

``python -m repro.obs.perf`` drives all of it in CI.
"""

from __future__ import annotations

import json
import numbers
import os
from dataclasses import dataclass
from typing import Mapping, Sequence

__all__ = [
    "BenchSchema",
    "BENCH_SCHEMAS",
    "bench_kind",
    "validate_bench",
    "load_bench",
    "floor_problems",
    "headline",
    "history_entry",
    "append_history",
    "read_history",
    "history_problems",
    "TELEMETRY_DISABLED_BUDGET_PCT",
    "PROFILING_DETACHED_BUDGET_PCT",
]

#: Aggregate detached-observer budgets the benches assert (mirrored here
#: so the CI gate re-checks the *committed* numbers, not just fresh runs).
TELEMETRY_DISABLED_BUDGET_PCT = 2.0
PROFILING_DETACHED_BUDGET_PCT = 3.0


@dataclass(frozen=True)
class BenchSchema:
    """Field requirements for one BENCH kind.

    ``top`` / ``per_arch`` name required numeric fields at the top level
    and inside every ``architectures[<name>]`` section.  ``headline`` is
    the one number tracked through ``BENCH_HISTORY.jsonl``; ``direction``
    says which way is better (``"higher"`` compares relatively,
    ``"lower_points"`` in absolute percentage points -- overheads near
    zero make relative comparison meaningless).
    """

    kind: str
    top: tuple[str, ...]
    per_arch: tuple[str, ...]
    headline: str
    direction: str  # "higher" | "lower_points"


BENCH_SCHEMAS: dict[str, BenchSchema] = {
    "engine": BenchSchema(
        kind="engine",
        top=("requests", "rounds", "scale"),
        per_arch=(
            "fast_rps",
            "measured_requests",
            "reference_rps",
            "speedup",
            "warm_fast_rps",
            "warm_reference_rps",
            "warm_speedup",
        ),
        headline="min_warm_speedup",
        direction="higher",
    ),
    "telemetry": BenchSchema(
        kind="telemetry",
        top=(
            "rounds",
            "scale",
            "disabled_overhead_pct",
            "enabled_overhead_pct",
            "off_s",
            "on_s",
            "uninstrumented_s",
        ),
        per_arch=(
            "disabled_overhead_pct",
            "enabled_overhead_pct",
            "measured_requests",
            "off_s",
            "on_s",
            "uninstrumented_s",
        ),
        headline="disabled_overhead_pct",
        direction="lower_points",
    ),
    "sharding": BenchSchema(
        kind="sharding",
        top=(
            "requests",
            "rounds",
            "scale",
            "shards",
            "virtual_partitions",
            "total_rps",
            "rps_floor",
        ),
        per_arch=("rps", "measured_requests", "wall_s"),
        headline="total_rps",
        direction="higher",
    ),
    "profiling": BenchSchema(
        kind="profiling",
        top=(
            "rounds",
            "scale",
            "detached_overhead_pct",
            "attached_overhead_pct",
            "detached_s",
            "attached_s",
            "uninstrumented_s",
            "max_detached_overhead_pct",
        ),
        per_arch=(
            "detached_overhead_pct",
            "attached_overhead_pct",
            "detached_s",
            "attached_s",
            "uninstrumented_s",
            "measured_requests",
            "spans",
        ),
        headline="detached_overhead_pct",
        direction="lower_points",
    ),
}


def bench_kind(path: str) -> str:
    """Infer the schema kind from a ``BENCH_<kind>.json`` filename."""
    base = os.path.basename(path)
    if base.startswith("BENCH_") and base.endswith(".json"):
        kind = base[len("BENCH_"): -len(".json")]
        if kind in BENCH_SCHEMAS:
            return kind
    raise ValueError(
        f"cannot infer bench kind from {path!r}; expected BENCH_<kind>.json "
        f"with kind in {sorted(BENCH_SCHEMAS)}"
    )


def _require_numbers(
    section: Mapping, fields: Sequence[str], where: str, problems: list[str]
) -> None:
    for name in fields:
        value = section.get(name)
        if not isinstance(value, numbers.Real) or isinstance(value, bool):
            problems.append(f"{where}: field {name!r} missing or non-numeric")


def validate_bench(kind: str, payload: Mapping) -> list[str]:
    """Structural check of one BENCH payload; returns problems (empty = clean)."""
    schema = BENCH_SCHEMAS.get(kind)
    if schema is None:
        return [f"unknown bench kind {kind!r}"]
    if not isinstance(payload, Mapping):
        return [f"{kind}: payload is not an object"]
    problems: list[str] = []
    _require_numbers(payload, schema.top, kind, problems)
    architectures = payload.get("architectures")
    if not isinstance(architectures, Mapping) or not architectures:
        problems.append(f"{kind}: architectures section missing or empty")
        return problems
    for name, section in architectures.items():
        if not isinstance(section, Mapping):
            problems.append(f"{kind}:{name}: not an object")
            continue
        _require_numbers(section, schema.per_arch, f"{kind}:{name}", problems)
    return problems


def load_bench(path: str) -> tuple[str, dict]:
    """Load + schema-validate one BENCH file; raises ``ValueError`` on problems."""
    kind = bench_kind(path)
    with open(path, encoding="utf-8") as stream:
        payload = json.load(stream)
    problems = validate_bench(kind, payload)
    if problems:
        raise ValueError(f"{path}: " + "; ".join(problems))
    return kind, payload


def floor_problems(kind: str, payload: Mapping) -> list[str]:
    """Apply the bench's own pinned floors to a (validated) payload."""
    problems: list[str] = []
    if kind == "engine":
        warm_floors = payload.get("speedup_floors", {})
        cold_floors = payload.get("cold_floors", {})
        for name, section in payload["architectures"].items():
            floor = warm_floors.get(name)
            if floor is None:
                problems.append(f"engine:{name}: no warm speedup floor pinned")
            elif section["warm_speedup"] < floor:
                problems.append(
                    f"engine:{name}: warm speedup {section['warm_speedup']} "
                    f"below floor {floor}"
                )
            cold = cold_floors.get(name)
            if cold is not None and section["speedup"] < cold:
                problems.append(
                    f"engine:{name}: cold speedup {section['speedup']} "
                    f"below floor {cold}"
                )
    elif kind == "sharding":
        floor = payload["rps_floor"]
        if payload["total_rps"] < floor:
            problems.append(
                f"sharding: total_rps {payload['total_rps']} below "
                f"floor {floor}"
            )
    elif kind == "telemetry":
        overhead = payload["disabled_overhead_pct"]
        if overhead > TELEMETRY_DISABLED_BUDGET_PCT:
            problems.append(
                f"telemetry: disabled overhead {overhead}% exceeds "
                f"{TELEMETRY_DISABLED_BUDGET_PCT}% budget"
            )
    elif kind == "profiling":
        budget = payload.get("max_detached_overhead_pct", PROFILING_DETACHED_BUDGET_PCT)
        overhead = payload["detached_overhead_pct"]
        if overhead > budget:
            problems.append(
                f"profiling: detached overhead {overhead}% exceeds {budget}% budget"
            )
    else:
        problems.append(f"unknown bench kind {kind!r}")
    return problems


def headline(kind: str, payload: Mapping) -> float:
    """The one number a BENCH run contributes to the history trajectory."""
    schema = BENCH_SCHEMAS[kind]
    if schema.headline == "min_warm_speedup":
        return min(
            float(section["warm_speedup"])
            for section in payload["architectures"].values()
        )
    return float(payload[schema.headline])


def history_entry(kind: str, payload: Mapping, *, recorded: str) -> dict:
    """One ``BENCH_HISTORY.jsonl`` row (validated payload assumed)."""
    return {
        "bench": kind,
        "recorded": recorded,
        "headline": round(headline(kind, payload), 6),
        "scale": payload.get("scale"),
        "architectures": sorted(payload.get("architectures", {})),
    }


def append_history(history_path: str, bench_path: str, *, recorded: str) -> dict:
    """Validate ``bench_path`` and append its history row; returns the row.

    ``recorded`` is an ISO-8601 UTC stamp supplied by the caller (the
    bench suite stamps run completion; tests pass fixed strings so the
    row bytes stay deterministic).  Lines are canonical JSON (sorted
    keys, compact separators), one per run, append-only.
    """
    kind, payload = load_bench(bench_path)
    row = history_entry(kind, payload, recorded=recorded)
    with open(history_path, "a", encoding="utf-8") as stream:
        stream.write(json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n")
    return row


def read_history(history_path: str) -> list[dict]:
    """Parse + validate history rows; raises ``ValueError`` on a bad line."""
    rows: list[dict] = []
    with open(history_path, encoding="utf-8") as stream:
        for line_number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{history_path}:{line_number}: bad JSON ({exc})")
            for field_name, kinds in (
                ("bench", str),
                ("recorded", str),
                ("headline", numbers.Real),
            ):
                if not isinstance(row.get(field_name), kinds):
                    raise ValueError(
                        f"{history_path}:{line_number}: field {field_name!r} "
                        "missing or mistyped"
                    )
            if row["bench"] not in BENCH_SCHEMAS:
                raise ValueError(
                    f"{history_path}:{line_number}: unknown bench {row['bench']!r}"
                )
            rows.append(row)
    return rows


def history_problems(
    rows: Sequence[Mapping], *, max_regression_pct: float = 25.0
) -> list[str]:
    """Regression-check each bench kind's trajectory.

    For ``direction == "higher"`` headlines (engine speedups) the latest
    entry must stay within ``max_regression_pct`` *relative* percent of
    the best earlier entry; for ``"lower_points"`` headlines (detached
    overheads, which hover near 0%) the latest must not exceed the best
    earlier entry by more than ``max_regression_pct`` absolute points
    and must stay inside its budget-checked floor (floors are enforced
    separately by :func:`floor_problems` on the BENCH file itself).
    """
    problems: list[str] = []
    by_kind: dict[str, list[Mapping]] = {}
    for row in rows:
        by_kind.setdefault(str(row["bench"]), []).append(row)
    for kind, entries in by_kind.items():
        if len(entries) < 2:
            continue
        schema = BENCH_SCHEMAS[kind]
        latest = float(entries[-1]["headline"])
        earlier = [float(row["headline"]) for row in entries[:-1]]
        if schema.direction == "higher":
            best = max(earlier)
            floor = best * (1.0 - max_regression_pct / 100.0)
            if latest < floor:
                problems.append(
                    f"{kind}: headline {schema.headline} regressed to {latest:g} "
                    f"(best {best:g}, allowed floor {floor:g} at "
                    f"{max_regression_pct:g}% regression)"
                )
        else:
            best = min(earlier)
            ceiling = best + max_regression_pct
            if latest > ceiling:
                problems.append(
                    f"{kind}: headline {schema.headline} regressed to {latest:g} "
                    f"(best {best:g}, allowed ceiling {ceiling:g} at "
                    f"{max_regression_pct:g} points)"
                )
    return problems
