"""Trace characterization (regenerates the paper's Table 4 view).

:func:`characterize` computes the per-trace summary statistics the paper
reports -- client count, access count, distinct URLs, span in days -- plus
auxiliary locality measures used to sanity-check the synthetic generators:
requests per client, distinct/request ratio, uncachable and error request
fractions, and the share of requests that are re-references.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.common.units import DAYS
from repro.traces.records import Trace


@dataclass(frozen=True)
class TraceCharacteristics:
    """Aggregate statistics of one trace (one row of Table 4, extended)."""

    profile_name: str
    n_clients: int
    n_requests: int
    n_distinct_objects: int
    days: float
    total_bytes: int
    mean_object_bytes: float
    frac_uncachable_requests: float
    frac_error_requests: float
    frac_re_references: float
    max_object_popularity: int

    @property
    def distinct_ratio(self) -> float:
        """Distinct objects per request (Table 4 column ratio)."""
        return self.n_distinct_objects / self.n_requests if self.n_requests else 0.0

    def as_table_row(self) -> dict[str, str]:
        """Format as the columns of the paper's Table 4."""
        return {
            "Trace": self.profile_name,
            "# of Clients": f"{self.n_clients:,}",
            "# of Accesses": f"{self.n_requests:,}",
            "# of Distinct URLs": f"{self.n_distinct_objects:,}",
            "# of Days": f"{self.days:.1f}",
        }


def characterize(trace: Trace) -> TraceCharacteristics:
    """Compute :class:`TraceCharacteristics` for a trace."""
    popularity: Counter[int] = Counter()
    clients: set[int] = set()
    total_bytes = 0
    uncachable = 0
    errors = 0
    for request in trace.requests:
        popularity[request.object_id] += 1
        clients.add(request.client_id)
        total_bytes += request.size
        if not request.cacheable:
            uncachable += 1
        if request.error:
            errors += 1

    n_requests = len(trace.requests)
    n_distinct = len(popularity)
    re_references = n_requests - n_distinct
    span = trace.requests[-1].time - trace.requests[0].time if n_requests else 0.0
    return TraceCharacteristics(
        profile_name=trace.profile_name,
        n_clients=len(clients),
        n_requests=n_requests,
        n_distinct_objects=n_distinct,
        days=span / DAYS,
        total_bytes=total_bytes,
        mean_object_bytes=total_bytes / n_requests if n_requests else 0.0,
        frac_uncachable_requests=uncachable / n_requests if n_requests else 0.0,
        frac_error_requests=errors / n_requests if n_requests else 0.0,
        frac_re_references=re_references / n_requests if n_requests else 0.0,
        max_object_popularity=max(popularity.values(), default=0),
    )


def popularity_histogram(trace: Trace, top: int = 20) -> list[tuple[int, int]]:
    """Return the ``top`` most-referenced objects as ``(object_id, count)``.

    Useful for eyeballing the Zipf head of a generated trace.
    """
    popularity: Counter[int] = Counter(r.object_id for r in trace.requests)
    return popularity.most_common(top)


class _FenwickTree:
    """Prefix-sum tree used by the reuse-distance computation."""

    def __init__(self, size: int) -> None:
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index < len(self._tree):
            self._tree[index] += delta
            index += index & -index

    def prefix_sum(self, index: int) -> int:
        """Sum of entries 0..index-1."""
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & -index
        return total


def reuse_distances(trace: Trace) -> list[int]:
    """LRU stack distance of every re-reference in the trace.

    The reuse distance of an access is the number of *distinct* objects
    referenced since the previous access to the same object -- exactly the
    LRU stack depth at which the access would hit.  First references have
    no distance and are omitted.  This is the temporal-locality structure
    that determines how cache size maps to hit rate (Figure 2's capacity
    curve is its integral), so it is the key statistic for validating a
    synthetic workload's locality.

    Runs in O(n log n) via a Fenwick tree over reference positions.
    """
    tree = _FenwickTree(len(trace.requests))
    last_position: dict[int, int] = {}
    distances: list[int] = []
    for position, request in enumerate(trace.requests):
        previous = last_position.get(request.object_id)
        if previous is not None:
            # Count distinct objects touched strictly after `previous`.
            distances.append(
                tree.prefix_sum(position) - tree.prefix_sum(previous + 1)
            )
            tree.add(previous, -1)
        tree.add(position, +1)
        last_position[request.object_id] = position
    return distances


def reuse_distance_cdf(trace: Trace, points: list[int]) -> dict[int, float]:
    """Fraction of re-references with reuse distance <= each point.

    ``cdf[d]`` is the hit rate an LRU cache holding ``d`` objects would
    achieve on the trace's re-references -- a size-to-hit-rate curve
    derived without simulating any cache.
    """
    distances = sorted(reuse_distances(trace))
    if not distances:
        return {point: 0.0 for point in points}
    import bisect

    return {
        point: bisect.bisect_right(distances, point) / len(distances)
        for point in points
    }


def sharing_profile(trace: Trace) -> dict[int, int]:
    """Histogram: number of objects referenced by exactly ``k`` clients.

    The degree of cross-client sharing drives how much cooperative caching
    can help (Figure 3); this exposes it directly.
    """
    clients_per_object: dict[int, set[int]] = {}
    for request in trace.requests:
        clients_per_object.setdefault(request.object_id, set()).add(request.client_id)
    histogram: Counter[int] = Counter(len(v) for v in clients_per_object.values())
    return dict(sorted(histogram.items()))
