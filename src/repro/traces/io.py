"""Trace serialization.

Two formats are provided:

* A **text** format (one tab-separated record per line with a ``#``-comment
  header) for human inspection and interchange, loosely modelled on the
  published proxy-log formats the paper's traces shipped in.
* A **binary** format (numpy ``.npz``) for fast reload of large traces in
  benchmark runs.

Both round-trip exactly through :class:`~repro.traces.records.Trace`.
"""

from __future__ import annotations

import os
import zipfile
from typing import TextIO

import numpy as np

from repro.common.errors import TraceFormatError
from repro.traces.columns import TraceColumns
from repro.traces.records import Request, Trace

_TEXT_COLUMNS = ("time", "client", "object", "size", "version", "cacheable", "error")


def write_trace_text(trace: Trace, stream: TextIO) -> None:
    """Write a trace in the text format to an open text stream."""
    stream.write(f"# repro-trace v1 profile={trace.profile_name}\n")
    stream.write(
        f"# n_objects={trace.n_objects} n_clients={trace.n_clients} "
        f"duration={trace.duration!r} warmup={trace.warmup!r}\n"
    )
    stream.write("# " + "\t".join(_TEXT_COLUMNS) + "\n")
    for r in trace.requests:
        stream.write(
            f"{r.time:.3f}\t{r.client_id}\t{r.object_id}\t{r.size}\t"
            f"{r.version}\t{int(r.cacheable)}\t{int(r.error)}\n"
        )


def read_trace_text(stream: TextIO) -> Trace:
    """Read a trace written by :func:`write_trace_text`."""
    header = stream.readline()
    if not header.startswith("# repro-trace v1"):
        raise TraceFormatError(f"bad trace header: {header!r}")
    profile_name = _header_field(header, "profile")
    meta = stream.readline()
    if not meta.startswith("#"):
        raise TraceFormatError(f"missing metadata line, got {meta!r}")
    n_objects = int(_header_field(meta, "n_objects"))
    n_clients = int(_header_field(meta, "n_clients"))
    duration = float(_header_field(meta, "duration"))
    warmup = float(_header_field(meta, "warmup"))

    requests: list[Request] = []
    for line_number, line in enumerate(stream, start=3):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("\t")
        if len(fields) != len(_TEXT_COLUMNS):
            raise TraceFormatError(
                f"line {line_number}: expected {len(_TEXT_COLUMNS)} fields, "
                f"got {len(fields)}"
            )
        try:
            requests.append(
                Request(
                    time=float(fields[0]),
                    client_id=int(fields[1]),
                    object_id=int(fields[2]),
                    size=int(fields[3]),
                    version=int(fields[4]),
                    cacheable=bool(int(fields[5])),
                    error=bool(int(fields[6])),
                )
            )
        except ValueError as exc:
            raise TraceFormatError(f"line {line_number}: {exc}") from exc
    return Trace(
        profile_name=profile_name,
        requests=requests,
        n_objects=n_objects,
        n_clients=n_clients,
        duration=duration,
        warmup=warmup,
    )


def _header_field(line: str, key: str) -> str:
    for token in line.split():
        if token.startswith(key + "="):
            return token[len(key) + 1 :]
    raise TraceFormatError(f"header field {key!r} missing from {line!r}")


def write_trace(trace: Trace, path: str | os.PathLike) -> None:
    """Write a trace to ``path``; ``.npz`` selects binary, else text."""
    path = os.fspath(path)
    if path.endswith(".npz"):
        _write_trace_npz(trace, path)
    else:
        with open(path, "w", encoding="utf-8") as stream:
            write_trace_text(trace, stream)


def read_trace(path: str | os.PathLike) -> Trace:
    """Read a trace from ``path``; ``.npz`` selects binary, else text."""
    path = os.fspath(path)
    if path.endswith(".npz"):
        return _read_trace_npz(path)
    with open(path, "r", encoding="utf-8") as stream:
        return read_trace_text(stream)


def _write_trace_npz(trace: Trace, path: str) -> None:
    columns = trace.columns()
    np.savez_compressed(
        path,
        profile_name=np.array(trace.profile_name),
        n_objects=np.array(trace.n_objects),
        n_clients=np.array(trace.n_clients),
        duration=np.array(trace.duration),
        warmup=np.array(trace.warmup),
        time=columns.time,
        client=columns.client,
        object=columns.object,
        size=columns.size,
        version=columns.version,
        cacheable=columns.cacheable,
        error=columns.error,
    )


def _read_trace_npz(path: str) -> Trace:
    # The whole read -- open *and* member extraction -- sits inside one
    # try.  ``np.load`` returns a lazy NpzFile: a truncated zip may open
    # fine and only raise ``BadZipFile`` when a member is decompressed,
    # and a foreign ``.npz`` raises ``KeyError`` on the first missing
    # column.  Both must surface as ``TraceFormatError`` so
    # ``TraceCache._load`` regenerates instead of crashing the run.
    try:
        with np.load(path, allow_pickle=False) as data:
            # Stay columnar: the request list is lazy, so a warm TraceCache
            # load does not materialize per-request tuples just for the
            # engine to re-pack them (the fast engine reads the arrays
            # directly).
            columns = TraceColumns(
                time=np.ascontiguousarray(data["time"], dtype=np.float64),
                client=np.ascontiguousarray(data["client"], dtype=np.int64),
                object=np.ascontiguousarray(data["object"], dtype=np.int64),
                size=np.ascontiguousarray(data["size"], dtype=np.int64),
                version=np.ascontiguousarray(data["version"], dtype=np.int64),
                cacheable=np.ascontiguousarray(data["cacheable"], dtype=bool),
                error=np.ascontiguousarray(data["error"], dtype=bool),
            )
            return Trace.from_columns(
                profile_name=str(data["profile_name"]),
                columns=columns,
                n_objects=int(data["n_objects"]),
                n_clients=int(data["n_clients"]),
                duration=float(data["duration"]),
                warmup=float(data["warmup"]),
            )
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
        raise TraceFormatError(f"cannot read npz trace {path!r}: {exc}") from exc
