"""Workload profiles calibrated to the paper's Table 4.

A :class:`WorkloadProfile` is the parameter bundle a
:class:`~repro.traces.synthetic.SyntheticTraceGenerator` consumes.  The
three module-level profiles (``DEC``, ``BERKELEY``, ``PRODIGY``) carry the
*full-scale* figures from Table 4; experiments normally run a
:meth:`WorkloadProfile.scaled` copy so they finish on one machine.

Calibration targets taken from the paper:

=========  ========  =========  ==============  ====  ===========
Trace      Clients   Accesses   Distinct URLs   Days  Client IDs
=========  ========  =========  ==============  ====  ===========
DEC        16,660    22.1 M     4.15 M          21    preserved
Berkeley    8,372     8.8 M     1.8  M          19    preserved
Prodigy    35,354     4.2 M     1.2  M           3    dynamic IP
=========  ========  =========  ==============  ====  ===========

Secondary calibration (Figure 2): with a large cache, compulsory misses
dominate (DEC ~19% of requests are first references); Berkeley and Prodigy
show substantially more uncachable requests and communication misses.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.errors import ConfigurationError
from repro.common.units import DAYS, KB


@dataclass(frozen=True)
class WorkloadProfile:
    """Parameters for a synthetic proxy workload.

    Attributes:
        name: Short trace name (used in reports and file names).
        n_clients: Number of distinct client ids.
        n_requests: Number of trace records to generate.
        target_distinct: Target number of distinct objects referenced; the
            generator sizes its Zipf catalog to hit this in expectation
            (Table 4 "# of Distinct URLs").
        duration_days: Trace length in days (Table 4 "# of Days").
        zipf_alpha: Popularity skew of the object catalog.
        mean_object_kb: Mean object size in KB (the paper cites ~10 KB
            average objects when sizing hint reach, section 3.1.1).
        size_sigma: Lognormal shape parameter for object sizes.
        frac_uncachable: Fraction of *requests* that are uncachable
            (CGI / non-GET / cache-control), drawn from a dedicated slice of
            the catalog so uncachability is a per-object property.
        frac_error: Fraction of requests whose origin reply is an error.
        frac_mutable: Fraction of cacheable objects that ever change.
        mean_mod_interval_days: Mean time between modifications of a mutable
            object, in days.
        dynamic_client_ids: Prodigy-style dial-up behaviour -- client ids
            are rebound per session instead of being stable.
        mean_session_minutes: Session length used when ``dynamic_client_ids``
            is set.
        warmup_days: Days of trace used only for cache warmup (paper uses 2).
        client_repeat_prob: Probability that a cacheable request re-visits
            one of the client's own recent objects instead of drawing fresh
            from the global catalog.  This per-client temporal locality is
            what gives browsers-behind-a-proxy their L1 hit rates (the
            paper's Figure 3 shows ~50% within L1 for DEC).
        client_working_set: How many recent objects a client re-visits.
        regional_interest: Fraction of cacheable requests whose popularity
            ranking is *region-specific*: clients in the same region share
            a head of hot objects that differs from other regions'.  This
            is the "locality within subtrees" the paper's push discussion
            appeals to (section 4.1.3).  Zero (the default) gives globally
            uniform popularity.
        n_regions: Number of interest regions; consecutive client-id blocks
            form a region, matching the hierarchy's client->L1 grouping.
    """

    name: str
    n_clients: int
    n_requests: int
    target_distinct: int
    duration_days: float
    zipf_alpha: float = 0.80
    mean_object_kb: float = 10.0
    size_sigma: float = 1.2
    frac_uncachable: float = 0.05
    frac_error: float = 0.02
    frac_mutable: float = 0.10
    mean_mod_interval_days: float = 7.0
    dynamic_client_ids: bool = False
    mean_session_minutes: float = 30.0
    warmup_days: float = 2.0
    client_repeat_prob: float = 0.25
    client_working_set: int = 32
    regional_interest: float = 0.0
    n_regions: int = 8

    def __post_init__(self) -> None:
        if self.n_clients <= 0 or self.n_requests <= 0:
            raise ConfigurationError("profile needs positive clients and requests")
        if not 0 < self.target_distinct <= self.n_requests:
            raise ConfigurationError(
                "target_distinct must be positive and no larger than n_requests"
            )
        if self.duration_days <= 0:
            raise ConfigurationError("duration_days must be positive")
        if self.warmup_days >= self.duration_days:
            raise ConfigurationError("warmup must be shorter than the trace")
        for frac_name in (
            "frac_uncachable",
            "frac_error",
            "frac_mutable",
            "client_repeat_prob",
            "regional_interest",
        ):
            value = getattr(self, frac_name)
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(f"{frac_name} must be in [0, 1), got {value}")
        if self.client_working_set < 1:
            raise ConfigurationError("client_working_set must be at least 1")
        if self.n_regions < 1:
            raise ConfigurationError("n_regions must be at least 1")

    @property
    def duration_seconds(self) -> float:
        """Trace duration in seconds."""
        return self.duration_days * DAYS

    @property
    def warmup_seconds(self) -> float:
        """Warmup boundary in seconds."""
        return self.warmup_days * DAYS

    @property
    def mean_object_bytes(self) -> int:
        """Mean object size in bytes."""
        return int(self.mean_object_kb * KB)

    def scaled(self, factor: float, *, min_clients: int = 32) -> "WorkloadProfile":
        """Return a copy scaled down by ``factor`` (0 < factor <= 1).

        Clients, requests and distinct objects shrink together so the
        locality structure (requests per client, distinct/request ratio)
        is preserved.  Duration is kept, so request *rates* scale down --
        the simulator is trace-driven, not rate-sensitive, and keeping the
        calendar span preserves modification counts per object.
        """
        if not 0 < factor <= 1:
            raise ConfigurationError(f"scale factor must be in (0, 1], got {factor}")
        n_requests = max(1000, int(self.n_requests * factor))
        ratio = self.target_distinct / self.n_requests
        return replace(
            self,
            n_clients=max(min_clients, int(self.n_clients * factor)),
            n_requests=n_requests,
            target_distinct=max(100, int(n_requests * ratio)),
        )

    def with_requests(self, n_requests: int) -> "WorkloadProfile":
        """Return a copy resized to exactly ``n_requests`` requests."""
        return self.scaled(n_requests / self.n_requests)


#: Digital Equipment Corporation proxy trace profile (Sep 1996).  DEC shows
#: the lowest uncachable share and strongest sharing of the three traces;
#: ~19% of requests are global compulsory misses.
DEC = WorkloadProfile(
    name="dec",
    n_clients=16_660,
    n_requests=22_100_000,
    target_distinct=4_150_000,
    duration_days=21,
    zipf_alpha=0.82,
    frac_uncachable=0.04,
    frac_error=0.02,
    frac_mutable=0.12,
    mean_mod_interval_days=6.0,
)

#: UC Berkeley Home-IP trace profile (Nov 1996).  Home users over modems:
#: more uncachable requests and communication misses than DEC (Figure 2).
BERKELEY = WorkloadProfile(
    name="berkeley",
    n_clients=8_372,
    n_requests=8_800_000,
    target_distinct=1_800_000,
    duration_days=19,
    zipf_alpha=0.78,
    frac_uncachable=0.13,
    frac_error=0.03,
    frac_mutable=0.16,
    mean_mod_interval_days=4.0,
)

#: Prodigy ISP dial-up trace profile (Jan 1998).  Short trace, dynamic
#: client-to-ID binding, highest distinct/request ratio of the three.
PRODIGY = WorkloadProfile(
    name="prodigy",
    n_clients=35_354,
    n_requests=4_200_000,
    target_distinct=1_200_000,
    duration_days=3,
    zipf_alpha=0.72,
    frac_uncachable=0.12,
    frac_error=0.03,
    frac_mutable=0.14,
    mean_mod_interval_days=2.0,
    dynamic_client_ids=True,
    warmup_days=0.5,
)

_PROFILES = {p.name: p for p in (DEC, BERKELEY, PRODIGY)}


def profile_by_name(name: str) -> WorkloadProfile:
    """Look up one of the built-in profiles by name (case-insensitive)."""
    try:
        return _PROFILES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_PROFILES))
        raise ConfigurationError(f"unknown profile {name!r}; known: {known}") from None


def all_profiles() -> tuple[WorkloadProfile, ...]:
    """All built-in profiles, in the order the paper lists them."""
    return (DEC, BERKELEY, PRODIGY)
