"""Synthetic proxy-trace generation.

The generator turns a :class:`~repro.traces.profiles.WorkloadProfile` into a
:class:`~repro.traces.records.Trace` whose aggregate statistics match the
paper's Table 4 calibration targets:

* **Distinct/request ratio** -- the Zipf catalog is sized with
  :func:`repro.traces.zipf.catalog_size_for_distinct` so the expected number
  of distinct objects matches the profile's target.
* **Miss-class structure** (Figure 2) -- uncachable requests come from a
  separate catalog of CGI-like objects (uncachability is a per-URL
  property, but the request fraction is controlled exactly); errors are
  per-request; communication misses arise from per-object modification
  processes that bump object versions.
* **Diurnal shape** -- request timestamps follow a day/night-modulated rate,
  matching the peak-hour framing of the Rousskov measurements.
* **Client binding** -- stable ids for DEC/Berkeley, session-rebound ids for
  Prodigy's dial-up users.

Everything is driven by a single seed through
:class:`repro.common.rng.SeedSequenceFactory`, so a trace is a pure function
of ``(profile, seed)``.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import SeedSequenceFactory
from repro.common.units import DAYS, MINUTES
from repro.traces.profiles import WorkloadProfile
from repro.traces.records import Request, Trace
from repro.traces.zipf import ZipfSampler, catalog_size_for_distinct

#: Smallest / largest object sizes generated, in bytes.  Web objects below a
#: few hundred bytes are essentially headers; multi-megabyte objects exist
#: but are clipped so single objects cannot dominate scaled-down caches.
_MIN_OBJECT_BYTES = 256
_MAX_OBJECT_BYTES = 4 * 1024 * 1024

#: Relative amplitude of the diurnal request-rate modulation.
_DIURNAL_AMPLITUDE = 0.6


class SyntheticTraceGenerator:
    """Generate reproducible synthetic traces for a workload profile.

    >>> from repro.traces import DEC
    >>> gen = SyntheticTraceGenerator(DEC.scaled(0.001), seed=42)
    >>> trace = gen.generate()

    The same ``(profile, seed)`` pair always yields an identical trace.
    """

    def __init__(self, profile: WorkloadProfile, seed: int = 0) -> None:
        self.profile = profile
        self.seed = seed
        self._seeds = SeedSequenceFactory(seed)

    # ------------------------------------------------------------------
    # catalog construction
    # ------------------------------------------------------------------
    def _catalog_sizes(self, n_objects: int) -> np.ndarray:
        """Per-object sizes: lognormal with the profile's mean, clipped."""
        rng = self._seeds.generator("sizes", self.profile.name)
        sigma = self.profile.size_sigma
        mean = self.profile.mean_object_bytes
        mu = np.log(mean) - sigma * sigma / 2.0
        sizes = rng.lognormal(mean=mu, sigma=sigma, size=n_objects)
        return np.clip(sizes, _MIN_OBJECT_BYTES, _MAX_OBJECT_BYTES).astype(np.int64)

    def _modification_periods(self, n_objects: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-object modification periods and phases.

        Immutable objects get an infinite period.  Mutable objects draw an
        exponential period around the profile mean, with a uniform phase so
        modifications are not synchronized across objects.
        """
        rng = self._seeds.generator("modifications", self.profile.name)
        mean_period = self.profile.mean_mod_interval_days * DAYS
        periods = np.full(n_objects, np.inf)
        mutable = rng.random(n_objects) < self.profile.frac_mutable
        n_mutable = int(mutable.sum())
        if n_mutable:
            drawn = rng.exponential(mean_period, size=n_mutable)
            # Avoid degenerate sub-minute churn from the exponential tail.
            periods[mutable] = np.maximum(drawn, 10 * MINUTES)
        phases = rng.random(n_objects) * np.where(np.isfinite(periods), periods, 1.0)
        return periods, phases

    # ------------------------------------------------------------------
    # request streams
    # ------------------------------------------------------------------
    def _timestamps(self, count: int) -> np.ndarray:
        """Sorted request times with a diurnal rate modulation."""
        rng = self._seeds.generator("times", self.profile.name)
        duration = self.profile.duration_seconds
        # Build the cumulative arrival-rate curve on a fine grid, then invert
        # it so uniform draws map to diurnally-modulated times.
        grid = np.linspace(0.0, duration, 4096)
        rate = 1.0 + _DIURNAL_AMPLITUDE * np.sin(2 * np.pi * grid / DAYS - np.pi / 2)
        cumulative = np.cumsum(rate)
        cumulative /= cumulative[-1]
        uniforms = np.sort(rng.random(count))
        return np.interp(uniforms, cumulative, grid)

    def _client_ids(self, times: np.ndarray) -> np.ndarray:
        """Per-request client ids, stable or session-rebound."""
        rng = self._seeds.generator("clients", self.profile.name)
        n_clients = self.profile.n_clients
        # Client activity is itself skewed: a few heavy browsers, many light.
        activity = ZipfSampler(n_clients, 0.6, rng)
        users = activity.sample(len(times))
        # Decorrelate activity rank from client id.
        permutation = rng.permutation(n_clients)
        users = permutation[users]
        if not self.profile.dynamic_client_ids:
            return users
        # Prodigy-style dynamic IP binding: the recorded id is a function of
        # the user and the session epoch, so the same user appears under
        # different ids across sessions (and ids are reused across users).
        session = self.profile.mean_session_minutes * MINUTES
        epochs = (times / session).astype(np.int64)
        return (users + epochs * 7919) % n_clients

    def _object_ids(
        self, count: int, clients: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
        """Per-request object ids and their uncachable/error/plain flags.

        Returns ``(object_ids, uncachable_flags, error_flags, plain_flags,
        n_total)``.
        Cacheable objects occupy dense ids ``[0, n_cacheable)``; uncachable
        (CGI-like) objects a following range; *dead URLs* -- links that
        error on every request, so negative-result caching has something
        to cache -- a final range.  The error budget splits ~60% dead-URL
        (per-URL repeatable) and ~40% transient (per-request).
        """
        profile = self.profile
        rng = self._seeds.generator("objects", profile.name)
        draw = rng.random(count)
        uncachable_mask = draw < profile.frac_uncachable
        dead_threshold = profile.frac_uncachable + 0.6 * profile.frac_error
        dead_mask = (draw >= profile.frac_uncachable) & (draw < dead_threshold)
        plain_mask = ~(uncachable_mask | dead_mask)
        n_cacheable_requests = int(plain_mask.sum())

        cacheable_share = max(1e-9, 1.0 - profile.frac_uncachable)
        target_cacheable = max(64, int(profile.target_distinct * cacheable_share))
        # Client repeats (applied later) replace a share of these draws with
        # re-references, so only the fresh share contributes new distinct
        # objects; size the catalog against that share.
        fresh_draws = max(
            target_cacheable,
            int(n_cacheable_requests * (1.0 - profile.client_repeat_prob)),
        )
        n_cacheable = catalog_size_for_distinct(
            fresh_draws,
            target_cacheable,
            profile.zipf_alpha,
        )
        cacheable_sampler = ZipfSampler(n_cacheable, profile.zipf_alpha, rng)
        ranks = cacheable_sampler.sample(n_cacheable_requests)
        permutation = rng.permutation(n_cacheable)
        object_ids = np.empty(count, dtype=np.int64)
        object_ids[plain_mask] = permutation[ranks]

        # CGI-like catalog: flatter popularity, sized proportionally.
        n_uncachable = max(16, int(target_cacheable * profile.frac_uncachable /
                                   cacheable_share))
        n_uncachable_requests = int(uncachable_mask.sum())
        if n_uncachable_requests:
            cgi_sampler = ZipfSampler(n_uncachable, profile.zipf_alpha * 0.8, rng)
            cgi_ranks = cgi_sampler.sample(n_uncachable_requests)
            object_ids[uncachable_mask] = n_cacheable + cgi_ranks

        # Dead-URL catalog: a small set of broken links hit repeatedly
        # (dead links are few but popular enough to be requested again).
        n_dead = max(8, int(target_cacheable * profile.frac_error * 0.25))
        n_dead_requests = int(dead_mask.sum())
        if n_dead_requests:
            dead_sampler = ZipfSampler(n_dead, profile.zipf_alpha * 0.9, rng)
            dead_ranks = dead_sampler.sample(n_dead_requests)
            object_ids[dead_mask] = n_cacheable + n_uncachable + dead_ranks

        # Transient errors hit any non-dead request at the residual rate.
        transient_rate = 0.4 * profile.frac_error
        error_mask = dead_mask | (
            ~dead_mask & (rng.random(count) < transient_rate)
        )
        n_total = n_cacheable + n_uncachable + n_dead
        n_total += self._apply_regional_interest(
            object_ids, plain_mask, clients, base_id=n_total, rng=rng
        )
        return object_ids, uncachable_mask, error_mask, plain_mask, n_total

    def _apply_regional_interest(
        self,
        object_ids: np.ndarray,
        plain_mask: np.ndarray,
        clients: np.ndarray,
        base_id: int,
        rng: np.random.Generator,
    ) -> int:
        """Redirect a share of requests to disjoint per-region catalogs.

        Regional objects occupy dense ids ``[base_id, base_id + n_regions *
        region_size)``; each region Zipf-samples its own slice, so a
        region's hot head is *only* hot there -- the "locality within
        subtrees" structure the paper's push discussion appeals to
        (section 4.1.3).  Regions are consecutive client-id blocks, which
        the hierarchy's grouping maps onto L2 subtrees.

        Returns the number of object ids added to the space.
        """
        profile = self.profile
        if profile.regional_interest <= 0.0:
            return 0
        plain_indices = np.flatnonzero(plain_mask)
        regional = rng.random(len(plain_indices)) < profile.regional_interest
        if not regional.any():
            return 0
        region_size = max(
            64, int(profile.target_distinct * profile.regional_interest)
            // profile.n_regions,
        )
        regions = (
            clients[plain_indices].astype(np.int64)
            * profile.n_regions
            // profile.n_clients
        )
        for region in range(profile.n_regions):
            chosen = regional & (regions == region)
            n_chosen = int(chosen.sum())
            if not n_chosen:
                continue
            sampler = ZipfSampler(region_size, profile.zipf_alpha, rng)
            local_ranks = sampler.sample(n_chosen)
            object_ids[plain_indices[chosen]] = (
                base_id + region * region_size + local_ranks
            )
        return profile.n_regions * region_size

    def _apply_client_repeats(
        self,
        object_ids: np.ndarray,
        plain_mask: np.ndarray,
        clients: np.ndarray,
    ) -> None:
        """Rewrite a share of plain requests as client re-references.

        Walks the trace in time order keeping each client's recent plain
        objects; with probability ``client_repeat_prob`` a request revisits
        one of them.  This is the per-client temporal locality that L1
        proxy hit rates come from (Figure 3).
        """
        from collections import deque

        profile = self.profile
        p = profile.client_repeat_prob
        if p <= 0.0:
            return
        rng = self._seeds.generator("repeats", profile.name)
        count = len(object_ids)
        repeat_draw = rng.random(count)
        pick_draw = rng.integers(0, 1 << 30, size=count)
        window = profile.client_working_set
        recent: dict[int, deque] = {}
        for index in np.flatnonzero(plain_mask):
            client = int(clients[index])
            history = recent.get(client)
            if history is None:
                history = deque(maxlen=window)
                recent[client] = history
            if history and repeat_draw[index] < p:
                object_ids[index] = history[int(pick_draw[index]) % len(history)]
            history.append(int(object_ids[index]))

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def generate(self) -> Trace:
        """Generate the full trace for this generator's profile and seed."""
        profile = self.profile
        count = profile.n_requests

        times = self._timestamps(count)
        clients = self._client_ids(times)
        object_ids, uncachable, errors, plain, n_objects = self._object_ids(
            count, clients
        )
        self._apply_client_repeats(object_ids, plain, clients)
        sizes = self._catalog_sizes(n_objects)
        periods, phases = self._modification_periods(n_objects)

        request_periods = periods[object_ids]
        request_phases = phases[object_ids]
        versions = np.zeros(count, dtype=np.int64)
        finite = np.isfinite(request_periods)
        versions[finite] = (
            (times[finite] + request_phases[finite]) // request_periods[finite]
        ).astype(np.int64)

        request_sizes = sizes[object_ids]
        requests = [
            Request(
                time=float(t),
                client_id=int(c),
                object_id=int(o),
                size=int(s),
                version=int(v),
                cacheable=not bool(u),
                error=bool(e),
            )
            for t, c, o, s, v, u, e in zip(
                times, clients, object_ids, request_sizes, versions, uncachable, errors
            )
        ]
        return Trace(
            profile_name=profile.name,
            requests=requests,
            n_objects=n_objects,
            n_clients=profile.n_clients,
            duration=profile.duration_seconds,
            warmup=profile.warmup_seconds,
        )


def generate_trace(
    profile: WorkloadProfile,
    *,
    seed: int = 0,
    scale: float | None = None,
) -> Trace:
    """Convenience wrapper: optionally scale a profile, then generate.

    Args:
        profile: Base workload profile (e.g. :data:`repro.traces.DEC`).
        seed: Root seed; the trace is a pure function of (profile, seed).
        scale: If given, generate from ``profile.scaled(scale)``.
    """
    if scale is not None:
        profile = profile.scaled(scale)
    return SyntheticTraceGenerator(profile, seed=seed).generate()
