"""Trace toolkit CLI: generate, inspect, and convert trace files.

Examples::

    python -m repro.traces generate --profile dec --scale 0.001 -o dec.npz
    python -m repro.traces inspect dec.npz
    python -m repro.traces convert dec.npz dec.tsv
"""

from __future__ import annotations

import argparse
import sys

from repro.common.errors import ReproError
from repro.traces.analysis import characterize, sharing_profile
from repro.traces.io import read_trace, write_trace
from repro.traces.profiles import profile_by_name
from repro.traces.synthetic import SyntheticTraceGenerator


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-traces", description="Synthetic proxy-trace toolkit."
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate a synthetic trace")
    generate.add_argument(
        "--profile", default="dec", help="workload profile (dec/berkeley/prodigy)"
    )
    generate.add_argument("--scale", type=float, default=0.001, help="trace scale")
    generate.add_argument("--seed", type=int, default=0, help="generator seed")
    generate.add_argument(
        "--min-clients", type=int, default=32, help="client population floor"
    )
    generate.add_argument(
        "-o", "--output", required=True, help="output path (.npz = binary, else text)"
    )

    inspect = commands.add_parser("inspect", help="characterize a trace file")
    inspect.add_argument("path", help="trace file to inspect")
    inspect.add_argument(
        "--sharing", action="store_true", help="also print the sharing histogram"
    )

    convert = commands.add_parser("convert", help="convert between trace formats")
    convert.add_argument("source", help="input trace file")
    convert.add_argument("destination", help="output trace file")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    profile = profile_by_name(args.profile).scaled(
        args.scale, min_clients=args.min_clients
    )
    trace = SyntheticTraceGenerator(profile, seed=args.seed).generate()
    write_trace(trace, args.output)
    print(
        f"wrote {len(trace):,} requests "
        f"({trace.distinct_objects():,} distinct objects) to {args.output}"
    )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    trace = read_trace(args.path)
    stats = characterize(trace)
    for key, value in stats.as_table_row().items():
        print(f"{key}: {value}")
    print(f"distinct/request ratio: {stats.distinct_ratio:.4f}")
    print(f"mean object size: {stats.mean_object_bytes / 1024:.1f} KB")
    print(f"uncachable requests: {stats.frac_uncachable_requests:.1%}")
    print(f"error requests: {stats.frac_error_requests:.1%}")
    if args.sharing:
        print("clients-per-object histogram:")
        for clients, objects in sharing_profile(trace).items():
            print(f"  {clients:4d} client(s): {objects} objects")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    trace = read_trace(args.source)
    write_trace(trace, args.destination)
    print(f"converted {args.source} -> {args.destination} ({len(trace):,} requests)")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "inspect": _cmd_inspect,
        "convert": _cmd_convert,
    }
    try:
        return handlers[args.command](args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
