"""Entry point: ``python -m repro.traces``."""

from repro.traces.cli import main

raise SystemExit(main())
