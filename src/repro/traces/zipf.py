"""Finite-catalog Zipf sampling.

Web object popularity is classically Zipf-like (Arlitt & Williamson 1996,
cited by the paper); the synthetic workloads draw object references from a
Zipf distribution over a finite catalog.

The sampler precomputes the cumulative distribution once and then samples by
binary search over vectorized uniforms, so generating multi-million-request
traces stays fast.
"""

from __future__ import annotations

import numpy as np


class ZipfSampler:
    """Draw ranks from a Zipf distribution over ``{0, ..., n-1}``.

    Rank ``r`` has probability proportional to ``1 / (r + 1) ** alpha``.
    Unlike :func:`numpy.random.Generator.zipf` this is a *bounded* Zipf,
    which is what a finite URL catalog needs, and it permits ``alpha <= 1``.

    Args:
        n: Catalog size (number of ranks).
        alpha: Skew parameter; web traces typically show 0.6-0.9.
        rng: Source of randomness.
    """

    def __init__(self, n: int, alpha: float, rng: np.random.Generator) -> None:
        if n <= 0:
            raise ValueError(f"catalog size must be positive, got {n}")
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.n = n
        self.alpha = alpha
        self._rng = rng
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), alpha)
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        self._cdf = cdf

    def probability(self, rank: int) -> float:
        """Exact probability of drawing ``rank``."""
        if not 0 <= rank < self.n:
            raise IndexError(f"rank {rank} out of range for catalog of {self.n}")
        lower = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - lower)

    def sample(self, count: int) -> np.ndarray:
        """Draw ``count`` ranks as an int64 array."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        uniforms = self._rng.random(count)
        return np.searchsorted(self._cdf, uniforms, side="left").astype(np.int64)

    def expected_distinct(self, count: int) -> float:
        """Expected number of distinct ranks in ``count`` i.i.d. draws.

        Used to size catalogs so the distinct-URL / request ratio matches a
        target workload profile (Table 4).
        """
        probs = np.diff(self._cdf, prepend=0.0)
        return float(np.sum(1.0 - np.power(1.0 - probs, count)))


def catalog_size_for_distinct(
    requests: int,
    target_distinct: int,
    alpha: float,
    *,
    tolerance: float = 0.02,
    max_iterations: int = 60,
) -> int:
    """Find a catalog size whose expected distinct-draw count hits a target.

    Binary-searches the catalog size ``n`` such that ``requests`` Zipf draws
    are expected to touch about ``target_distinct`` distinct objects.  This
    is how the generator matches the Table 4 "# of Distinct URLs" column.
    """
    if target_distinct <= 0 or requests <= 0:
        raise ValueError("requests and target_distinct must be positive")
    if target_distinct > requests:
        raise ValueError("cannot see more distinct objects than requests")
    rng = np.random.default_rng(0)  # expected_distinct is deterministic
    lo, hi = target_distinct, max(target_distinct * 64, 16)
    # Grow hi until it overshoots the target.
    while ZipfSampler(hi, alpha, rng).expected_distinct(requests) < target_distinct:
        lo = hi
        hi *= 2
        if hi > requests * 1024:
            return hi
    for _ in range(max_iterations):
        mid = (lo + hi) // 2
        if mid in (lo, hi):
            break
        expected = ZipfSampler(mid, alpha, rng).expected_distinct(requests)
        if abs(expected - target_distinct) / target_distinct <= tolerance:
            return mid
        if expected < target_distinct:
            lo = mid
        else:
            hi = mid
    return hi
