"""Request and trace records.

A :class:`Request` is one line of a proxy trace: a client asks for an object
at a point in time.  The simulator is trace-driven, so these records are the
only input the architectures see.

Design notes
------------

* ``object_id`` is a *dense* integer index (0..n_objects-1).  The 64-bit
  MD5-style identifiers the hint system and Plaxton trees use are derived
  on demand via :meth:`Trace.url_for` / :func:`repro.common.ids.object_id_from_url`;
  keeping the hot path on small ints keeps simulation memory and time down.
* ``version`` encodes strong-consistency semantics: the trace generator bumps
  an object's version when its modification process fires, and a cache
  holding an older version must treat the access as a communication miss
  (paper section 2.2.1).
* ``Request`` is a ``NamedTuple`` rather than a dataclass because traces
  contain 10^5-10^6 of them and tuple construction/field access is the
  simulator's inner loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, NamedTuple


class Request(NamedTuple):
    """One trace record.

    Attributes:
        time: Seconds since the start of the trace.
        client_id: Integer client identifier (stable for DEC/Berkeley-style
            traces; session-scoped for Prodigy-style dynamic-IP traces).
        object_id: Dense object index into the trace's object space.
        size: Object size in bytes at this access.
        version: Object version at this access; a bump since the last access
            means every cached copy is stale.
        cacheable: False for CGI/non-GET style requests that must always go
            to the origin server ("uncachable" in Figure 2).
        error: True for requests whose origin reply is an error ("error"
            class in Figure 2).
    """

    time: float
    client_id: int
    object_id: int
    size: int
    version: int
    cacheable: bool = True
    error: bool = False


@dataclass
class Trace:
    """A complete, time-ordered trace plus its object-space metadata.

    Attributes:
        profile_name: Name of the workload profile that generated the trace
            (``"dec"``, ``"berkeley"``, ``"prodigy"``, or a custom name).
        requests: Time-sorted request records.
        n_objects: Size of the dense object-id space.
        n_clients: Number of distinct client ids that may appear.
        duration: Trace duration in seconds.
        warmup: Suggested warmup boundary in seconds; the paper uses the
            first two days of each trace to warm caches before measuring.
    """

    profile_name: str
    requests: list[Request]
    n_objects: int
    n_clients: int
    duration: float
    warmup: float = 0.0
    #: Lazily filled by url_for; excluded from equality so a used trace
    #: still compares equal to a freshly generated/deserialized twin.
    _url_cache: dict[int, str] = field(default_factory=dict, repr=False, compare=False)
    #: Memoized columnar view (repro.traces.columns.TraceColumns); excluded
    #: from equality for the same reason as the URL cache.
    _columns: object = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        columns = getattr(self.requests, "columns", None)
        if columns is not None:
            # Columnar-backed (lazy) request list: validate sortedness on
            # the time array without materializing row tuples, and memoize
            # the columns so Trace.columns() is free.
            if not columns.is_time_sorted():
                raise ValueError("trace requests must be sorted by time")
            self._columns = columns
            return
        for earlier, later in zip(self.requests, self.requests[1:]):
            if later.time < earlier.time:
                raise ValueError("trace requests must be sorted by time")

    @classmethod
    def from_columns(
        cls,
        profile_name: str,
        columns,
        n_objects: int,
        n_clients: int,
        duration: float,
        warmup: float = 0.0,
    ) -> "Trace":
        """Build a trace over columnar arrays without materializing rows.

        The request list is a :class:`~repro.traces.columns.LazyRequestList`,
        so row tuples are only built if a consumer actually indexes or
        iterates ``requests`` (the fast engine never does).
        """
        from repro.traces.columns import LazyRequestList

        return cls(
            profile_name=profile_name,
            requests=LazyRequestList(columns),
            n_objects=n_objects,
            n_clients=n_clients,
            duration=duration,
            warmup=warmup,
        )

    def columns(self):
        """The columnar (structure-of-arrays) view of ``requests``, memoized."""
        if self._columns is None:
            from repro.traces.columns import TraceColumns

            self._columns = TraceColumns.from_requests(self.requests)
        return self._columns

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def url_for(self, object_id: int) -> str:
        """Return the synthetic URL for a dense object id.

        The URL only matters where the paper hashes URLs (hint records,
        Plaxton object ids); it is deterministic so ids are stable across
        runs and processes.
        """
        cached = self._url_cache.get(object_id)
        if cached is None:
            cached = f"http://origin-{object_id % 997}.example.com/obj/{object_id}"
            self._url_cache[object_id] = cached
        return cached

    def measured_requests(self) -> list[Request]:
        """Requests at or after the warmup boundary (the measured window)."""
        return [r for r in self.requests if r.time >= self.warmup]

    def total_bytes(self) -> int:
        """Sum of request sizes over the whole trace."""
        return sum(r.size for r in self.requests)

    def distinct_objects(self) -> int:
        """Number of distinct object ids referenced (Table 4 'Distinct URLs')."""
        return len({r.object_id for r in self.requests})

    def distinct_clients(self) -> int:
        """Number of distinct client ids appearing in the trace."""
        return len({r.client_id for r in self.requests})
