"""Columnar trace storage: one NumPy array per request field.

A :class:`TraceColumns` is the structure-of-arrays twin of
``list[Request]``: seven parallel arrays (time, client, object, size,
version, cacheable, error) holding the same records without the per-row
tuple objects.  It is the native layout of the ``.npz`` trace format and
of the fast simulation engine (:mod:`repro.sim.fastpath`), which consumes
the arrays directly instead of re-packing materialized ``Request`` rows.

:class:`LazyRequestList` bridges the two worlds: a sequence that *looks*
like ``list[Request]`` (so every existing consumer keeps working) but is
backed by columns and only materializes the row tuples on first element
access.  A warm trace-cache load therefore costs array deserialization
only; the O(n) tuple build is deferred until someone actually iterates
requests -- and never happens at all under ``engine="fast"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.traces.records import Request

#: dtype per column, in canonical field order (matches the .npz keys).
COLUMN_DTYPES = {
    "time": np.float64,
    "client": np.int64,
    "object": np.int64,
    "size": np.int64,
    "version": np.int64,
    "cacheable": np.bool_,
    "error": np.bool_,
}


@dataclass(frozen=True)
class TraceColumns:
    """Structure-of-arrays request records (parallel, equal-length).

    Attributes mirror :class:`~repro.traces.records.Request` fields;
    every array is 1-D and all share one length.  Instances are treated
    as immutable -- nothing in the simulator writes to a trace.
    """

    time: np.ndarray
    client: np.ndarray
    object: np.ndarray
    size: np.ndarray
    version: np.ndarray
    cacheable: np.ndarray
    error: np.ndarray

    def __post_init__(self) -> None:
        lengths = {
            name: len(getattr(self, name)) for name in COLUMN_DTYPES
        }
        if len(set(lengths.values())) > 1:
            raise ValueError(f"trace columns have mismatched lengths: {lengths}")

    def __len__(self) -> int:
        return len(self.time)

    def is_time_sorted(self) -> bool:
        """True when the time column never decreases (the trace contract)."""
        if len(self.time) < 2:
            return True
        return bool(np.all(np.diff(self.time) >= 0.0))

    @classmethod
    def from_requests(cls, requests: Sequence[Request]) -> "TraceColumns":
        """Pack materialized request rows into columns."""
        return cls(
            time=np.array([r.time for r in requests], dtype=np.float64),
            client=np.array([r.client_id for r in requests], dtype=np.int64),
            object=np.array([r.object_id for r in requests], dtype=np.int64),
            size=np.array([r.size for r in requests], dtype=np.int64),
            version=np.array([r.version for r in requests], dtype=np.int64),
            cacheable=np.array([r.cacheable for r in requests], dtype=bool),
            error=np.array([r.error for r in requests], dtype=bool),
        )

    def to_requests(self) -> list[Request]:
        """Materialize the row-tuple view (one ``Request`` per record).

        ``tolist()`` yields native Python scalars, so the rows are
        indistinguishable from ones built by the text/npz readers or the
        synthetic generator.
        """
        return [
            Request(t, c, o, s, v, u, e)
            for t, c, o, s, v, u, e in zip(
                self.time.tolist(),
                self.client.tolist(),
                self.object.tolist(),
                self.size.tolist(),
                self.version.tolist(),
                self.cacheable.tolist(),
                self.error.tolist(),
            )
        ]

    def row(self, index: int) -> Request:
        """Materialize a single record."""
        return Request(
            time=float(self.time[index]),
            client_id=int(self.client[index]),
            object_id=int(self.object[index]),
            size=int(self.size[index]),
            version=int(self.version[index]),
            cacheable=bool(self.cacheable[index]),
            error=bool(self.error[index]),
        )


class LazyRequestList(Sequence):
    """``list[Request]``-compatible view over :class:`TraceColumns`.

    Length and the backing ``columns`` are free; any element access
    materializes the full row list once and serves everything from it
    afterwards (the reference engine iterates every request anyway, so
    per-row laziness would only add per-access overhead).
    """

    __slots__ = ("columns", "_rows")

    def __init__(self, columns: TraceColumns) -> None:
        self.columns = columns
        self._rows: list[Request] | None = None

    def _materialize(self) -> list[Request]:
        if self._rows is None:
            self._rows = self.columns.to_requests()
        return self._rows

    @property
    def materialized(self) -> bool:
        """True once the row tuples have been built (tests observe this)."""
        return self._rows is not None

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Request]:
        return iter(self._materialize())

    def __getitem__(self, index):
        return self._materialize()[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LazyRequestList):
            if self.columns is other.columns:
                return True
            other = other._materialize()
        if isinstance(other, (list, tuple)):
            return self._materialize() == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "materialized" if self.materialized else "columnar"
        return f"LazyRequestList({len(self)} requests, {state})"
