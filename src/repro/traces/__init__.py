"""Trace substrate: workload records, profiles, generation, I/O, analysis.

The paper evaluates its cache architectures with three proxy traces (DEC,
Berkeley Home-IP, Prodigy; Table 4).  Those traces are proprietary, so this
package provides seeded synthetic generators whose knobs are calibrated to
the published characteristics -- see DESIGN.md section 2 for the
substitution argument.

Public surface:

* :class:`repro.traces.records.Request` / :class:`repro.traces.records.Trace`
* :class:`repro.traces.profiles.WorkloadProfile` and the three calibrated
  profiles ``DEC``, ``BERKELEY``, ``PRODIGY``
* :class:`repro.traces.synthetic.SyntheticTraceGenerator`
* :func:`repro.traces.io.write_trace` / :func:`repro.traces.io.read_trace`
* :func:`repro.traces.analysis.characterize` (regenerates Table 4 rows)
"""

from repro.traces.analysis import (
    TraceCharacteristics,
    characterize,
    reuse_distance_cdf,
    reuse_distances,
    sharing_profile,
)
from repro.traces.profiles import (
    BERKELEY,
    DEC,
    PRODIGY,
    WorkloadProfile,
    profile_by_name,
)
from repro.traces.records import Request, Trace
from repro.traces.synthetic import SyntheticTraceGenerator, generate_trace
from repro.traces.zipf import ZipfSampler

__all__ = [
    "BERKELEY",
    "DEC",
    "PRODIGY",
    "Request",
    "SyntheticTraceGenerator",
    "Trace",
    "TraceCharacteristics",
    "WorkloadProfile",
    "ZipfSampler",
    "characterize",
    "generate_trace",
    "profile_by_name",
    "reuse_distance_cdf",
    "reuse_distances",
    "sharing_profile",
]
