"""Membership churn and reconfiguration accounting.

The paper claims the Plaxton embedding gives "fault tolerance and automatic
reconfiguration: as nodes enter or leave the system, the algorithm
automatically reassigns children to new parents.  This reassignment
disturbs very little of the previous configuration."  This module measures
exactly that: remove (or add) a node, rebuild, and report what fraction of
surviving parent-table entries changed and how many object roots moved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.plaxton.tree import PlaxtonTree


@dataclass(frozen=True)
class ReconfigurationReport:
    """Disturbance caused by one membership change.

    Attributes:
        removed_node: The node that left (or joined, for add reports).
        surviving_entries: Parent-table entries among survivors before the
            change (entries that pointed at the departed node included).
        changed_entries: How many of those entries differ afterwards.
        forced_changes: Entries that *had* to change because they pointed
            at the departed node.
        roots_moved: Of the sampled objects, how many changed root.
        objects_sampled: Size of the object sample.
    """

    removed_node: int
    surviving_entries: int
    changed_entries: int
    forced_changes: int
    roots_moved: int
    objects_sampled: int

    @property
    def disturbance(self) -> float:
        """Fraction of surviving parent-table entries that changed."""
        if self.surviving_entries == 0:
            return 0.0
        return self.changed_entries / self.surviving_entries

    @property
    def gratuitous_disturbance(self) -> float:
        """Changed entries beyond the forced ones, as a fraction.

        The paper's "disturbs very little" claim is about this number:
        entries that did not point at the departed node should mostly stay.
        """
        if self.surviving_entries == 0:
            return 0.0
        return max(0, self.changed_entries - self.forced_changes) / self.surviving_entries


def remove_node_report(
    tree: PlaxtonTree,
    node: int,
    object_ids: list[int],
) -> ReconfigurationReport:
    """Remove ``node`` from ``tree`` (mutating it) and report disturbance.

    Args:
        tree: The embedding to mutate.
        node: Which node departs.
        object_ids: Sample of object IDs whose root movement is measured.
    """
    before_tables = tree.parent_table_snapshot()
    before_roots = {oid: tree.root_for(oid) for oid in object_ids}

    tree.remove_node(node)

    after_tables = tree.parent_table_snapshot()
    surviving = 0
    changed = 0
    forced = 0
    for index, rows in after_tables.items():
        old_rows = before_tables[index]
        for level in range(max(len(rows), len(old_rows))):
            new_row = rows[level] if level < len(rows) else []
            old_row = old_rows[level] if level < len(old_rows) else []
            for digit in range(max(len(new_row), len(old_row))):
                old = old_row[digit] if digit < len(old_row) else None
                new = new_row[digit] if digit < len(new_row) else None
                surviving += 1
                if old != new:
                    changed += 1
                    if old == node:
                        forced += 1

    roots_moved = sum(
        1 for oid in object_ids if tree.root_for(oid) != before_roots[oid]
    )
    return ReconfigurationReport(
        removed_node=node,
        surviving_entries=surviving,
        changed_entries=changed,
        forced_changes=forced,
        roots_moved=roots_moved,
        objects_sampled=len(object_ids),
    )
