"""Hint-update routing over the self-configured Plaxton hierarchy.

The paper's system does not use one fixed metadata tree: "the system
automatically maps the metadata hierarchy across the data nodes using a
randomized hash function for scalability and fault tolerance" (section 3),
and "different objects use different virtual trees ... each node will be
the root for roughly 1/n of the objects" (section 3.1.3).

:class:`PlaxtonMetadataFabric` combines the two halves built elsewhere:
updates route along :meth:`PlaxtonTree.route_path` toward the object's
root, and the subtree-filtering rule of section 3.1.2 terminates the climb
at the first path node that already knows a copy.  Because every object
has its own virtual tree, the update load that a fixed hierarchy
concentrates at one root is spread across all nodes -- the property the
``plaxton_load`` ablation measures against the balanced-tree organization
of Table 5.
"""

from __future__ import annotations

from collections import Counter

from repro.plaxton.tree import PlaxtonTree


class PlaxtonMetadataFabric:
    """Per-object hint-update routing with subtree filtering.

    Args:
        tree: The Plaxton embedding to route over.

    Each metadata node keeps, per object, the set of holders it has been
    told about.  An *inform* climbs the object's virtual tree and stops at
    the first node that already knew a copy (that node's ancestors were
    already told a copy exists below them); a *retract* climbs while the
    departing copy was the last one the node knew of.
    """

    def __init__(self, tree: PlaxtonTree) -> None:
        self.tree = tree
        # (metadata node, object) -> known holder set.
        self._known: dict[tuple[int, int], set[int]] = {}
        self.messages_at: Counter[int] = Counter()
        self.total_messages = 0

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def inform(self, node: int, object_id: int) -> list[int]:
        """Node stored a copy of the object; returns the path messaged."""
        path = self.tree.route_path(node, object_id)
        self._remember(node, object_id, node)
        messaged: list[int] = []
        for hop in path[1:]:
            self.messages_at[hop] += 1
            self.total_messages += 1
            messaged.append(hop)
            already_knew = bool(self._known.get((hop, object_id)))
            self._remember(hop, object_id, node)
            if already_knew:
                break  # the filtering rule: ancestors already know a copy
        return messaged

    def retract(self, node: int, object_id: int) -> list[int]:
        """Node dropped its copy; returns the path messaged."""
        path = self.tree.route_path(node, object_id)
        self._forget(node, object_id, node)
        messaged: list[int] = []
        for hop in path[1:]:
            self.messages_at[hop] += 1
            self.total_messages += 1
            messaged.append(hop)
            known = self._known.get((hop, object_id))
            if known is None or node not in known:
                break
            known.discard(node)
            if known:
                break  # subtree still has a copy: ancestors need not know
            del self._known[(hop, object_id)]
        return messaged

    def find(self, node: int, object_id: int) -> set[int]:
        """Holders the metadata node at ``node`` knows about."""
        return set(self._known.get((node, object_id), set()))

    def root_load_distribution(self, object_ids: list[int]) -> Counter[int]:
        """How many of the given objects each live node roots."""
        counts: Counter[int] = Counter()
        for object_id in object_ids:
            counts[self.tree.root_for(object_id)] += 1
        return counts

    def max_node_load(self) -> int:
        """Largest per-node message count seen so far."""
        return max(self.messages_at.values(), default=0)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _remember(self, meta_node: int, object_id: int, holder: int) -> None:
        self._known.setdefault((meta_node, object_id), set()).add(holder)

    def _forget(self, meta_node: int, object_id: int, holder: int) -> None:
        known = self._known.get((meta_node, object_id))
        if known is not None:
            known.discard(holder)
            if not known:
                del self._known[(meta_node, object_id)]
