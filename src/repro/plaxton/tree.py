"""The randomized tree embedding.

Terminology follows the paper's Figure 7: a node at level ``i`` of an
object's virtual tree has an ID matching the object's ID in at least ``i``
low-order digits (each digit is ``bits_per_digit`` bits; the paper uses
binary trees in the illustration and "``log2(k)`` bits at a time" for
k-ary hierarchies).  To construct level ``i+1``, each node finds, for every
possible value ``d`` of digit ``i``, the *nearest* node whose ID matches
its own low ``i`` digits and has digit ``i`` equal to ``d`` -- one of these
candidates may be the node itself (the parent that "matches in that bit").

Routing an update for object ``o`` from a node at level ``i`` forwards to
the level-``(i+1)`` parent whose digit ``i`` equals ``o``'s digit ``i``.
When no node in the system has the required prefix, deterministic
surrogate tie-breaking takes over, and every start node converges to the
same root.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import TopologyError
from repro.common.ids import ID_BITS, low_digit, matching_low_bits
from repro.netmodel.topology import GeographicTopology


@dataclass
class PlaxtonNode:
    """One participant: its index, its 64-bit ID, and its parent tables.

    ``parents[i][d]`` is the nearest node whose ID matches this node's low
    ``i`` digits and whose digit ``i`` is ``d`` -- or ``None`` when no such
    node exists in the system.
    """

    index: int
    node_id: int
    parents: list[list[int | None]] = field(default_factory=list)


class PlaxtonTree:
    """The full embedding over a set of nodes with known distances.

    Args:
        node_ids: 64-bit pseudo-random node IDs, indexed by node.
        topology: Distances used to pick the *nearest* eligible parent.
        bits_per_digit: Digit width; 1 gives the paper's binary trees,
            larger values give the flatter k-ary hierarchies of section
            3.1.3's closing remark.

    Node *indices* are stable identities: removing a node leaves every
    other node's index unchanged (the topology keeps its positions).
    """

    def __init__(
        self,
        node_ids: list[int],
        topology: GeographicTopology,
        bits_per_digit: int = 1,
    ) -> None:
        if not node_ids:
            raise TopologyError("Plaxton tree needs at least one node")
        if len(set(node_ids)) != len(node_ids):
            raise TopologyError("node IDs must be unique")
        if topology.n_nodes != len(node_ids):
            raise TopologyError(
                f"topology has {topology.n_nodes} nodes, got {len(node_ids)} IDs"
            )
        if bits_per_digit < 1:
            raise TopologyError(f"bits_per_digit must be >= 1, got {bits_per_digit}")
        self.bits_per_digit = bits_per_digit
        self.digit_values = 1 << bits_per_digit
        self.max_levels = ID_BITS // bits_per_digit
        self.topology = topology
        self._members: dict[int, PlaxtonNode] = {
            i: PlaxtonNode(index=i, node_id=nid) for i, nid in enumerate(node_ids)
        }
        self._rebuild_all()

    # ------------------------------------------------------------------
    # membership inspection
    # ------------------------------------------------------------------
    @property
    def member_indices(self) -> list[int]:
        """Indices of live nodes, ascending."""
        return sorted(self._members)

    def node(self, index: int) -> PlaxtonNode:
        """The live node with the given index."""
        try:
            return self._members[index]
        except KeyError:
            raise TopologyError(f"no such node {index}") from None

    def __len__(self) -> int:
        return len(self._members)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _prefix_match(self, node_id: int, other_id: int, digits: int) -> bool:
        """Do two IDs agree in their low ``digits`` digits?"""
        return matching_low_bits(node_id, other_id) >= digits * self.bits_per_digit

    def _build_parent_tables(self, node: PlaxtonNode) -> None:
        """Fill ``node.parents`` level by level until candidates run out."""
        node.parents = []
        for level in range(self.max_levels):
            row: list[int | None] = []
            any_candidate = False
            for digit in range(self.digit_values):
                candidates = [
                    other.index
                    for other in self._members.values()
                    if self._prefix_match(other.node_id, node.node_id, level)
                    and low_digit(other.node_id, level, self.bits_per_digit) == digit
                ]
                if candidates:
                    row.append(self.topology.nearest(node.index, candidates))
                    any_candidate = True
                else:
                    row.append(None)
            if not any_candidate:
                break
            node.parents.append(row)

    def _rebuild_all(self) -> None:
        for node in self._members.values():
            self._build_parent_tables(node)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def parent(self, node: int, level: int, digit: int) -> int | None:
        """The node's level-``level+1`` parent for digit value ``digit``."""
        rows = self.node(node).parents
        if level >= len(rows):
            return None
        return rows[level][digit]

    def root_for(self, object_id: int) -> int:
        """The unique root node of ``object_id``'s virtual tree.

        The root is the node whose ID matches the object's ID in the most
        low-order bits; ties break by surrogate digit order then node ID,
        so the choice is globally consistent (every route converges to it).
        """
        best = max(
            self._members.values(),
            key=lambda n: (
                matching_low_bits(n.node_id, object_id),
                -self._surrogate_rank(n.node_id, object_id),
                -n.node_id,
            ),
        )
        return best.index

    def _surrogate_rank(self, node_id: int, object_id: int) -> int:
        """Tie-break rank: cyclic distance of the first differing digit.

        When several nodes match the object in equally many digits, the
        surrogate rule prefers the node whose next digit is closest above
        the object's next digit (mod the digit alphabet) -- the standard
        deterministic choice that keeps routing loop-free.
        """
        matched = matching_low_bits(node_id, object_id) // self.bits_per_digit
        if matched >= self.max_levels:
            return 0
        want = low_digit(object_id, matched, self.bits_per_digit)
        have = low_digit(node_id, matched, self.bits_per_digit)
        return (have - want) % self.digit_values

    def route_path(self, start: int, object_id: int) -> list[int]:
        """Nodes visited routing an update from ``start`` to the object root.

        Each hop tries to extend the low-order prefix shared with the
        object ID; when no parent can extend it, the walk closes at the
        global root (which by construction holds the maximal prefix).  The
        returned path starts with ``start`` and ends with
        ``root_for(object_id)``.
        """
        root = self.root_for(object_id)
        current = self.node(start)  # validates `start`
        path = [start]
        visited = {start}
        while current.index != root:
            level = matching_low_bits(current.node_id, object_id) // self.bits_per_digit
            next_index = self._next_hop(current, object_id, level)
            if next_index is None or next_index in visited:
                path.append(root)
                break
            path.append(next_index)
            visited.add(next_index)
            current = self.node(next_index)
        return path

    def _next_hop(self, current: PlaxtonNode, object_id: int, level: int) -> int | None:
        want = low_digit(object_id, level, self.bits_per_digit)
        here_match = matching_low_bits(current.node_id, object_id)
        for offset in range(self.digit_values):
            digit = (want + offset) % self.digit_values
            candidate = self.parent(current.index, level, digit)
            if candidate is None or candidate == current.index:
                continue
            if offset == 0:
                return candidate
            # Surrogate digit: only useful if it strictly improves the match.
            if matching_low_bits(self.node(candidate).node_id, object_id) > here_match:
                return candidate
        return None

    # ------------------------------------------------------------------
    # membership changes
    # ------------------------------------------------------------------
    def remove_node(self, index: int) -> None:
        """Remove a node; survivors' parent tables are rebuilt.

        The paper's claim is that removal "disturbs very little of the
        previous configuration";
        :func:`repro.plaxton.membership.remove_node_report` quantifies it.
        """
        if index not in self._members:
            raise TopologyError(f"no such node {index}")
        if len(self._members) == 1:
            raise TopologyError("cannot remove the last node")
        del self._members[index]
        self._rebuild_all()

    def add_node(self, index: int, node_id: int) -> None:
        """(Re-)add a node with the given stable index and ID."""
        if index in self._members:
            raise TopologyError(f"node {index} already present")
        if not 0 <= index < self.topology.n_nodes:
            raise TopologyError(f"index {index} outside the topology")
        if any(n.node_id == node_id for n in self._members.values()):
            raise TopologyError("node IDs must be unique")
        self._members[index] = PlaxtonNode(index=index, node_id=node_id)
        self._rebuild_all()

    def parent_table_snapshot(self) -> dict[int, list[list[int | None]]]:
        """Deep copy of every node's parent table (for disturbance metrics)."""
        return {
            n.index: [list(row) for row in n.parents] for n in self._members.values()
        }

    def parent_distance_by_level(self) -> list[float]:
        """Mean distance from each node to its chosen parents, per level.

        The paper's *locality* property: near the leaves parents are close,
        near the root they are farther.  Self-parents (distance 0) are
        excluded so the statistic reflects actual network hops.
        """
        sums: list[float] = []
        counts: list[int] = []
        for node in self._members.values():
            for level, row in enumerate(node.parents):
                for parent in row:
                    if parent is None or parent == node.index:
                        continue
                    while len(sums) <= level:
                        sums.append(0.0)
                        counts.append(0)
                    sums[level] += self.topology.distance(node.index, parent)
                    counts[level] += 1
        return [s / c if c else 0.0 for s, c in zip(sums, counts)]
