"""Plaxton-style self-configuring metadata hierarchy (paper section 3.1.3).

The hint distribution hierarchy configures itself with the randomized
tree-embedding algorithm of Plaxton, Rajaraman and Richa (SPAA'97): every
node gets a pseudo-random ID (MD5 of its address), every object gets a
pseudo-random ID (MD5 of its URL), and an object's virtual distribution
tree climbs through nodes whose IDs match the object's ID in progressively
more low-order digits.  The properties the paper relies on -- automatic
configuration, fault tolerance with small reconfiguration, load
distribution (each node roots ~1/n of objects), and locality (low-level
parents are nearby) -- are implemented here and pinned by the property
tests in ``tests/plaxton``.

* :class:`repro.plaxton.tree.PlaxtonTree` -- the embedding: parent tables,
  root selection, and update-routing paths.
* :mod:`repro.plaxton.membership` -- node join/leave with reconfiguration
  accounting.
"""

from repro.plaxton.membership import ReconfigurationReport, remove_node_report
from repro.plaxton.metadata import PlaxtonMetadataFabric
from repro.plaxton.tree import PlaxtonNode, PlaxtonTree

__all__ = [
    "PlaxtonMetadataFabric",
    "PlaxtonNode",
    "PlaxtonTree",
    "ReconfigurationReport",
    "remove_node_report",
]
