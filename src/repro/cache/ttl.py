"""TTL-based weak consistency (the behaviour the paper factors *out*).

Section 2.2.1: "Current web cache implementations generally provide weak
cache consistency via ad hoc consistency algorithms.  For example, current
Squid caches discard any data older than two days."  The paper simulates
strong consistency instead, arguing that weak consistency distorts results
two ways: counting hits to stale data as hits, or discarding perfectly
good data.

This module implements the Squid-style TTL cache so that distortion is
*measurable*: :class:`TTLCache` serves anything younger than its TTL
(including stale versions) and discards anything older (including fresh
copies).  The ``consistency`` ablation in :mod:`repro.experiments.ablations`
compares it against the version-invalidation cache and reports both error
terms, validating the paper's methodological choice.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum, auto


@dataclass
class TTLEntry:
    """A cached object with its store time and the version stored."""

    size: int
    version: int
    stored_at: float


class TTLLookupResult(Enum):
    """Outcome of a TTL-cache lookup, distinguishing the two error modes."""

    FRESH_HIT = auto()  # young entry, current version
    STALE_HIT = auto()  # young entry, but an OLD version was served
    EXPIRED = auto()  # entry was still current but past the TTL: discarded
    MISS = auto()


class TTLCache:
    """LRU byte-capacity cache with Squid-style age-based expiry.

    Args:
        ttl_s: Maximum entry age before it is discarded (Squid: 2 days).
        capacity_bytes: Byte capacity; ``None`` is unbounded.
    """

    def __init__(self, ttl_s: float, capacity_bytes: int | None = None) -> None:
        if ttl_s <= 0:
            raise ValueError(f"ttl must be positive, got {ttl_s}")
        if capacity_bytes is not None and capacity_bytes < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity_bytes}")
        self.ttl_s = ttl_s
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[int, TTLEntry] = OrderedDict()
        self._used_bytes = 0
        self.stale_hits_served = 0
        self.fresh_discards = 0  # current-version entries dropped by age
        #: Lifetime churn counters (monotone, telemetry-readable).
        self.insertions = 0
        self.evictions = 0  # capacity evictions only
        self.invalidations = 0  # age expiries (fresh_discards is the subset
        # whose copy was in fact still current)
        #: Optional :class:`repro.audit.hooks.AuditHooks`; one pointer
        #: check per mutation when detached (the default).
        self.audit = None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def peek(self, key: int) -> TTLEntry | None:
        """Return the entry for ``key`` without touching LRU order or age."""
        return self._entries.get(key)

    @property
    def used_bytes(self) -> int:
        """Current total size of cached objects."""
        return self._used_bytes

    @property
    def occupancy_bytes(self) -> int:
        """Protocol-named alias of :attr:`used_bytes` (telemetry binding)."""
        return self._used_bytes

    def lookup(self, key: int, version: int, now: float) -> TTLLookupResult:
        """Age-based lookup: freshness is judged by wall clock, not version."""
        entry = self._entries.get(key)
        if entry is None:
            return TTLLookupResult.MISS
        if now - entry.stored_at > self.ttl_s:
            # Age-expired.  If the copy was actually still current, this is
            # the "discarding perfectly good data" distortion.
            if entry.version >= version:
                self.fresh_discards += 1
            self.invalidations += 1
            self._delete(key)
            return TTLLookupResult.EXPIRED
        self._entries.move_to_end(key)
        if entry.version < version:
            # Young enough by age, but the object changed: a weak-
            # consistency cache serves the stale bytes as a "hit".
            self.stale_hits_served += 1
            return TTLLookupResult.STALE_HIT
        return TTLLookupResult.FRESH_HIT

    def insert(self, key: int, size: int, version: int, now: float) -> list[int]:
        """Insert/refresh an object; returns keys evicted for space."""
        if size < 0:
            raise ValueError(f"object size must be non-negative, got {size}")
        if self.capacity_bytes is not None and size > self.capacity_bytes:
            return []
        existing = self._entries.pop(key, None)
        if existing is not None:
            self._used_bytes -= existing.size
        self._entries[key] = TTLEntry(size=size, version=version, stored_at=now)
        self._used_bytes += size
        self.insertions += 1
        evicted: list[int] = []
        if self.capacity_bytes is not None:
            while self._used_bytes > self.capacity_bytes and self._entries:
                victim = next(iter(self._entries))
                self._delete(victim)
                self.evictions += 1
                evicted.append(victim)
        if self.audit is not None:
            self.audit.check_cache_bounds(self)
        return evicted

    def _delete(self, key: int) -> None:
        entry = self._entries.pop(key)
        self._used_bytes -= entry.size
