"""Negative result caching (section 2.2.2's "possible avenue").

Among the approaches the paper lists for attacking the residual miss
classes is "negative result caching [27, 5]" -- remembering, for a while,
that a URL returned an error so that repeated requests for it do not
travel to the origin server again (the DNS and Harvest lineage of the
idea).

The paper does not evaluate it; we implement it as the extension the
related-work pointer suggests, and the ``negative_caching`` ablation
measures how many error-bound server contacts it saves on each workload.
"""

from __future__ import annotations

from collections import OrderedDict

#: Packed size of one remembered error (key + timestamp), mirroring the
#: hint system's 16-byte record accounting.
_NEGATIVE_RECORD_BYTES = 16


class NegativeResultCache:
    """Remembers recent error results per object for a bounded time.

    Args:
        ttl_s: How long a cached error result stays valid.  DNS-style
            negative TTLs are short; errors do clear up.
        max_entries: Bound on remembered errors (LRU-evicted beyond it).
    """

    def __init__(self, ttl_s: float, max_entries: int = 65536) -> None:
        if ttl_s <= 0:
            raise ValueError(f"ttl must be positive, got {ttl_s}")
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.ttl_s = ttl_s
        self.max_entries = max_entries
        self._entries: OrderedDict[int, float] = OrderedDict()  # key -> stored_at
        self.hits = 0
        self.misses = 0
        #: Optional :class:`repro.audit.hooks.AuditHooks`; one pointer
        #: check per record when detached (the default).
        self.audit = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def occupancy_bytes(self) -> int:
        """Nominal bytes held: one packed record per remembered error.

        Negative entries store a key and a timestamp -- the same 16-byte
        record arithmetic the hint stores use -- exposed under the
        :class:`repro.cache.policy.ReplacementPolicy` protocol's occupancy
        name so telemetry needs no per-class accessor.
        """
        return _NEGATIVE_RECORD_BYTES * len(self._entries)

    def check(self, key: int, now: float) -> bool:
        """Is a fresh negative result cached for ``key``?

        A hit means the proxy can answer the error locally instead of
        contacting the origin server again.
        """
        stored_at = self._entries.get(key)
        if stored_at is None or now - stored_at > self.ttl_s:
            if stored_at is not None:
                del self._entries[key]
            self.misses += 1
            return False
        self._entries.move_to_end(key)
        self.hits += 1
        return True

    def record(self, key: int, now: float) -> None:
        """Remember that ``key`` just produced an error."""
        self._entries.pop(key, None)
        self._entries[key] = now
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        if self.audit is not None:
            self.audit.check_negative_bounds(self)

    @property
    def hit_ratio(self) -> float:
        """Fraction of error lookups answered locally."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
