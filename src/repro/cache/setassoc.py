"""Generic k-way set-associative cache with per-set LRU replacement.

The prototype stores location hints "in a simple array managed as a k-way
associative cache" indexed by the URL hash (paper section 3.2.1): fixed
record count, fixed record size, one "disk access" per lookup when cold.
This module provides the associative structure over arbitrary Python
values; :mod:`repro.hints.hintcache` specializes it to 16-byte hint
records, and :mod:`repro.hints.storage` maps the same layout onto an mmap.

A cache with ``n_sets`` sets and associativity ``k`` holds at most
``n_sets * k`` entries.  Keys hash to a set by ``key % n_sets``; within a
set, the least recently used entry is displaced on conflict.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Iterator, TypeVar

V = TypeVar("V")


class SetAssociativeCache(Generic[V]):
    """Fixed-capacity k-way set-associative map from int keys to values.

    Args:
        n_sets: Number of sets (rows); must be positive.
        associativity: Entries per set (the paper's prototype uses 4).
    """

    def __init__(self, n_sets: int, associativity: int = 4) -> None:
        if n_sets <= 0:
            raise ValueError(f"n_sets must be positive, got {n_sets}")
        if associativity <= 0:
            raise ValueError(f"associativity must be positive, got {associativity}")
        self.n_sets = n_sets
        self.associativity = associativity
        self._sets: list[OrderedDict[int, V]] = [OrderedDict() for _ in range(n_sets)]
        self._size = 0
        #: Entries displaced by set conflicts since construction.
        self.conflict_evictions = 0
        #: New keys stored since construction (in-place updates excluded).
        self.insertions = 0
        #: Optional :class:`repro.audit.hooks.AuditHooks`; one pointer
        #: check per insertion when detached (the default).
        self.audit = None

    @property
    def capacity(self) -> int:
        """Maximum number of entries the cache can hold."""
        return self.n_sets * self.associativity

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: int) -> bool:
        return key in self._sets[key % self.n_sets]

    def _set_for(self, key: int) -> OrderedDict[int, V]:
        return self._sets[key % self.n_sets]

    def get(self, key: int) -> V | None:
        """Return the value for ``key`` (refreshing its LRU position)."""
        bucket = self._set_for(key)
        value = bucket.get(key)
        if value is not None or key in bucket:
            bucket.move_to_end(key)
        return value

    def peek(self, key: int) -> V | None:
        """Return the value for ``key`` without touching LRU order."""
        return self._set_for(key).get(key)

    def put(self, key: int, value: V) -> tuple[int, V] | None:
        """Insert or update ``key``; returns the displaced ``(key, value)``.

        Returns ``None`` when nothing was displaced.  Displacement only
        happens on set conflicts -- the structural cost of the fixed-layout
        array that Figure 5's small hint caches pay.
        """
        bucket = self._set_for(key)
        if key in bucket:
            bucket[key] = value
            bucket.move_to_end(key)
            return None
        displaced: tuple[int, V] | None = None
        if len(bucket) >= self.associativity:
            displaced = bucket.popitem(last=False)
            self._size -= 1
            self.conflict_evictions += 1
        bucket[key] = value
        self._size += 1
        self.insertions += 1
        if self.audit is not None:
            self.audit.check_setassoc_bounds(self)
        return displaced

    def remove(self, key: int) -> bool:
        """Remove ``key`` if present; True when something was removed."""
        bucket = self._set_for(key)
        if key not in bucket:
            return False
        del bucket[key]
        self._size -= 1
        return True

    def items(self) -> Iterator[tuple[int, V]]:
        """Iterate over all ``(key, value)`` pairs (set by set)."""
        for bucket in self._sets:
            yield from bucket.items()

    def clear(self) -> None:
        """Drop every entry (conflict counter is preserved)."""
        for bucket in self._sets:
            bucket.clear()
        self._size = 0

    def load_factor(self) -> float:
        """Fraction of capacity currently occupied."""
        return self._size / self.capacity
