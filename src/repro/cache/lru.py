"""Byte-capacity LRU object cache with version-aware lookups.

This is the data cache every proxy in the simulation runs.  Capacity is in
bytes (proxy disks in the paper are 5 GB); ``capacity=None`` models the
paper's "infinite cache" configurations.  Strong consistency is modelled by
object versions: a lookup that finds an entry with an older version counts
as a *stale hit*, the cached copy is invalidated, and the caller treats the
access as a communication miss.

Replacement policy is factored into four override points (``_touch``,
``_victim_key``, ``_note_add``/``_note_remove``/``_note_clear``) so
:mod:`repro.cache.policy` can derive LFU and Random variants without
duplicating the version/consistency/accounting machinery.  The base class
*is* the LRU policy; every hook default reproduces the original behaviour
exactly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum, auto
from typing import Callable, Iterator


@dataclass(slots=True)
class CacheEntry:
    """One cached object: its size in bytes and the version stored."""

    size: int
    version: int


class LookupResult(Enum):
    """Outcome of a version-aware cache lookup."""

    HIT = auto()
    MISS = auto()
    STALE = auto()  # present, but an older version: invalidated on lookup


class LRUCache:
    """LRU cache evicting by total byte size.

    Args:
        capacity_bytes: Maximum total size of cached objects; ``None`` means
            unbounded (the paper's infinite-cache configurations).
        on_evict: Optional callback ``(key, entry, reason)`` invoked whenever
            an object leaves the cache.  ``reason`` is ``"capacity"``,
            ``"invalidate"``, or ``"remove"``.  The hint system uses this to
            advertise non-presence (the prototype's *invalidate* command).

    Objects larger than the capacity are simply not cached (they would evict
    everything and immediately be evicted themselves).
    """

    #: Replacement-policy identifier (subclasses override).
    policy_name = "lru"

    def __init__(
        self,
        capacity_bytes: int | None = None,
        on_evict: Callable[[int, CacheEntry, str], None] | None = None,
    ) -> None:
        if capacity_bytes is not None and capacity_bytes < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._on_evict = on_evict
        self._entries: OrderedDict[int, CacheEntry] = OrderedDict()
        self._used_bytes = 0
        #: Lifetime churn counters (monotone; plain ints so the hot path
        #: pays one addition -- telemetry reads them via callbacks).
        self.insertions = 0
        self.evictions = 0  # capacity evictions only
        self.invalidations = 0  # consistency invalidations (incl. stale hits)
        # Objects this cache has ever stored, with the last stored version;
        # the miss classifier uses it to tell capacity misses (seen before,
        # same version) from compulsory misses (never seen).
        self._ever_stored: dict[int, int] = {}
        #: Keys whose *latest* insert was refused for exceeding capacity.
        #: Holder bookkeeping outside the cache (hint informs) may still
        #: advertise these, so audits exempt them from presence checks.
        self.oversize_rejections: set[int] = set()
        #: Optional :class:`repro.audit.hooks.AuditHooks`; when attached,
        #: every mutation re-checks the byte-accounting bounds.  Costs one
        #: pointer check per mutation when ``None`` (the default).
        self.audit = None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[int]:
        return iter(self._entries)

    @property
    def used_bytes(self) -> int:
        """Current total size of cached objects."""
        return self._used_bytes

    @property
    def occupancy_bytes(self) -> int:
        """Protocol-named alias of :attr:`used_bytes`.

        Every cache-like structure (data caches, hint stores, negative
        caches) exposes ``occupancy_bytes``, so telemetry can bind any of
        them without per-class accessor fallbacks.
        """
        return self._used_bytes

    def peek(self, key: int) -> CacheEntry | None:
        """Return the entry for ``key`` without touching LRU order."""
        return self._entries.get(key)

    def ever_stored_version(self, key: int) -> int | None:
        """Last version ever stored for ``key``, or None if never stored."""
        return self._ever_stored.get(key)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def lookup(self, key: int, version: int) -> LookupResult:
        """Version-aware lookup; promotes on hit, invalidates stale copies."""
        entry = self._entries.get(key)
        if entry is None:
            return LookupResult.MISS
        if entry.version < version:
            self._delete(key, "invalidate")
            return LookupResult.STALE
        self._touch(key)
        return LookupResult.HIT

    def insert(self, key: int, size: int, version: int) -> list[int]:
        """Insert or refresh an object; returns keys evicted to make room."""
        if size < 0:
            raise ValueError(f"object size must be non-negative, got {size}")
        if self.capacity_bytes is not None and size > self.capacity_bytes:
            # Uncacheably large for this cache; record the sighting anyway.
            # A surviving *older* copy under the same key is invalid now
            # (strong consistency: the object changed), so it must not
            # keep serving hits -- invalidate it on the way out.
            stale = self._entries.get(key)
            if stale is not None and stale.version < version:
                self._delete(key, "invalidate")
            self._ever_stored[key] = max(self._ever_stored.get(key, -1), version)
            self.oversize_rejections.add(key)
            if self.audit is not None:
                self.audit.check_cache_bounds(self)
            return []
        existing = self._entries.pop(key, None)
        if existing is not None:
            self._used_bytes -= existing.size
        self._entries[key] = CacheEntry(size=size, version=version)
        self._used_bytes += size
        self.insertions += 1
        self._note_add(key, new=existing is None)
        if version > self._ever_stored.get(key, -1):
            self._ever_stored[key] = version
        self.oversize_rejections.discard(key)
        if self.capacity_bytes is not None and self._used_bytes > self.capacity_bytes:
            evicted = self._evict_to_fit(protect=key)
        else:
            evicted = []
        if self.audit is not None:
            self.audit.check_cache_bounds(self)
        return evicted

    def touch_lru_demote(self, key: int) -> None:
        """Age ``key`` by moving it to the eviction end of the LRU list.

        The update-push algorithm "ages" objects that keep changing without
        being read (paper section 4.1.2); this is that mechanism.
        """
        if key in self._entries:
            self._entries.move_to_end(key, last=False)

    def invalidate(self, key: int) -> bool:
        """Drop ``key`` due to a consistency invalidation; True if present."""
        if key not in self._entries:
            return False
        self._delete(key, "invalidate")
        return True

    def remove(self, key: int) -> bool:
        """Administratively drop ``key``; True if it was present."""
        if key not in self._entries:
            return False
        self._delete(key, "remove")
        return True

    def clear(self, *, notify: bool = False, reason: str = "remove") -> list[int]:
        """Drop every entry at once; returns the keys that were present.

        Models a node crash losing its volatile contents.  With
        ``notify=False`` (the default) the ``on_evict`` callback is *not*
        invoked -- a crashed node cannot announce what it lost, which is
        precisely how stale hints are born; the caller decides what, if
        anything, to tell the metadata layer.
        """
        keys = list(self._entries)
        if notify and self._on_evict is not None:
            for key in keys:
                self._delete(key, reason)
        else:
            self._entries.clear()
            self._used_bytes = 0
            self._note_clear()
        return keys

    # ------------------------------------------------------------------
    # replacement-policy hooks (the base class IS the LRU policy; see
    # repro.cache.policy for the LFU and Random overrides)
    # ------------------------------------------------------------------
    def _touch(self, key: int) -> None:
        """Record a hit on ``key`` (LRU: promote to most-recently-used)."""
        self._entries.move_to_end(key)

    def _victim_key(self, protect: int) -> int:
        """Choose the next capacity victim; never ``protect``.

        ``protect`` is the key whose insert triggered the eviction -- an
        incoming object is never its own victim, so the holder metadata a
        caller publishes right after ``insert`` stays truthful.  For LRU
        the front of the ordered dict is the least-recently-used entry and
        the protected key sits at the back, so the skip never fires until
        the protected key is the sole survivor (at which point the byte
        budget is already met and :meth:`_evict_to_fit` has stopped).
        """
        for key in self._entries:
            if key != protect:
                return key
        raise RuntimeError("no evictable entry")  # pragma: no cover

    def _note_add(self, key: int, *, new: bool) -> None:
        """Bookkeeping hook: ``key`` was stored (``new``=False on refresh)."""

    def _note_remove(self, key: int) -> None:
        """Bookkeeping hook: ``key`` left the cache via :meth:`_delete`."""

    def _note_clear(self) -> None:
        """Bookkeeping hook: every entry was dropped without callbacks."""

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _evict_to_fit(self, protect: int) -> list[int]:
        evicted: list[int] = []
        if self.capacity_bytes is None:
            return evicted
        while self._used_bytes > self.capacity_bytes and len(self._entries) > 1:
            key = self._victim_key(protect)
            self._delete(key, "capacity")
            evicted.append(key)
        return evicted

    def _delete(self, key: int, reason: str) -> None:
        entry = self._entries.pop(key)
        self._used_bytes -= entry.size
        self._note_remove(key)
        if reason == "capacity":
            self.evictions += 1
        elif reason == "invalidate":
            self.invalidations += 1
        if self._on_evict is not None:
            self._on_evict(key, entry, reason)
