"""Miss taxonomy (the categories of the paper's Figure 2).

Every access resolves to an :class:`AccessOutcome`: a hit, or a miss
carrying a :class:`MissClass`:

* ``ERROR`` -- the origin reply is an error.
* ``UNCACHABLE`` -- the request must contact the server (CGI / non-GET /
  cache-control), regardless of cache contents.
* ``COMPULSORY`` -- first access to the object by this cache (cold miss).
* ``COMMUNICATION`` -- the object was cached but invalidated by an update
  (or the cached copy is older than the requested version).
* ``CAPACITY`` -- the object was cached at the current version but was
  evicted to make room for other data.

:class:`MissClassifier` wraps an :class:`~repro.cache.lru.LRUCache` and
applies the paper's precedence rules, accumulating both per-request and
per-byte counts (Figure 2 shows both).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto

from repro.cache.lru import LookupResult, LRUCache
from repro.traces.records import Request


class MissClass(Enum):
    """Why a request missed (Figure 2 categories)."""

    ERROR = auto()
    UNCACHABLE = auto()
    COMPULSORY = auto()
    COMMUNICATION = auto()
    CAPACITY = auto()


@dataclass(frozen=True)
class AccessOutcome:
    """Result of classifying one access against one cache."""

    hit: bool
    miss_class: MissClass | None = None

    def __post_init__(self) -> None:
        if self.hit == (self.miss_class is not None):
            raise ValueError("exactly one of hit / miss_class must be set")


@dataclass
class MissCounts:
    """Request and byte counters per access outcome."""

    requests: dict[str, int] = field(
        default_factory=lambda: {c.name.lower(): 0 for c in MissClass} | {"hit": 0}
    )
    request_bytes: dict[str, int] = field(
        default_factory=lambda: {c.name.lower(): 0 for c in MissClass} | {"hit": 0}
    )

    def record(self, outcome: AccessOutcome, size: int) -> None:
        key = "hit" if outcome.hit else outcome.miss_class.name.lower()
        self.requests[key] += 1
        self.request_bytes[key] += size

    @property
    def total_requests(self) -> int:
        return sum(self.requests.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.request_bytes.values())

    def miss_ratio(self, miss_class: MissClass | None = None) -> float:
        """Fraction of requests that missed (optionally: in one class)."""
        total = self.total_requests
        if total == 0:
            return 0.0
        if miss_class is None:
            return (total - self.requests["hit"]) / total
        return self.requests[miss_class.name.lower()] / total

    def byte_miss_ratio(self, miss_class: MissClass | None = None) -> float:
        """Fraction of bytes that missed (optionally: in one class)."""
        total = self.total_bytes
        if total == 0:
            return 0.0
        if miss_class is None:
            return (total - self.request_bytes["hit"]) / total
        return self.request_bytes[miss_class.name.lower()] / total


class MissClassifier:
    """Classify accesses against a single LRU cache (Figure 2 experiment).

    The classifier owns the cache: :meth:`access` performs the lookup,
    classifies the outcome, inserts the object on (cacheable, non-error)
    misses, and updates the counters.
    """

    def __init__(self, cache: LRUCache) -> None:
        self.cache = cache
        self.counts = MissCounts()

    def access(self, request: Request) -> AccessOutcome:
        """Process one trace record; returns its classified outcome."""
        outcome = self._classify(request)
        self.counts.record(outcome, request.size)
        return outcome

    def _classify(self, request: Request) -> AccessOutcome:
        if request.error:
            return AccessOutcome(hit=False, miss_class=MissClass.ERROR)
        if not request.cacheable:
            return AccessOutcome(hit=False, miss_class=MissClass.UNCACHABLE)

        result = self.cache.lookup(request.object_id, request.version)
        if result is LookupResult.HIT:
            return AccessOutcome(hit=True)

        if result is LookupResult.STALE:
            miss_class = MissClass.COMMUNICATION
        else:
            last_version = self.cache.ever_stored_version(request.object_id)
            if last_version is None:
                miss_class = MissClass.COMPULSORY
            elif last_version < request.version:
                # The evicted copy would have been invalidated anyway.
                miss_class = MissClass.COMMUNICATION
            else:
                miss_class = MissClass.CAPACITY
        self.cache.insert(request.object_id, request.size, request.version)
        return AccessOutcome(hit=False, miss_class=miss_class)
