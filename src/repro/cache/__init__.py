"""Cache substrate: data caches and miss taxonomy.

* :class:`repro.cache.lru.LRUCache` -- byte-capacity LRU object cache with
  version-aware lookups (strong consistency via invalidation, paper
  section 2.2.1).
* :class:`repro.cache.setassoc.SetAssociativeCache` -- generic k-way
  set-associative cache with per-set LRU, the structure the prototype uses
  for hint storage (section 3.2.1).
* :class:`repro.cache.classify.MissClassifier` -- classifies each miss as
  compulsory / capacity / communication / error / uncachable, the taxonomy
  of Figure 2.
* :mod:`repro.cache.policy` -- pluggable replacement policies behind the
  :class:`~repro.cache.policy.ReplacementPolicy` protocol: LRU (the
  default), LFU with recency tie-break, and seeded Random replacement,
  selected per level via :class:`~repro.cache.policy.PolicySpec`.
"""

from repro.cache.classify import AccessOutcome, MissClass, MissClassifier
from repro.cache.lru import CacheEntry, LRUCache
from repro.cache.negative import NegativeResultCache
from repro.cache.policy import (
    DEFAULT_POLICY,
    LFUCache,
    PolicySpec,
    RandomCache,
    ReplacementPolicy,
    parse_policy_map,
    parse_policy_spec,
    policy_payload,
)
from repro.cache.setassoc import SetAssociativeCache
from repro.cache.ttl import TTLCache, TTLLookupResult

__all__ = [
    "AccessOutcome",
    "CacheEntry",
    "DEFAULT_POLICY",
    "LFUCache",
    "LRUCache",
    "MissClass",
    "MissClassifier",
    "NegativeResultCache",
    "PolicySpec",
    "RandomCache",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "TTLCache",
    "TTLLookupResult",
    "parse_policy_map",
    "parse_policy_spec",
    "policy_payload",
]
