"""Pluggable per-level replacement policies.

The paper's architecture comparison fixes LRU at every cache level, but its
conclusions about hierarchy vs. hints hinge on per-level hit rates -- which
the replacement policy directly controls.  This module makes the policy a
construction-time parameter:

* :class:`ReplacementPolicy` -- the structural protocol every data cache
  satisfies (version-aware ``lookup``/``insert``, eviction callbacks,
  ``occupancy_bytes``).
* :class:`LFUCache` -- least-frequently-used with recency tie-break, the
  classic frequency-based alternative.
* :class:`RandomCache` -- seeded uniform-random replacement, the policy the
  networks-of-caches analysis (arXiv 1202.4880) treats exactly.
* :class:`PolicySpec` -- a picklable value naming a policy (plus the RNG
  seed for Random), carried on architecture constructors and
  :class:`~repro.runner.specs.ArchitectureSpec` kwargs so worker processes
  rebuild identical caches, and fingerprinted by
  :func:`repro.runner.fingerprint.simulation_fingerprint` so trace-cache
  addresses and golden snapshots key on the policy.

All three policies share :class:`~repro.cache.lru.LRUCache`'s machinery --
version handling, byte accounting, oversize rejection, audit hooks -- and
differ only in the four policy hooks (``_touch``, ``_victim_key``, and the
add/remove/clear bookkeeping).  The base class is the LRU policy itself,
byte-identical to its pre-policy behaviour, which is what keeps every
pre-existing golden snapshot valid under the default spec.

The analytic cross-check lives in :mod:`repro.analytic`: a Che-approximation
predictor for LRU and the exact TTL-style formula for Random, run as a third
oracle by ``python -m repro.audit``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterator, Protocol, runtime_checkable

from repro.cache.lru import CacheEntry, LookupResult, LRUCache
from repro.common.ids import mix64

#: Recognized policy names, in the order the CLI documents them.
POLICY_NAMES = ("lru", "lfu", "random")

#: Cache levels a policy map may address (``parse_policy_map``).
POLICY_LEVELS = ("l1", "l2", "l3")


@runtime_checkable
class ReplacementPolicy(Protocol):
    """Structural protocol of a byte-capacity, version-aware data cache.

    Everything the architectures, kernels, telemetry bindings, and audit
    hooks touch on a data cache is listed here; any class satisfying it
    (``LRUCache`` and its policy subclasses do) can sit at a cache level.
    """

    capacity_bytes: int | None
    policy_name: str
    insertions: int
    evictions: int
    invalidations: int
    oversize_rejections: set[int]

    def lookup(self, key: int, version: int) -> LookupResult: ...

    def insert(self, key: int, size: int, version: int) -> list[int]: ...

    def invalidate(self, key: int) -> bool: ...

    def remove(self, key: int) -> bool: ...

    def clear(self, *, notify: bool = ..., reason: str = ...) -> list[int]: ...

    def peek(self, key: int) -> CacheEntry | None: ...

    def ever_stored_version(self, key: int) -> int | None: ...

    def touch_lru_demote(self, key: int) -> None: ...

    def __len__(self) -> int: ...

    def __contains__(self, key: int) -> bool: ...

    def __iter__(self) -> Iterator[int]: ...

    @property
    def occupancy_bytes(self) -> int: ...


class LFUCache(LRUCache):
    """Least-frequently-used eviction with recency tie-break.

    Every hit and every (re)insert counts as one access.  The capacity
    victim is the entry with the fewest accesses; among ties the least
    recently used goes first (the underlying ordered dict keeps recency
    order, so the first minimum found scanning front-to-back is the
    oldest).  ``touch_lru_demote`` -- the update-push aging mechanism --
    zeroes the count as well as moving the entry to the eviction end, so
    an aged object is the next victim among its frequency class.

    Victim selection scans the resident entries (O(n) per eviction).  At
    simulation scale caches hold thousands of entries, which keeps the
    scan cheap; a heap would only pay off orders of magnitude beyond the
    paper's configurations.
    """

    policy_name = "lfu"

    def __init__(
        self,
        capacity_bytes: int | None = None,
        on_evict: Callable[[int, CacheEntry, str], None] | None = None,
    ) -> None:
        super().__init__(capacity_bytes, on_evict)
        self._freq: dict[int, int] = {}

    def _touch(self, key: int) -> None:
        self._entries.move_to_end(key)
        self._freq[key] += 1

    def _note_add(self, key: int, *, new: bool) -> None:
        self._freq[key] = 1 if new else self._freq[key] + 1

    def _note_remove(self, key: int) -> None:
        del self._freq[key]

    def _note_clear(self) -> None:
        self._freq.clear()

    def touch_lru_demote(self, key: int) -> None:
        if key in self._entries:
            self._entries.move_to_end(key, last=False)
            self._freq[key] = 0

    def _victim_key(self, protect: int) -> int:
        freq = self._freq
        best_key = -1
        best_freq: int | None = None
        for key in self._entries:
            if key == protect:
                continue
            count = freq[key]
            if best_freq is None or count < best_freq:
                best_key, best_freq = key, count
        if best_freq is None:  # pragma: no cover - guarded by _evict_to_fit
            raise RuntimeError("no evictable entry")
        return best_key


class RandomCache(LRUCache):
    """Uniform-random replacement from a seeded stream.

    The victim is drawn uniformly from the resident entries (excluding the
    object whose insert forced the eviction) by a private
    :class:`random.Random`, so a run is a pure function of (trace, seed):
    the draw sequence depends only on the sequence of evictions, which both
    simulation engines perform identically.  Recency is deliberately not
    tracked on hits (``_touch`` is a no-op): random replacement is the
    memoryless baseline the analytic model treats exactly.

    An indexable key list with a position map gives O(1) victim draws and
    O(1) swap-with-last removal.
    """

    policy_name = "random"

    def __init__(
        self,
        capacity_bytes: int | None = None,
        on_evict: Callable[[int, CacheEntry, str], None] | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(capacity_bytes, on_evict)
        self.seed = seed
        self._rng = random.Random(seed)
        self._keys: list[int] = []
        self._pos: dict[int, int] = {}

    def _touch(self, key: int) -> None:
        pass

    def _note_add(self, key: int, *, new: bool) -> None:
        if new:
            self._pos[key] = len(self._keys)
            self._keys.append(key)

    def _note_remove(self, key: int) -> None:
        index = self._pos.pop(key)
        last = self._keys.pop()
        if last != key:
            self._keys[index] = last
            self._pos[last] = index

    def _note_clear(self) -> None:
        self._keys.clear()
        self._pos.clear()

    def _victim_key(self, protect: int) -> int:
        count = len(self._keys)
        protected_at = self._pos.get(protect)
        if protected_at is None:
            return self._keys[self._rng.randrange(count)]
        # Draw from [0, n-1) and skip over the protected slot, keeping the
        # distribution uniform over the other n-1 residents.
        index = self._rng.randrange(count - 1)
        if index >= protected_at:
            index += 1
        return self._keys[index]


_POLICY_CLASSES = {"lru": LRUCache, "lfu": LFUCache, "random": RandomCache}


@dataclass(frozen=True)
class PolicySpec:
    """A picklable, fingerprintable replacement-policy choice.

    Attributes:
        name: One of ``lru`` (default), ``lfu``, ``random``.
        seed: RNG seed for ``random`` (ignored by deterministic policies).
            Each cache built from the spec mixes in the caller's ``salt``
            (its node index), so sibling proxies draw independent victim
            streams while staying pure functions of ``(spec, salt)``.

    Seed-derivation audit (shard-count invariance): every ``salt`` a
    construction site passes is **stable node identity** -- the L1 node
    index, ``n_l1 + node`` for L2, ``n_l1 + n_l2`` for the L3 root --
    never an enumeration-order counter, so ``(seed << 32) ^ salt`` is a
    pure function of (spec, topology, node).  The sharded runner layers
    partition identity on top the same way: :meth:`for_partition` mixes
    the virtual partition index (not the physical shard or submission
    order) into the seed, so a partition's victim stream is identical
    whichever shard engine or worker process ends up running it.
    """

    name: str = "lru"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.name not in _POLICY_CLASSES:
            raise ValueError(
                f"unknown policy {self.name!r}; expected one of {POLICY_NAMES}"
            )

    @property
    def is_default(self) -> bool:
        """True for plain LRU -- the policy every pre-policy run used."""
        return self.name == "lru"

    def build(
        self,
        capacity_bytes: int | None = None,
        on_evict: Callable[[int, CacheEntry, str], None] | None = None,
        *,
        salt: int = 0,
    ):
        """Construct a fresh cache under this policy.

        ``salt`` decorrelates the Random policy's victim streams across
        the caches of one architecture (callers pass a per-level node
        index); deterministic policies ignore it.
        """
        if self.name == "random":
            return RandomCache(
                capacity_bytes, on_evict, seed=(self.seed << 32) ^ salt
            )
        return _POLICY_CLASSES[self.name](capacity_bytes, on_evict)

    def for_partition(self, partition: int) -> "PolicySpec":
        """The spec for one virtual partition of a sharded run.

        Derives the partition's RNG seed from stable identity -- a 64-bit
        mix of (base seed, partition index) -- never from enumeration
        order, so the stream is invariant to how partitions are grouped
        into shards or scheduled across workers.  Deterministic policies
        return ``self`` unchanged (their behaviour has no seed to shift,
        and keeping the object identical keeps payloads identical).
        """
        if self.name != "random":
            return self
        return PolicySpec(self.name, seed=mix64(self.seed, partition))

    def to_payload(self) -> dict:
        """Canonical JSON-ready identity (equal behaviour, equal payload).

        The seed only shapes behaviour under ``random``, so it is omitted
        elsewhere -- ``PolicySpec("lfu", seed=5)`` and
        ``PolicySpec("lfu")`` fingerprint identically, as they should.
        """
        payload: dict = {"name": self.name}
        if self.name == "random":
            payload["seed"] = self.seed
        return payload


#: The spec every construction site defaults to: behaviour-identical to the
#: pre-policy hardcoded ``LRUCache`` calls.
DEFAULT_POLICY = PolicySpec("lru")


def parse_policy_spec(text: str) -> PolicySpec:
    """Parse one policy token: ``lfu``, ``random``, or ``random:SEED``."""
    name, _, seed_text = text.strip().partition(":")
    name = name.lower()
    if name not in _POLICY_CLASSES:
        raise ValueError(
            f"unknown policy {name!r}; expected one of {POLICY_NAMES}"
        )
    if not seed_text:
        return PolicySpec(name)
    if name != "random":
        raise ValueError(f"policy {name!r} takes no seed (got {text!r})")
    try:
        seed = int(seed_text)
    except ValueError:
        raise ValueError(f"bad policy seed in {text!r}") from None
    return PolicySpec(name, seed=seed)


def parse_policy_map(text: str) -> dict[str, PolicySpec]:
    """Parse the CLI's ``--policy`` argument into a level -> spec map.

    Accepts either one bare policy for every level (``lfu``) or
    comma-separated per-level assignments (``l1=lfu,l2=lru,l3=random``,
    any subset; unnamed levels keep the LRU default).  A ``random`` token
    may carry a seed: ``l1=random:7``.
    """
    text = text.strip()
    if not text:
        raise ValueError("empty --policy argument")
    if "=" not in text:
        spec = parse_policy_spec(text)
        return {level: spec for level in POLICY_LEVELS}
    policies: dict[str, PolicySpec] = {}
    for part in text.split(","):
        level, sep, token = part.strip().partition("=")
        level = level.strip().lower()
        if not sep or level not in POLICY_LEVELS:
            raise ValueError(
                f"bad --policy assignment {part.strip()!r}; expected "
                f"level=policy with level in {POLICY_LEVELS}"
            )
        if level in policies:
            raise ValueError(f"duplicate --policy level {level!r}")
        policies[level] = parse_policy_spec(token)
    return policies


def policy_payload(
    policies: "dict[str, PolicySpec] | None",
) -> dict[str, dict] | None:
    """Canonical fingerprint payload for a level -> spec map.

    Default (LRU) levels are omitted, and an all-default map collapses to
    ``None`` -- so runs that never mention policies keep their pre-policy
    content addresses, byte for byte.
    """
    if not policies:
        return None
    payload = {
        level: spec.to_payload()
        for level, spec in sorted(policies.items())
        if not spec.is_default
    }
    return payload or None
