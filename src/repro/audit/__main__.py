"""Entry point: ``python -m repro.audit``."""

from repro.audit.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
