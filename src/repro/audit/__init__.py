"""Differential audit subsystem: oracles + runtime invariant checks.

Two complementary ways to catch the simulator lying:

* :mod:`repro.audit.oracles` -- deliberately naive twins of the
  production components (a list-scan LRU, an event-log hint directory, a
  straight-line data-hierarchy evaluator).  They are too slow to run
  experiments on and share no code with production, which is the point:
  :mod:`repro.audit.differential` drives both implementations through
  the same random inputs and any divergence is a bug in one of them.
* :mod:`repro.audit.hooks` -- an :class:`~repro.audit.hooks.AuditHooks`
  object the engine, architectures, and caches call at checkpoints when
  attached (``run_simulation(..., audit=...)``).  It re-verifies the
  invariants the metrics depend on (byte accounting, hint/ground-truth
  agreement, ledger sums, counter partitions, telemetry telescoping)
  and raises :class:`~repro.audit.hooks.AuditError` on first breakage.
  Detached (the default) it costs one pointer check per site, exactly
  like ``journey_sink`` and ``telemetry``.

``python -m repro.audit`` runs the architecture x fault-plan audit
matrix plus seeded differential trials -- the CI gate.
"""

from repro.audit.differential import (
    run_directory_differential,
    run_engine_differential,
    run_lru_differential,
)
from repro.audit.hooks import AuditError, AuditHooks
from repro.audit.oracles import (
    OracleHintDirectory,
    OracleLRUCache,
    oracle_data_hierarchy_run,
)

__all__ = [
    "AuditError",
    "AuditHooks",
    "OracleHintDirectory",
    "OracleLRUCache",
    "oracle_data_hierarchy_run",
    "run_directory_differential",
    "run_engine_differential",
    "run_lru_differential",
]
