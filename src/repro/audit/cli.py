"""``python -m repro.audit`` -- the full audit gate.

Two stages, both deterministic:

1. **Audit matrix** -- every architecture x every fault plan (healthy
   plus the eight single-fault kinds), each run over a small synthetic
   trace with :class:`~repro.audit.hooks.AuditHooks` and telemetry
   attached, so every runtime invariant (byte accounting, hint/truth
   agreement, ledger sums, partitions, telescoping) is verified on every
   cell.  Each cell then re-runs on the columnar fast engine, which must
   be byte-identical to the audited reference run -- both engines face
   the gate.
2. **Differential trials** -- seeded random operation streams driven
   through production and oracle twins of the LRU cache, the hint
   directory, and the engine + data hierarchy, demanding bit-for-bit
   agreement.

Exits 0 when every cell and trial is clean, 1 with one problem per line
otherwise (the same contract as ``python -m repro.obs.check``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.audit.differential import (
    random_directory_ops,
    random_fault_plan,
    random_lru_ops,
    random_micro_trace,
    run_directory_differential,
    run_engine_differential,
    run_lru_differential,
)
from repro.audit.hooks import AuditError, AuditHooks
from repro.faults.events import (
    FaultPlan,
    HintBatchLoss,
    LinkDegrade,
    NodeCrash,
    OriginSlowdown,
    StaleHintDrift,
)
from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.directory_arch import CentralizedDirectoryArchitecture
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.hierarchy.icp import IcpHierarchy
from repro.hierarchy.topology import HierarchyTopology
from repro.netmodel.testbed import TestbedCostModel
from repro.obs.telemetry import RunTelemetry
from repro.sim.config import ExperimentConfig
from repro.sim.engine import run_simulation
from repro.traces.synthetic import SyntheticTraceGenerator

ARCHITECTURES = {
    "hierarchy": DataHierarchy,
    "hints": HintHierarchy,
    "directory": CentralizedDirectoryArchitecture,
    "icp": IcpHierarchy,
}

#: One plan per fault kind, active from t=0 (mirrors the failure matrix).
FAULT_KINDS = {
    "none": (),
    "l1_crash": (NodeCrash(time=0.0, kind="l1", node=0),),
    "l2_crash": (NodeCrash(time=0.0, kind="l2", node=0),),
    "l3_crash": (NodeCrash(time=0.0, kind="l3", node=0),),
    "meta_crash": (NodeCrash(time=0.0, kind="meta", node=0),),
    "hint_batch_loss": (HintBatchLoss(time=0.0, prob=0.3),),
    "stale_hint_drift": (StaleHintDrift(time=0.0, ttl_skew_s=120.0),),
    "origin_slowdown": (OriginSlowdown(time=0.0, factor=2.0),),
    "link_degrade": (LinkDegrade(time=0.0, latency_mult=1.5),),
}


def _audit_config() -> ExperimentConfig:
    """Small-but-complete config (the test suite's tiny shape)."""
    return ExperimentConfig(
        topology=HierarchyTopology(clients_per_l1=2, l1_per_l2=4, n_l2=2),
        seed=7,
        trace_scale=0.0002,
        l1_cache_bytes=2 * 1024 * 1024,
        hint_data_cache_bytes=int(1.8 * 1024 * 1024),
        hint_store_bytes=200 * 1024,
    )


def run_matrix(*, verbose: bool = False) -> tuple[list[str], int]:
    """Run the architecture x fault-plan audit matrix, on both engines.

    Each cell runs the reference engine with audit hooks and telemetry
    attached, then the columnar fast engine over a fresh twin of the same
    cell.  The fast run must be byte-identical -- metrics and telemetry
    rows -- to the audited reference run, so the fast engine's outputs
    face every runtime invariant transitively (audit hooks themselves are
    inherently per-request).

    Returns ``(problems, total_checks)``: one problem line per failed
    cell and the number of individual invariant checks performed (each
    engine-parity comparison counts as one check).
    """
    config = _audit_config()
    trace = SyntheticTraceGenerator(config.profile("dec"), seed=config.seed).generate()
    problems: list[str] = []
    total_checks = 0
    for arch_name, arch_cls in sorted(ARCHITECTURES.items()):
        for fault_name, events in sorted(FAULT_KINDS.items()):
            plan = FaultPlan(events=events, seed=config.seed) if events else None
            hooks = AuditHooks()
            telemetry = RunTelemetry(bin_s=6 * 3600.0)
            metrics = None
            try:
                metrics = run_simulation(
                    trace,
                    arch_cls(config.topology, TestbedCostModel()),
                    fault_plan=plan,
                    telemetry=telemetry,
                    audit=hooks,
                )
            except AuditError as error:
                problems.append(f"matrix {arch_name} x {fault_name}: {error}")
            checks = sum(hooks.counts.values())
            if metrics is not None:
                fast_telemetry = RunTelemetry(bin_s=6 * 3600.0)
                fast_metrics = run_simulation(
                    trace,
                    arch_cls(config.topology, TestbedCostModel()),
                    fault_plan=plan,
                    telemetry=fast_telemetry,
                    engine="fast",
                )
                if fast_metrics != metrics:
                    problems.append(
                        f"fast-engine parity {arch_name} x {fault_name}: "
                        "metrics diverge from the audited reference run"
                    )
                if fast_telemetry.rows != telemetry.rows:
                    problems.append(
                        f"fast-engine parity {arch_name} x {fault_name}: "
                        "telemetry rows diverge from the audited reference run"
                    )
                checks += 1
            total_checks += checks
            if verbose:
                print(f"  {arch_name:>10} x {fault_name:<16} {checks:>7} checks")
    return problems, total_checks


def run_differential_trials(
    trials: int, seed: int, *, verbose: bool = False
) -> tuple[list[str], int]:
    """Run seeded random differential trials against every oracle."""
    problems: list[str] = []
    total_ops = 0
    topology = HierarchyTopology(clients_per_l1=2, l1_per_l2=4, n_l2=2)
    for trial in range(trials):
        rng = np.random.default_rng([seed, trial])
        capacity = (None, 64, 256, 1000)[trial % 4]
        delay = (0.0, 30.0)[trial % 2]
        try:
            total_ops += run_lru_differential(random_lru_ops(rng), capacity)
            total_ops += run_directory_differential(
                random_directory_ops(rng), delay=delay
            )
            trace = random_micro_trace(rng, topology, warmup=300.0 if trial % 3 else 0.0)
            plan = random_fault_plan(rng, topology, trace.duration) if trial % 2 else None
            total_ops += run_engine_differential(
                trace,
                topology,
                l1_bytes=(None, 64 * 1024)[trial % 2],
                fault_plan=plan,
                include_uncachable=bool(trial % 3 == 1),
            )
        except AuditError as error:
            problems.append(f"differential trial {trial}: {error}")
        if verbose:
            print(f"  trial {trial}: capacity={capacity} delay={delay} ok")
    return problems, total_ops


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-audit",
        description="Run the audit matrix and oracle differential trials.",
    )
    parser.add_argument(
        "--trials", type=int, default=6, help="differential trials (default 6)"
    )
    parser.add_argument(
        "--seed", type=int, default=1999, help="differential RNG seed"
    )
    parser.add_argument(
        "--skip-matrix", action="store_true", help="differential trials only"
    )
    parser.add_argument(
        "--skip-differential", action="store_true", help="audit matrix only"
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)

    problems: list[str] = []
    if not args.skip_matrix:
        matrix_problems, checks = run_matrix(verbose=args.verbose)
        problems.extend(matrix_problems)
        cells = len(ARCHITECTURES) * len(FAULT_KINDS)
        print(f"audit matrix: {cells} cells, {checks} invariant checks")
    if not args.skip_differential:
        diff_problems, ops = run_differential_trials(
            args.trials, args.seed, verbose=args.verbose
        )
        problems.extend(diff_problems)
        print(f"differential: {args.trials} trials, {ops} operations compared")
    for problem in problems:
        print(problem, file=sys.stderr)
    print("audit clean" if not problems else f"{len(problems)} audit problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
