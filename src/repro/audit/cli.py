"""``python -m repro.audit`` -- the full audit gate.

Three stages, all deterministic:

1. **Audit matrix** -- every architecture x every fault plan (healthy
   plus the eight single-fault kinds), each run over a small synthetic
   trace with :class:`~repro.audit.hooks.AuditHooks` and telemetry
   attached, so every runtime invariant (byte accounting, hint/truth
   agreement, ledger sums, partitions, telescoping) is verified on every
   cell.  Each cell then re-runs on the columnar fast engine, which must
   be byte-identical to the audited reference run -- both engines face
   the gate.  A **policy axis** extends the matrix: space-constrained
   cells running non-default replacement policies (LFU, seeded Random,
   and a mixed per-level map) through the same audit + engine-parity
   treatment, so the pluggable policy layer faces every invariant on
   both engines.
2. **Differential trials** -- seeded random operation streams driven
   through production and oracle twins of the LRU cache, the hint
   directory, and the engine + data hierarchy, demanding bit-for-bit
   agreement.
3. **Predictor check** -- the analytic third oracle
   (:mod:`repro.analytic`): Che (LRU) and exact TTL-style (Random)
   hit-rate predictions compared against the production cache classes
   replaying exchangeable-shuffled trace substreams; disagreement beyond
   :data:`~repro.analytic.PREDICTOR_TOLERANCE` fails the gate.

Exits 0 when every cell, trial, and comparison is clean, 1 with one
problem per line otherwise (the same contract as
``python -m repro.obs.check``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analytic import (
    PREDICTABLE_POLICIES,
    PREDICTOR_TOLERANCE,
    measure_l1_hit_rate,
    predict_l1_hit_rate,
)
from repro.audit.differential import (
    random_directory_ops,
    random_fault_plan,
    random_lru_ops,
    random_micro_trace,
    run_directory_differential,
    run_engine_differential,
    run_lru_differential,
)
from repro.audit.hooks import AuditError, AuditHooks
from repro.cache.policy import PolicySpec
from repro.faults.events import (
    FaultPlan,
    HintBatchLoss,
    LinkDegrade,
    NodeCrash,
    OriginSlowdown,
    StaleHintDrift,
)
from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.directory_arch import CentralizedDirectoryArchitecture
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.hierarchy.icp import IcpHierarchy
from repro.hierarchy.topology import HierarchyTopology
from repro.netmodel.testbed import TestbedCostModel
from repro.obs.telemetry import RunTelemetry
from repro.sim.config import ExperimentConfig
from repro.sim.engine import run_simulation
from repro.traces.synthetic import SyntheticTraceGenerator

ARCHITECTURES = {
    "hierarchy": DataHierarchy,
    "hints": HintHierarchy,
    "directory": CentralizedDirectoryArchitecture,
    "icp": IcpHierarchy,
}

#: One plan per fault kind, active from t=0 (mirrors the failure matrix).
FAULT_KINDS = {
    "none": (),
    "l1_crash": (NodeCrash(time=0.0, kind="l1", node=0),),
    "l2_crash": (NodeCrash(time=0.0, kind="l2", node=0),),
    "l3_crash": (NodeCrash(time=0.0, kind="l3", node=0),),
    "meta_crash": (NodeCrash(time=0.0, kind="meta", node=0),),
    "hint_batch_loss": (HintBatchLoss(time=0.0, prob=0.3),),
    "stale_hint_drift": (StaleHintDrift(time=0.0, ttl_skew_s=120.0),),
    "origin_slowdown": (OriginSlowdown(time=0.0, factor=2.0),),
    "link_degrade": (LinkDegrade(time=0.0, latency_mult=1.5),),
}


#: Policy axis of the audit matrix: space-constrained cells running
#: non-default replacement policies through the full audit + engine-parity
#: treatment.  Capacities come from :func:`_audit_config` at build time so
#: eviction actually happens (an unbounded cache never exercises a victim
#: scan).  Covers LFU and seeded Random on both a plain data hierarchy and
#: an eviction-callback (hint-style) architecture, plus one mixed
#: per-level map and one faulted cell (crash -> clear -> refill under a
#: non-LRU policy).
POLICY_CELLS: dict[str, tuple[str, str, dict]] = {
    "hierarchy x l1=lfu": ("hierarchy", "none", {"l1_policy": PolicySpec("lfu")}),
    "hierarchy x l1=random": (
        "hierarchy",
        "none",
        {"l1_policy": PolicySpec("random", seed=11)},
    ),
    "hierarchy x mixed": (
        "hierarchy",
        "none",
        {
            "l1_policy": PolicySpec("lfu"),
            "l2_policy": PolicySpec("random", seed=3),
            "l2_bytes": 4 * 1024 * 1024,
            "l3_bytes": 8 * 1024 * 1024,
        },
    ),
    "hierarchy x l1=lfu x l1_crash": (
        "hierarchy",
        "l1_crash",
        {"l1_policy": PolicySpec("lfu")},
    ),
    "hints x l1=lfu": ("hints", "none", {"l1_policy": PolicySpec("lfu")}),
    "hints x l1=random": (
        "hints",
        "none",
        {"l1_policy": PolicySpec("random", seed=5)},
    ),
    "icp x l1=random": ("icp", "none", {"l1_policy": PolicySpec("random", seed=7)}),
    "directory x l1=lfu": ("directory", "none", {"l1_policy": PolicySpec("lfu")}),
}


def _audit_config() -> ExperimentConfig:
    """Small-but-complete config (the test suite's tiny shape)."""
    return ExperimentConfig(
        topology=HierarchyTopology(clients_per_l1=2, l1_per_l2=4, n_l2=2),
        seed=7,
        trace_scale=0.0002,
        l1_cache_bytes=2 * 1024 * 1024,
        hint_data_cache_bytes=int(1.8 * 1024 * 1024),
        hint_store_bytes=200 * 1024,
    )


def run_matrix(*, verbose: bool = False) -> tuple[list[str], int]:
    """Run the architecture x fault-plan audit matrix, on both engines.

    Each cell runs the reference engine with audit hooks and telemetry
    attached, then the columnar fast engine over a fresh twin of the same
    cell.  The fast run must be byte-identical -- metrics and telemetry
    rows -- to the audited reference run, so the fast engine's outputs
    face every runtime invariant transitively (audit hooks themselves are
    inherently per-request).

    Returns ``(problems, total_checks)``: one problem line per failed
    cell and the number of individual invariant checks performed (each
    engine-parity comparison counts as one check).
    """
    config = _audit_config()
    trace = SyntheticTraceGenerator(config.profile("dec"), seed=config.seed).generate()
    problems: list[str] = []
    total_checks = 0
    for arch_name, arch_cls in sorted(ARCHITECTURES.items()):
        for fault_name, events in sorted(FAULT_KINDS.items()):
            plan = FaultPlan(events=events, seed=config.seed) if events else None
            build = lambda cls=arch_cls: cls(config.topology, TestbedCostModel())
            cell_problems, checks = _audit_cell(
                trace, build, plan, label=f"{arch_name} x {fault_name}"
            )
            problems.extend(cell_problems)
            total_checks += checks
            if verbose:
                print(f"  {arch_name:>10} x {fault_name:<16} {checks:>7} checks")
    return problems, total_checks


def _audit_cell(trace, build, plan, *, label: str) -> tuple[list[str], int]:
    """Run one matrix cell: audited reference run, then fast-engine parity.

    ``build`` constructs a fresh architecture instance (called once per
    engine so neither run sees warmed state).  Returns the cell's problem
    lines and the number of invariant checks performed.
    """
    problems: list[str] = []
    hooks = AuditHooks()
    telemetry = RunTelemetry(bin_s=6 * 3600.0)
    metrics = None
    try:
        metrics = run_simulation(
            trace, build(), fault_plan=plan, telemetry=telemetry, audit=hooks
        )
    except AuditError as error:
        problems.append(f"matrix {label}: {error}")
    checks = sum(hooks.counts.values())
    if metrics is not None:
        fast_telemetry = RunTelemetry(bin_s=6 * 3600.0)
        fast_metrics = run_simulation(
            trace, build(), fault_plan=plan, telemetry=fast_telemetry, engine="fast"
        )
        if fast_metrics != metrics:
            problems.append(
                f"fast-engine parity {label}: "
                "metrics diverge from the audited reference run"
            )
        if fast_telemetry.rows != telemetry.rows:
            problems.append(
                f"fast-engine parity {label}: "
                "telemetry rows diverge from the audited reference run"
            )
        checks += 1
    return problems, checks


def run_policy_matrix(*, verbose: bool = False) -> tuple[list[str], int]:
    """Run the policy axis of the audit matrix (see :data:`POLICY_CELLS`).

    Each cell is a space-constrained architecture under a non-default
    replacement policy, run through the identical audited-reference +
    fast-engine-parity treatment as :func:`run_matrix` -- the policy layer
    faces every runtime invariant on both engines.
    """
    config = _audit_config()
    trace = SyntheticTraceGenerator(config.profile("dec"), seed=config.seed).generate()
    problems: list[str] = []
    total_checks = 0
    for label, (arch_name, fault_name, overrides) in POLICY_CELLS.items():
        arch_cls = ARCHITECTURES[arch_name]
        events = FAULT_KINDS[fault_name]
        plan = FaultPlan(events=events, seed=config.seed) if events else None
        l1_bytes = (
            config.l1_cache_bytes
            if arch_name in ("hierarchy", "icp")
            else config.hint_data_cache_bytes
        )
        kwargs = {"l1_bytes": l1_bytes, **overrides}
        build = lambda cls=arch_cls, kw=kwargs: cls(
            config.topology, TestbedCostModel(), **kw
        )
        cell_problems, checks = _audit_cell(trace, build, plan, label=label)
        problems.extend(cell_problems)
        total_checks += checks
        if verbose:
            print(f"  {label:<32} {checks:>7} checks")
    return problems, total_checks


def run_predictor_check(*, verbose: bool = False) -> tuple[list[str], int]:
    """Cross-check the analytic predictor against the production caches.

    For each analytically tractable policy (LRU via Che, Random via the
    exact TTL-style formula) and a spread of capacities, compares the
    predicted warm hit rate with the rate measured by replaying seeded
    exchangeable shuffles of the audit trace's per-proxy substreams
    through the real cache classes.  A gap beyond
    :data:`~repro.analytic.PREDICTOR_TOLERANCE` fails the gate -- the
    tolerance's derivation lives in the :mod:`repro.analytic` docstring.
    """
    config = _audit_config()
    trace = SyntheticTraceGenerator(config.profile("dec"), seed=config.seed).generate()
    capacities = (config.l1_cache_bytes, 512 * 1024)
    problems: list[str] = []
    comparisons = 0
    worst = 0.0
    for capacity in capacities:
        for policy in PREDICTABLE_POLICIES:
            predicted = predict_l1_hit_rate(trace, config.topology, capacity, policy)
            measured = measure_l1_hit_rate(
                trace,
                config.topology,
                capacity,
                PolicySpec(policy, seed=3),
                shuffle_seed=2024,
            )
            delta = abs(predicted.warm_hit_rate - measured.warm_hit_rate)
            worst = max(worst, delta)
            comparisons += 1
            if delta > PREDICTOR_TOLERANCE:
                problems.append(
                    f"predictor {policy} @ {capacity}B: analytic "
                    f"{predicted.warm_hit_rate:.4f} vs simulated "
                    f"{measured.warm_hit_rate:.4f} "
                    f"(|delta| {delta:.4f} > tolerance {PREDICTOR_TOLERANCE})"
                )
            if verbose:
                print(
                    f"  {policy:>6} @ {capacity:>8}B  "
                    f"pred={predicted.warm_hit_rate:.4f} "
                    f"sim={measured.warm_hit_rate:.4f} |delta|={delta:.4f}"
                )
    print(
        f"predictor: {comparisons} comparisons, max |delta| {worst:.4f} "
        f"(tolerance {PREDICTOR_TOLERANCE})"
    )
    return problems, comparisons


def run_differential_trials(
    trials: int, seed: int, *, verbose: bool = False
) -> tuple[list[str], int]:
    """Run seeded random differential trials against every oracle."""
    problems: list[str] = []
    total_ops = 0
    topology = HierarchyTopology(clients_per_l1=2, l1_per_l2=4, n_l2=2)
    for trial in range(trials):
        rng = np.random.default_rng([seed, trial])
        capacity = (None, 64, 256, 1000)[trial % 4]
        delay = (0.0, 30.0)[trial % 2]
        try:
            total_ops += run_lru_differential(random_lru_ops(rng), capacity)
            total_ops += run_directory_differential(
                random_directory_ops(rng), delay=delay
            )
            trace = random_micro_trace(rng, topology, warmup=300.0 if trial % 3 else 0.0)
            plan = random_fault_plan(rng, topology, trace.duration) if trial % 2 else None
            total_ops += run_engine_differential(
                trace,
                topology,
                l1_bytes=(None, 64 * 1024)[trial % 2],
                fault_plan=plan,
                include_uncachable=bool(trial % 3 == 1),
            )
        except AuditError as error:
            problems.append(f"differential trial {trial}: {error}")
        if verbose:
            print(f"  trial {trial}: capacity={capacity} delay={delay} ok")
    return problems, total_ops


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-audit",
        description="Run the audit matrix and oracle differential trials.",
    )
    parser.add_argument(
        "--trials", type=int, default=6, help="differential trials (default 6)"
    )
    parser.add_argument(
        "--seed", type=int, default=1999, help="differential RNG seed"
    )
    parser.add_argument(
        "--skip-matrix", action="store_true", help="differential trials only"
    )
    parser.add_argument(
        "--skip-differential", action="store_true", help="audit matrix only"
    )
    parser.add_argument(
        "--skip-predictor",
        action="store_true",
        help="skip the analytic-predictor cross-check",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)

    problems: list[str] = []
    if not args.skip_matrix:
        matrix_problems, checks = run_matrix(verbose=args.verbose)
        problems.extend(matrix_problems)
        cells = len(ARCHITECTURES) * len(FAULT_KINDS)
        print(f"audit matrix: {cells} cells, {checks} invariant checks")
        policy_problems, policy_checks = run_policy_matrix(verbose=args.verbose)
        problems.extend(policy_problems)
        print(
            f"policy matrix: {len(POLICY_CELLS)} cells, "
            f"{policy_checks} invariant checks"
        )
    if not args.skip_predictor:
        predictor_problems, _ = run_predictor_check(verbose=args.verbose)
        problems.extend(predictor_problems)
    if not args.skip_differential:
        diff_problems, ops = run_differential_trials(
            args.trials, args.seed, verbose=args.verbose
        )
        problems.extend(diff_problems)
        print(f"differential: {args.trials} trials, {ops} operations compared")
    for problem in problems:
        print(problem, file=sys.stderr)
    print("audit clean" if not problems else f"{len(problems)} audit problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
