"""Runtime invariant checks for simulation runs.

:class:`AuditHooks` is the opt-in fourth observer of a run (after the
fault injector, journey sink, and telemetry): pass one as
``run_simulation(..., audit=...)`` and the engine attaches it to the
architecture and its caches for the duration.  Checkpoints then
re-verify, from first principles, the invariants every reported number
rests on:

* **byte accounting** -- each cache's ``used_bytes`` equals the sum of
  its entries' sizes and never exceeds capacity (O(1) bound checks at
  every mutation, full recounts at per-request checkpoints);
* **hint agreement** -- ground truth never advertises a copy its cache
  does not hold, unless an oversize-insert rejection or injected fault
  damage explains it; with zero propagation delay the visible view is a
  subset of ground truth;
* **ledger sums** -- each result's ``time_ms``/``fault_added_ms``/
  ``timeout_fallback`` are exactly its journey's step sums;
* **partitions** -- measured + warmup + skipped counters partition the
  trace, and ``skipped``/``included`` pairs are mutually exclusive;
* **telemetry telescoping** -- timeline counter deltas re-sum to the
  registry's final values, and the measured-window request counters
  reconcile with ``SimMetrics``.

Every violation raises :class:`AuditError` (an ``AssertionError``
subclass) naming the invariant.  Detached -- the default everywhere --
the instrumented code pays one ``is not None`` pointer check per site.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.hierarchy.base import AccessResult, Architecture
    from repro.obs.telemetry import RunTelemetry
    from repro.sim.metrics import SimMetrics
    from repro.traces.records import Request, Trace


class AuditError(AssertionError):
    """An audited invariant does not hold; the run's numbers are suspect."""


class AuditHooks:
    """Checkpoint-driven invariant verifier for one (or more) runs.

    Args:
        check_every: Run the full O(state) scan every Nth request (the
            O(1) bound checks and ledger checks always run).  1 audits
            every request -- right for the tiny traces the audit matrix
            and differential harness use; raise it to amortize scans on
            larger traces.

    One instance can audit several runs in sequence (``run_comparison``
    does this): :meth:`begin` resets per-run state and re-attaches to
    the new architecture.  ``counts`` accumulates how many checks of
    each kind ran across the instance's lifetime, so callers can assert
    the audit was not vacuous.
    """

    def __init__(self, *, check_every: int = 1) -> None:
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        self.check_every = check_every
        #: Lifetime tally of checks performed, keyed by invariant name.
        self.counts: dict[str, int] = {}
        self._architecture: "Architecture | None" = None
        self._trace: "Trace | None" = None
        self._injector: "FaultInjector | None" = None
        self._include_uncachable = False
        self._step = 0
        self._processed = 0
        self._measured = 0

    # ------------------------------------------------------------------
    # engine lifecycle
    # ------------------------------------------------------------------
    def begin(
        self,
        architecture: "Architecture",
        trace: "Trace",
        *,
        injector: "FaultInjector | None" = None,
        include_uncachable: bool = False,
    ) -> None:
        """Reset per-run state and attach to ``architecture``'s layers."""
        self._architecture = architecture
        self._trace = trace
        self._injector = injector
        self._include_uncachable = include_uncachable
        self._step = 0
        self._processed = 0
        self._measured = 0
        architecture.attach_audit(self)
        for _label, cache in self._data_caches(architecture):
            cache.audit = self
        directory = getattr(architecture, "directory", None)
        if directory is not None:
            index = directory.visible_index
            if not isinstance(index, dict):
                index.audit = self

    def on_result(
        self, request: "Request", result: "AccessResult", *, measured: bool
    ) -> None:
        """Engine callback after every processed request: ledger checks."""
        self._processed += 1
        if measured:
            self._measured += 1
        self.check_journey(result)

    def finish(
        self, metrics: "SimMetrics", *, telemetry: "RunTelemetry | None" = None
    ) -> None:
        """End-of-run checks: final scan, partitions, telescoping."""
        if self._architecture is not None:
            self.scan(self._architecture)
        self._check_partitions(metrics)
        if telemetry is not None:
            self.check_telemetry(metrics, telemetry)

    # ------------------------------------------------------------------
    # architecture checkpoint (top of every process() when attached)
    # ------------------------------------------------------------------
    def checkpoint(self, architecture: "Architecture") -> None:
        """Per-request checkpoint; full scan every ``check_every`` calls."""
        self._step += 1
        if self._step % self.check_every:
            return
        self.scan(architecture)

    def scan(self, architecture: "Architecture") -> None:
        """Full O(state) invariant scan of one architecture's layers."""
        for label, cache in self._data_caches(architecture):
            self.check_cache_accounting(cache, label)
        directory = getattr(architecture, "directory", None)
        caches = getattr(architecture, "l1_caches", None)
        if directory is not None and caches is not None:
            self.check_hint_truth(directory, caches)
            self.check_hint_visible(directory)

    # ------------------------------------------------------------------
    # O(1) bound checks (caches call these on every mutation)
    # ------------------------------------------------------------------
    def check_cache_bounds(self, cache) -> None:
        """Byte-cache bound check: ``0 <= used_bytes <= capacity``."""
        self._count("cache_bounds")
        used = cache.used_bytes
        if used < 0:
            self._fail("cache_bounds", f"used_bytes went negative ({used})")
        capacity = cache.capacity_bytes
        if capacity is not None and used > capacity:
            self._fail(
                "cache_bounds",
                f"used_bytes {used} exceeds capacity {capacity} after a mutation",
            )

    def check_setassoc_bounds(self, cache) -> None:
        """Set-associative index bound check: entry count within capacity."""
        self._count("setassoc_bounds")
        if len(cache) > cache.capacity:
            self._fail(
                "setassoc_bounds",
                f"{len(cache)} entries exceed capacity {cache.capacity}",
            )

    def check_negative_bounds(self, cache) -> None:
        """Negative-result cache bound check: entry count within max."""
        self._count("negative_bounds")
        if len(cache) > cache.max_entries:
            self._fail(
                "negative_bounds",
                f"{len(cache)} entries exceed max_entries {cache.max_entries}",
            )

    # ------------------------------------------------------------------
    # full-state checks
    # ------------------------------------------------------------------
    def check_cache_accounting(self, cache, label: str = "cache") -> None:
        """Recount a byte cache from its entries: sum(sizes) == used_bytes."""
        self._count("cache_accounting")
        total = 0
        for key in cache:
            entry = cache.peek(key)
            if entry is None:
                self._fail(
                    "cache_accounting", f"{label}: key {key} iterated but not peekable"
                )
            if entry.size < 0:
                self._fail(
                    "cache_accounting",
                    f"{label}: entry {key} has negative size {entry.size}",
                )
            total += entry.size
        if total != cache.used_bytes:
            self._fail(
                "cache_accounting",
                f"{label}: entries sum to {total} bytes but used_bytes says "
                f"{cache.used_bytes}",
            )
        capacity = cache.capacity_bytes
        if capacity is not None and total > capacity:
            self._fail(
                "cache_accounting",
                f"{label}: {total} bytes cached exceed capacity {capacity}",
            )

    def check_hint_truth(self, directory, caches) -> None:
        """Ground truth never advertises a copy the cache does not hold.

        Exemptions: keys whose latest insert was an oversize rejection
        (the architecture informs unconditionally after a store attempt),
        and runs where injected faults may legitimately desynchronize the
        two (crashes, dropped batches, visibility drift).
        """
        self._count("hint_truth")
        if self._hint_damage_possible():
            return
        for object_id, holders in directory.truth_items():
            for node, version in holders.items():
                if not 0 <= node < len(caches):
                    self._fail(
                        "hint_truth",
                        f"truth names node {node} for object {object_id} but only "
                        f"{len(caches)} L1 caches exist",
                    )
                cache = caches[node]
                entry = cache.peek(object_id)
                if entry is None:
                    if object_id in getattr(cache, "oversize_rejections", ()):
                        continue
                    self._fail(
                        "hint_truth",
                        f"truth says node {node} holds object {object_id} v{version} "
                        "but its cache has no entry (and no fault or oversize "
                        "rejection explains it)",
                    )
                elif entry.version != version:
                    self._fail(
                        "hint_truth",
                        f"truth says node {node} holds object {object_id} "
                        f"v{version} but the cache stores v{entry.version}",
                    )

    def check_hint_visible(self, directory) -> None:
        """With zero delay and no damage, visible hints are a truth subset."""
        if (
            directory.propagation_delay_s != 0.0
            or directory.pending_events
            or self._hint_damage_possible()
        ):
            return
        self._count("hint_visible")
        for object_id, holders in directory.visible_items():
            truth = directory.truth_holders(object_id)
            for node in holders:
                if node not in truth:
                    self._fail(
                        "hint_visible",
                        f"visible hint {object_id} -> node {node} has no ground "
                        "truth behind it on a healthy zero-delay run",
                    )

    def check_journey(self, result: "AccessResult") -> None:
        """The hop ledger's sums *are* the result's totals, bit-for-bit."""
        journey = result.journey
        if journey is None:  # ledger-free results (test stubs) are legal
            return
        self._count("journey_ledger")
        from repro.obs.journey import StepKind

        total = 0.0
        fault = 0.0
        timed_out = False
        for step in journey.steps:
            if step.cost_ms < 0:
                self._fail(
                    "journey_ledger", f"step {step.kind.value} has negative cost"
                )
            if not 0.0 <= step.fault_ms <= step.cost_ms:
                self._fail(
                    "journey_ledger",
                    f"step {step.kind.value} fault_ms {step.fault_ms} outside "
                    f"[0, {step.cost_ms}]",
                )
            total += step.cost_ms
            fault += step.fault_ms
            if step.kind is StepKind.TIMEOUT:
                timed_out = True
        if total != result.time_ms:
            self._fail(
                "journey_ledger",
                f"steps sum to {total} ms but the result charges {result.time_ms}",
            )
        if fault != result.fault_added_ms:
            self._fail(
                "journey_ledger",
                f"step fault surcharges sum to {fault} ms but the result says "
                f"{result.fault_added_ms}",
            )
        if timed_out != result.timeout_fallback:
            self._fail(
                "journey_ledger",
                f"TIMEOUT steps present={timed_out} but timeout_fallback="
                f"{result.timeout_fallback}",
            )

    def check_telemetry(
        self, metrics: "SimMetrics", telemetry: "RunTelemetry"
    ) -> None:
        """Timeline counter deltas telescope to the registry's finals."""
        if telemetry.timeline is None:
            return
        self._count("telemetry_telescoping")
        totals: dict[str, float] = {}
        for row in telemetry.rows:
            for key, delta in row["counters"].items():
                totals[key] = totals.get(key, 0.0) + delta
        finals = dict(telemetry.registry.counter_items(arch=telemetry.arch))
        for key in totals:
            if key not in finals:
                self._fail(
                    "telemetry_telescoping",
                    f"timeline recorded deltas for unknown series {key}",
                )
        for key, value in finals.items():
            summed = totals.get(key, 0.0)
            if not math.isclose(summed, value, rel_tol=1e-9, abs_tol=1e-6):
                self._fail(
                    "telemetry_telescoping",
                    f"{key}: bin deltas sum to {summed} but the counter "
                    f"finished at {value}",
                )
        measured = sum(
            value
            for key, value in finals.items()
            if key.startswith("repro_requests_total") and 'window="measured"' in key
        )
        if round(measured) != metrics.measured_requests:
            self._fail(
                "telemetry_telescoping",
                f"measured-window request counters sum to {measured} but "
                f"metrics report {metrics.measured_requests} measured requests",
            )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_partitions(self, metrics: "SimMetrics") -> None:
        self._count("request_partition")
        processed = metrics.measured_requests + metrics.warmup_requests
        if processed != self._processed:
            self._fail(
                "request_partition",
                f"the audit saw {self._processed} results but metrics account "
                f"for {processed} processed requests",
            )
        if metrics.measured_requests != self._measured:
            self._fail(
                "request_partition",
                f"the audit saw {self._measured} measured results but metrics "
                f"report {metrics.measured_requests}",
            )
        skipped = metrics.skipped_error + metrics.skipped_uncachable
        included = metrics.included_error + metrics.included_uncachable
        if self._include_uncachable and skipped:
            self._fail(
                "request_partition",
                f"include_uncachable runs must skip nothing, found {skipped}",
            )
        if not self._include_uncachable and included:
            self._fail(
                "request_partition",
                f"a skipping run recorded {included} included_* requests",
            )
        if included > processed:
            self._fail(
                "request_partition",
                f"included counters ({included}) exceed processed requests "
                f"({processed}); a request was counted twice",
            )
        if self._trace is not None:
            expected = len(self._trace.requests)
            if processed + skipped != expected:
                self._fail(
                    "request_partition",
                    f"measured+warmup+skipped = {processed + skipped} does not "
                    f"partition the trace ({expected} requests)",
                )

    def _hint_damage_possible(self) -> bool:
        injector = self._injector
        return injector is not None and injector.hint_damage_possible

    @staticmethod
    def _data_caches(architecture: "Architecture") -> Iterator[tuple[str, object]]:
        """Yield (label, cache) for the structural layers every shipped
        architecture follows (the same conventions telemetry binds to)."""
        for node, cache in enumerate(getattr(architecture, "l1_caches", ())):
            yield f"l1:{node}", cache
        for node, cache in enumerate(getattr(architecture, "l2_caches", ())):
            yield f"l2:{node}", cache
        l3 = getattr(architecture, "l3_cache", None)
        if l3 is not None:
            yield "l3", l3

    def _count(self, invariant: str) -> None:
        self.counts[invariant] = self.counts.get(invariant, 0) + 1

    def _fail(self, invariant: str, detail: str) -> None:
        raise AuditError(f"[{invariant}] {detail}")
