"""Differential drivers: production vs. oracle over identical inputs.

Each ``run_*_differential`` function applies one operation/request stream
to both implementations and raises :class:`~repro.audit.hooks.AuditError`
at the first divergence, naming the operation index and the mismatching
facet.  The ``random_*`` generators produce those streams from a seeded
``numpy`` RNG, so the CLI and the Hypothesis tests share one vocabulary
(Hypothesis feeds the same drivers shrunken hand-built streams instead).

All comparisons are exact -- the implementations run the same float
arithmetic in the same order, so bit-for-bit equality is the contract,
not an aspiration.
"""

from __future__ import annotations

import numpy as np

from repro.audit.hooks import AuditError, AuditHooks
from repro.audit.oracles import (
    OracleHintDirectory,
    OracleLRUCache,
    oracle_data_hierarchy_run,
)
from repro.cache.lru import LRUCache
from repro.faults.events import (
    FaultPlan,
    LinkDegrade,
    NodeCrash,
    NodeRecover,
    OriginSlowdown,
)
from repro.hierarchy.topology import HierarchyTopology
from repro.hints.directory import HintDirectory
from repro.netmodel.model import CostModel
from repro.netmodel.testbed import TestbedCostModel
from repro.traces.records import Request, Trace


def _diverge(where: str, index, detail: str) -> None:
    raise AuditError(f"[differential:{where}] op {index}: {detail}")


# ----------------------------------------------------------------------
# LRU cache
# ----------------------------------------------------------------------
def random_lru_ops(
    rng: np.random.Generator,
    n_ops: int = 300,
    n_keys: int = 10,
    max_size: int = 120,
) -> list[tuple]:
    """A random LRU operation stream (lookups, inserts, churn, clears)."""
    ops: list[tuple] = []
    versions = {key: 0 for key in range(n_keys)}
    for _ in range(n_ops):
        key = int(rng.integers(0, n_keys))
        if rng.random() < 0.15:  # the object occasionally changes
            versions[key] += 1
        roll = rng.random()
        if roll < 0.45:
            ops.append(("lookup", key, versions[key]))
        elif roll < 0.85:
            ops.append(("insert", key, int(rng.integers(0, max_size)), versions[key]))
        elif roll < 0.90:
            ops.append(("invalidate", key))
        elif roll < 0.94:
            ops.append(("remove", key))
        elif roll < 0.98:
            ops.append(("demote", key))
        else:
            ops.append(("clear",))
    return ops


def run_lru_differential(ops: list[tuple], capacity_bytes: int | None = None) -> int:
    """Drive both LRU implementations; compare results and full state."""
    production = LRUCache(capacity_bytes)
    oracle = OracleLRUCache(capacity_bytes)
    for index, op in enumerate(ops):
        kind = op[0]
        if kind == "lookup":
            got, want = production.lookup(op[1], op[2]), oracle.lookup(op[1], op[2])
        elif kind == "insert":
            got = production.insert(op[1], op[2], op[3])
            want = oracle.insert(op[1], op[2], op[3])
        elif kind == "invalidate":
            got, want = production.invalidate(op[1]), oracle.invalidate(op[1])
        elif kind == "remove":
            got, want = production.remove(op[1]), oracle.remove(op[1])
        elif kind == "demote":
            got = production.touch_lru_demote(op[1])
            want = oracle.touch_lru_demote(op[1])
        elif kind == "clear":
            got, want = production.clear(), oracle.clear()
        else:
            raise ValueError(f"unknown op {op!r}")
        if got != want:
            _diverge("lru", index, f"{op}: production returned {got!r}, oracle {want!r}")
        if list(production) != oracle.keys():
            _diverge(
                "lru", index,
                f"recency order {list(production)} != oracle {oracle.keys()}",
            )
        if production.used_bytes != oracle.used_bytes:
            _diverge(
                "lru", index,
                f"used_bytes {production.used_bytes} != oracle {oracle.used_bytes}",
            )
        for key in production:
            entry = production.peek(key)
            if (entry.size, entry.version) != oracle.peek(key):
                _diverge(
                    "lru", index,
                    f"entry {key}: ({entry.size}, {entry.version}) != "
                    f"oracle {oracle.peek(key)}",
                )
        for counter in ("insertions", "evictions", "invalidations"):
            if getattr(production, counter) != getattr(oracle, counter):
                _diverge(
                    "lru", index,
                    f"{counter} {getattr(production, counter)} != "
                    f"oracle {getattr(oracle, counter)}",
                )
        if production.oversize_rejections != oracle.oversize_rejections:
            _diverge(
                "lru", index,
                f"oversize_rejections {production.oversize_rejections} != "
                f"oracle {oracle.oversize_rejections}",
            )
    return len(ops)


# ----------------------------------------------------------------------
# hint directory
# ----------------------------------------------------------------------
def random_directory_ops(
    rng: np.random.Generator,
    n_ops: int = 250,
    n_objects: int = 8,
    n_nodes: int = 6,
    t_step: float = 3.0,
) -> list[tuple]:
    """A time-ordered random inform/retract/find/drop stream."""
    ops: list[tuple] = []
    t = 0.0
    for _ in range(n_ops):
        t += float(rng.random()) * t_step
        obj = int(rng.integers(0, n_objects))
        node = int(rng.integers(0, n_nodes))
        roll = rng.random()
        if roll < 0.40:
            ops.append(("inform", t, obj, node, int(rng.integers(0, 5)),
                        bool(rng.random() < 0.9)))
        elif roll < 0.62:
            ops.append(("retract", t, obj, node, bool(rng.random() < 0.9)))
        elif roll < 0.92:
            ops.append(("find", t, obj, node))
        else:
            # Probe-found-it-gone flow: a find, then drop one reported
            # holder -- the only order architectures ever use.
            ops.append(("find+drop", t, obj, node))
    return ops


def run_directory_differential(ops: list[tuple], delay: float = 0.0) -> int:
    """Drive both hint directories; compare finds, truth, and counters."""
    production = HintDirectory(None, delay)
    oracle = OracleHintDirectory(delay)
    for index, op in enumerate(ops):
        kind, t, obj = op[0], op[1], op[2]
        if kind == "inform":
            production.inform(t, obj, op[3], op[4], visible=op[5])
            oracle.inform(t, obj, op[3], op[4], visible=op[5])
            continue
        if kind == "retract":
            production.retract(t, obj, op[3], visible=op[4])
            oracle.retract(t, obj, op[3], visible=op[4])
            continue
        requester = op[3]
        got = production.find(t, obj, requester)
        want_holders, want_fn = oracle.find(t, obj, requester)
        if frozenset(got.holders) != want_holders:
            _diverge(
                "directory", index,
                f"find({t:.2f}, {obj}, {requester}): holders "
                f"{sorted(got.holders)} != oracle {sorted(want_holders)}",
            )
        if got.false_negative != want_fn:
            _diverge(
                "directory", index,
                f"find({t:.2f}, {obj}, {requester}): false_negative "
                f"{got.false_negative} != oracle {want_fn}",
            )
        if production.truth_holders(obj) != oracle.truth_holders(obj):
            _diverge(
                "directory", index,
                f"truth for {obj}: {production.truth_holders(obj)} != "
                f"oracle {oracle.truth_holders(obj)}",
            )
        if kind == "find+drop" and got.holders:
            victim = min(got.holders)
            production.drop_visible(obj, victim)
            oracle.drop_visible(t, obj, victim)
    for counter in ("inform_events", "retract_events", "false_negatives", "corrections"):
        if getattr(production, counter) != getattr(oracle, counter):
            _diverge(
                "directory", "end",
                f"{counter} {getattr(production, counter)} != "
                f"oracle {getattr(oracle, counter)}",
            )
    return len(ops)


# ----------------------------------------------------------------------
# engine + data hierarchy
# ----------------------------------------------------------------------
def random_micro_trace(
    rng: np.random.Generator,
    topology: HierarchyTopology,
    n_requests: int = 150,
    n_objects: int = 20,
    duration: float = 1800.0,
    warmup: float = 0.0,
    error_rate: float = 0.06,
    uncachable_rate: float = 0.08,
) -> Trace:
    """A tiny random trace with errors, uncachables, and version churn.

    Deliberately includes requests that are *both* error and uncachable
    -- the class whose double counting the audit exists to catch.
    """
    times = np.sort(rng.uniform(0.0, duration, n_requests))
    sizes = rng.integers(1, 5000, n_objects)
    versions = [0] * n_objects
    requests: list[Request] = []
    for t in times:
        obj = int(rng.integers(0, n_objects))
        if rng.random() < 0.1:
            versions[obj] += 1
        requests.append(
            Request(
                time=float(t),
                client_id=int(rng.integers(0, topology.n_clients_covered)),
                object_id=obj,
                size=int(sizes[obj]),
                version=versions[obj],
                cacheable=bool(rng.random() >= uncachable_rate),
                error=bool(rng.random() < error_rate),
            )
        )
    return Trace(
        profile_name="audit-micro",
        requests=requests,
        n_objects=n_objects,
        n_clients=topology.n_clients_covered,
        duration=duration,
        warmup=warmup,
    )


def random_fault_plan(
    rng: np.random.Generator,
    topology: HierarchyTopology,
    duration: float,
    max_events: int = 4,
) -> FaultPlan:
    """A small random crash/recover/slowdown/degrade schedule."""
    events = []
    for _ in range(int(rng.integers(0, max_events + 1))):
        t = float(rng.uniform(0.0, duration))
        roll = rng.random()
        if roll < 0.35:
            kind = ("l1", "l2", "l3")[int(rng.integers(0, 3))]
            node = int(rng.integers(0, topology.n_l1)) if kind == "l1" else (
                int(rng.integers(0, topology.n_l2)) if kind == "l2" else 0
            )
            events.append(NodeCrash(time=t, kind=kind, node=node))
        elif roll < 0.55:
            kind = ("l1", "l2", "l3")[int(rng.integers(0, 3))]
            node = int(rng.integers(0, topology.n_l1)) if kind == "l1" else (
                int(rng.integers(0, topology.n_l2)) if kind == "l2" else 0
            )
            events.append(NodeRecover(time=t, kind=kind, node=node))
        elif roll < 0.8:
            events.append(OriginSlowdown(time=t, factor=1.0 + float(rng.random()) * 3.0))
        else:
            events.append(LinkDegrade(time=t, latency_mult=1.0 + float(rng.random())))
    return FaultPlan(events=tuple(events), seed=int(rng.integers(0, 2**31)))


def run_engine_differential(
    trace: Trace,
    topology: HierarchyTopology,
    cost_model: CostModel | None = None,
    *,
    l1_bytes: int | None = None,
    l2_bytes: int | None = None,
    l3_bytes: int | None = None,
    fault_plan: FaultPlan | None = None,
    include_uncachable: bool = False,
    warmup_s: float | None = None,
    audit: bool = True,
) -> int:
    """Run production engine + DataHierarchy against the oracle evaluator.

    Compares every measured request's (point, time, fault surcharge,
    flags) and the run-level counters, all exactly.  With ``audit=True``
    (the default) the production run also carries attached
    :class:`~repro.audit.hooks.AuditHooks`, so the runtime invariants
    are checked on the same inputs.
    """
    from repro.hierarchy.data_hierarchy import DataHierarchy
    from repro.obs.sink import SamplingJourneySink
    from repro.sim.engine import run_simulation

    model = cost_model if cost_model is not None else TestbedCostModel()
    architecture = DataHierarchy(topology, model, l1_bytes, l2_bytes, l3_bytes)
    sink = SamplingJourneySink(capacity=None)
    metrics = run_simulation(
        trace,
        architecture,
        warmup_s=warmup_s,
        include_uncachable=include_uncachable,
        fault_plan=fault_plan,
        journey_sink=sink,
        audit=AuditHooks() if audit else None,
    )
    expected = oracle_data_hierarchy_run(
        trace,
        topology,
        model,
        l1_bytes=l1_bytes,
        l2_bytes=l2_bytes,
        l3_bytes=l3_bytes,
        warmup_s=warmup_s,
        include_uncachable=include_uncachable,
        fault_plan=fault_plan,
    )

    scalars = (
        ("measured_requests", metrics.measured_requests, expected.measured_requests),
        ("warmup_requests", metrics.warmup_requests, expected.warmup_requests),
        ("skipped_error", metrics.skipped_error, expected.skipped_error),
        ("skipped_uncachable", metrics.skipped_uncachable, expected.skipped_uncachable),
        ("included_error", metrics.included_error, expected.included_error),
        (
            "included_uncachable",
            metrics.included_uncachable,
            expected.included_uncachable,
        ),
        ("total_ms", metrics.total_ms, expected.total_ms),
        (
            "timeout_fallbacks",
            metrics.degraded.timeout_fallbacks,
            expected.timeout_fallbacks,
        ),
        ("fault_added_ms", metrics.degraded.fault_added_ms, expected.fault_added_ms),
    )
    for name, got, want in scalars:
        if got != want:
            _diverge("engine", name, f"production {got!r} != oracle {want!r}")
    if metrics.requests_by_point != expected.requests_by_point:
        _diverge(
            "engine", "requests_by_point",
            f"production {metrics.requests_by_point} != "
            f"oracle {expected.requests_by_point}",
        )

    oracle_measured = expected.measured_records()
    if len(sink.samples) != len(oracle_measured):
        _diverge(
            "engine", "samples",
            f"production emitted {len(sink.samples)} measured journeys, "
            f"oracle {len(oracle_measured)}",
        )
    for (seq, _request, result), record in zip(sink.samples, oracle_measured):
        facets = (
            ("point", result.point, record.point),
            ("time_ms", result.time_ms, record.time_ms),
            ("fault_added_ms", result.fault_added_ms, record.fault_added_ms),
            ("hit", result.hit, record.hit),
            ("remote_hit", result.remote_hit, record.remote_hit),
            ("timeout_fallback", result.timeout_fallback, record.timeout_fallback),
        )
        for name, got, want in facets:
            if got != want:
                _diverge(
                    "engine", f"request {record.index} ({name})",
                    f"production {got!r} != oracle {want!r} (measured seq {seq})",
                )

    # The columnar fast engine faces the same oracle transitively: its
    # metrics must be byte-identical to the audited reference run that
    # the oracle just vetted.  (Audit hooks are inherently per-request,
    # so this equality is how fast outputs pass under the audit gate.)
    fast_metrics = run_simulation(
        trace,
        DataHierarchy(topology, model, l1_bytes, l2_bytes, l3_bytes),
        warmup_s=warmup_s,
        include_uncachable=include_uncachable,
        fault_plan=fault_plan,
        engine="fast",
    )
    if fast_metrics != metrics:
        _diverge(
            "engine", "fast-engine parity",
            "fast engine metrics diverge from the oracle-vetted reference run",
        )
    return 2 * len(trace.requests)
