"""Brute-force reference twins of the production components.

Each oracle favors obviousness over speed and shares no data structures
with the implementation it shadows:

* :class:`OracleLRUCache` -- recency as a plain list scanned linearly,
  byte usage recounted from entries on every query (no ``OrderedDict``,
  no incremental accounting);
* :class:`OracleHintDirectory` -- an append-only event log replayed from
  scratch on every query (no heap, no lazily-applied pending queue);
* :func:`oracle_data_hierarchy_run` -- a straight-line re-statement of
  the engine loop and the data hierarchy's healthy and faulted walks.

The differential harness (:mod:`repro.audit.differential`) drives oracle
and production through identical inputs and demands identical outputs --
so a bug has to be made twice, in two different shapes, to go unseen.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.lru import LookupResult
from repro.faults.events import (
    FaultPlan,
    HintBatchLoss,
    LinkDegrade,
    NodeCrash,
    NodeKind,
    NodeRecover,
    OriginSlowdown,
    StaleHintDrift,
)
from repro.hierarchy.topology import HierarchyTopology
from repro.netmodel.model import AccessPoint, CostModel
from repro.traces.records import Trace


class OracleLRUCache:
    """List-scan twin of :class:`repro.cache.lru.LRUCache`.

    Entries live in a plain list ordered LRU-first; every operation scans
    it.  ``used_bytes`` is recounted from the entries on each call, so an
    accounting drift in the production cache cannot be mirrored here.
    """

    def __init__(self, capacity_bytes: int | None = None) -> None:
        if capacity_bytes is not None and capacity_bytes < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._entries: list[list] = []  # [key, size, version], LRU first
        self.insertions = 0
        self.evictions = 0
        self.invalidations = 0
        self._ever_stored: dict[int, int] = {}
        self.oversize_rejections: set[int] = set()

    # -- inspection ----------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> list[int]:
        """Keys in LRU-to-MRU order (the production iteration order)."""
        return [key for key, _size, _version in self._entries]

    @property
    def used_bytes(self) -> int:
        return sum(size for _key, size, _version in self._entries)

    def peek(self, key: int) -> tuple[int, int] | None:
        """``(size, version)`` for ``key`` without touching recency."""
        for entry_key, size, version in self._entries:
            if entry_key == key:
                return size, version
        return None

    def ever_stored_version(self, key: int) -> int | None:
        return self._ever_stored.get(key)

    def _index(self, key: int) -> int:
        for i, entry in enumerate(self._entries):
            if entry[0] == key:
                return i
        return -1

    # -- mutation ------------------------------------------------------
    def lookup(self, key: int, version: int) -> LookupResult:
        i = self._index(key)
        if i < 0:
            return LookupResult.MISS
        if self._entries[i][2] < version:
            del self._entries[i]
            self.invalidations += 1
            return LookupResult.STALE
        self._entries.append(self._entries.pop(i))
        return LookupResult.HIT

    def insert(self, key: int, size: int, version: int) -> list[int]:
        if size < 0:
            raise ValueError(f"object size must be non-negative, got {size}")
        if self.capacity_bytes is not None and size > self.capacity_bytes:
            i = self._index(key)
            if i >= 0 and self._entries[i][2] < version:
                del self._entries[i]
                self.invalidations += 1
            self._ever_stored[key] = max(self._ever_stored.get(key, -1), version)
            self.oversize_rejections.add(key)
            return []
        i = self._index(key)
        if i >= 0:
            del self._entries[i]
        self._entries.append([key, size, version])
        self.insertions += 1
        self._ever_stored[key] = max(self._ever_stored.get(key, -1), version)
        self.oversize_rejections.discard(key)
        evicted: list[int] = []
        if self.capacity_bytes is not None:
            while self.used_bytes > self.capacity_bytes and self._entries:
                victim = self._entries.pop(0)
                self.evictions += 1
                evicted.append(victim[0])
        return evicted

    def touch_lru_demote(self, key: int) -> None:
        i = self._index(key)
        if i >= 0:
            self._entries.insert(0, self._entries.pop(i))

    def invalidate(self, key: int) -> bool:
        i = self._index(key)
        if i < 0:
            return False
        del self._entries[i]
        self.invalidations += 1
        return True

    def remove(self, key: int) -> bool:
        i = self._index(key)
        if i < 0:
            return False
        del self._entries[i]
        return True

    def clear(self) -> list[int]:
        keys = self.keys()
        self._entries = []
        return keys


class OracleHintDirectory:
    """Event-log twin of :class:`repro.hints.directory.HintDirectory`.

    Every inform/retract/drop is appended to a log; each query replays
    the whole log from scratch.  Visible inform/retract events take
    effect ``propagation_delay_s`` after issue; drops (the probe-found-
    it-gone correction) take effect at issue time.  Only the unbounded
    configuration is modelled -- bounded displacement is an
    implementation concern the differential harness exercises through
    the set-associative cache's own oracle-free tests.
    """

    def __init__(self, propagation_delay_s: float = 0.0) -> None:
        if propagation_delay_s < 0:
            raise ValueError(f"delay must be non-negative, got {propagation_delay_s}")
        self.propagation_delay_s = propagation_delay_s
        # (effective_time, seq, action, object_id, node, version)
        self._log: list[tuple[float, int, str, int, int, int]] = []
        self._seq = 0
        self.inform_events = 0
        self.retract_events = 0
        self.false_negatives = 0
        self.corrections = 0

    def _append(self, eff_time: float, action: str, obj: int, node: int, version: int) -> None:
        self._log.append((eff_time, self._seq, action, obj, node, version))
        self._seq += 1

    def inform(
        self, now: float, object_id: int, node: int, version: int, *, visible: bool = True
    ) -> None:
        self.inform_events += 1
        self._append(now, "truth_add", object_id, node, version)
        if visible:
            self._append(now + self.propagation_delay_s, "add", object_id, node, version)

    def retract(self, now: float, object_id: int, node: int, *, visible: bool = True) -> None:
        self.retract_events += 1
        self._append(now, "truth_remove", object_id, node, -1)
        if visible:
            self._append(now + self.propagation_delay_s, "remove", object_id, node, -1)

    def drop_visible(self, now: float, object_id: int, node: int) -> None:
        """Correction at ``now``; callers query first, as architectures do."""
        if node in self._visible_at(now).get(object_id, set()):
            self.corrections += 1
        self._append(now, "drop", object_id, node, -1)

    # -- replayed views ------------------------------------------------
    def truth_holders(self, object_id: int) -> dict[int, int]:
        truth: dict[int, int] = {}
        for _t, _seq, action, obj, node, version in sorted(self._log):
            if obj != object_id:
                continue
            if action == "truth_add":
                truth[node] = version
            elif action == "truth_remove":
                truth.pop(node, None)
        return truth

    def _visible_at(self, now: float) -> dict[int, set[int]]:
        visible: dict[int, set[int]] = {}
        for eff_time, _seq, action, obj, node, _version in sorted(self._log):
            if eff_time > now:
                continue
            if action == "add":
                visible.setdefault(obj, set()).add(node)
            elif action in ("remove", "drop"):
                holders = visible.get(obj)
                if holders is not None:
                    holders.discard(node)
                    if not holders:
                        del visible[obj]
        return visible

    def find(self, now: float, object_id: int, requester: int) -> tuple[frozenset, bool]:
        """``(holders, false_negative)`` -- holders exclude the requester."""
        visible = self._visible_at(now).get(object_id, set())
        holders = frozenset(n for n in visible if n != requester)
        truth = self.truth_holders(object_id)
        others_exist = any(n != requester for n in truth)
        false_negative = not holders and others_exist
        if false_negative:
            self.false_negatives += 1
        return holders, false_negative


# ----------------------------------------------------------------------
# naive single-architecture evaluator (the engine + DataHierarchy twin)
# ----------------------------------------------------------------------
@dataclass
class OracleRequestRecord:
    """One processed request's outcome, as the oracle evaluated it."""

    index: int  # position in the trace
    point: AccessPoint
    time_ms: float
    fault_added_ms: float
    hit: bool
    remote_hit: bool
    timeout_fallback: bool
    measured: bool


@dataclass
class OracleRunResult:
    """Everything the oracle evaluator produced for one run."""

    records: list[OracleRequestRecord] = field(default_factory=list)
    measured_requests: int = 0
    warmup_requests: int = 0
    skipped_error: int = 0
    skipped_uncachable: int = 0
    included_error: int = 0
    included_uncachable: int = 0
    total_ms: float = 0.0
    requests_by_point: dict = field(
        default_factory=lambda: {p: 0 for p in AccessPoint}
    )
    timeout_fallbacks: int = 0
    fault_added_ms: float = 0.0

    def measured_records(self) -> list[OracleRequestRecord]:
        return [r for r in self.records if r.measured]


def oracle_data_hierarchy_run(
    trace: Trace,
    topology: HierarchyTopology,
    cost_model: CostModel,
    *,
    l1_bytes: int | None = None,
    l2_bytes: int | None = None,
    l3_bytes: int | None = None,
    warmup_s: float | None = None,
    include_uncachable: bool = False,
    fault_plan: "FaultPlan | None" = None,
) -> OracleRunResult:
    """Re-evaluate a data-hierarchy run with none of the engine's machinery.

    A straight transliteration of what *should* happen, built on the
    oracle caches: the clock advances every request (skipped or not),
    error requests take precedence over uncachable ones, warmup counts
    but is not measured, and the faulted walk mirrors the production
    charging rules (timeout + degraded origin fetch on a dead parent).
    """
    boundary = trace.warmup if warmup_s is None else warmup_s
    l1s = [OracleLRUCache(l1_bytes) for _ in range(topology.n_l1)]
    l2s = [OracleLRUCache(l2_bytes) for _ in range(topology.n_l2)]
    l3 = OracleLRUCache(l3_bytes)

    faulted_mode = fault_plan is not None and len(fault_plan.events) > 0
    events = list(fault_plan.events) if faulted_mode else []
    next_event = 0
    down: set[tuple[NodeKind, int]] = set()
    latency_mult = 1.0
    origin_factor = 1.0
    out = OracleRunResult()

    def serve(request) -> tuple[AccessPoint, float, float, bool, bool, bool]:
        """(point, time_ms, fault_ms, hit, remote_hit, timeout_fallback)."""
        l1_index = topology.l1_of_client(request.client_id)
        l2_index = topology.l2_of_l1(l1_index)
        l1, l2 = l1s[l1_index], l2s[l2_index]
        oid, version, size = request.object_id, request.version, request.size

        def degraded(point: AccessPoint, *, origin: bool) -> tuple[float, float]:
            base = cost_model.hierarchical_ms(point, size)
            charged = base * latency_mult
            if origin:
                charged *= origin_factor
            return charged, charged - base

        def fallback() -> tuple[AccessPoint, float, float, bool, bool, bool]:
            charged, added = degraded(AccessPoint.SERVER, origin=True)
            time_ms = fault_plan.timeout_ms + charged
            fault_ms = fault_plan.timeout_ms + added
            return AccessPoint.SERVER, time_ms, fault_ms, False, False, True

        if not faulted_mode:
            if l1.lookup(oid, version) is LookupResult.HIT:
                point = AccessPoint.L1
            elif l2.lookup(oid, version) is LookupResult.HIT:
                l1.insert(oid, size, version)
                point = AccessPoint.L2
            elif l3.lookup(oid, version) is LookupResult.HIT:
                l2.insert(oid, size, version)
                l1.insert(oid, size, version)
                point = AccessPoint.L3
            else:
                l3.insert(oid, size, version)
                l2.insert(oid, size, version)
                l1.insert(oid, size, version)
                point = AccessPoint.SERVER
            time_ms = cost_model.hierarchical_ms(point, size)
            hit = point is not AccessPoint.SERVER
            return point, time_ms, 0.0, hit, point not in (
                AccessPoint.L1, AccessPoint.SERVER
            ), False

        if (NodeKind.L1, l1_index) in down:
            return fallback()
        if l1.lookup(oid, version) is LookupResult.HIT:
            charged, added = degraded(AccessPoint.L1, origin=False)
            return AccessPoint.L1, charged, added, True, False, False
        if (NodeKind.L2, l2_index) in down:
            l1.insert(oid, size, version)
            return fallback()
        if l2.lookup(oid, version) is LookupResult.HIT:
            l1.insert(oid, size, version)
            charged, added = degraded(AccessPoint.L2, origin=False)
            return AccessPoint.L2, charged, added, True, True, False
        if (NodeKind.L3, 0) in down:
            l2.insert(oid, size, version)
            l1.insert(oid, size, version)
            return fallback()
        if l3.lookup(oid, version) is LookupResult.HIT:
            l2.insert(oid, size, version)
            l1.insert(oid, size, version)
            charged, added = degraded(AccessPoint.L3, origin=False)
            return AccessPoint.L3, charged, added, True, True, False
        l3.insert(oid, size, version)
        l2.insert(oid, size, version)
        l1.insert(oid, size, version)
        charged, added = degraded(AccessPoint.SERVER, origin=True)
        return AccessPoint.SERVER, charged, added, False, False, False

    for index, request in enumerate(trace.requests):
        # The clock advances for every request, skipped or not.
        while next_event < len(events) and events[next_event].time <= request.time:
            event = events[next_event]
            next_event += 1
            if isinstance(event, NodeCrash):
                key = (NodeKind(event.kind), event.node)
                if key not in down:
                    down.add(key)
                    kind, node = key
                    if kind is NodeKind.L1 and node < len(l1s):
                        l1s[node].clear()
                    elif kind is NodeKind.L2 and node < len(l2s):
                        l2s[node].clear()
                    elif kind is NodeKind.L3:
                        l3.clear()
            elif isinstance(event, NodeRecover):
                down.discard((NodeKind(event.kind), event.node))
            elif isinstance(event, OriginSlowdown):
                origin_factor = event.factor
            elif isinstance(event, LinkDegrade):
                latency_mult = event.latency_mult
            elif isinstance(event, (HintBatchLoss, StaleHintDrift)):
                pass  # no hint metadata in a data hierarchy

        # Error takes precedence over uncachable; either counts exactly once.
        if request.error:
            if not include_uncachable:
                out.skipped_error += 1
                continue
            out.included_error += 1
        elif not request.cacheable:
            if not include_uncachable:
                out.skipped_uncachable += 1
                continue
            out.included_uncachable += 1

        point, time_ms, fault_ms, hit, remote, timed_out = serve(request)
        measured = request.time >= boundary
        out.records.append(
            OracleRequestRecord(
                index=index,
                point=point,
                time_ms=time_ms,
                fault_added_ms=fault_ms,
                hit=hit,
                remote_hit=remote,
                timeout_fallback=timed_out,
                measured=measured,
            )
        )
        if not measured:
            out.warmup_requests += 1
            continue
        out.measured_requests += 1
        out.total_ms += time_ms
        out.requests_by_point[point] += 1
        if timed_out:
            out.timeout_fallbacks += 1
        out.fault_added_ms += fault_ms
    return out
