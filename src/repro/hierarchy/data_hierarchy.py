"""The traditional three-level data-cache hierarchy (the paper's baseline).

Data access proceeds exactly as section 2.1 describes: the request walks up
the hierarchy level by level until some cache holds the data (or the root
fetches from the origin server), and the object is copied into every cache
on the way back down.  Response time is the store-and-forward hierarchical
time of the deepest level reached.

Consistency is invalidation-based: a cache that finds it holds an older
version than the request wants invalidates the copy and the walk continues
upward (the paper's strong-consistency assumption).

Under fault injection (:mod:`repro.faults`) the hierarchy shows its
structural weakness: every request *must* route through its fixed chain of
parents, so a dead L2 or L3 costs a full timeout before the proxy falls
back to the origin server, and the crashed cache comes back empty -- the
whole subtree re-faults its working set.
"""

from __future__ import annotations

from repro.cache.lru import LookupResult
from repro.cache.policy import DEFAULT_POLICY, PolicySpec
from repro.hierarchy.base import AccessResult, Architecture, build_l1_caches
from repro.hierarchy.topology import HierarchyTopology
from repro.netmodel.model import AccessPoint, CostModel
from repro.obs.journey import Journey
from repro.traces.records import Request

#: Journey step appender per access point (the hierarchy's fixed chain):
#: an L1 hit is a local lookup, deeper hits are store-and-forward walks,
#: and a miss is an origin fetch.
_POINT_STEP = {
    AccessPoint.L1: Journey.local_lookup,
    AccessPoint.L2: Journey.level_traversal,
    AccessPoint.L3: Journey.level_traversal,
}


class DataHierarchy(Architecture):
    """Harvest/Squid-style hierarchy of data caches.

    Args:
        topology: Client / L1 / L2 / L3 grouping.
        cost_model: Access-time parameterization.
        l1_bytes / l2_bytes / l3_bytes: Per-cache capacities; ``None`` is
            infinite (the paper's Figure 8(a) configuration).  The
            space-constrained configuration of Figure 8(b) gives every node
            in the data hierarchy 5 GB.
        l1_policy / l2_policy / l3_policy: Per-level replacement policies
            (:class:`~repro.cache.policy.PolicySpec`); ``None`` keeps the
            paper's LRU at that level.  Policies only change behaviour
            under capacity pressure -- unbounded levels never evict.
    """

    name = "hierarchy"

    def __init__(
        self,
        topology: HierarchyTopology,
        cost_model: CostModel,
        l1_bytes: int | None = None,
        l2_bytes: int | None = None,
        l3_bytes: int | None = None,
        l1_policy: PolicySpec | None = None,
        l2_policy: PolicySpec | None = None,
        l3_policy: PolicySpec | None = None,
    ) -> None:
        super().__init__(cost_model)
        self.topology = topology
        self.l1_caches = build_l1_caches(topology.n_l1, l1_bytes, policy=l1_policy)
        l2_spec = l2_policy if l2_policy is not None else DEFAULT_POLICY
        l3_spec = l3_policy if l3_policy is not None else DEFAULT_POLICY
        # Salts continue past the L1 node indices so no two caches of one
        # architecture share a Random victim stream.
        self.l2_caches = [
            l2_spec.build(l2_bytes, salt=topology.n_l1 + node)
            for node in range(topology.n_l2)
        ]
        self.l3_cache = l3_spec.build(
            l3_bytes, salt=topology.n_l1 + topology.n_l2
        )

    def process(self, request: Request) -> AccessResult:
        if self.audit is not None:
            self.audit.checkpoint(self)
        if self.shard is not None:
            self.check_shard_owns(request.object_id)
        if self.faults is not None:
            return self._process_faulted(request)
        l1_index = self.topology.l1_of_client(request.client_id)
        l2_index = self.topology.l2_of_l1(l1_index)
        l1 = self.l1_caches[l1_index]
        l2 = self.l2_caches[l2_index]
        l3 = self.l3_cache
        oid, version, size = request.object_id, request.version, request.size

        if l1.lookup(oid, version) is LookupResult.HIT:
            journey = Journey()
            journey.local_lookup(
                self.cost_model.hierarchical_ms(AccessPoint.L1, size),
                target=f"l1:{l1_index}",
            )
            return journey.result(AccessPoint.L1, hit=True)

        if l2.lookup(oid, version) is LookupResult.HIT:
            l1.insert(oid, size, version)
            journey = Journey()
            journey.level_traversal(
                self.cost_model.hierarchical_ms(AccessPoint.L2, size),
                target=f"l2:{l2_index}",
            )
            return journey.result(AccessPoint.L2, hit=True, remote_hit=True)

        if l3.lookup(oid, version) is LookupResult.HIT:
            l2.insert(oid, size, version)
            l1.insert(oid, size, version)
            journey = Journey()
            journey.level_traversal(
                self.cost_model.hierarchical_ms(AccessPoint.L3, size), target="l3"
            )
            return journey.result(AccessPoint.L3, hit=True, remote_hit=True)

        # Full miss: the root fetches from the origin server and the object
        # is cached at every level on the way down.
        l3.insert(oid, size, version)
        l2.insert(oid, size, version)
        l1.insert(oid, size, version)
        journey = Journey()
        journey.origin_fetch(self.cost_model.hierarchical_ms(AccessPoint.SERVER, size))
        return journey.result(AccessPoint.SERVER, hit=False)

    # ------------------------------------------------------------------
    # degraded mode (active only when a FaultInjector is attached)
    # ------------------------------------------------------------------
    def on_fault_crash(self, kind, node: int) -> None:
        """A cache node dies: its contents are gone when it recovers."""
        from repro.faults.events import NodeKind

        if kind is NodeKind.L1 and node < len(self.l1_caches):
            self.l1_caches[node].clear()
        elif kind is NodeKind.L2 and node < len(self.l2_caches):
            self.l2_caches[node].clear()
        elif kind is NodeKind.L3:
            self.l3_cache.clear()

    def _process_faulted(self, request: Request) -> AccessResult:
        """The walk-up with dead parents: timeout, then fall back to origin.

        Charging rule: a timeout fallback pays the dead node's timeout
        plus the *full* hierarchical miss charge (the request waited at
        the dead level, then completed as a worst-case origin fetch), so
        a faulted request is never cheaper than its healthy counterpart.
        Dead caches are neither read nor written -- their subtree refills
        only after recovery.
        """
        faults = self.faults
        assert faults is not None
        l1_index = self.topology.l1_of_client(request.client_id)
        l2_index = self.topology.l2_of_l1(l1_index)
        oid, version, size = request.object_id, request.version, request.size

        if faults.is_down("l1", l1_index):
            # The client's own proxy is dead: wait out the timeout, then
            # fetch from the origin directly.  Nothing is cached.
            faults.note_dead_probe()
            return self._fallback_result(size, target=f"l1:{l1_index}")

        l1 = self.l1_caches[l1_index]
        if l1.lookup(oid, version) is LookupResult.HIT:
            return self._degraded_result(
                AccessPoint.L1, size, hit=True, remote=False, target=f"l1:{l1_index}"
            )

        if faults.is_down("l2", l2_index):
            faults.note_dead_probe()
            l1.insert(oid, size, version)
            return self._fallback_result(size, target=f"l2:{l2_index}")

        l2 = self.l2_caches[l2_index]
        if l2.lookup(oid, version) is LookupResult.HIT:
            l1.insert(oid, size, version)
            return self._degraded_result(
                AccessPoint.L2, size, hit=True, remote=True, target=f"l2:{l2_index}"
            )

        if faults.is_down("l3", 0):
            faults.note_dead_probe()
            l2.insert(oid, size, version)
            l1.insert(oid, size, version)
            return self._fallback_result(size, target="l3")

        l3 = self.l3_cache
        if l3.lookup(oid, version) is LookupResult.HIT:
            l2.insert(oid, size, version)
            l1.insert(oid, size, version)
            return self._degraded_result(
                AccessPoint.L3, size, hit=True, remote=True, target="l3"
            )

        l3.insert(oid, size, version)
        l2.insert(oid, size, version)
        l1.insert(oid, size, version)
        return self._degraded_result(
            AccessPoint.SERVER, size, hit=False, remote=False, origin=True
        )

    def _degraded_result(
        self,
        point: AccessPoint,
        size: int,
        *,
        hit: bool,
        remote: bool,
        target: str = "",
        origin: bool = False,
    ) -> AccessResult:
        charged, added = self.faults.degraded_ms(
            self.cost_model.hierarchical_ms(point, size), origin=origin
        )
        journey = Journey()
        if point is AccessPoint.SERVER:
            journey.origin_fetch(charged, fault_ms=added)
        else:
            _POINT_STEP[point](journey, charged, target=target, fault_ms=added)
        return journey.result(point, hit=hit, remote_hit=remote)

    def _fallback_result(self, size: int, *, target: str) -> AccessResult:
        faults = self.faults
        charged, added = faults.degraded_ms(
            self.cost_model.hierarchical_ms(AccessPoint.SERVER, size), origin=True
        )
        journey = Journey()
        journey.timeout(faults.timeout_ms, target=target)
        journey.origin_fetch(charged, fault_ms=added)
        return journey.result(AccessPoint.SERVER, hit=False)
