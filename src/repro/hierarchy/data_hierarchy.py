"""The traditional three-level data-cache hierarchy (the paper's baseline).

Data access proceeds exactly as section 2.1 describes: the request walks up
the hierarchy level by level until some cache holds the data (or the root
fetches from the origin server), and the object is copied into every cache
on the way back down.  Response time is the store-and-forward hierarchical
time of the deepest level reached.

Consistency is invalidation-based: a cache that finds it holds an older
version than the request wants invalidates the copy and the walk continues
upward (the paper's strong-consistency assumption).
"""

from __future__ import annotations

from repro.cache.lru import LookupResult, LRUCache
from repro.hierarchy.base import AccessResult, Architecture
from repro.hierarchy.topology import HierarchyTopology
from repro.netmodel.model import AccessPoint, CostModel
from repro.traces.records import Request


class DataHierarchy(Architecture):
    """Harvest/Squid-style hierarchy of data caches.

    Args:
        topology: Client / L1 / L2 / L3 grouping.
        cost_model: Access-time parameterization.
        l1_bytes / l2_bytes / l3_bytes: Per-cache capacities; ``None`` is
            infinite (the paper's Figure 8(a) configuration).  The
            space-constrained configuration of Figure 8(b) gives every node
            in the data hierarchy 5 GB.
    """

    name = "hierarchy"

    def __init__(
        self,
        topology: HierarchyTopology,
        cost_model: CostModel,
        l1_bytes: int | None = None,
        l2_bytes: int | None = None,
        l3_bytes: int | None = None,
    ) -> None:
        super().__init__(cost_model)
        self.topology = topology
        self.l1_caches = [LRUCache(l1_bytes) for _ in range(topology.n_l1)]
        self.l2_caches = [LRUCache(l2_bytes) for _ in range(topology.n_l2)]
        self.l3_cache = LRUCache(l3_bytes)

    def process(self, request: Request) -> AccessResult:
        l1_index = self.topology.l1_of_client(request.client_id)
        l2_index = self.topology.l2_of_l1(l1_index)
        l1 = self.l1_caches[l1_index]
        l2 = self.l2_caches[l2_index]
        l3 = self.l3_cache
        oid, version, size = request.object_id, request.version, request.size

        if l1.lookup(oid, version) is LookupResult.HIT:
            return self._result(AccessPoint.L1, size, hit=True, remote=False)

        if l2.lookup(oid, version) is LookupResult.HIT:
            l1.insert(oid, size, version)
            return self._result(AccessPoint.L2, size, hit=True, remote=True)

        if l3.lookup(oid, version) is LookupResult.HIT:
            l2.insert(oid, size, version)
            l1.insert(oid, size, version)
            return self._result(AccessPoint.L3, size, hit=True, remote=True)

        # Full miss: the root fetches from the origin server and the object
        # is cached at every level on the way down.
        l3.insert(oid, size, version)
        l2.insert(oid, size, version)
        l1.insert(oid, size, version)
        return self._result(AccessPoint.SERVER, size, hit=False, remote=False)

    def _result(
        self, point: AccessPoint, size: int, *, hit: bool, remote: bool
    ) -> AccessResult:
        return AccessResult(
            point=point,
            time_ms=self.cost_model.hierarchical_ms(point, size),
            hit=hit,
            remote_hit=remote,
        )
