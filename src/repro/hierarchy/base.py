"""Architecture interface and per-request results.

Every architecture maps one trace request to an :class:`AccessResult`: how
long the request took, where it was satisfied, and which hint pathologies
it hit.  The simulation engine (:mod:`repro.sim.engine`) aggregates these
into the statistics the figures report.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.netmodel.model import AccessPoint, CostModel
from repro.traces.records import Request


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one request against one architecture.

    Attributes:
        point: Where the request was satisfied: ``L1``/``L2``/``L3`` for a
            cache hit at that distance, ``SERVER`` for a miss.
        time_ms: Charged response time.
        hit: True when any cache supplied the data.
        remote_hit: True when the supplying cache was not the client's own
            L1 proxy (hint-architecture cache-to-cache transfer or a
            higher-level hit in a data hierarchy).
        false_positive: A hint named a cache that no longer held the object
            (wasted probe charged).
        false_negative: No hint although a remote copy existed (priced as a
            plain miss, per "do not slow down misses").
        suboptimal_positive: The hint named a farther cache although a
            closer one also held a current copy -- still a hit, charged at
            the farther distance class (the third hint error of section
            3.1.1).
        push_hit: The hit was served from an object that a push algorithm
            had placed at the proxy before any local demand.
    """

    point: AccessPoint
    time_ms: float
    hit: bool
    remote_hit: bool = False
    false_positive: bool = False
    false_negative: bool = False
    suboptimal_positive: bool = False
    push_hit: bool = False

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise ValueError(f"response time must be non-negative, got {self.time_ms}")
        if self.hit and self.point is AccessPoint.SERVER:
            raise ValueError("a hit cannot be satisfied at the server")
        if not self.hit and self.point is not AccessPoint.SERVER:
            raise ValueError("a miss must be satisfied at the server")


class Architecture(abc.ABC):
    """A cache system: consumes trace requests, produces access results."""

    #: Short name used in experiment reports (e.g. "hierarchy", "hints").
    name: str = "abstract"

    def __init__(self, cost_model: CostModel) -> None:
        self.cost_model = cost_model
        #: Requests driven through this instance by the simulation engine.
        #: Zero means "freshly constructed" -- the invariant comparison
        #: runs check, since reusing a warmed architecture biases results.
        self.processed_requests = 0

    @abc.abstractmethod
    def process(self, request: Request) -> AccessResult:
        """Serve one request, mutating internal cache state."""

    def describe(self) -> str:
        """One-line description for experiment logs."""
        return f"{self.name} ({self.cost_model.name} access times)"
