"""Architecture interface and per-request results.

Every architecture maps one trace request to an :class:`AccessResult`: how
long the request took, where it was satisfied, and which hint pathologies
it hit.  The simulation engine (:mod:`repro.sim.engine`) aggregates these
into the statistics the figures report.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.cache.policy import DEFAULT_POLICY, PolicySpec
from repro.common.errors import ShardRoutingError
from repro.common.ids import partition_of_object
from repro.netmodel.model import AccessPoint, CostModel
from repro.traces.records import Request

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.audit.hooks import AuditHooks
    from repro.cache.lru import CacheEntry
    from repro.faults.events import NodeKind
    from repro.faults.injector import FaultInjector
    from repro.obs.journey import Journey
    from repro.obs.telemetry import MetricsRegistry


def build_l1_caches(
    n_l1: int,
    capacity_bytes: int | None,
    *,
    eviction_callback: "Callable[[int], Callable[[int, CacheEntry, str], None]] | None" = None,
    policy: PolicySpec | None = None,
) -> list:
    """Construct the per-proxy L1 data caches, one per node.

    Every shipped architecture stores data at the L1 proxies; the
    hint-style ones additionally watch evictions so they can retract
    metadata (the prototype's *invalidate* command).  This is that one
    construction, shared: ``eviction_callback`` is the per-node factory
    (``node -> on_evict``), and ``policy`` picks the replacement policy
    (default LRU, behaviour-identical to the historical hardcoded
    ``LRUCache`` sites).  The node index salts the policy build so the
    Random policy's victim streams are independent across proxies.
    """
    spec = policy if policy is not None else DEFAULT_POLICY
    return [
        spec.build(
            capacity_bytes,
            on_evict=eviction_callback(node) if eviction_callback is not None else None,
            salt=node,
        )
        for node in range(n_l1)
    ]


@dataclass(frozen=True)
class ShardInfo:
    """One virtual partition's identity within a sharded run.

    The sharded runner (:mod:`repro.runner.sharding`) splits the object
    space into a fixed number of virtual partitions by stable hash and
    gives every partition its own architecture instance.  Binding a
    ``ShardInfo`` turns on shard-aware peer resolution: hint, ICP, and
    directory lookups may only ever name caches inside the partition that
    owns the object, and :meth:`Architecture.check_shard_owns` raises
    :class:`~repro.common.errors.ShardRoutingError` the moment a request
    for a foreign object reaches this instance -- a routing leak would
    silently break shard-count invariance, so it fails loudly instead.

    Attributes:
        partition: This instance's virtual partition index.
        virtual_partitions: Total virtual partitions in the run's plan.
    """

    partition: int
    virtual_partitions: int

    def __post_init__(self) -> None:
        if self.virtual_partitions < 1:
            raise ValueError(
                f"virtual_partitions must be at least 1, "
                f"got {self.virtual_partitions}"
            )
        if not 0 <= self.partition < self.virtual_partitions:
            raise ValueError(
                f"partition {self.partition} outside "
                f"[0, {self.virtual_partitions})"
            )

    def owns(self, object_id: int) -> bool:
        """Whether this partition owns ``object_id`` under the stable hash."""
        return partition_of_object(object_id, self.virtual_partitions) == self.partition


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one request against one architecture.

    Attributes:
        point: Where the request was satisfied: ``L1``/``L2``/``L3`` for a
            cache hit at that distance, ``SERVER`` for a miss.
        time_ms: Charged response time.
        hit: True when any cache supplied the data.
        remote_hit: True when the supplying cache was not the client's own
            L1 proxy (hint-architecture cache-to-cache transfer or a
            higher-level hit in a data hierarchy).
        false_positive: A hint named a cache that no longer held the object
            (wasted probe charged).
        false_negative: No hint although a remote copy existed (priced as a
            plain miss, per "do not slow down misses").
        suboptimal_positive: The hint named a farther cache although a
            closer one also held a current copy -- still a hit, charged at
            the farther distance class (the third hint error of section
            3.1.1).
        push_hit: The hit was served from an object that a push algorithm
            had placed at the proxy before any local demand.
        timeout_fallback: The request waited out a dead node's timeout and
            then fell back (to the origin server, or around the dead
            level) -- only set under fault injection.
        stale_hint_forward: A hint/directory entry forwarded the request
            to a crashed or emptied node (a *wasted forward*: the copy is
            unreachable although metadata still advertises it) -- only
            set under fault injection.
        fault_added_ms: Portion of ``time_ms`` attributable to injected
            faults (timeouts, origin slowdown, link degradation).  Zero
            on every healthy run.
        journey: The hop ledger this result was derived from
            (:class:`repro.obs.journey.Journey`), or ``None`` for results
            built directly (test stubs).  When present, ``time_ms`` is
            exactly the left-to-right sum of the steps' ``cost_ms`` and
            ``fault_added_ms`` the sum of their ``fault_ms`` -- see
            :meth:`repro.obs.journey.Journey.result`.  Excluded from
            equality/repr: two results are the same outcome even if their
            narrations are distinct objects.
    """

    point: AccessPoint
    time_ms: float
    hit: bool
    remote_hit: bool = False
    false_positive: bool = False
    false_negative: bool = False
    suboptimal_positive: bool = False
    push_hit: bool = False
    timeout_fallback: bool = False
    stale_hint_forward: bool = False
    fault_added_ms: float = 0.0
    journey: "Journey | None" = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise ValueError(f"response time must be non-negative, got {self.time_ms}")
        if not 0 <= self.fault_added_ms <= self.time_ms:
            raise ValueError(
                f"fault-added time must be within [0, time_ms], got "
                f"{self.fault_added_ms} of {self.time_ms}"
            )
        if self.hit and self.point is AccessPoint.SERVER:
            raise ValueError("a hit cannot be satisfied at the server")
        if not self.hit and self.point is not AccessPoint.SERVER:
            raise ValueError("a miss must be satisfied at the server")


class Architecture(abc.ABC):
    """A cache system: consumes trace requests, produces access results."""

    #: Short name used in experiment reports (e.g. "hierarchy", "hints").
    name: str = "abstract"

    def __init__(self, cost_model: CostModel) -> None:
        self.cost_model = cost_model
        #: Requests driven through this instance by the simulation engine.
        #: Zero means "freshly constructed" -- the invariant comparison
        #: runs check, since reusing a warmed architecture biases results.
        self.processed_requests = 0
        #: Bound fault injector, or None (the default healthy case).  Set
        #: via :meth:`attach_faults`; architectures branch to their
        #: fault-aware request path only when this is not None, so a
        #: plan-free run takes exactly the original code path.
        self.faults: "FaultInjector | None" = None
        #: Bound audit hooks, or None (the default).  Set via
        #: :meth:`attach_audit`; architectures call
        #: ``self.audit.checkpoint(self)`` at the top of ``process`` only
        #: when this is not None, so an un-audited run pays one pointer
        #: check per request.
        self.audit: "AuditHooks | None" = None
        #: Bound shard identity, or None (the default unsharded case).
        #: Set via :meth:`bind_shard`; ``process`` implementations call
        #: :meth:`check_shard_owns` only when this is not None, so an
        #: unsharded run pays one pointer check per request.
        self.shard: ShardInfo | None = None

    @abc.abstractmethod
    def process(self, request: Request) -> AccessResult:
        """Serve one request, mutating internal cache state."""

    # ------------------------------------------------------------------
    # fault injection (opt-in; see repro.faults)
    # ------------------------------------------------------------------
    def attach_faults(self, injector: "FaultInjector") -> None:
        """Opt this instance into fault injection for the coming run."""
        self.faults = injector

    def on_fault_crash(self, kind: "NodeKind", node: int) -> None:
        """Injector callback: node ``(kind, node)`` just crashed.

        Subclasses drop the volatile state the crash destroys (cache
        contents, pending metadata).  The base implementation ignores
        kinds an architecture has no node for -- crashing an L3 data
        node cannot hurt an architecture that stores data only at L1.
        """

    def on_fault_recover(self, kind: "NodeKind", node: int) -> None:
        """Injector callback: node ``(kind, node)`` just rejoined (empty)."""

    # ------------------------------------------------------------------
    # auditing (opt-in; see repro.audit)
    # ------------------------------------------------------------------
    def attach_audit(self, hooks: "AuditHooks") -> None:
        """Opt this instance into runtime invariant auditing."""
        self.audit = hooks

    # ------------------------------------------------------------------
    # sharding (opt-in; see repro.runner.sharding)
    # ------------------------------------------------------------------
    def bind_shard(self, info: ShardInfo) -> None:
        """Declare this instance the engine for one virtual partition.

        Must be bound before any request is processed: a warmed instance
        cannot retroactively claim its history honoured the partition.
        """
        if self.processed_requests:
            raise ValueError(
                f"cannot bind a shard to {self.name!r} after it processed "
                f"{self.processed_requests} requests"
            )
        self.shard = info

    def check_shard_owns(self, object_id: int) -> None:
        """Raise unless this instance's partition owns ``object_id``.

        Shard-aware peer resolution: with a shard bound, every hint, ICP
        probe, and directory lookup this instance performs stays inside
        the partition that owns the object -- which is only sound if the
        object actually belongs here.  ``process`` implementations call
        this on entry when ``self.shard`` is set.
        """
        shard = self.shard
        if shard is not None and not shard.owns(object_id):
            raise ShardRoutingError(
                f"object {object_id} routed to partition {shard.partition} "
                f"of {shard.virtual_partitions}, which does not own it"
            )

    # ------------------------------------------------------------------
    # telemetry (opt-in; see repro.obs.telemetry)
    # ------------------------------------------------------------------
    def register_telemetry(self, registry: "MetricsRegistry") -> None:
        """Register this instance's layers as callback-backed instruments.

        The base implementation introspects the structural conventions
        every shipped architecture follows (``l1_caches``/``l2_caches``
        lists, a single ``l3_cache``, a hint ``directory``, ICP sibling
        counters); subclasses with extra state can extend it.  Called by
        :class:`repro.obs.telemetry.RunTelemetry` at run start -- never
        on the request path, so un-telemetered runs pay nothing.
        """
        from repro.obs.telemetry import bind_architecture

        bind_architecture(registry, self)

    def describe(self) -> str:
        """One-line description for experiment logs."""
        return f"{self.name} ({self.cost_model.name} access times)"
