"""Alternate configuration: hint caches at the clients (Figure 4b).

In this variant the metadata hierarchy extends past the L1 proxies to the
clients: each client consults its *own* hint directory and then accesses
the named cache (or the server) directly, skipping the L1 relay.  Data
still lives only at L1 proxy caches.

The trade-off the paper describes (end of section 3.3): client hint caches
are faster to consult and skip a hop, but they are smaller than a shared
proxy hint cache and therefore suffer more false negatives.  "As long as
client caches are large enough so that the false-negative rate for the
client hint caches is below 50%, the alternate configuration is superior."
We expose that knob directly as ``client_false_negative_rate``: the
probability that a client's hint cache has no entry for an object the
proxy-level directory knows about.
"""

from __future__ import annotations

import numpy as np

from repro.cache.lru import LookupResult
from repro.cache.policy import PolicySpec
from repro.hierarchy.base import AccessResult, Architecture, build_l1_caches
from repro.hierarchy.topology import HierarchyTopology
from repro.hints.directory import HintDirectory
from repro.netmodel.model import AccessPoint, CostModel
from repro.obs.journey import Journey
from repro.traces.records import Request


class ClientHintHierarchy(Architecture):
    """Client-side hint directories with direct client-to-cache access.

    Args:
        topology: Client / L1 / L2 / L3 grouping.
        cost_model: Access-time parameterization (direct paths are used).
        l1_bytes: Per-proxy data-cache capacity.
        client_false_negative_rate: Probability that a client hint cache
            misses an entry the full directory holds (capacity effect of
            the small per-client hint store).
        seed: Randomness for the false-negative coin flips.
        l1_policy: Replacement policy for the per-proxy data caches
            (:class:`~repro.cache.policy.PolicySpec`; default LRU).
    """

    name = "client-hints"

    def __init__(
        self,
        topology: HierarchyTopology,
        cost_model: CostModel,
        l1_bytes: int | None = None,
        client_false_negative_rate: float = 0.0,
        seed: int = 0,
        l1_policy: PolicySpec | None = None,
    ) -> None:
        super().__init__(cost_model)
        if not 0.0 <= client_false_negative_rate <= 1.0:
            raise ValueError(
                f"false-negative rate must be in [0, 1], got {client_false_negative_rate}"
            )
        self.topology = topology
        self.client_false_negative_rate = client_false_negative_rate
        self._rng = np.random.default_rng(seed)
        self.directory = HintDirectory()
        self._now = 0.0
        self.l1_caches = build_l1_caches(
            topology.n_l1,
            l1_bytes,
            eviction_callback=self._eviction_callback,
            policy=l1_policy,
        )

    def process(self, request: Request) -> AccessResult:
        if self.audit is not None:
            self.audit.checkpoint(self)
        if self.shard is not None:
            self.check_shard_owns(request.object_id)
        self._now = request.time
        l1_index = self.topology.l1_of_client(request.client_id)
        oid, version, size = request.object_id, request.version, request.size

        # The client always knows its own LAN proxy's contents: those hint
        # entries are the most recently used and survive capacity pressure,
        # and the proxy is one switch away regardless.
        local = self.l1_caches[l1_index].lookup(oid, version)
        if local is LookupResult.HIT:
            journey = Journey()
            journey.local_lookup(
                self.cost_model.direct_ms(AccessPoint.L1, size),
                target=f"l1:{l1_index}",
            )
            return journey.result(AccessPoint.L1, hit=True)
        # Capacity pressure on the small client hint cache falls on the
        # long tail of *remote* entries: with probability fn_rate the
        # client's cache has no entry for a copy the system holds.
        degraded = (
            self.client_false_negative_rate > 0.0
            and self._rng.random() < self.client_false_negative_rate
        )
        if not degraded:
            lookup = self.directory.find(self._now, oid, l1_index)
            holder = self._nearest_holder(lookup.holders, l1_index)
            if holder is not None:
                point = self.topology.distance_class(l1_index, holder)
                remote = self.l1_caches[holder].lookup(oid, version)
                if remote is LookupResult.HIT:
                    # Direct client-to-peer transfer; the client's proxy
                    # still receives the copy (data lives at L1 proxies).
                    self._store(l1_index, request)
                    journey = Journey()
                    journey.transfer(
                        self.cost_model.direct_ms(point, size),
                        target=f"l1:{holder}",
                    )
                    return journey.result(point, hit=True, remote_hit=True)
                self.directory.record_false_positive()
                self._store(l1_index, request)
                journey = Journey()
                journey.peer_probe(
                    self.cost_model.probe_ms(point),
                    target=f"l1:{holder}",
                    wasted=True,
                )
                journey.mark_false_positive()
                journey.origin_fetch(
                    self.cost_model.direct_ms(AccessPoint.SERVER, size)
                )
                return journey.result(AccessPoint.SERVER, hit=False)
        # Degraded (client hint cache too small) or genuinely no holder:
        # the client goes straight to the server.
        self._store(l1_index, request)
        journey = Journey()
        if degraded:
            journey.mark_false_negative()
        journey.origin_fetch(self.cost_model.direct_ms(AccessPoint.SERVER, size))
        return journey.result(AccessPoint.SERVER, hit=False)

    def _store(self, l1_index: int, request: Request) -> None:
        self.l1_caches[l1_index].insert(request.object_id, request.size, request.version)
        self.directory.inform(self._now, request.object_id, l1_index, request.version)

    def _eviction_callback(self, node: int):
        def on_evict(key: int, entry, reason: str) -> None:
            self.directory.retract(self._now, key, node)

        return on_evict

    def _nearest_holder(self, holders: tuple[int, ...], requester: int) -> int | None:
        if not holders:
            return None
        return min(
            holders,
            key=lambda h: (int(self.topology.distance_class(requester, h)), h),
        )
