"""ICP-style sibling-query hierarchy (ablation baseline).

The Internet Cache Protocol (Wessels & Claffy, RFC 2186) lets a cache
multicast a query to its neighbors before forwarding a miss to its parent.
The paper's testbed deliberately ran *without* ICP ("we are interested in
the best costs for traversing a hierarchy"), and its related-work section
argues that multicast queries either limit sharing to nearby nodes or add
hops.  This architecture makes that argument measurable: it is a
:class:`~repro.hierarchy.data_hierarchy.DataHierarchy` whose L1 proxies
first query their L2-group siblings -- paying a sibling round-trip on every
local miss -- and fetch cache-to-cache on a sibling hit.

Expected behaviour (and what the ablation bench shows): ICP beats the plain
hierarchy when sibling hit rates are high, but it slows every miss by the
query timeout and it can never reach copies outside the sibling group,
unlike hints.
"""

from __future__ import annotations

from repro.cache.lru import LookupResult, LRUCache
from repro.hierarchy.base import AccessResult, Architecture
from repro.hierarchy.topology import HierarchyTopology
from repro.netmodel.model import AccessPoint, CostModel
from repro.traces.records import Request


class IcpHierarchy(Architecture):
    """Data hierarchy with ICP-style sibling queries at the L1 level."""

    name = "icp"

    def __init__(
        self,
        topology: HierarchyTopology,
        cost_model: CostModel,
        l1_bytes: int | None = None,
        l2_bytes: int | None = None,
        l3_bytes: int | None = None,
    ) -> None:
        super().__init__(cost_model)
        self.topology = topology
        self.l1_caches = [LRUCache(l1_bytes) for _ in range(topology.n_l1)]
        self.l2_caches = [LRUCache(l2_bytes) for _ in range(topology.n_l2)]
        self.l3_cache = LRUCache(l3_bytes)
        self.sibling_hits = 0
        self.sibling_queries = 0

    def process(self, request: Request) -> AccessResult:
        l1_index = self.topology.l1_of_client(request.client_id)
        l2_index = self.topology.l2_of_l1(l1_index)
        oid, version, size = request.object_id, request.version, request.size

        if self.l1_caches[l1_index].lookup(oid, version) is LookupResult.HIT:
            return AccessResult(
                point=AccessPoint.L1,
                time_ms=self.cost_model.hierarchical_ms(AccessPoint.L1, size),
                hit=True,
            )

        # ICP query: every local miss waits for the sibling round trip.
        self.sibling_queries += 1
        query_ms = self.cost_model.probe_ms(AccessPoint.L2)
        for sibling in self.topology.siblings_of(l1_index):
            if self.l1_caches[sibling].lookup(oid, version) is LookupResult.HIT:
                self.sibling_hits += 1
                self.l1_caches[l1_index].insert(oid, size, version)
                return AccessResult(
                    point=AccessPoint.L2,
                    time_ms=query_ms + self.cost_model.via_l1_ms(AccessPoint.L2, size),
                    hit=True,
                    remote_hit=True,
                )

        # No sibling: proceed up the data hierarchy, query time included.
        if self.l2_caches[l2_index].lookup(oid, version) is LookupResult.HIT:
            self.l1_caches[l1_index].insert(oid, size, version)
            return AccessResult(
                point=AccessPoint.L2,
                time_ms=query_ms + self.cost_model.hierarchical_ms(AccessPoint.L2, size),
                hit=True,
                remote_hit=True,
            )
        if self.l3_cache.lookup(oid, version) is LookupResult.HIT:
            self.l2_caches[l2_index].insert(oid, size, version)
            self.l1_caches[l1_index].insert(oid, size, version)
            return AccessResult(
                point=AccessPoint.L3,
                time_ms=query_ms + self.cost_model.hierarchical_ms(AccessPoint.L3, size),
                hit=True,
                remote_hit=True,
            )
        self.l3_cache.insert(oid, size, version)
        self.l2_caches[l2_index].insert(oid, size, version)
        self.l1_caches[l1_index].insert(oid, size, version)
        return AccessResult(
            point=AccessPoint.SERVER,
            time_ms=query_ms + self.cost_model.hierarchical_ms(AccessPoint.SERVER, size),
            hit=False,
        )
