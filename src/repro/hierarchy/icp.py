"""ICP-style sibling-query hierarchy (ablation baseline).

The Internet Cache Protocol (Wessels & Claffy, RFC 2186) lets a cache
multicast a query to its neighbors before forwarding a miss to its parent.
The paper's testbed deliberately ran *without* ICP ("we are interested in
the best costs for traversing a hierarchy"), and its related-work section
argues that multicast queries either limit sharing to nearby nodes or add
hops.  This architecture makes that argument measurable: it is a
:class:`~repro.hierarchy.data_hierarchy.DataHierarchy` whose L1 proxies
first query their L2-group siblings -- paying a sibling round-trip on every
local miss -- and fetch cache-to-cache on a sibling hit.

Expected behaviour (and what the ablation bench shows): ICP beats the plain
hierarchy when sibling hit rates are high, but it slows every miss by the
query timeout and it can never reach copies outside the sibling group,
unlike hints.
"""

from __future__ import annotations

from repro.cache.lru import LookupResult
from repro.cache.policy import DEFAULT_POLICY, PolicySpec
from repro.hierarchy.base import AccessResult, Architecture, build_l1_caches
from repro.hierarchy.topology import HierarchyTopology
from repro.netmodel.model import AccessPoint, CostModel
from repro.obs.journey import Journey
from repro.traces.records import Request


class IcpHierarchy(Architecture):
    """Data hierarchy with ICP-style sibling queries at the L1 level."""

    name = "icp"

    def __init__(
        self,
        topology: HierarchyTopology,
        cost_model: CostModel,
        l1_bytes: int | None = None,
        l2_bytes: int | None = None,
        l3_bytes: int | None = None,
        l1_policy: PolicySpec | None = None,
        l2_policy: PolicySpec | None = None,
        l3_policy: PolicySpec | None = None,
    ) -> None:
        super().__init__(cost_model)
        self.topology = topology
        self.l1_caches = build_l1_caches(topology.n_l1, l1_bytes, policy=l1_policy)
        l2_spec = l2_policy if l2_policy is not None else DEFAULT_POLICY
        l3_spec = l3_policy if l3_policy is not None else DEFAULT_POLICY
        self.l2_caches = [
            l2_spec.build(l2_bytes, salt=topology.n_l1 + node)
            for node in range(topology.n_l2)
        ]
        self.l3_cache = l3_spec.build(
            l3_bytes, salt=topology.n_l1 + topology.n_l2
        )
        self.sibling_hits = 0
        self.sibling_queries = 0

    def process(self, request: Request) -> AccessResult:
        if self.audit is not None:
            self.audit.checkpoint(self)
        if self.shard is not None:
            self.check_shard_owns(request.object_id)
        if self.faults is not None:
            return self._process_faulted(request)
        l1_index = self.topology.l1_of_client(request.client_id)
        l2_index = self.topology.l2_of_l1(l1_index)
        oid, version, size = request.object_id, request.version, request.size

        if self.l1_caches[l1_index].lookup(oid, version) is LookupResult.HIT:
            journey = Journey()
            journey.local_lookup(
                self.cost_model.hierarchical_ms(AccessPoint.L1, size),
                target=f"l1:{l1_index}",
            )
            return journey.result(AccessPoint.L1, hit=True)

        # ICP query: every local miss waits for the sibling round trip.
        self.sibling_queries += 1
        query_ms = self.cost_model.probe_ms(AccessPoint.L2)
        for sibling in self.topology.siblings_of(l1_index):
            if self.l1_caches[sibling].lookup(oid, version) is LookupResult.HIT:
                self.sibling_hits += 1
                self.l1_caches[l1_index].insert(oid, size, version)
                journey = Journey()
                journey.peer_probe(query_ms, target="siblings")
                journey.transfer(
                    self.cost_model.via_l1_ms(AccessPoint.L2, size),
                    target=f"l1:{sibling}",
                )
                return journey.result(AccessPoint.L2, hit=True, remote_hit=True)

        # No sibling: proceed up the data hierarchy, query time included.
        if self.l2_caches[l2_index].lookup(oid, version) is LookupResult.HIT:
            self.l1_caches[l1_index].insert(oid, size, version)
            journey = Journey()
            journey.peer_probe(query_ms, target="siblings")
            journey.level_traversal(
                self.cost_model.hierarchical_ms(AccessPoint.L2, size),
                target=f"l2:{l2_index}",
            )
            return journey.result(AccessPoint.L2, hit=True, remote_hit=True)
        if self.l3_cache.lookup(oid, version) is LookupResult.HIT:
            self.l2_caches[l2_index].insert(oid, size, version)
            self.l1_caches[l1_index].insert(oid, size, version)
            journey = Journey()
            journey.peer_probe(query_ms, target="siblings")
            journey.level_traversal(
                self.cost_model.hierarchical_ms(AccessPoint.L3, size), target="l3"
            )
            return journey.result(AccessPoint.L3, hit=True, remote_hit=True)
        self.l3_cache.insert(oid, size, version)
        self.l2_caches[l2_index].insert(oid, size, version)
        self.l1_caches[l1_index].insert(oid, size, version)
        journey = Journey()
        journey.peer_probe(query_ms, target="siblings")
        journey.origin_fetch(
            self.cost_model.hierarchical_ms(AccessPoint.SERVER, size)
        )
        return journey.result(AccessPoint.SERVER, hit=False)

    # ------------------------------------------------------------------
    # degraded mode (active only when a FaultInjector is attached)
    # ------------------------------------------------------------------
    def on_fault_crash(self, kind, node: int) -> None:
        from repro.faults.events import NodeKind

        if kind is NodeKind.L1 and node < len(self.l1_caches):
            self.l1_caches[node].clear()
        elif kind is NodeKind.L2 and node < len(self.l2_caches):
            self.l2_caches[node].clear()
        elif kind is NodeKind.L3:
            self.l3_cache.clear()

    def _process_faulted(self, request: Request) -> AccessResult:
        """ICP under faults: queries to dead siblings wait out the timeout.

        The multicast query only completes when every queried peer has
        answered, so *one* dead sibling stalls every local miss for the
        full timeout -- the protocol-level fragility the paper's related
        -work section points at.  Dead parents behave as in the plain
        data hierarchy: timeout, then fall back to the origin server.
        """
        faults = self.faults
        assert faults is not None
        l1_index = self.topology.l1_of_client(request.client_id)
        l2_index = self.topology.l2_of_l1(l1_index)
        oid, version, size = request.object_id, request.version, request.size
        cost = self.cost_model

        if faults.is_down("l1", l1_index):
            faults.note_dead_probe()
            return self._fault_fallback(size, Journey(), target=f"l1:{l1_index}")

        if self.l1_caches[l1_index].lookup(oid, version) is LookupResult.HIT:
            charged, added = faults.degraded_ms(cost.hierarchical_ms(AccessPoint.L1, size))
            journey = Journey()
            journey.local_lookup(charged, target=f"l1:{l1_index}", fault_ms=added)
            return journey.result(AccessPoint.L1, hit=True)

        self.sibling_queries += 1
        query_ms, query_added = faults.degraded_ms(cost.probe_ms(AccessPoint.L2))
        live_siblings = []
        dead_sibling = False
        for sibling in self.topology.siblings_of(l1_index):
            if faults.is_down("l1", sibling):
                dead_sibling = True
            else:
                live_siblings.append(sibling)
        journey = Journey()
        journey.peer_probe(query_ms, target="siblings", fault_ms=query_added)
        if dead_sibling:
            # The query round only resolves at the timeout deadline.
            faults.note_dead_probe()
            journey.timeout(faults.timeout_ms, target="siblings")

        for sibling in live_siblings:
            if self.l1_caches[sibling].lookup(oid, version) is LookupResult.HIT:
                self.sibling_hits += 1
                self.l1_caches[l1_index].insert(oid, size, version)
                charged, added = faults.degraded_ms(cost.via_l1_ms(AccessPoint.L2, size))
                journey.transfer(charged, target=f"l1:{sibling}", fault_ms=added)
                return journey.result(AccessPoint.L2, hit=True, remote_hit=True)

        if faults.is_down("l2", l2_index):
            faults.note_dead_probe()
            self.l1_caches[l1_index].insert(oid, size, version)
            return self._fault_fallback(size, journey, target=f"l2:{l2_index}")

        if self.l2_caches[l2_index].lookup(oid, version) is LookupResult.HIT:
            self.l1_caches[l1_index].insert(oid, size, version)
            charged, added = faults.degraded_ms(cost.hierarchical_ms(AccessPoint.L2, size))
            journey.level_traversal(charged, target=f"l2:{l2_index}", fault_ms=added)
            return journey.result(AccessPoint.L2, hit=True, remote_hit=True)

        if faults.is_down("l3", 0):
            faults.note_dead_probe()
            self.l2_caches[l2_index].insert(oid, size, version)
            self.l1_caches[l1_index].insert(oid, size, version)
            return self._fault_fallback(size, journey, target="l3")

        if self.l3_cache.lookup(oid, version) is LookupResult.HIT:
            self.l2_caches[l2_index].insert(oid, size, version)
            self.l1_caches[l1_index].insert(oid, size, version)
            charged, added = faults.degraded_ms(cost.hierarchical_ms(AccessPoint.L3, size))
            journey.level_traversal(charged, target="l3", fault_ms=added)
            return journey.result(AccessPoint.L3, hit=True, remote_hit=True)

        self.l3_cache.insert(oid, size, version)
        self.l2_caches[l2_index].insert(oid, size, version)
        self.l1_caches[l1_index].insert(oid, size, version)
        charged, added = faults.degraded_ms(
            cost.hierarchical_ms(AccessPoint.SERVER, size), origin=True
        )
        journey.origin_fetch(charged, fault_ms=added)
        return journey.result(AccessPoint.SERVER, hit=False)

    def _fault_fallback(
        self, size: int, journey: Journey, *, target: str
    ) -> AccessResult:
        """Complete a walk blocked by a dead parent: timeout, then origin.

        ``journey`` carries the steps already charged (the sibling query
        round, possibly its own timeout); the dead parent's timeout and
        the origin fetch are appended here.
        """
        faults = self.faults
        charged, added = faults.degraded_ms(
            self.cost_model.hierarchical_ms(AccessPoint.SERVER, size), origin=True
        )
        journey.timeout(faults.timeout_ms, target=target)
        journey.origin_fetch(charged, fault_ms=added)
        return journey.result(AccessPoint.SERVER, hit=False)
