"""The paper's architecture: location hints + direct cache-to-cache transfer.

Data lives only at L1 proxy caches.  On a local miss the proxy consults its
hint cache (a local, microsecond operation -- hint propagation happens in
the background); a hint sends the request straight to the peer cache
holding the nearest copy, which returns the data in a single
cache-to-cache hop; no hint sends the request straight to the origin
server.  This satisfies all of: minimize hops, don't slow down misses, and
share data among many caches.

Hint pathologies are modelled per section 3.1.1:

* *false positive* -- the probed peer no longer holds the object (or holds
  a stale version): the peer replies with an error and the request goes to
  the server; no second hint lookup is attempted.
* *false negative* -- the hint cache knows no copy although one exists:
  priced exactly like a plain miss.
* *suboptimal positive* -- a farther peer is named although a nearer one
  has the object: still a hit, charged at the farther distance class.

Push policies (section 4) hook the two fetch events; the ``charge_remote_
as_l1`` flag implements the ideal-push upper bound (every remote hit is
charged as a local hit and the replicas consume no space).
"""

from __future__ import annotations

from repro.cache.lru import CacheEntry, LookupResult
from repro.cache.policy import PolicySpec
from repro.hierarchy.base import AccessResult, Architecture, build_l1_caches
from repro.hierarchy.topology import HierarchyTopology
from repro.hints.directory import HintDirectory
from repro.netmodel.model import AccessPoint, CostModel
from repro.obs.journey import Journey
from repro.push.base import PushAction, PushPolicy, PushStats
from repro.traces.records import Request


class HintHierarchy(Architecture):
    """Hint-directory architecture with direct cache-to-cache transfers.

    Args:
        topology: Client / L1 / L2 / L3 grouping (the metadata hierarchy
            follows the same shape).
        cost_model: Access-time parameterization.
        l1_bytes: Per-proxy data-cache capacity (``None`` = infinite).
        hint_capacity_bytes: Hint-cache capacity at 16 bytes/entry
            (``None`` = unbounded; Figure 5 sweeps this).
        hint_delay_s: Hint propagation delay (Figure 6 sweeps this).
        push_policy: Optional push policy (section 4).
        charge_remote_as_l1: Ideal-push accounting -- remote hits are
            charged as L1 hits (section 4.1.1's best case).
        l1_policy: Replacement policy for the per-proxy data caches
            (:class:`~repro.cache.policy.PolicySpec`; default LRU).
    """

    name = "hints"

    def __init__(
        self,
        topology: HierarchyTopology,
        cost_model: CostModel,
        l1_bytes: int | None = None,
        hint_capacity_bytes: int | None = None,
        hint_delay_s: float = 0.0,
        push_policy: PushPolicy | None = None,
        charge_remote_as_l1: bool = False,
        l1_policy: PolicySpec | None = None,
    ) -> None:
        super().__init__(cost_model)
        self.topology = topology
        self.directory = HintDirectory(
            capacity_bytes=hint_capacity_bytes,
            propagation_delay_s=hint_delay_s,
        )
        self.push_policy = push_policy
        self.push_stats = PushStats()
        self.charge_remote_as_l1 = charge_remote_as_l1
        if charge_remote_as_l1:
            self.name = "hints-ideal-push"
        elif push_policy is not None:
            self.name = f"hints+{push_policy.name}"

        self._now = 0.0
        self._base_hint_delay_s = hint_delay_s
        # (node, object) -> pushed version, for replicas awaiting first use.
        self._pending_push: dict[tuple[int, int], int] = {}
        self.l1_caches = build_l1_caches(
            topology.n_l1,
            l1_bytes,
            eviction_callback=self._eviction_callback,
            policy=l1_policy,
        )

    # ------------------------------------------------------------------
    # request processing
    # ------------------------------------------------------------------
    def process(self, request: Request) -> AccessResult:
        if self.audit is not None:
            self.audit.checkpoint(self)
        if self.shard is not None:
            self.check_shard_owns(request.object_id)
        if self.faults is not None:
            return self._process_faulted(request)
        self._now = request.time
        l1_index = self.topology.l1_of_client(request.client_id)
        cache = self.l1_caches[l1_index]
        oid, version, size = request.object_id, request.version, request.size

        local = cache.lookup(oid, version)
        if local is LookupResult.HIT:
            journey = Journey()
            journey.local_lookup(
                self.cost_model.via_l1_ms(AccessPoint.L1, size),
                target=f"l1:{l1_index}",
            )
            if self._consume_push_mark(l1_index, oid, version):
                journey.mark_push_hit()
            return journey.result(AccessPoint.L1, hit=True)
        local_had_stale = local is LookupResult.STALE

        lookup = self.directory.find(self._now, oid, l1_index)
        holder = self._nearest_holder(lookup.holders, l1_index)
        # Snapshot stale holders *before* any probe: a probed cache that
        # finds itself stale invalidates on the spot, but it remains an
        # update-push candidate (the paper's "recently invalidated" list).
        stale_holders = {
            node: held
            for node, held in self.directory.truth_holders(oid).items()
            if held < version and node != l1_index
        }

        if holder is not None:
            point = self.topology.distance_class(l1_index, holder)
            remote = self.l1_caches[holder].lookup(oid, version)
            if remote is LookupResult.HIT:
                return self._remote_hit(request, l1_index, holder, point)
            # The advertised copy is gone or stale: a false positive.  The
            # probed cache replies with an error; go straight to the server.
            self.directory.record_false_positive()
            return self._server_fetch(
                request, l1_index, local_had_stale, stale_holders,
                probe_ms=self.cost_model.probe_ms(point),
                probe_target=f"l1:{holder}",
                false_positive=True,
            )

        return self._server_fetch(
            request, l1_index, local_had_stale, stale_holders,
            false_negative=lookup.false_negative,
        )

    # ------------------------------------------------------------------
    # degraded mode (active only when a FaultInjector is attached)
    # ------------------------------------------------------------------
    def on_fault_crash(self, kind, node: int) -> None:
        """An L1 proxy dies without a goodbye.

        Its data is gone (ground truth updated) but the retractions were
        never sent (``visible=False``), so every hint cache keeps
        advertising the dead node's holdings -- the paper's "stale but
        never wrong" hints become plain wrong until probes discover the
        corpse.  Metadata-node crashes need no state change here; they
        suppress hint visibility on the request path instead.
        """
        from repro.faults.events import NodeKind

        if kind is NodeKind.L1 and node < len(self.l1_caches):
            for key in self.l1_caches[node].clear():
                self.directory.retract(self._now, key, node, visible=False)
                self._pending_push.pop((node, key), None)

    def _meta_node_of(self, l1_index: int) -> int:
        """Metadata-hierarchy node relaying hint updates for this proxy.

        The metadata hierarchy follows the data topology's shape, so the
        interior node covering an L1 proxy is its L2 group index.
        """
        return self.topology.l2_of_l1(l1_index)

    def _process_faulted(self, request: Request) -> AccessResult:
        """The hint walk under faults.

        The structural claim under test (section 5's availability
        argument): hints keep working when nodes die, because any live
        peer or the origin server remains reachable without a fixed
        chain of parents.  The costs of degradation are wasted forwards
        to dead holders (timeout, counted as ``stale_hint_forward``) and
        eroding hint coverage (lost batches and dead metadata nodes make
        stores invisible, so future lookups miss straight to the server
        -- slower, never wrong).

        Push policies and the ideal-push accounting are not exercised in
        degraded mode; fault experiments run the plain hint architecture.
        """
        faults = self.faults
        assert faults is not None
        self._now = request.time
        # StaleHintDrift: extra visibility lag on top of the configured
        # propagation delay, applied to every event scheduled from now on.
        self.directory.propagation_delay_s = (
            self._base_hint_delay_s + faults.hint_delay_skew_s
        )
        l1_index = self.topology.l1_of_client(request.client_id)
        oid, version, size = request.object_id, request.version, request.size
        cost = self.cost_model

        if faults.is_down("l1", l1_index):
            # The client's own proxy is dead: wait out the timeout, then
            # fetch from the origin directly.  Nothing is cached.
            faults.note_dead_probe()
            charged, added = faults.degraded_ms(
                cost.via_l1_ms(AccessPoint.SERVER, size), origin=True
            )
            journey = Journey()
            journey.timeout(faults.timeout_ms, target=f"l1:{l1_index}")
            journey.origin_fetch(charged, fault_ms=added)
            return journey.result(AccessPoint.SERVER, hit=False)

        cache = self.l1_caches[l1_index]
        if cache.lookup(oid, version) is LookupResult.HIT:
            charged, added = faults.degraded_ms(cost.via_l1_ms(AccessPoint.L1, size))
            journey = Journey()
            journey.local_lookup(charged, target=f"l1:{l1_index}", fault_ms=added)
            return journey.result(AccessPoint.L1, hit=True)

        lookup = self.directory.find(self._now, oid, l1_index)
        holder = self._nearest_holder(lookup.holders, l1_index)

        if holder is not None and faults.is_down("l1", holder):
            # A stale hint forwarded the request to a crashed peer: the
            # probe times out, the requester discards the bad hint, and
            # the request completes at the origin server.
            faults.note_dead_probe()
            self.directory.drop_visible(oid, holder)
            self.directory.record_false_positive()
            self._store_faulted(l1_index, request)
            charged, added = faults.degraded_ms(
                cost.via_l1_ms(AccessPoint.SERVER, size), origin=True
            )
            journey = Journey()
            journey.hint_lookup(cost.hint_lookup_ms(), target=f"l1:{holder}")
            journey.timeout(faults.timeout_ms, target=f"l1:{holder}", stale=True)
            journey.mark_false_positive()
            journey.origin_fetch(charged, fault_ms=added)
            return journey.result(AccessPoint.SERVER, hit=False)

        if holder is not None:
            point = self.topology.distance_class(l1_index, holder)
            if self.l1_caches[holder].lookup(oid, version) is LookupResult.HIT:
                suboptimal = any(
                    held >= version
                    and node != l1_index
                    and self.topology.distance_class(l1_index, node) < point
                    for node, held in self.directory.truth_holders(oid).items()
                )
                self._store_faulted(l1_index, request)
                charged, added = faults.degraded_ms(cost.via_l1_ms(point, size))
                journey = Journey()
                journey.hint_lookup(cost.hint_lookup_ms(), target=f"l1:{holder}")
                journey.transfer(charged, target=f"l1:{holder}", fault_ms=added)
                if suboptimal:
                    journey.mark_suboptimal()
                return journey.result(point, hit=True, remote_hit=True)
            # Ordinary false positive: the live peer no longer holds the
            # object (or invalidated a stale copy); wasted probe, then
            # the origin server.
            self.directory.record_false_positive()
            probe_ms, probe_added = faults.degraded_ms(cost.probe_ms(point))
            self._store_faulted(l1_index, request)
            charged, added = faults.degraded_ms(
                cost.via_l1_ms(AccessPoint.SERVER, size), origin=True
            )
            journey = Journey()
            journey.hint_lookup(cost.hint_lookup_ms(), target=f"l1:{holder}")
            journey.peer_probe(
                probe_ms, target=f"l1:{holder}", fault_ms=probe_added, wasted=True
            )
            journey.mark_false_positive()
            journey.origin_fetch(charged, fault_ms=added)
            return journey.result(AccessPoint.SERVER, hit=False)

        self._store_faulted(l1_index, request)
        charged, added = faults.degraded_ms(
            cost.via_l1_ms(AccessPoint.SERVER, size), origin=True
        )
        journey = Journey()
        journey.hint_lookup(cost.hint_lookup_ms())
        if lookup.false_negative:
            journey.mark_false_negative()
        journey.origin_fetch(charged, fault_ms=added)
        return journey.result(AccessPoint.SERVER, hit=False)

    def _store_faulted(self, l1_index: int, request: Request) -> None:
        """Store a demand copy; the hint announcement may be lost in flight.

        The copy always lands in the data cache (ground truth), but the
        inform is invisible when the seeded batch-loss draw says so or
        when the metadata node relaying this proxy's updates is down --
        either way the system accrues future false negatives, never
        incorrect data.
        """
        faults = self.faults
        self.l1_caches[l1_index].insert(
            request.object_id, request.size, request.version
        )
        dropped = faults.hint_update_dropped()
        visible = not dropped and not faults.is_down("meta", self._meta_node_of(l1_index))
        self.directory.inform(
            self._now, request.object_id, l1_index, request.version, visible=visible
        )

    # ------------------------------------------------------------------
    # hit / miss paths
    # ------------------------------------------------------------------
    def _remote_hit(
        self, request: Request, l1_index: int, holder: int, point: AccessPoint
    ) -> AccessResult:
        size = request.size
        charged_point = AccessPoint.L1 if self.charge_remote_as_l1 else point
        # Section 3.1.1's third hint error: a closer cache also held a
        # current copy but the (stale or displaced) hint view named a
        # farther one.  Still a hit, charged at the farther distance.
        suboptimal = any(
            held >= request.version
            and node != l1_index
            and self.topology.distance_class(l1_index, node) < point
            for node, held in self.directory.truth_holders(request.object_id).items()
        )
        self.push_stats.note_time(self._now)
        self.push_stats.demand_bytes += size
        if not self.charge_remote_as_l1:
            # The requester keeps a demand copy (the ideal-push bound skips
            # this so extra replicas never consume disk space).
            self._store(l1_index, request)
        if self.push_policy is not None:
            actions = self.push_policy.on_remote_fetch(
                now=self._now,
                request=request,
                requester_l1=l1_index,
                source_l1=holder,
                lca_level=int(point),
            )
            self._apply_pushes(actions, exclude={l1_index, holder})
        journey = Journey()
        journey.hint_lookup(self.cost_model.hint_lookup_ms(), target=f"l1:{holder}")
        journey.transfer(
            self.cost_model.via_l1_ms(charged_point, size), target=f"l1:{holder}"
        )
        if suboptimal:
            journey.mark_suboptimal()
        return journey.result(charged_point, hit=True, remote_hit=True)

    def _server_fetch(
        self,
        request: Request,
        l1_index: int,
        local_had_stale: bool,
        stale_holders: dict[int, int],
        *,
        probe_ms: float = 0.0,
        probe_target: str = "",
        false_positive: bool = False,
        false_negative: bool = False,
    ) -> AccessResult:
        size = request.size
        communication_miss = local_had_stale or bool(stale_holders)
        self.push_stats.note_time(self._now)
        self.push_stats.demand_bytes += size
        self._store(l1_index, request)
        if self.push_policy is not None:
            actions = self.push_policy.on_server_fetch(
                now=self._now,
                request=request,
                requester_l1=l1_index,
                communication_miss=communication_miss,
                stale_holders=stale_holders,
            )
            self._apply_pushes(actions, exclude={l1_index})
        journey = Journey()
        journey.hint_lookup(self.cost_model.hint_lookup_ms())
        if false_positive:
            journey.peer_probe(probe_ms, target=probe_target, wasted=True)
            journey.mark_false_positive()
        if false_negative:
            journey.mark_false_negative()
        journey.origin_fetch(self.cost_model.via_l1_ms(AccessPoint.SERVER, size))
        return journey.result(AccessPoint.SERVER, hit=False)

    # ------------------------------------------------------------------
    # storage and hint bookkeeping
    # ------------------------------------------------------------------
    def _store(self, l1_index: int, request: Request) -> None:
        """Cache a demand copy at the requester's proxy and advertise it."""
        self.l1_caches[l1_index].insert(
            request.object_id, request.size, request.version
        )
        self.directory.inform(
            self._now, request.object_id, l1_index, request.version
        )

    def _apply_pushes(self, actions: list[PushAction], exclude: set[int]) -> None:
        for action in actions:
            if action.target_l1 in exclude:
                self.push_stats.skipped_count += 1
                continue
            cache = self.l1_caches[action.target_l1]
            existing = cache.peek(action.object_id)
            if existing is not None and existing.version >= action.version:
                self.push_stats.skipped_count += 1
                continue
            cache.insert(action.object_id, action.size, action.version)
            if action.age_entry:
                # Update-push aging: repeatedly-updated-but-unread objects
                # drift toward eviction instead of staying hot.
                cache.touch_lru_demote(action.object_id)
            self.directory.inform(
                self._now, action.object_id, action.target_l1, action.version
            )
            self._pending_push[(action.target_l1, action.object_id)] = action.version
            self.push_stats.pushed_count += 1
            self.push_stats.pushed_bytes += action.size

    def _consume_push_mark(self, node: int, oid: int, version: int) -> bool:
        pushed_version = self._pending_push.pop((node, oid), None)
        if pushed_version is None or pushed_version < version:
            return False
        self.push_stats.used_count += 1
        size = self.l1_caches[node].peek(oid).size if self.l1_caches[node].peek(oid) else 0
        self.push_stats.used_bytes += size
        return True

    def _eviction_callback(self, node: int):
        def on_evict(key: int, entry: CacheEntry, reason: str) -> None:
            self.directory.retract(self._now, key, node)
            pushed_version = self._pending_push.pop((node, key), None)
            if pushed_version is not None:
                self.push_stats.wasted_count += 1
                self.push_stats.wasted_bytes += entry.size

        return on_evict

    def _nearest_holder(self, holders: tuple[int, ...], requester: int) -> int | None:
        if not holders:
            return None
        return min(
            holders,
            key=lambda h: (int(self.topology.distance_class(requester, h)), h),
        )
