"""Cache-system architectures.

All architectures consume the same trace and the same cost model, so their
response times are directly comparable (Figure 8 / Table 6):

* :class:`repro.hierarchy.data_hierarchy.DataHierarchy` -- the traditional
  three-level hierarchy of data caches (Harvest/Squid style).
* :class:`repro.hierarchy.hint_hierarchy.HintHierarchy` -- the paper's
  architecture: data at L1 proxies only, location hints, direct
  cache-to-cache transfers.
* :class:`repro.hierarchy.client_hints.ClientHintHierarchy` -- the
  alternate configuration of Figure 4(b): hint caches at the clients.
* :class:`repro.hierarchy.directory_arch.CentralizedDirectoryArchitecture`
  -- a CRISP-style centralized directory (the "Directory" bars).
* :class:`repro.hierarchy.icp.IcpHierarchy` -- an ICP-style
  query-the-siblings baseline (our ablation; the paper's testbed
  deliberately disabled ICP).
"""

from repro.hierarchy.base import AccessResult, Architecture
from repro.hierarchy.client_hints import ClientHintHierarchy
from repro.hierarchy.data_hierarchy import DataHierarchy
from repro.hierarchy.directory_arch import CentralizedDirectoryArchitecture
from repro.hierarchy.hint_hierarchy import HintHierarchy
from repro.hierarchy.icp import IcpHierarchy
from repro.hierarchy.message_hints import MessageLevelHintHierarchy
from repro.hierarchy.topology import HierarchyTopology

__all__ = [
    "AccessResult",
    "Architecture",
    "CentralizedDirectoryArchitecture",
    "ClientHintHierarchy",
    "DataHierarchy",
    "HierarchyTopology",
    "HintHierarchy",
    "IcpHierarchy",
    "MessageLevelHintHierarchy",
]
