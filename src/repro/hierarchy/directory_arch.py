"""Centralized-directory architecture (CRISP-style; the "Directory" bars).

The CRISP cache (Gadde, Rabinovich, Chase 1997) keeps one *central* mapping
from objects to caches.  An L1 proxy that misses locally asks the central
directory where the object is, then fetches it with a direct cache-to-cache
transfer (or from the server when the directory knows no copy).

Compared with the hint architecture, the lookup is always fresh and
complete -- no false positives or negatives -- but it costs a network round
trip to the directory on **every** local miss, including requests that end
up going to the server, which violates "do not slow down misses".  The
directory sits at the root of the system, so the round trip is priced at
L3 distance.
"""

from __future__ import annotations

from repro.cache.lru import LookupResult, LRUCache
from repro.hierarchy.base import AccessResult, Architecture
from repro.hierarchy.topology import HierarchyTopology
from repro.hints.directory import HintDirectory
from repro.netmodel.model import AccessPoint, CostModel
from repro.traces.records import Request


class CentralizedDirectoryArchitecture(Architecture):
    """One always-fresh global directory queried over the network.

    Args:
        topology: Client / L1 / L2 / L3 grouping.
        cost_model: Access-time parameterization.
        l1_bytes: Per-proxy data-cache capacity (``None`` = infinite).
        directory_point: Distance class of the directory node (L3 -- the
            root -- by default).
    """

    name = "directory"

    def __init__(
        self,
        topology: HierarchyTopology,
        cost_model: CostModel,
        l1_bytes: int | None = None,
        directory_point: AccessPoint = AccessPoint.L3,
    ) -> None:
        super().__init__(cost_model)
        self.topology = topology
        self.directory_point = directory_point
        # Zero delay, unbounded capacity: the central directory is complete
        # and fresh; its cost is the query round trip, not staleness.
        self.directory = HintDirectory()
        self._now = 0.0
        self.l1_caches = [
            LRUCache(l1_bytes, on_evict=self._eviction_callback(node))
            for node in range(topology.n_l1)
        ]

    def process(self, request: Request) -> AccessResult:
        self._now = request.time
        l1_index = self.topology.l1_of_client(request.client_id)
        oid, version, size = request.object_id, request.version, request.size

        if self.l1_caches[l1_index].lookup(oid, version) is LookupResult.HIT:
            return AccessResult(
                point=AccessPoint.L1,
                time_ms=self.cost_model.via_l1_ms(AccessPoint.L1, size),
                hit=True,
            )

        query_ms = self.cost_model.probe_ms(self.directory_point)
        lookup = self.directory.find(self._now, oid, l1_index)
        holder = self._nearest_fresh_holder(lookup.holders, l1_index, oid, version)

        if holder is not None:
            point = self.topology.distance_class(l1_index, holder)
            # The directory is fresh, so the peer is guaranteed to hold a
            # current copy (we filtered stale versions above).
            self.l1_caches[holder].lookup(oid, version)  # refresh peer LRU
            self._store(l1_index, request)
            return AccessResult(
                point=point,
                time_ms=query_ms + self.cost_model.via_l1_ms(point, size),
                hit=True,
                remote_hit=True,
            )

        self._store(l1_index, request)
        return AccessResult(
            point=AccessPoint.SERVER,
            time_ms=query_ms + self.cost_model.via_l1_ms(AccessPoint.SERVER, size),
            hit=False,
        )

    def _nearest_fresh_holder(
        self, holders: tuple[int, ...], requester: int, oid: int, version: int
    ) -> int | None:
        """Nearest holder with a current version (the directory is exact)."""
        truth = self.directory.truth_holders(oid)
        fresh = [h for h in holders if truth.get(h, -1) >= version]
        if not fresh:
            return None
        return min(
            fresh,
            key=lambda h: (int(self.topology.distance_class(requester, h)), h),
        )

    def _store(self, l1_index: int, request: Request) -> None:
        self.l1_caches[l1_index].insert(request.object_id, request.size, request.version)
        self.directory.inform(self._now, request.object_id, l1_index, request.version)

    def _eviction_callback(self, node: int):
        def on_evict(key: int, entry, reason: str) -> None:
            self.directory.retract(self._now, key, node)

        return on_evict
