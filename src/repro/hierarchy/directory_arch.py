"""Centralized-directory architecture (CRISP-style; the "Directory" bars).

The CRISP cache (Gadde, Rabinovich, Chase 1997) keeps one *central* mapping
from objects to caches.  An L1 proxy that misses locally asks the central
directory where the object is, then fetches it with a direct cache-to-cache
transfer (or from the server when the directory knows no copy).

Compared with the hint architecture, the lookup is always fresh and
complete -- no false positives or negatives -- but it costs a network round
trip to the directory on **every** local miss, including requests that end
up going to the server, which violates "do not slow down misses".  The
directory sits at the root of the system, so the round trip is priced at
L3 distance.
"""

from __future__ import annotations

from repro.cache.lru import LookupResult
from repro.cache.policy import PolicySpec
from repro.hierarchy.base import AccessResult, Architecture, build_l1_caches
from repro.hierarchy.topology import HierarchyTopology
from repro.hints.directory import HintDirectory
from repro.netmodel.model import AccessPoint, CostModel
from repro.obs.journey import Journey
from repro.traces.records import Request


class CentralizedDirectoryArchitecture(Architecture):
    """One always-fresh global directory queried over the network.

    Args:
        topology: Client / L1 / L2 / L3 grouping.
        cost_model: Access-time parameterization.
        l1_bytes: Per-proxy data-cache capacity (``None`` = infinite).
        directory_point: Distance class of the directory node (L3 -- the
            root -- by default).
        l1_policy: Replacement policy for the per-proxy data caches
            (:class:`~repro.cache.policy.PolicySpec`; default LRU).
    """

    name = "directory"

    def __init__(
        self,
        topology: HierarchyTopology,
        cost_model: CostModel,
        l1_bytes: int | None = None,
        directory_point: AccessPoint = AccessPoint.L3,
        l1_policy: PolicySpec | None = None,
    ) -> None:
        super().__init__(cost_model)
        self.topology = topology
        self.directory_point = directory_point
        # Zero delay, unbounded capacity: the central directory is complete
        # and fresh; its cost is the query round trip, not staleness.
        self.directory = HintDirectory()
        self._now = 0.0
        self.l1_caches = build_l1_caches(
            topology.n_l1,
            l1_bytes,
            eviction_callback=self._eviction_callback,
            policy=l1_policy,
        )

    #: The central directory is metadata node 0 in fault plans.
    DIRECTORY_META_NODE = 0

    def process(self, request: Request) -> AccessResult:
        if self.audit is not None:
            self.audit.checkpoint(self)
        if self.shard is not None:
            self.check_shard_owns(request.object_id)
        if self.faults is not None:
            return self._process_faulted(request)
        self._now = request.time
        l1_index = self.topology.l1_of_client(request.client_id)
        oid, version, size = request.object_id, request.version, request.size

        if self.l1_caches[l1_index].lookup(oid, version) is LookupResult.HIT:
            journey = Journey()
            journey.local_lookup(
                self.cost_model.via_l1_ms(AccessPoint.L1, size),
                target=f"l1:{l1_index}",
            )
            return journey.result(AccessPoint.L1, hit=True)

        query_ms = self.cost_model.probe_ms(self.directory_point)
        lookup = self.directory.find(self._now, oid, l1_index)
        holder = self._nearest_fresh_holder(lookup.holders, l1_index, oid, version)

        if holder is not None:
            point = self.topology.distance_class(l1_index, holder)
            # The directory is fresh, so the peer is guaranteed to hold a
            # current copy (we filtered stale versions above).
            self.l1_caches[holder].lookup(oid, version)  # refresh peer LRU
            self._store(l1_index, request)
            journey = Journey()
            journey.peer_probe(query_ms, target="directory")
            journey.transfer(
                self.cost_model.via_l1_ms(point, size), target=f"l1:{holder}"
            )
            return journey.result(point, hit=True, remote_hit=True)

        self._store(l1_index, request)
        journey = Journey()
        journey.peer_probe(query_ms, target="directory")
        journey.origin_fetch(self.cost_model.via_l1_ms(AccessPoint.SERVER, size))
        return journey.result(AccessPoint.SERVER, hit=False)

    def _nearest_fresh_holder(
        self, holders: tuple[int, ...], requester: int, oid: int, version: int
    ) -> int | None:
        """Nearest holder with a current version (the directory is exact)."""
        truth = self.directory.truth_holders(oid)
        fresh = [h for h in holders if truth.get(h, -1) >= version]
        if not fresh:
            return None
        return min(
            fresh,
            key=lambda h: (int(self.topology.distance_class(requester, h)), h),
        )

    def _store(self, l1_index: int, request: Request) -> None:
        self.l1_caches[l1_index].insert(request.object_id, request.size, request.version)
        self.directory.inform(self._now, request.object_id, l1_index, request.version)

    def _eviction_callback(self, node: int):
        def on_evict(key: int, entry, reason: str) -> None:
            self.directory.retract(self._now, key, node)

        return on_evict

    # ------------------------------------------------------------------
    # degraded mode (active only when a FaultInjector is attached)
    # ------------------------------------------------------------------
    def on_fault_crash(self, kind, node: int) -> None:
        """Crashes hurt CRISP two ways: dead proxies leave the directory
        pointing at data that no longer exists (the node died without
        retracting), and a dead directory makes *every* local miss pay a
        query timeout before going to the origin server."""
        from repro.faults.events import NodeKind

        if kind is NodeKind.L1 and node < len(self.l1_caches):
            # The node cannot say goodbye: directory entries go stale.
            for key in self.l1_caches[node].clear():
                self.directory.retract(self._now, key, node, visible=False)

    def _process_faulted(self, request: Request) -> AccessResult:
        faults = self.faults
        assert faults is not None
        self._now = request.time
        l1_index = self.topology.l1_of_client(request.client_id)
        oid, version, size = request.object_id, request.version, request.size
        cost = self.cost_model

        if faults.is_down("l1", l1_index):
            # Client's own proxy dead: timeout, then direct origin fetch.
            faults.note_dead_probe()
            charged, added = faults.degraded_ms(
                cost.via_l1_ms(AccessPoint.SERVER, size), origin=True
            )
            journey = Journey()
            journey.timeout(faults.timeout_ms, target=f"l1:{l1_index}")
            journey.origin_fetch(charged, fault_ms=added)
            return journey.result(AccessPoint.SERVER, hit=False)

        if self.l1_caches[l1_index].lookup(oid, version) is LookupResult.HIT:
            charged, added = faults.degraded_ms(cost.via_l1_ms(AccessPoint.L1, size))
            journey = Journey()
            journey.local_lookup(charged, target=f"l1:{l1_index}", fault_ms=added)
            return journey.result(AccessPoint.L1, hit=True)

        if faults.is_down("meta", self.DIRECTORY_META_NODE):
            # The directory itself is down: the query times out and the
            # miss goes straight to the origin server.  The copy is still
            # cached locally, but the directory never hears about it --
            # its map silently erodes for the outage's duration.
            faults.note_dead_probe()
            self.l1_caches[l1_index].insert(oid, size, version)
            charged, added = faults.degraded_ms(
                cost.via_l1_ms(AccessPoint.SERVER, size), origin=True
            )
            journey = Journey()
            journey.timeout(faults.timeout_ms, target="directory")
            journey.origin_fetch(charged, fault_ms=added)
            return journey.result(AccessPoint.SERVER, hit=False)

        query_ms, query_added = faults.degraded_ms(cost.probe_ms(self.directory_point))
        lookup = self.directory.find(self._now, oid, l1_index)
        # Under faults the directory's freshness premise is void: crashed
        # proxies died without retracting, so the visible map may name
        # holders that no longer exist.  Trust the map (that is what a
        # real CRISP client does) and let the fetch discover the truth.
        holder = self._nearest_visible_holder(lookup.holders, l1_index)

        if holder is not None and faults.is_down("l1", holder):
            # Stale map: the fetch hangs on a dead peer until the timeout,
            # then the directory drops the entry and the request goes to
            # the origin server.
            faults.note_dead_probe()
            self.directory.drop_visible(oid, holder)
            self._store(l1_index, request)
            charged, added = faults.degraded_ms(
                cost.via_l1_ms(AccessPoint.SERVER, size), origin=True
            )
            journey = Journey()
            journey.peer_probe(query_ms, target="directory", fault_ms=query_added)
            journey.timeout(faults.timeout_ms, target=f"l1:{holder}", stale=True)
            journey.origin_fetch(charged, fault_ms=added)
            return journey.result(AccessPoint.SERVER, hit=False)

        if holder is not None:
            point = self.topology.distance_class(l1_index, holder)
            if self.l1_caches[holder].lookup(oid, version) is LookupResult.HIT:
                self._store(l1_index, request)
                charged, added = faults.degraded_ms(cost.via_l1_ms(point, size))
                journey = Journey()
                journey.peer_probe(query_ms, target="directory", fault_ms=query_added)
                journey.transfer(charged, target=f"l1:{holder}", fault_ms=added)
                return journey.result(point, hit=True, remote_hit=True)
            # The peer is alive but the copy is gone (it crashed and came
            # back empty while the directory still advertised the entry):
            # a wasted forward the healthy directory can never produce.
            self.directory.drop_visible(oid, holder)
            probe_ms, probe_added = faults.degraded_ms(cost.probe_ms(point))
            self._store(l1_index, request)
            charged, added = faults.degraded_ms(
                cost.via_l1_ms(AccessPoint.SERVER, size), origin=True
            )
            journey = Journey()
            journey.peer_probe(query_ms, target="directory", fault_ms=query_added)
            journey.peer_probe(
                probe_ms, target=f"l1:{holder}", fault_ms=probe_added, wasted=True
            )
            journey.mark_stale_forward()
            journey.origin_fetch(charged, fault_ms=added)
            return journey.result(AccessPoint.SERVER, hit=False)

        self._store(l1_index, request)
        charged, added = faults.degraded_ms(
            cost.via_l1_ms(AccessPoint.SERVER, size), origin=True
        )
        journey = Journey()
        journey.peer_probe(query_ms, target="directory", fault_ms=query_added)
        journey.origin_fetch(charged, fault_ms=added)
        return journey.result(AccessPoint.SERVER, hit=False)

    def _nearest_visible_holder(
        self, holders: tuple[int, ...], requester: int
    ) -> int | None:
        """Nearest holder the (possibly stale) visible map advertises."""
        if not holders:
            return None
        return min(
            holders,
            key=lambda h: (int(self.topology.distance_class(requester, h)), h),
        )
