"""The three-level cache topology used throughout the evaluation.

Paper section 2.2.3: "we configure the system as a three-level hierarchy
with 256 clients sharing a L1 proxy, eight L1 proxies (2048 clients)
sharing a L2 proxy, and all L2 proxies sharing an L3 proxy."  This module
captures that grouping and the *distance class* between two L1 proxies:

* the same proxy -- L1 distance;
* different proxies under the same L2 parent -- L2 distance;
* different L2 subtrees -- L3 distance.

The hint architecture stores data only at L1 proxies but still prices a
remote fetch by this distance class, because peers under the same regional
parent are network-near while cross-region peers are network-far.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.netmodel.model import AccessPoint


@dataclass(frozen=True)
class HierarchyTopology:
    """Client / L1 / L2 / L3 grouping.

    Args:
        clients_per_l1: Clients sharing one leaf proxy (paper: 256).
        l1_per_l2: Leaf proxies sharing one L2 parent (paper: 8).
        n_l2: Number of L2 parents under the single L3 root (paper's Figure
            8 simulations use 8, for 64 L1 caches).
    """

    clients_per_l1: int = 256
    l1_per_l2: int = 8
    n_l2: int = 8

    def __post_init__(self) -> None:
        if self.clients_per_l1 <= 0 or self.l1_per_l2 <= 0 or self.n_l2 <= 0:
            raise ConfigurationError("all topology group sizes must be positive")

    @property
    def n_l1(self) -> int:
        """Total number of leaf proxies."""
        return self.l1_per_l2 * self.n_l2

    @property
    def n_clients_covered(self) -> int:
        """Clients the hierarchy was dimensioned for; extra ids wrap around."""
        return self.clients_per_l1 * self.n_l1

    def l1_of_client(self, client_id: int) -> int:
        """Leaf proxy serving a client (ids beyond coverage wrap around)."""
        if client_id < 0:
            raise ConfigurationError(f"client id must be non-negative, got {client_id}")
        return (client_id // self.clients_per_l1) % self.n_l1

    def l2_of_l1(self, l1: int) -> int:
        """L2 parent of a leaf proxy."""
        self._check_l1(l1)
        return l1 // self.l1_per_l2

    def l1_of_clients(self, client_ids) -> "np.ndarray":
        """Vectorized :meth:`l1_of_client` over an int array of client ids."""
        import numpy as np

        client_ids = np.asarray(client_ids)
        if client_ids.size and int(client_ids.min()) < 0:
            raise ConfigurationError("client ids must be non-negative")
        return (client_ids // self.clients_per_l1) % self.n_l1

    def distance_matrix(self) -> "np.ndarray":
        """``n_l1 x n_l1`` matrix of distance classes as AccessPoint ints.

        ``matrix[from_l1, to_l1] == int(self.distance_class(from_l1, to_l1))``;
        the fast engine indexes rows of this instead of calling the scalar
        method per peer probe.
        """
        import numpy as np

        l2 = np.arange(self.n_l1) // self.l1_per_l2
        same_l2 = l2[:, None] == l2[None, :]
        matrix = np.where(same_l2, int(AccessPoint.L2), int(AccessPoint.L3))
        np.fill_diagonal(matrix, int(AccessPoint.L1))
        return matrix

    def l1_nodes_of_l2(self, l2: int) -> list[int]:
        """Leaf proxies under one L2 parent."""
        if not 0 <= l2 < self.n_l2:
            raise ConfigurationError(f"l2 index {l2} out of range")
        start = l2 * self.l1_per_l2
        return list(range(start, start + self.l1_per_l2))

    def siblings_of(self, l1: int) -> list[int]:
        """Other leaf proxies under the same L2 parent."""
        return [n for n in self.l1_nodes_of_l2(self.l2_of_l1(l1)) if n != l1]

    def distance_class(self, from_l1: int, to_l1: int) -> AccessPoint:
        """Distance class between two leaf proxies (L1 / L2 / L3)."""
        self._check_l1(from_l1)
        self._check_l1(to_l1)
        if from_l1 == to_l1:
            return AccessPoint.L1
        if self.l2_of_l1(from_l1) == self.l2_of_l1(to_l1):
            return AccessPoint.L2
        return AccessPoint.L3

    def lca_level(self, from_l1: int, to_l1: int) -> int:
        """Level of the least common ancestor of two leaf proxies (1/2/3)."""
        return int(self.distance_class(from_l1, to_l1))

    def _check_l1(self, l1: int) -> None:
        if not 0 <= l1 < self.n_l1:
            raise ConfigurationError(f"l1 index {l1} out of range [0, {self.n_l1})")
