"""Message-level hint architecture: the full prototype stack as a system.

:class:`~repro.hierarchy.hint_hierarchy.HintHierarchy` models hint state
with a single directory parameterized by delay and capacity.  This class
replaces the model with the mechanism: every L1 proxy runs a real
:class:`~repro.hints.node.HintNode` (the 16-byte packed hint cache), and a
:class:`~repro.hints.cluster.HintCluster` moves actual 20-byte update
batches between them over the metadata tree with the paper's randomized
0-60 s flush jitter.

Hint pathologies now *emerge* instead of being injected:

* **false negatives** -- an update has not flushed its way to the
  requester's hint cache yet, or was displaced by a set conflict;
* **false positives** -- an invalidation is still in flight, so the local
  hint cache names a cache that already dropped its copy;
* **suboptimal positives** -- the 16-byte record holds a single machine:
  whichever holder's update arrived last wins, near or far.

Because each request consults only its own node's packed hint cache, this
architecture is the closest thing in the library to running 64 copies of
the Squid prototype.  The ``message_level`` experiment compares it against
the modeled directory.
"""

from __future__ import annotations

from repro.cache.lru import CacheEntry, LookupResult
from repro.cache.policy import PolicySpec
from repro.common.ids import object_id_from_url
from repro.hierarchy.base import AccessResult, Architecture, build_l1_caches
from repro.hierarchy.topology import HierarchyTopology
from repro.hints.cluster import HintCluster
from repro.hints.propagation import HintPropagationTree
from repro.hints.wire import MAX_UPDATE_PERIOD_S
from repro.netmodel.model import AccessPoint, CostModel
from repro.obs.journey import Journey
from repro.traces.records import Request


class MessageLevelHintHierarchy(Architecture):
    """Hint architecture driven by real per-node hint caches and batches.

    Args:
        topology: Client / L1 / L2 / L3 grouping; the metadata tree has
            one leaf per L1 proxy and mirrors the L2 grouping.
        cost_model: Access-time parameterization.
        l1_bytes: Per-proxy data-cache capacity.
        hint_capacity_bytes: Per-node packed hint-cache size.
        link_latency_s: One-way metadata-link latency.
        max_period_s: Upper bound of the randomized flush period (60 s in
            the paper; lower values trade update bandwidth for freshness).
        seed: Flush-jitter randomness.
        l1_policy: Replacement policy for the per-proxy data caches
            (:class:`~repro.cache.policy.PolicySpec`; default LRU).
    """

    name = "hints-message-level"

    def __init__(
        self,
        topology: HierarchyTopology,
        cost_model: CostModel,
        l1_bytes: int | None = None,
        hint_capacity_bytes: int = 1 << 20,
        link_latency_s: float = 0.1,
        max_period_s: float = MAX_UPDATE_PERIOD_S,
        seed: int = 0,
        l1_policy: PolicySpec | None = None,
    ) -> None:
        super().__init__(cost_model)
        self.topology = topology
        tree = HintPropagationTree.balanced(
            branching=topology.l1_per_l2, leaves=topology.n_l1
        )
        self.cluster = HintCluster(
            parents=tree._parent_vector(),
            hint_capacity_bytes=hint_capacity_bytes,
            link_latency_s=link_latency_s,
            max_period_s=max_period_s,
            seed=seed,
        )
        self._now = 0.0
        self._hash_cache: dict[int, int] = {}
        self.l1_caches = build_l1_caches(
            topology.n_l1,
            l1_bytes,
            eviction_callback=self._eviction_callback,
            policy=l1_policy,
        )
        self.false_positive_probes = 0
        self.false_negative_misses = 0

    # ------------------------------------------------------------------
    # processing
    # ------------------------------------------------------------------
    def process(self, request: Request) -> AccessResult:
        if self.audit is not None:
            self.audit.checkpoint(self)
        if self.shard is not None:
            self.check_shard_owns(request.object_id)
        self._now = request.time
        l1_index = self.topology.l1_of_client(request.client_id)
        cache = self.l1_caches[l1_index]
        oid, version, size = request.object_id, request.version, request.size

        if cache.lookup(oid, version) is LookupResult.HIT:
            journey = Journey()
            journey.local_lookup(
                self.cost_model.via_l1_ms(AccessPoint.L1, size),
                target=f"l1:{l1_index}",
            )
            return journey.result(AccessPoint.L1, hit=True)

        url_hash = self._hash_of(oid)
        found = self.cluster.find_nearest(l1_index, url_hash, self._now)
        holder = found.node if found is not None else None
        if holder is not None and holder != l1_index:
            point = self.topology.distance_class(l1_index, holder)
            remote = self.l1_caches[holder].lookup(oid, version)
            if remote is LookupResult.HIT:
                self._store(l1_index, request)
                journey = Journey()
                journey.hint_lookup(
                    self.cost_model.hint_lookup_ms(), target=f"l1:{holder}"
                )
                journey.transfer(
                    self.cost_model.via_l1_ms(point, size), target=f"l1:{holder}"
                )
                return journey.result(point, hit=True, remote_hit=True)
            self.false_positive_probes += 1
            self._store(l1_index, request)
            journey = Journey()
            journey.peer_probe(
                self.cost_model.probe_ms(point), target=f"l1:{holder}", wasted=True
            )
            journey.mark_false_positive()
            journey.origin_fetch(self.cost_model.via_l1_ms(AccessPoint.SERVER, size))
            return journey.result(AccessPoint.SERVER, hit=False)

        false_negative = self._other_holder_exists(oid, version, l1_index)
        if false_negative:
            self.false_negative_misses += 1
        self._store(l1_index, request)
        journey = Journey()
        if false_negative:
            journey.mark_false_negative()
        journey.origin_fetch(self.cost_model.via_l1_ms(AccessPoint.SERVER, size))
        return journey.result(AccessPoint.SERVER, hit=False)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _hash_of(self, object_id: int) -> int:
        url_hash = self._hash_cache.get(object_id)
        if url_hash is None:
            url_hash = object_id_from_url(f"http://obj/{object_id}")
            self._hash_cache[object_id] = url_hash
        return url_hash

    def _store(self, l1_index: int, request: Request) -> None:
        self.l1_caches[l1_index].insert(
            request.object_id, request.size, request.version
        )
        self.cluster.local_inform(
            l1_index, self._hash_of(request.object_id), self._now
        )

    def _eviction_callback(self, node: int):
        def on_evict(key: int, entry: CacheEntry, reason: str) -> None:
            self.cluster.local_invalidate(node, self._hash_of(key), self._now)

        return on_evict

    def _other_holder_exists(self, oid: int, version: int, requester: int) -> bool:
        """Ground truth for false-negative accounting (not used to route)."""
        for node, cache in enumerate(self.l1_caches):
            if node == requester:
                continue
            entry = cache.peek(oid)
            if entry is not None and entry.version >= version:
                return True
        return False
