"""Replays a :class:`~repro.faults.events.FaultPlan` against sim time.

One injector drives one simulation run.  The engine advances it to each
request's timestamp; architectures it is bound to get crash/recover
callbacks (to lose volatile state) and query the current fault state on
their request path:

* ``is_down(kind, node)`` -- reachability of a data or metadata node;
* ``hint_update_dropped()`` -- seeded Bernoulli draw at the current
  batch-loss probability;
* ``surcharge_ms`` / ``degraded_ms`` -- the latency arithmetic for
  timeouts, origin slowdown, and link degradation, accumulated into the
  per-request ``fault_added_ms`` so every extra millisecond is
  attributable.

Determinism: the injector's only randomness is the batch-loss stream,
seeded from the plan, so identical plans produce identical runs -- in
one process or across the parallel runner's workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.faults.events import (
    FaultPlan,
    HintBatchLoss,
    LinkDegrade,
    NodeCrash,
    NodeKind,
    NodeRecover,
    OriginSlowdown,
    StaleHintDrift,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.hierarchy.base import Architecture


@dataclass
class FaultStats:
    """What the injector did to one run (plan-side view of degradation)."""

    crashes: int = 0
    recoveries: int = 0
    hint_updates_dropped: int = 0
    dead_probes: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "hint_updates_dropped": self.hint_updates_dropped,
            "dead_probes": self.dead_probes,
        }


class FaultInjector:
    """Stateful replay of one fault plan over one simulation run.

    Args:
        plan: The schedule to replay.  An empty plan is legal -- the
            injector then never activates anything.

    Attributes:
        origin_factor: Current origin-fetch multiplier (>= 1).
        latency_mult: Current network-charge multiplier (>= 1).
        hint_loss_prob: Current hint-batch loss probability.
        hint_delay_skew_s: Current extra hint-visibility lag in seconds.
        stats: Counters of everything injected so far.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._events = plan.events
        self._next = 0
        self._down: set[tuple[NodeKind, int]] = set()
        self.origin_factor = 1.0
        self.latency_mult = 1.0
        self.hint_loss_prob = 0.0
        self.hint_delay_skew_s = 0.0
        self._rng = np.random.default_rng([plan.seed, 0x0FAB17])
        self._bound: list["Architecture"] = []
        self.stats = FaultStats()
        self.now = 0.0
        #: Sticky: True once any event fired that can desynchronize hint
        #: metadata from cache contents (a crash losing state, a lossy
        #: batch window, visibility drift).  Audits consult this to know
        #: whether hint/truth divergence has a legitimate explanation --
        #: sticky because the damage outlives the event (stale hints
        #: persist after the faulty window closes).
        self.hint_damage_possible = False

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def bind(self, architecture: "Architecture") -> None:
        """Attach to an architecture: it will see crash/recover callbacks."""
        if architecture not in self._bound:
            self._bound.append(architecture)
        architecture.attach_faults(self)

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    def advance(self, now: float) -> None:
        """Apply every scheduled event with ``time <= now``."""
        while self._next < len(self._events) and self._events[self._next].time <= now:
            self._apply(self._events[self._next])
            self._next += 1
        self.now = max(self.now, now)

    def inject(self, event) -> None:
        """Apply one event immediately, outside any plan.

        For interactive drills and stateful tests that decide faults on
        the fly; scheduled replay should go through :meth:`advance`.
        """
        self._apply(event)

    def _apply(self, event) -> None:
        if isinstance(event, NodeCrash):
            self.hint_damage_possible = True
            key = (event.kind, event.node)
            if key not in self._down:
                self._down.add(key)
                self.stats.crashes += 1
                for architecture in self._bound:
                    architecture.on_fault_crash(event.kind, event.node)
        elif isinstance(event, NodeRecover):
            key = (event.kind, event.node)
            if key in self._down:
                self._down.discard(key)
                self.stats.recoveries += 1
                for architecture in self._bound:
                    architecture.on_fault_recover(event.kind, event.node)
        elif isinstance(event, HintBatchLoss):
            self.hint_loss_prob = event.prob
            if event.prob > 0.0:
                self.hint_damage_possible = True
        elif isinstance(event, StaleHintDrift):
            self.hint_delay_skew_s = event.ttl_skew_s
            if event.ttl_skew_s > 0.0:
                self.hint_damage_possible = True
        elif isinstance(event, OriginSlowdown):
            self.origin_factor = event.factor
        elif isinstance(event, LinkDegrade):
            self.latency_mult = event.latency_mult
        else:  # pragma: no cover - FaultPlan validates event types
            raise TypeError(f"unknown fault event {event!r}")

    # ------------------------------------------------------------------
    # queries (the architectures' request-path API)
    # ------------------------------------------------------------------
    def is_down(self, kind: NodeKind | str, node: int) -> bool:
        """Is node ``(kind, node)`` currently crashed?"""
        return (NodeKind(kind), node) in self._down

    def any_down(self, kind: NodeKind | str) -> bool:
        """Is any node of this kind currently crashed?"""
        kind = NodeKind(kind)
        return any(k == kind for k, _n in self._down)

    @property
    def down_nodes(self) -> frozenset[tuple[NodeKind, int]]:
        """Snapshot of every currently crashed ``(kind, node)`` pair."""
        return frozenset(self._down)

    @property
    def faults_active(self) -> bool:
        """True while any fault condition is in force."""
        return (
            bool(self._down)
            or self.origin_factor != 1.0
            or self.latency_mult != 1.0
            or self.hint_loss_prob > 0.0
            or self.hint_delay_skew_s > 0.0
        )

    @property
    def timeout_ms(self) -> float:
        """Dead-node timeout charged before a fallback (from the plan)."""
        return self.plan.timeout_ms

    def hint_update_dropped(self) -> bool:
        """Seeded draw: is this hint inform/retract batch lost in flight?"""
        if self.hint_loss_prob <= 0.0:
            return False
        dropped = float(self._rng.random()) < self.hint_loss_prob
        if dropped:
            self.stats.hint_updates_dropped += 1
        return dropped

    def note_dead_probe(self) -> None:
        """Count a probe/query that hit a crashed node and timed out."""
        self.stats.dead_probes += 1

    # ------------------------------------------------------------------
    # latency arithmetic
    # ------------------------------------------------------------------
    def degraded_ms(self, base_ms: float, *, origin: bool = False) -> tuple[float, float]:
        """Charge ``base_ms`` under current conditions.

        Returns ``(charged_ms, fault_added_ms)`` where ``charged_ms`` is
        the base inflated by the link multiplier (and origin slowdown
        when ``origin``), and ``fault_added_ms`` is the excess over the
        healthy charge -- the run's "added latency attributable to
        faults" ledger.  Multipliers are >= 1, so the excess is never
        negative and a healthy injector returns the base unchanged.
        """
        charged = base_ms * self.latency_mult
        if origin:
            charged *= self.origin_factor
        return charged, charged - base_ms
