"""Deterministic fault injection for architecture simulations.

The paper's robustness claim (section 3.4) is that the hint architecture
*degrades gracefully*: a dead metadata node makes hints stale but "never
wrong" -- requests that would have been remote hits fall back to the
origin server, slower but always correct.  This package makes that claim
measurable for **any** architecture run:

* :mod:`repro.faults.events` -- the fault vocabulary.  A
  :class:`FaultPlan` is a time-ordered schedule of
  :class:`NodeCrash`/:class:`NodeRecover` events (data caches and
  metadata nodes), hint-propagation pathologies
  (:class:`HintBatchLoss`, :class:`StaleHintDrift`) and network
  degradations (:class:`OriginSlowdown`, :class:`LinkDegrade`).
* :mod:`repro.faults.profile` -- :class:`FaultProfile` generates plans
  from MTBF/MTTR parameters with a seeded RNG, so crash schedules are
  reproducible and sweepable.
* :mod:`repro.faults.injector` -- :class:`FaultInjector` replays a plan
  against simulation time and answers the architectures' questions
  ("is this node down?", "is this hint update lost?") plus the charged
  surcharges (timeouts, origin slowdown, link degradation).
* :mod:`repro.faults.cluster_driver` -- applies a plan to the live
  event-driven :class:`repro.hints.cluster.HintCluster` (used by
  ``examples/failure_drill.py``).

Injection is strictly opt-in: ``run_simulation(trace, arch)`` without a
plan takes the exact code path it always did and produces byte-identical
metrics.
"""

from repro.faults.events import (
    FaultEvent,
    FaultPlan,
    HintBatchLoss,
    LinkDegrade,
    NodeCrash,
    NodeKind,
    NodeRecover,
    OriginSlowdown,
    StaleHintDrift,
)
from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.profile import FaultProfile

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultProfile",
    "FaultStats",
    "HintBatchLoss",
    "LinkDegrade",
    "NodeCrash",
    "NodeKind",
    "NodeRecover",
    "OriginSlowdown",
    "StaleHintDrift",
]
