"""Applies a fault plan to the live event-driven hint cluster.

:class:`~repro.hints.cluster.HintCluster` simulates hint propagation as
discrete events; this driver is the bridge that lets the same
:class:`~repro.faults.events.FaultPlan` vocabulary used by trace
simulations (``run_simulation(..., fault_plan=...)``) drive the cluster's
failure API -- ``examples/failure_drill.py`` is the canonical user.

Only ``meta``-kind crash/recover events apply (the cluster *is* the
metadata fabric; it has no data caches or origin servers); other events
are ignored with a note in :attr:`ClusterFaultDriver.skipped_events`.
"""

from __future__ import annotations

from repro.faults.events import FaultPlan, NodeCrash, NodeKind, NodeRecover
from repro.hints.cluster import HintCluster


class ClusterFaultDriver:
    """Replays a plan's metadata crashes/recoveries against a cluster.

    Args:
        cluster: The live cluster to inject into.
        plan: Fault schedule; ``meta`` node indices address cluster nodes.

    Use :meth:`run_until` instead of ``cluster.run_until`` so scheduled
    faults fire at their plan times, interleaved with cluster events.
    """

    def __init__(self, cluster: HintCluster, plan: FaultPlan) -> None:
        self.cluster = cluster
        self.plan = plan
        self._events = []
        #: Plan events that do not map onto the cluster (kept for audit).
        self.skipped_events = []
        for event in plan:
            if (
                isinstance(event, (NodeCrash, NodeRecover))
                and event.kind is NodeKind.META
            ):
                self._events.append(event)
            else:
                self.skipped_events.append(event)
        self._next = 0

    def run_until(self, time: float) -> None:
        """Advance the cluster to ``time``, firing due plan events en route."""
        while self._next < len(self._events) and self._events[self._next].time <= time:
            event = self._events[self._next]
            self.cluster.run_until(event.time)
            if isinstance(event, NodeCrash):
                self.cluster.fail_node(event.node, now=event.time)
            else:
                self.cluster.recover_node(event.node, now=event.time)
            self._next += 1
        self.cluster.run_until(time)
