"""Fault vocabulary and the deterministic fault schedule.

A :class:`FaultPlan` is the complete, explicit description of every bad
thing that happens during one simulation run: which nodes crash and
recover when, how lossy hint propagation becomes, how much extra
staleness hint caches accumulate, and how degraded the network or origin
servers are.  Plans are immutable, picklable (they cross process
boundaries with :mod:`repro.runner.parallel`), and canonically
serializable so they can join the runner's content-address fingerprints.

Event semantics
---------------

* :class:`NodeCrash` / :class:`NodeRecover` -- a node goes down/comes
  back at ``time``.  ``kind`` says which population the index addresses:
  ``"l1"``/``"l2"``/``"l3"`` are data-cache nodes, ``"meta"`` are
  metadata-hierarchy nodes (hint propagation interior nodes; in the
  centralized-directory architecture, meta node 0 **is** the directory).
  A crash loses the node's volatile state -- caches come back empty.
* :class:`HintBatchLoss` -- from ``time`` on, each hint inform/retract
  batch is lost with probability ``prob`` (seeded draw; ``prob=0``
  restores health).
* :class:`StaleHintDrift` -- from ``time`` on, hint visibility lags an
  extra ``ttl_skew_s`` seconds beyond the architecture's configured
  propagation delay (``0`` restores health).
* :class:`OriginSlowdown` -- from ``time`` on, origin-server fetches
  cost ``factor`` times their normal charge (``1.0`` restores health).
* :class:`LinkDegrade` -- from ``time`` on, every network charge is
  multiplied by ``latency_mult`` (``1.0`` restores health).

"Level" events (loss, drift, slowdown, degrade) are step functions: each
occurrence sets the level until the next occurrence of the same kind.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from enum import Enum
from typing import Iterable, Iterator

#: Timeout charged when a request waits out a dead node before falling
#: back (milliseconds).  Chosen at the scale of the testbed's worst
#: store-and-forward miss so "timed out then fell back" is never cheaper
#: than any healthy path.
DEFAULT_TIMEOUT_MS = 4_000.0


class NodeKind(str, Enum):
    """Which node population a crash/recover index addresses."""

    L1 = "l1"
    L2 = "l2"
    L3 = "l3"
    META = "meta"


@dataclass(frozen=True)
class FaultEvent:
    """Base fault event: something happens at ``time`` seconds."""

    time: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time must be non-negative, got {self.time}")


@dataclass(frozen=True)
class NodeCrash(FaultEvent):
    """Node ``(kind, node)`` dies: unreachable, volatile state lost."""

    kind: NodeKind = NodeKind.L2
    node: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "kind", NodeKind(self.kind))
        if self.node < 0:
            raise ValueError(f"node index must be non-negative, got {self.node}")


@dataclass(frozen=True)
class NodeRecover(FaultEvent):
    """Node ``(kind, node)`` rejoins (with empty caches -- it crashed)."""

    kind: NodeKind = NodeKind.L2
    node: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "kind", NodeKind(self.kind))
        if self.node < 0:
            raise ValueError(f"node index must be non-negative, got {self.node}")


@dataclass(frozen=True)
class HintBatchLoss(FaultEvent):
    """Hint update batches are lost with probability ``prob`` from now on."""

    prob: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {self.prob}")


@dataclass(frozen=True)
class StaleHintDrift(FaultEvent):
    """Hint visibility lags an extra ``ttl_skew_s`` seconds from now on."""

    ttl_skew_s: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.ttl_skew_s < 0:
            raise ValueError(f"ttl skew must be non-negative, got {self.ttl_skew_s}")


@dataclass(frozen=True)
class OriginSlowdown(FaultEvent):
    """Origin fetches cost ``factor`` x their normal charge from now on."""

    factor: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.factor < 1.0:
            raise ValueError(
                f"origin slowdown factor must be >= 1 (faults never speed "
                f"anything up), got {self.factor}"
            )


@dataclass(frozen=True)
class LinkDegrade(FaultEvent):
    """Every network charge is multiplied by ``latency_mult`` from now on."""

    latency_mult: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.latency_mult < 1.0:
            raise ValueError(
                f"latency multiplier must be >= 1 (faults never speed "
                f"anything up), got {self.latency_mult}"
            )


#: Event-type tag used in canonical payloads, stable across refactors.
_EVENT_TAGS: dict[type, str] = {
    NodeCrash: "crash",
    NodeRecover: "recover",
    HintBatchLoss: "hint_batch_loss",
    StaleHintDrift: "stale_hint_drift",
    OriginSlowdown: "origin_slowdown",
    LinkDegrade: "link_degrade",
}
_TAG_TYPES = {tag: cls for cls, tag in _EVENT_TAGS.items()}


@dataclass(frozen=True)
class FaultPlan:
    """A time-ordered, immutable schedule of fault events.

    Args:
        events: The schedule; stored sorted by (time, insertion order).
        seed: Seed for the injector's stochastic draws (hint batch loss).
            Part of the plan so two runs of the same plan lose the same
            batches.
        timeout_ms: Milliseconds a request waits at a dead node before
            falling back to the origin server.

    An empty plan is valid and behaves exactly like no plan at all.
    """

    events: tuple[FaultEvent, ...] = ()
    seed: int = 0
    timeout_ms: float = DEFAULT_TIMEOUT_MS

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda e: e.time)
        )  # stable: simultaneous events keep input order
        object.__setattr__(self, "events", ordered)
        if self.timeout_ms < 0:
            raise ValueError(f"timeout must be non-negative, got {self.timeout_ms}")
        for event in ordered:
            if type(event) not in _EVENT_TAGS:
                raise TypeError(f"unknown fault event type {type(event).__name__}")

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __bool__(self) -> bool:
        """True when the plan schedules anything at all."""
        return bool(self.events)

    # ------------------------------------------------------------------
    # canonical serialization (fingerprints, JSON export, plan transport)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """Canonical JSON-able rendering (feeds the runner fingerprint)."""
        return {
            "seed": self.seed,
            "timeout_ms": self.timeout_ms,
            "events": [
                {"type": _EVENT_TAGS[type(event)], **_event_fields(event)}
                for event in self.events
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "FaultPlan":
        """Inverse of :meth:`to_payload`."""
        events = []
        for item in payload.get("events", []):
            fields = dict(item)
            tag = fields.pop("type")
            try:
                event_type = _TAG_TYPES[tag]
            except KeyError:
                raise ValueError(f"unknown fault event tag {tag!r}") from None
            events.append(event_type(**fields))
        return cls(
            events=tuple(events),
            seed=payload.get("seed", 0),
            timeout_ms=payload.get("timeout_ms", DEFAULT_TIMEOUT_MS),
        )

    def to_json(self) -> str:
        """Canonical JSON string (sorted keys, no whitespace)."""
        return json.dumps(self.to_payload(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_payload(json.loads(text))

    def fingerprint(self) -> str:
        """Content address of this plan (see :mod:`repro.runner.fingerprint`)."""
        from repro.runner.fingerprint import fault_fingerprint

        return fault_fingerprint(self)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def outage(
        cls,
        targets: Iterable[tuple[NodeKind | str, int]],
        start: float,
        end: float | None = None,
        **kwargs,
    ) -> "FaultPlan":
        """Crash every target at ``start``; recover at ``end`` if given."""
        events: list[FaultEvent] = []
        for kind, node in targets:
            events.append(NodeCrash(time=start, kind=NodeKind(kind), node=node))
            if end is not None:
                if end <= start:
                    raise ValueError(f"recovery {end} must follow crash {start}")
                events.append(NodeRecover(time=end, kind=NodeKind(kind), node=node))
        return cls(events=tuple(events), **kwargs)


def _event_fields(event: FaultEvent) -> dict:
    fields = asdict(event)
    kind = fields.get("kind")
    if isinstance(kind, NodeKind):
        fields["kind"] = kind.value
    return fields
