"""Seeded MTBF/MTTR fault-plan generation.

Explicit plans are right for drills and unit tests; sweeps want a
*statistical* failure regime: "each node fails on average every ``mtbf``
seconds and stays down ``mttr`` seconds".  :class:`FaultProfile` turns
those two parameters into a concrete :class:`~repro.faults.events.FaultPlan`
with a seeded RNG, so the same profile + seed always yields the same
schedule -- sweep points are reproducible, cacheable, and comparable
across architectures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.faults.events import (
    DEFAULT_TIMEOUT_MS,
    FaultEvent,
    FaultPlan,
    NodeCrash,
    NodeKind,
    NodeRecover,
)


@dataclass(frozen=True)
class FaultProfile:
    """A crash/repair regime: exponential failures, exponential repairs.

    Args:
        mtbf_s: Mean time between failures per target node, in seconds of
            simulation time (measured from recovery to the next crash).
        mttr_s: Mean time to repair, in seconds.  ``None`` means crashed
            nodes never recover within the run (fail-stop).
        seed: RNG seed for the draw sequence.
        timeout_ms: Dead-node timeout carried onto the generated plan.
    """

    mtbf_s: float
    mttr_s: float | None = None
    seed: int = 0
    timeout_ms: float = DEFAULT_TIMEOUT_MS

    def __post_init__(self) -> None:
        if self.mtbf_s <= 0:
            raise ValueError(f"mtbf must be positive, got {self.mtbf_s}")
        if self.mttr_s is not None and self.mttr_s <= 0:
            raise ValueError(f"mttr must be positive, got {self.mttr_s}")

    def plan(
        self,
        targets: Sequence[tuple[NodeKind | str, int]] | Iterable[tuple[NodeKind | str, int]],
        *,
        duration_s: float,
        start_s: float = 0.0,
    ) -> FaultPlan:
        """Generate the crash/recover schedule over ``[start_s, duration_s)``.

        Each target gets an independent alternating renewal process (up
        for Exp(mtbf), down for Exp(mttr)), drawn from a per-target RNG
        stream derived from ``seed`` and the target's identity -- adding
        or removing one target never perturbs another's schedule.
        """
        if duration_s <= start_s:
            raise ValueError(
                f"duration {duration_s} must exceed the start time {start_s}"
            )
        events: list[FaultEvent] = []
        for kind, node in targets:
            kind = NodeKind(kind)
            stream = np.random.default_rng(
                [self.seed, _KIND_STREAM[kind], node]
            )
            now = start_s
            while True:
                now += float(stream.exponential(self.mtbf_s))
                if now >= duration_s:
                    break
                events.append(NodeCrash(time=now, kind=kind, node=node))
                if self.mttr_s is None:
                    break  # fail-stop: down for the rest of the run
                now += float(stream.exponential(self.mttr_s))
                if now >= duration_s:
                    break
                events.append(NodeRecover(time=now, kind=kind, node=node))
        return FaultPlan(
            events=tuple(events), seed=self.seed, timeout_ms=self.timeout_ms
        )


#: Stable per-kind stream offsets so (seed, kind, node) streams never collide.
_KIND_STREAM: dict[NodeKind, int] = {
    NodeKind.L1: 1,
    NodeKind.L2: 2,
    NodeKind.L3: 3,
    NodeKind.META: 4,
}
